//! Offline stand-in for the `criterion` benchmark harness.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its benches use: [`Criterion`],
//! benchmark groups, [`Bencher::iter`]/[`Bencher::iter_batched`],
//! [`Throughput`], [`black_box`], and the [`criterion_group!`] /
//! [`criterion_main!`] macros.
//!
//! Measurement model: after a warm-up, each benchmark runs
//! `sample_size` samples; every sample executes a calibrated number of
//! iterations and the per-iteration wall time is recorded. The report
//! prints `[min mean max]` like upstream plus mean throughput. Passing
//! `--test` (as `cargo bench -- --test` or via `cargo test --benches`)
//! runs every routine exactly once — a smoke check without timing.

#![forbid(unsafe_code)]

use std::time::{Duration, Instant};

pub use std::hint::black_box;

/// How [`Bencher::iter_batched`] amortizes setup.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BatchSize {
    /// Setup is cheap relative to the routine.
    SmallInput,
    /// Setup is expensive; batches are smaller.
    LargeInput,
    /// A fresh input per iteration with no batching.
    PerIteration,
}

/// Units-per-iteration metadata used to report throughput.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Throughput {
    /// Elements processed per iteration.
    Elements(u64),
    /// Bytes processed per iteration.
    Bytes(u64),
}

/// Timing loop handle passed to the benchmark closure.
pub struct Bencher {
    /// Iterations to run in the current sample.
    iters: u64,
    /// Accumulated elapsed time of the current sample.
    elapsed: Duration,
    /// When true, run routines exactly once without timing.
    test_mode: bool,
}

impl Bencher {
    /// Times `routine`, running it `iters` times.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        if self.test_mode {
            black_box(routine());
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }

    /// Times `routine` on inputs produced by `setup`, excluding setup time.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut routine: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        if self.test_mode {
            black_box(routine(setup()));
            self.elapsed = Duration::from_nanos(1);
            return;
        }
        let mut elapsed = Duration::ZERO;
        for _ in 0..self.iters {
            let input = setup();
            let start = Instant::now();
            black_box(routine(input));
            elapsed += start.elapsed();
        }
        self.elapsed = elapsed;
    }
}

fn format_time(nanos: f64) -> String {
    if nanos < 1_000.0 {
        format!("{nanos:.2} ns")
    } else if nanos < 1_000_000.0 {
        format!("{:.3} µs", nanos / 1_000.0)
    } else if nanos < 1_000_000_000.0 {
        format!("{:.3} ms", nanos / 1_000_000.0)
    } else {
        format!("{:.3} s", nanos / 1_000_000_000.0)
    }
}

/// The benchmark manager: registers, filters, runs, and reports.
pub struct Criterion {
    sample_size: usize,
    test_mode: bool,
    filter: Option<String>,
}

impl Default for Criterion {
    fn default() -> Self {
        let args: Vec<String> = std::env::args().collect();
        let mut test_mode = false;
        let mut filter = None;
        let mut i = 1;
        while i < args.len() {
            match args[i].as_str() {
                "--test" => test_mode = true,
                // flags the cargo bench/test harness protocol may pass
                "--bench" | "--nocapture" | "--quiet" | "--exact" | "--include-ignored" => {}
                s if s.starts_with("--") => {
                    // consume "--flag value" style arguments
                    if !s.contains('=') && i + 1 < args.len() && !args[i + 1].starts_with('-') {
                        i += 1;
                    }
                }
                positional => filter = Some(positional.to_string()),
            }
            i += 1;
        }
        Self {
            sample_size: 20,
            test_mode,
            filter,
        }
    }
}

impl Criterion {
    /// Sets the number of timed samples per benchmark.
    #[must_use]
    pub fn sample_size(mut self, n: usize) -> Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.sample_size = n;
        self
    }

    /// Sets the measurement time hint (accepted for API compatibility).
    #[must_use]
    pub fn measurement_time(self, _t: Duration) -> Self {
        self
    }

    /// Runs a single benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, name: impl Into<String>, f: F) {
        let name = name.into();
        run_bench(&name, self.sample_size, self.test_mode, &self.filter, None, f);
    }

    /// Opens a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// A group of related benchmarks sharing a name prefix and throughput.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the units-per-iteration reported for subsequent benches.
    pub fn throughput(&mut self, t: Throughput) {
        self.throughput = Some(t);
    }

    /// Sets the group's sample count.
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        assert!(n >= 2, "sample_size must be at least 2");
        self.criterion.sample_size = n;
        self
    }

    /// Runs one benchmark within the group.
    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl Into<String>, f: F) {
        let full = format!("{}/{}", self.name, id.into());
        run_bench(
            &full,
            self.criterion.sample_size,
            self.criterion.test_mode,
            &self.criterion.filter,
            self.throughput,
            f,
        );
    }

    /// Closes the group.
    pub fn finish(self) {}
}

fn run_bench<F: FnMut(&mut Bencher)>(
    name: &str,
    sample_size: usize,
    test_mode: bool,
    filter: &Option<String>,
    throughput: Option<Throughput>,
    mut f: F,
) {
    if let Some(pat) = filter {
        if !name.contains(pat.as_str()) {
            return;
        }
    }
    if test_mode {
        let mut b = Bencher {
            iters: 1,
            elapsed: Duration::ZERO,
            test_mode: true,
        };
        f(&mut b);
        println!("test {name} ... ok");
        return;
    }

    // Calibrate: find an iteration count where one sample takes ~4 ms.
    let mut iters = 1u64;
    loop {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            test_mode: false,
        };
        f(&mut b);
        if b.elapsed >= Duration::from_millis(4) || iters >= 1 << 24 {
            break;
        }
        let target = Duration::from_millis(5).as_nanos() as f64;
        let got = b.elapsed.as_nanos().max(1) as f64;
        let scale = (target / got).clamp(2.0, 128.0);
        iters = (iters as f64 * scale).ceil() as u64;
    }

    let mut per_iter: Vec<f64> = Vec::with_capacity(sample_size);
    for _ in 0..sample_size {
        let mut b = Bencher {
            iters,
            elapsed: Duration::ZERO,
            test_mode: false,
        };
        f(&mut b);
        per_iter.push(b.elapsed.as_nanos() as f64 / iters as f64);
    }
    per_iter.sort_by(|a, b| a.total_cmp(b));
    let min = per_iter.first().copied().unwrap_or(0.0);
    let max = per_iter.last().copied().unwrap_or(0.0);
    let mean = per_iter.iter().sum::<f64>() / per_iter.len() as f64;

    let mut line = format!(
        "{name:<50} time:   [{} {} {}]",
        format_time(min),
        format_time(mean),
        format_time(max)
    );
    if let Some(t) = throughput {
        let (units, label) = match t {
            Throughput::Elements(n) => (n, "elem/s"),
            Throughput::Bytes(n) => (n, "B/s"),
        };
        let rate = units as f64 / (mean * 1e-9);
        line.push_str(&format!("  thrpt: {rate:.3e} {label}"));
    }
    println!("{line}");
}

/// Declares a group of benchmark functions, mirroring upstream's two forms.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(name = $name; config = $crate::Criterion::default(); targets = $($target),+);
    };
}

/// Declares the benchmark binary's `main`, running every group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bencher_times_a_routine() {
        let mut b = Bencher {
            iters: 100,
            elapsed: Duration::ZERO,
            test_mode: false,
        };
        let mut acc = 0u64;
        b.iter(|| {
            acc = acc.wrapping_add(black_box(1));
        });
        assert!(b.elapsed > Duration::ZERO || acc > 0);
    }

    #[test]
    fn iter_batched_consumes_inputs() {
        let mut b = Bencher {
            iters: 10,
            elapsed: Duration::ZERO,
            test_mode: true,
        };
        b.iter_batched(|| vec![1, 2, 3], |v| v.len(), BatchSize::SmallInput);
        assert_eq!(b.elapsed, Duration::from_nanos(1));
    }

    #[test]
    fn time_formatting_scales() {
        assert!(format_time(12.0).ends_with("ns"));
        assert!(format_time(12_000.0).ends_with("µs"));
        assert!(format_time(12_000_000.0).ends_with("ms"));
        assert!(format_time(12_000_000_000.0).ends_with('s'));
    }
}
