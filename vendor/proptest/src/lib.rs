//! Offline stand-in for the `proptest` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the API subset its property tests use: the
//! [`proptest!`] macro, [`Strategy`] with `prop_map`/`boxed`, range and
//! tuple strategies, `prop::collection::vec`, [`any`], regex-literal
//! string strategies (a small pattern subset), [`prop_oneof!`], and the
//! `prop_assert*` macros.
//!
//! Unlike upstream, failing cases are not shrunk — the failing input is
//! printed as-is. Each test function derives its RNG seed from its own
//! name, so runs are deterministic.

#![forbid(unsafe_code)]

use rand::rngs::StdRng;
use rand::{Rng, RngCore, SeedableRng};
use std::fmt;
use std::ops::{Range, RangeInclusive};

/// Configuration for a `proptest!` block.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run per test.
    pub cases: u32,
}

impl ProptestConfig {
    /// A config running `cases` random cases.
    #[must_use]
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 64 }
    }
}

/// Error produced by a failing `prop_assert!`.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// The RNG driving value generation.
#[derive(Debug, Clone)]
pub struct TestRng(StdRng);

impl TestRng {
    /// Deterministic RNG derived from a test's name.
    #[must_use]
    pub fn from_name(name: &str) -> Self {
        let mut h: u64 = 0xcbf2_9ce4_8422_2325;
        for b in name.bytes() {
            h ^= u64::from(b);
            h = h.wrapping_mul(0x100_0000_01b3);
        }
        Self(StdRng::seed_from_u64(h))
    }
}

impl RngCore for TestRng {
    fn next_u32(&mut self) -> u32 {
        self.0.next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        self.0.next_u64()
    }
}

/// A generator of random values of one type.
pub trait Strategy {
    /// The generated type.
    type Value: fmt::Debug;

    /// Generates one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<U: fmt::Debug, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> U,
    {
        Map { inner: self, f }
    }

    /// Keeps only values passing `pred`, retrying (up to a bound) otherwise.
    fn prop_filter<F>(self, whence: &'static str, pred: F) -> Filter<Self, F>
    where
        Self: Sized,
        F: Fn(&Self::Value) -> bool,
    {
        Filter {
            inner: self,
            whence,
            pred,
        }
    }

    /// Erases the strategy's type.
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        BoxedStrategy(Box::new(self))
    }
}

/// Object-safe boxed strategy.
pub struct BoxedStrategy<T>(Box<dyn DynStrategy<T>>);

trait DynStrategy<T> {
    fn generate_dyn(&self, rng: &mut TestRng) -> T;
}

impl<S: Strategy> DynStrategy<S::Value> for S {
    fn generate_dyn(&self, rng: &mut TestRng) -> S::Value {
        self.generate(rng)
    }
}

impl<T: fmt::Debug> Strategy for BoxedStrategy<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        self.0.generate_dyn(rng)
    }
}

/// See [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, U: fmt::Debug, F: Fn(S::Value) -> U> Strategy for Map<S, F> {
    type Value = U;
    fn generate(&self, rng: &mut TestRng) -> U {
        (self.f)(self.inner.generate(rng))
    }
}

/// See [`Strategy::prop_filter`].
pub struct Filter<S, F> {
    inner: S,
    whence: &'static str,
    pred: F,
}

impl<S: Strategy, F: Fn(&S::Value) -> bool> Strategy for Filter<S, F> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        for _ in 0..1000 {
            let v = self.inner.generate(rng);
            if (self.pred)(&v) {
                return v;
            }
        }
        panic!("prop_filter({}) rejected 1000 candidates in a row", self.whence);
    }
}

/// A strategy generating a fixed value.
#[derive(Debug, Clone)]
pub struct Just<T>(pub T);

impl<T: Clone + fmt::Debug> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between boxed alternatives (built by [`prop_oneof!`]).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T: fmt::Debug> Union<T> {
    /// Builds a union over the given alternatives.
    ///
    /// # Panics
    ///
    /// Panics if `arms` is empty.
    #[must_use]
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Self { arms }
    }
}

impl<T: fmt::Debug> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let i = rng.gen_range(0..self.arms.len());
        self.arms[i].generate(rng)
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),* $(,)?) => {$(
        impl Strategy for Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}
impl_range_strategy!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize, f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                #[allow(non_snake_case)]
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}
impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);
impl_tuple_strategy!(A, B, C, D, E, F, G);
impl_tuple_strategy!(A, B, C, D, E, F, G, H);

/// Types with a canonical whole-domain strategy, used by [`any`].
pub trait Arbitrary: fmt::Debug + Sized {
    /// Generates an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> Self {
        rng.gen()
    }
}

macro_rules! impl_arbitrary_int {
    ($($t:ty),* $(,)?) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> Self {
                rng.gen_range(<$t>::MIN..=<$t>::MAX)
            }
        }
    )*};
}
impl_arbitrary_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for the whole domain of `T`.
#[derive(Debug, Clone, Copy)]
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for all of `T`'s values.
#[must_use]
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

/// Size specification for collection strategies: a fixed size or a range.
#[derive(Debug, Clone)]
pub struct SizeRange {
    lo: usize,
    hi_exclusive: usize,
}

impl From<usize> for SizeRange {
    fn from(n: usize) -> Self {
        Self {
            lo: n,
            hi_exclusive: n + 1,
        }
    }
}

impl From<Range<usize>> for SizeRange {
    fn from(r: Range<usize>) -> Self {
        assert!(r.start < r.end, "empty size range");
        Self {
            lo: r.start,
            hi_exclusive: r.end,
        }
    }
}

impl From<RangeInclusive<usize>> for SizeRange {
    fn from(r: RangeInclusive<usize>) -> Self {
        Self {
            lo: *r.start(),
            hi_exclusive: *r.end() + 1,
        }
    }
}

/// Strategy namespace mirroring upstream's `proptest::prop`.
pub mod collection {
    use super::{fmt, Rng, SizeRange, Strategy, TestRng};

    /// Strategy for `Vec<S::Value>` with a size drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy {
            element,
            size: size.into(),
        }
    }

    /// See [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S>
    where
        S::Value: fmt::Debug,
    {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Self::Value {
            let n = rng.gen_range(self.size.lo..self.size.hi_exclusive);
            (0..n).map(|_| self.element.generate(rng)).collect()
        }
    }
}

/// Upstream-compatible module alias: `prop::collection::vec(...)`.
pub mod prop {
    pub use crate::collection;
}

// ---------------------------------------------------------------------------
// Regex-literal string strategies (subset)
// ---------------------------------------------------------------------------

/// One repeatable element of a string pattern.
#[derive(Debug, Clone)]
enum Piece {
    /// Characters to choose from.
    Class(Vec<char>),
    /// Any printable character (the `\PC` class).
    Printable,
}

#[derive(Debug, Clone)]
struct Rep {
    piece: Piece,
    min: usize,
    max: usize,
}

/// A compiled string pattern: a sequence of repeated pieces.
#[derive(Debug, Clone)]
pub struct StringStrategy {
    reps: Vec<Rep>,
}

const PRINTABLE_EXTRA: &[char] = &['é', 'ß', '中', '✓', '¢', 'Ω'];

fn parse_class(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> Vec<char> {
    let mut set = Vec::new();
    let mut prev: Option<char> = None;
    while let Some(c) = chars.next() {
        match c {
            ']' => return set,
            '-' if prev.is_some() && chars.peek().is_some_and(|&n| n != ']') => {
                let lo = prev.take().expect("checked");
                let hi = chars.next().expect("checked");
                // `lo` was already pushed; add the rest of the range.
                let (lo32, hi32) = (lo as u32 + 1, hi as u32);
                for cp in lo32..=hi32 {
                    if let Some(ch) = char::from_u32(cp) {
                        set.push(ch);
                    }
                }
            }
            '\\' => {
                let esc = chars.next().expect("dangling escape in class");
                set.push(esc);
                prev = Some(esc);
            }
            other => {
                set.push(other);
                prev = Some(other);
            }
        }
    }
    panic!("unterminated character class in string pattern");
}

fn parse_quantifier(chars: &mut std::iter::Peekable<std::str::Chars<'_>>) -> (usize, usize) {
    match chars.peek() {
        Some('*') => {
            chars.next();
            (0, 32)
        }
        Some('+') => {
            chars.next();
            (1, 32)
        }
        Some('?') => {
            chars.next();
            (0, 1)
        }
        Some('{') => {
            chars.next();
            let mut spec = String::new();
            for c in chars.by_ref() {
                if c == '}' {
                    break;
                }
                spec.push(c);
            }
            let (lo, hi) = match spec.split_once(',') {
                Some((lo, hi)) => (
                    lo.trim().parse().expect("bad quantifier"),
                    hi.trim().parse().expect("bad quantifier"),
                ),
                None => {
                    let n = spec.trim().parse().expect("bad quantifier");
                    (n, n)
                }
            };
            (lo, hi)
        }
        _ => (1, 1),
    }
}

impl StringStrategy {
    /// Compiles the supported regex subset: literals, `[...]` classes with
    /// ranges, `\PC` (printable), and `* + ? {n} {m,n}` quantifiers.
    #[must_use]
    pub fn compile(pattern: &str) -> Self {
        let mut chars = pattern.chars().peekable();
        let mut reps = Vec::new();
        while let Some(c) = chars.next() {
            let piece = match c {
                '[' => Piece::Class(parse_class(&mut chars)),
                '\\' => match chars.next() {
                    Some('P') => {
                        // upstream perl-class syntax: \PC = not-control
                        let class = chars.next().expect("dangling \\P in pattern");
                        assert_eq!(class, 'C', "only \\PC is supported, got \\P{class}");
                        Piece::Printable
                    }
                    Some(esc) => Piece::Class(vec![esc]),
                    None => panic!("dangling escape in string pattern"),
                },
                '.' => Piece::Printable,
                literal => Piece::Class(vec![literal]),
            };
            let (min, max) = parse_quantifier(&mut chars);
            reps.push(Rep { piece, min, max });
        }
        Self { reps }
    }
}

impl Strategy for StringStrategy {
    type Value = String;

    fn generate(&self, rng: &mut TestRng) -> String {
        let mut out = String::new();
        for rep in &self.reps {
            let n = rng.gen_range(rep.min..=rep.max);
            for _ in 0..n {
                match &rep.piece {
                    Piece::Class(set) => {
                        out.push(set[rng.gen_range(0..set.len())]);
                    }
                    Piece::Printable => {
                        // mostly ASCII printable, occasionally wider unicode
                        if rng.gen_range(0..8usize) == 0 {
                            out.push(PRINTABLE_EXTRA[rng.gen_range(0..PRINTABLE_EXTRA.len())]);
                        } else {
                            out.push(char::from(rng.gen_range(0x20u8..0x7F)));
                        }
                    }
                }
            }
        }
        out
    }
}

impl Strategy for &str {
    type Value = String;
    fn generate(&self, rng: &mut TestRng) -> String {
        StringStrategy::compile(self).generate(rng)
    }
}

// ---------------------------------------------------------------------------
// Macros
// ---------------------------------------------------------------------------

/// Defines property tests: each `fn name(pat in strategy, ...) { body }`
/// becomes a `#[test]` running `cases` random cases.
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
    ($($rest:tt)*) => {
        $crate::__proptest_impl!{ (<$crate::ProptestConfig as ::std::default::Default>::default()) $($rest)* }
    };
}

/// Internal expansion of [`proptest!`]; not part of the public API.
#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_impl {
    (($cfg:expr)) => {};
    (($cfg:expr)
        $(#[$meta:meta])*
        fn $name:ident($($arg:pat in $strat:expr),* $(,)?) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let cfg: $crate::ProptestConfig = $cfg;
            let mut rng = $crate::TestRng::from_name(stringify!($name));
            for case in 0..cfg.cases {
                let result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(let $arg = $crate::Strategy::generate(&($strat), &mut rng);)*
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = result {
                    panic!("proptest {} failed at case {case}: {e}", stringify!($name));
                }
            }
        }
        $crate::__proptest_impl!{ ($cfg) $($rest)* }
    };
}

/// Asserts a condition inside a property test, failing the case (not
/// panicking directly) when false.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError(format!($($fmt)*)));
        }
    };
}

/// Asserts equality inside a property test.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, "assertion failed: {:?} != {:?}", a, b);
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a == b, $($fmt)*);
    }};
}

/// Asserts inequality inside a property test.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr) => {{
        let (a, b) = (&$a, &$b);
        $crate::prop_assert!(a != b, "assertion failed: both sides are {:?}", a);
    }};
}

/// Uniformly picks one of several strategies with the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($strat:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($strat)),+])
    };
}

/// Everything a property test file needs.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest, Any, BoxedStrategy, Just, ProptestConfig,
        Strategy, TestCaseError, TestRng,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn string_pattern_subset_generates_matching_text() {
        let mut rng = TestRng::from_name("string_pattern");
        for _ in 0..200 {
            let s = Strategy::generate(&"[a-z.]{1,20}", &mut rng);
            assert!(!s.is_empty() && s.len() <= 20);
            assert!(s.chars().all(|c| c == '.' || c.is_ascii_lowercase()), "{s:?}");
            let t = Strategy::generate(&"\\PC*", &mut rng);
            assert!(t.chars().all(|c| !c.is_control()), "{t:?}");
            let u = Strategy::generate(&"[0-9a-z]{1,6}", &mut rng);
            assert!((1..=6).contains(&u.chars().count()));
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(32))]

        #[test]
        fn ranges_and_tuples((a, b) in (0u8..4, 1i64..10), v in prop::collection::vec(any::<bool>(), 0..8)) {
            prop_assert!(a < 4);
            prop_assert!((1..10).contains(&b));
            prop_assert!(v.len() < 8);
        }

        #[test]
        fn oneof_and_map(x in prop_oneof![(0u8..2).prop_map(u32::from), (10u8..12).prop_map(u32::from)]) {
            prop_assert!(x < 2 || (10..12).contains(&x), "x={}", x);
        }

        #[test]
        fn fixed_size_vec(v in prop::collection::vec(0.0f64..1.0, 5)) {
            prop_assert_eq!(v.len(), 5);
        }
    }
}
