//! Offline placeholder for `serde`.
//!
//! The workspace declares optional `serde` features but never enables them
//! in this environment (the build has no network access to crates.io).
//! This crate exists only so dependency resolution succeeds offline; it
//! intentionally provides no derive macros. Enabling a crate's `serde`
//! feature therefore fails to compile — swap this path dependency back to
//! the real `serde` when network access is available.

#![forbid(unsafe_code)]
