//! Offline stand-in for the `rand` crate.
//!
//! The build environment has no network access to crates.io, so the
//! workspace vendors the small API subset it actually uses: [`RngCore`],
//! [`Rng`] (`gen`, `gen_range`, `gen_bool`), [`SeedableRng`],
//! [`rngs::StdRng`], and [`seq::SliceRandom`]. The generator is
//! xoshiro256++ seeded through SplitMix64 — statistically strong and
//! deterministic per seed, which is all the reproduction requires. The
//! random streams are *not* identical to upstream `rand`'s; nothing in the
//! workspace depends on upstream streams, only on per-seed determinism.

#![forbid(unsafe_code)]

use std::ops::{Range, RangeInclusive};

/// The core of a random number generator: a source of uniform bits.
pub trait RngCore {
    /// Returns the next 32 uniformly random bits.
    fn next_u32(&mut self) -> u32;
    /// Returns the next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
    /// Fills `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        let mut chunks = dest.chunks_exact_mut(8);
        for chunk in &mut chunks {
            chunk.copy_from_slice(&self.next_u64().to_le_bytes());
        }
        let rem = chunks.into_remainder();
        if !rem.is_empty() {
            let bytes = self.next_u64().to_le_bytes();
            rem.copy_from_slice(&bytes[..rem.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> RngCore for Box<R> {
    fn next_u32(&mut self) -> u32 {
        (**self).next_u32()
    }
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
    fn fill_bytes(&mut self, dest: &mut [u8]) {
        (**self).fill_bytes(dest);
    }
}

/// Types that can be sampled uniformly from their whole domain (the
/// equivalent of upstream's `Standard` distribution).
pub trait Standard: Sized {
    /// Draws a uniform value from `rng`.
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty => $via:ident),* $(,)?) => {$(
        impl Standard for $t {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap)]
            fn sample_standard<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.$via() as $t
            }
        }
    )*};
}
impl_standard_int!(u8 => next_u32, u16 => next_u32, u32 => next_u32, u64 => next_u64,
    usize => next_u64, i8 => next_u32, i16 => next_u32, i32 => next_u32,
    i64 => next_u64, isize => next_u64);

/// A range that can be sampled uniformly (the equivalent of upstream's
/// `SampleRange`).
pub trait SampleRange<T> {
    /// Draws a uniform value from the range.
    fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Uniform `u64` in `[0, span)` using a widening multiply (negligible
/// bias-free for the span sizes used here).
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((u128::from(rng.next_u64()) * u128::from(span)) >> 64) as u64
}

macro_rules! impl_sample_range_int {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + i128::from(uniform_u64(rng, span))) as $t
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            #[allow(clippy::cast_possible_truncation, clippy::cast_possible_wrap, clippy::cast_sign_loss)]
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end as i128 - start as i128) as u128 + 1;
                if span > u128::from(u64::MAX) {
                    // Whole-domain range: a raw draw is already uniform.
                    return <$t as Standard>::sample_standard(rng);
                }
                (start as i128 + i128::from(uniform_u64(rng, span as u64))) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

macro_rules! impl_sample_range_float {
    ($($t:ty),* $(,)?) => {$(
        impl SampleRange<$t> for Range<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                let v = self.start + u * (self.end - self.start);
                // guard against rounding up to the excluded endpoint
                if v >= self.end { self.start } else { v }
            }
        }
        impl SampleRange<$t> for RangeInclusive<$t> {
            fn sample_single<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let u = <$t as Standard>::sample_standard(rng);
                (start + u * (end - start)).clamp(start, end)
            }
        }
    )*};
}
impl_sample_range_float!(f32, f64);

/// User-facing random-value methods, available on every [`RngCore`].
pub trait Rng: RngCore {
    /// Draws a uniform value of type `T` (for floats: in `[0, 1)`).
    fn gen<T: Standard>(&mut self) -> T {
        T::sample_standard(self)
    }

    /// Draws a uniform value from `range`.
    fn gen_range<T, Rg>(&mut self, range: Rg) -> T
    where
        Rg: SampleRange<T>,
    {
        range.sample_single(self)
    }

    /// Returns `true` with probability `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is not in `[0, 1]`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample_standard(self) < p
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// A generator that can be constructed from a seed.
pub trait SeedableRng: Sized {
    /// The seed type (a byte array).
    type Seed: Default + AsMut<[u8]>;

    /// Constructs the generator from a full seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Constructs the generator from a `u64`, expanding it with SplitMix64
    /// so nearby seeds yield unrelated streams.
    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = SplitMix64 { state };
        for chunk in seed.as_mut().chunks_mut(8) {
            let bytes = sm.next().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }
}

/// Concrete generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// The workspace's standard deterministic generator: xoshiro256++.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl RngCore for StdRng {
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        fn next_u64(&mut self) -> u64 {
            let result = self.s[0].wrapping_add(self.s[3]).rotate_left(23).wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> Self {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..(i + 1) * 8]);
                *word = u64::from_le_bytes(b);
            }
            // xoshiro must not start from the all-zero state
            if s == [0, 0, 0, 0] {
                s = [0x9E37_79B9_7F4A_7C15, 1, 2, 3];
            }
            Self { s }
        }
    }

    /// Alias kept for API compatibility with upstream `rand`.
    pub type SmallRng = StdRng;
}

/// Sequence-related helpers.
pub mod seq {
    use super::{uniform_u64, RngCore};

    /// Shuffling and random selection on slices.
    pub trait SliceRandom {
        /// The element type.
        type Item;

        /// Shuffles the slice in place (Fisher–Yates).
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);

        /// Returns a uniformly random element, or `None` if empty.
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        #[allow(clippy::cast_possible_truncation)]
        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                let j = uniform_u64(rng, i as u64 + 1) as usize;
                self.swap(i, j);
            }
        }

        #[allow(clippy::cast_possible_truncation)]
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64(rng, self.len() as u64) as usize])
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let v = r.gen_range(10i64..20);
            assert!((10..20).contains(&v));
            let w = r.gen_range(1u32..=30);
            assert!((1..=30).contains(&w));
            let f = r.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
            let g = r.gen_range(-1.0f64..=1.0);
            assert!((-1.0..=1.0).contains(&g));
        }
    }

    #[test]
    fn gen_f64_is_unit_interval_and_covers_it() {
        let mut r = StdRng::seed_from_u64(7);
        let vals: Vec<f64> = (0..10_000).map(|_| r.gen::<f64>()).collect();
        assert!(vals.iter().all(|v| (0.0..1.0).contains(v)));
        let mean = vals.iter().sum::<f64>() / vals.len() as f64;
        assert!((mean - 0.5).abs() < 0.02, "mean {mean}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut r = StdRng::seed_from_u64(5);
        let mut v: Vec<u32> = (0..100).collect();
        v.shuffle(&mut r);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..100).collect::<Vec<u32>>());
        assert!(v.choose(&mut r).is_some());
    }

    #[test]
    fn works_through_dyn_and_generic_bounds() {
        fn generic<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen()
        }
        let mut r = StdRng::seed_from_u64(3);
        let dynr: &mut dyn RngCore = &mut r;
        let _ = generic(dynr);
        let _ = dynr.gen_range(0..10usize);
    }
}
