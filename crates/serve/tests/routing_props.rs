//! Property tests for shard routing and snapshot/restore stability.
//!
//! Three invariants, each over randomized inputs:
//! 1. every user id maps to exactly one shard, deterministically;
//! 2. placement survives a snapshot/restore cycle — the restored
//!    service finds every user on the shard the router names;
//! 3. snapshot → kill → resume → replay is indistinguishable from an
//!    uninterrupted run: same stays, same digest, same tallies.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_core::poi::ExtractorParams;
use backwatch_geo::{LatLon, Seconds};
use backwatch_serve::{loadgen, stays_digest, IngestService, ShardRouter};
use backwatch_trace::synth::SynthConfig;
use backwatch_trace::{Timestamp, TracePoint};
use proptest::prelude::*;

fn params() -> ExtractorParams {
    ExtractorParams::paper_set1()
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routing is a total, deterministic function into `0..n_shards`.
    #[test]
    fn every_user_maps_to_exactly_one_shard(user_id in any::<u64>(), n_shards in 1usize..=64) {
        let router = ShardRouter::new(n_shards);
        let shard = router.shard_of(user_id);
        prop_assert!(shard < n_shards, "shard {shard} out of range for {n_shards}");
        // Exactly one: a second evaluation (and a second router) agree.
        prop_assert_eq!(shard, router.shard_of(user_id));
        prop_assert_eq!(shard, ShardRouter::new(n_shards).shard_of(user_id));
    }

    /// A restored service holds every user on the shard the router names
    /// — placement never migrates across a snapshot/restore cycle.
    #[test]
    fn routing_is_stable_across_checkpoint_restore(
        raw_ids in prop::collection::vec(any::<u64>(), 1..24),
        n_shards in 1usize..=8,
    ) {
        let user_ids: std::collections::BTreeSet<u64> = raw_ids.into_iter().collect();
        let mut svc = IngestService::new(n_shards, params());
        let pos = LatLon::new(39.9, 116.4).unwrap();
        for (i, &uid) in user_ids.iter().enumerate() {
            svc.ingest(uid, TracePoint::new(Timestamp::from_secs(i as i64), pos));
        }
        let router = svc.router();
        for &uid in &user_ids {
            prop_assert_eq!(svc.shard_holding(uid), Some(router.shard_of(uid)));
        }
        let bytes = svc.snapshot_bytes();
        let restored = IngestService::restore(params(), &bytes).expect("snapshot restores");
        prop_assert_eq!(restored.stats().users(), user_ids.len());
        for &uid in &user_ids {
            prop_assert_eq!(restored.shard_holding(uid), Some(router.shard_of(uid)));
        }
    }
}

proptest! {
    // Each case generates a small synthetic population, so keep the count
    // modest — the fixed-grid crash_resume suite covers kill-point depth.
    #![proptest_config(ProptestConfig::with_cases(8))]

    /// Full shard snapshot → kill → resume → replay equals the
    /// uninterrupted run: stays, digest, and tallies.
    #[test]
    fn kill_resume_replay_matches_uninterrupted(
        seed in any::<u64>(),
        n_users in 1u32..=3,
        n_shards in 1usize..=4,
        kill_permille in 0u32..=1000,
    ) {
        let cfg = SynthConfig { n_users, days: 1, seed, ..SynthConfig::small() };
        let fixes: Vec<_> = loadgen::interleaved_fixes(&cfg, Seconds::new(60)).collect();
        prop_assert!(!fixes.is_empty(), "a 1-day population always records fixes");
        let kill_at = (fixes.len() * kill_permille as usize) / 1000;

        let mut oracle_svc = IngestService::new(n_shards, params());
        let mut oracle = Vec::new();
        for &(uid, fix) in &fixes {
            oracle.extend(oracle_svc.ingest(uid, fix).map(|s| (uid, s)));
        }
        oracle.extend(oracle_svc.finish());
        let oracle_stats = oracle_svc.stats();

        let mut svc = IngestService::new(n_shards, params());
        let mut stays = Vec::new();
        for &(uid, fix) in &fixes[..kill_at] {
            stays.extend(svc.ingest(uid, fix).map(|s| (uid, s)));
        }
        let bytes = svc.snapshot_bytes();
        let before = svc.stats();
        drop(svc);
        let mut svc = IngestService::restore(params(), &bytes).expect("snapshot restores");
        for &(uid, fix) in &fixes[kill_at..] {
            stays.extend(svc.ingest(uid, fix).map(|s| (uid, s)));
        }
        stays.extend(svc.finish());
        let after = svc.stats();

        prop_assert_eq!(&stays, &oracle, "stays diverged (kill at {}/{})", kill_at, fixes.len());
        prop_assert_eq!(stays_digest(&stays), stays_digest(&oracle));
        prop_assert_eq!(before.fixes + after.fixes, oracle_stats.fixes);
        prop_assert_eq!(before.stays + after.stays, oracle_stats.stays);
    }
}
