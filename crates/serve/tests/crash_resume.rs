//! Crash-kill-resume: a service killed at an arbitrary fix boundary and
//! restored from its snapshot bytes must produce *bit-identical* stays —
//! same values, same order, same tallies — as one that never died.
//!
//! The oracle is an uninterrupted [`IngestService`] over the
//! deterministic interleaved load; the subject runs the same fixes with
//! a full snapshot → drop → restore cycle injected at the kill point
//! (and, in the harshest case, at *every* point of a coarse grid). A
//! golden FNV digest pins the whole output against silent drift of the
//! load generator, the router, the engines, or the snapshot framing.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_core::poi::{ExtractorParams, Stay};
use backwatch_geo::Seconds;
use backwatch_serve::{loadgen, stays_digest, IngestService};
use backwatch_trace::synth::SynthConfig;
use backwatch_trace::TracePoint;

const N_SHARDS: usize = 3;

fn cfg() -> SynthConfig {
    SynthConfig {
        n_users: 6,
        days: 2,
        ..SynthConfig::small()
    }
}

fn load() -> Vec<(u64, TracePoint)> {
    loadgen::interleaved_fixes(&cfg(), Seconds::new(60)).collect()
}

fn params() -> ExtractorParams {
    ExtractorParams::paper_set1()
}

/// Ingests every fix without interruption; returns stays and the final
/// (fixes, stays) tallies.
fn run_uninterrupted(fixes: &[(u64, TracePoint)]) -> (Vec<(u64, Stay)>, u64, u64) {
    let mut svc = IngestService::new(N_SHARDS, params());
    let mut stays = Vec::new();
    for &(uid, fix) in fixes {
        stays.extend(svc.ingest(uid, fix).map(|s| (uid, s)));
    }
    stays.extend(svc.finish());
    let stats = svc.stats();
    (stays, stats.fixes, stats.stays)
}

/// Ingests with a kill at `kill_at`: snapshot, drop the service, restore
/// from the bytes, replay the tail. Returns stays plus tallies summed
/// across both service incarnations.
fn run_killed(fixes: &[(u64, TracePoint)], kill_at: usize) -> (Vec<(u64, Stay)>, u64, u64) {
    let mut svc = IngestService::new(N_SHARDS, params());
    let mut stays = Vec::new();
    for &(uid, fix) in &fixes[..kill_at] {
        stays.extend(svc.ingest(uid, fix).map(|s| (uid, s)));
    }
    let bytes = svc.snapshot_bytes();
    let before = svc.stats();
    drop(svc);
    let mut svc = IngestService::restore(params(), &bytes).expect("snapshot restores");
    for &(uid, fix) in &fixes[kill_at..] {
        stays.extend(svc.ingest(uid, fix).map(|s| (uid, s)));
    }
    stays.extend(svc.finish());
    let after = svc.stats();
    (stays, before.fixes + after.fixes, before.stays + after.stays)
}

#[test]
fn killed_run_is_bit_identical_to_uninterrupted() {
    let fixes = load();
    let n = fixes.len();
    assert!(n > 100, "load generator produced only {n} fixes");
    let (oracle, oracle_fixes, oracle_stays) = run_uninterrupted(&fixes);
    assert!(
        !oracle.is_empty(),
        "the load must produce stays for the test to mean anything"
    );
    let oracle_digest = stays_digest(&oracle);

    // An arbitrary seed-derived kill point plus the edges and thirds.
    let arbitrary = (cfg().seed as usize) % n;
    for kill_at in [0, 1, n / 3, n / 2, 2 * n / 3, arbitrary, n - 1, n] {
        let (stays, fixes_seen, stays_seen) = run_killed(&fixes, kill_at);
        assert_eq!(stays, oracle, "stays diverged with kill at fix {kill_at}/{n}");
        assert_eq!(stays_digest(&stays), oracle_digest, "digest diverged at {kill_at}");
        assert_eq!(fixes_seen, oracle_fixes, "fix tallies diverged at {kill_at}");
        assert_eq!(stays_seen, oracle_stays, "stay tallies diverged at {kill_at}");
    }
}

#[test]
fn repeated_kills_change_nothing() {
    // The harshest schedule: kill and restore every ~500 fixes.
    let fixes = load();
    let (oracle, ..) = run_uninterrupted(&fixes);
    let mut svc = IngestService::new(N_SHARDS, params());
    let mut stays = Vec::new();
    for (i, &(uid, fix)) in fixes.iter().enumerate() {
        if i > 0 && i % 500 == 0 {
            let bytes = svc.snapshot_bytes();
            drop(svc);
            svc = IngestService::restore(params(), &bytes).expect("snapshot restores");
        }
        stays.extend(svc.ingest(uid, fix).map(|s| (uid, s)));
    }
    stays.extend(svc.finish());
    assert_eq!(stays, oracle, "a restore every 500 fixes must not change the output");
}

/// Golden pin: the full crash-resume pipeline (synthetic load → router →
/// sharded engines → snapshot/restore at the seed-derived kill point)
/// hashes to this constant. A change means *something* in the chain no
/// longer reproduces its output bit-for-bit — find out what before
/// updating the constant.
#[test]
fn golden_digest_is_pinned() {
    let fixes = load();
    let kill_at = (cfg().seed as usize) % fixes.len();
    let (stays, ..) = run_killed(&fixes, kill_at);
    assert_eq!(
        stays_digest(&stays),
        GOLDEN_STAYS_DIGEST,
        "crash-resume output drifted from the pinned golden digest"
    );
}

/// See [`golden_digest_is_pinned`].
const GOLDEN_STAYS_DIGEST: u64 = 0xDB45_2C25_8B9F_ACE7;
