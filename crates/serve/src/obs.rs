//! Telemetry statics for the ingestion service.
//!
//! Counting follows the workspace's pass-level discipline: the service
//! keeps plain unflushed tallies on its hot path and folds them into
//! these shared metrics at snapshot/finish/drop boundaries — never one
//! atomic per fix.

use backwatch_obs::{Counter, Gauge, Histogram};
use std::sync::Once;

/// Fixes ingested across all shards (flushed at service boundaries).
pub static SHARD_FIXES: Counter = Counter::new();
/// Stays emitted by shard engines, mid-stream and at finish.
pub static SHARD_STAYS: Counter = Counter::new();
/// Whole-service snapshots taken.
pub static SHARD_SNAPSHOTS: Counter = Counter::new();
/// Services successfully restored from snapshot bytes.
pub static SHARD_RESTORES: Counter = Counter::new();
/// Snapshot byte streams rejected during restore (shard framing or any
/// per-user checkpoint decode error). Pairs with the finer-grained
/// `core.stream.decode_failures_total`, which the per-user decode bumps.
pub static SHARD_RESTORE_FAILURES: Counter = Counter::new();
/// Users with live engines across all shards (set at flush boundaries).
pub static SHARD_USERS: Gauge = Gauge::new();

/// Bucket bounds, in *stream-time* seconds, for the interval between
/// consecutive service snapshots: 1 s up to ~3 days.
static CHECKPOINT_INTERVAL_BOUNDS_S: [u64; 9] = [1, 8, 64, 512, 4_096, 16_384, 65_536, 131_072, 262_144];

/// Stream-time seconds elapsed between consecutive service snapshots —
/// the checkpoint cadence an operator tunes against crash-replay cost.
/// Recorded in stream time (latest ingested fix timestamp), not wall
/// time, so the distribution is deterministic for a deterministic load.
pub static SHARD_CHECKPOINT_INTERVAL: Histogram = Histogram::new(&CHECKPOINT_INTERVAL_BOUNDS_S);

static REGISTER: Once = Once::new();

/// Registers this crate's metrics with the global registry (idempotent).
pub fn register() {
    REGISTER.call_once(|| {
        backwatch_obs::register_counter("serve.shard.fixes_total", "fixes ingested across all shards", &SHARD_FIXES);
        backwatch_obs::register_counter("serve.shard.stays_total", "stays emitted by shard engines", &SHARD_STAYS);
        backwatch_obs::register_counter(
            "serve.shard.snapshots_total",
            "whole-service snapshots taken",
            &SHARD_SNAPSHOTS,
        );
        backwatch_obs::register_counter(
            "serve.shard.restores_total",
            "services restored from snapshot bytes",
            &SHARD_RESTORES,
        );
        backwatch_obs::register_counter(
            "serve.shard.restore_failures_total",
            "snapshot byte streams rejected during restore",
            &SHARD_RESTORE_FAILURES,
        );
        backwatch_obs::register_gauge(
            "serve.shard.users_current",
            "users with live engines across all shards",
            &SHARD_USERS,
        );
        backwatch_obs::register_histogram(
            "serve.shard.checkpoint_interval_seconds",
            "stream-time seconds between consecutive service snapshots",
            &SHARD_CHECKPOINT_INTERVAL,
        );
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn register_is_idempotent_and_names_are_live() {
        super::register();
        super::register();
        let snap = backwatch_obs::snapshot();
        if snap.samples.is_empty() {
            return; // obs built with the `disabled` feature
        }
        for name in [
            "serve.shard.fixes_total",
            "serve.shard.stays_total",
            "serve.shard.snapshots_total",
            "serve.shard.restores_total",
            "serve.shard.restore_failures_total",
            "serve.shard.users_current",
            "serve.shard.checkpoint_interval_seconds",
        ] {
            assert!(snap.samples.iter().any(|s| s.name == name), "{name} not registered");
        }
    }
}
