//! User-to-shard routing.
//!
//! Routing must be a pure function of `(user_id, n_shards)`: the same
//! user must land on the same shard before and after a snapshot/restore
//! cycle, across processes, and across runs — otherwise a restored
//! service would look up state in the wrong shard and quietly restart
//! every stream from scratch. FNV-1a over the little-endian user-id bytes
//! gives a stable, dependency-free hash whose low bits mix well enough
//! for the shard counts this service runs at (a handful to a few dozen);
//! the property tests pin determinism, range, and restore-stability.

/// FNV-1a offset basis (64-bit).
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
/// FNV-1a prime (64-bit).
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

/// Stateless map from user ids to shard indices.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ShardRouter {
    n_shards: usize,
}

impl ShardRouter {
    /// A router over `n_shards` shards.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero — a service with no shards cannot
    /// route anything, and constructing one is a logic error.
    #[must_use]
    pub fn new(n_shards: usize) -> Self {
        assert!(n_shards > 0, "a service needs at least one shard");
        Self { n_shards }
    }

    /// Number of shards this router spreads users over.
    #[must_use]
    pub fn n_shards(&self) -> usize {
        self.n_shards
    }

    /// The shard owning `user_id` — always in `0..n_shards`, and a pure
    /// function of the inputs (no per-process seed).
    #[must_use]
    pub fn shard_of(&self, user_id: u64) -> usize {
        let mut h = FNV_OFFSET;
        for byte in user_id.to_le_bytes() {
            h = (h ^ u64::from(byte)).wrapping_mul(FNV_PRIME);
        }
        // n_shards is a small usize, so the modulus fits back into usize.
        (h % self.n_shards as u64) as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_shard_takes_everyone() {
        let r = ShardRouter::new(1);
        for uid in [0u64, 1, 7, u64::MAX] {
            assert_eq!(r.shard_of(uid), 0);
        }
    }

    #[test]
    fn routing_is_deterministic_across_router_instances() {
        let a = ShardRouter::new(8);
        let b = ShardRouter::new(8);
        for uid in 0..1000u64 {
            assert_eq!(a.shard_of(uid), b.shard_of(uid));
        }
    }

    #[test]
    fn small_populations_spread_over_shards() {
        // Not a statistical test — just a guard against a degenerate hash
        // that parks every user on one shard.
        let r = ShardRouter::new(4);
        let mut hit = [false; 4];
        for uid in 0..64u64 {
            hit[r.shard_of(uid)] = true;
        }
        assert!(hit.iter().all(|&h| h), "64 users left a shard of 4 empty: {hit:?}");
    }
}
