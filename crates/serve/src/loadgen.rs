//! Deterministic multi-tenant load generation.
//!
//! The service's tests and benches need a reproducible "many phones
//! reporting at once" workload: every user's trace comes from the
//! synthetic population generator (seeded per `(seed, user_idx)`, so any
//! subset of users is stable), is downsampled to the paper's access
//! interval, and the per-user streams are merged into one global
//! timestamp-ordered fix sequence by the trace crate's [`Interleaver`] —
//! exactly the arrival order a single ingestion front-end would see.
//! Same config in, same fix sequence out, bit for bit.

use backwatch_geo::Seconds;
use backwatch_trace::interleave::Interleaver;
use backwatch_trace::sampling;
use backwatch_trace::synth::{generate_user, SynthConfig};
use backwatch_trace::Trace;

/// Generates every user in `cfg`'s population, downsampled to one fix
/// per `interval`, as `(user_id, trace)` streams ready to interleave.
#[must_use]
pub fn user_streams(cfg: &SynthConfig, interval: Seconds) -> Vec<(u64, Trace)> {
    (0..cfg.n_users)
        .map(|idx| {
            let user = generate_user(cfg, idx);
            (u64::from(user.user_id), sampling::downsample(&user.trace, interval))
        })
        .collect()
}

/// The full deterministic load: all users' downsampled fixes merged into
/// global `(time, user_id)` order. Drain it into
/// [`crate::IngestService::ingest`] to replay the workload.
#[must_use]
pub fn interleaved_fixes(cfg: &SynthConfig, interval: Seconds) -> Interleaver {
    Interleaver::new(user_streams(cfg, interval))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cfg(n_users: u32) -> SynthConfig {
        SynthConfig {
            n_users,
            days: 1,
            ..SynthConfig::small()
        }
    }

    #[test]
    fn load_is_deterministic() {
        let a: Vec<_> = interleaved_fixes(&cfg(3), Seconds::new(60)).collect();
        let b: Vec<_> = interleaved_fixes(&cfg(3), Seconds::new(60)).collect();
        assert!(!a.is_empty());
        assert_eq!(a, b, "same config must produce the same fix sequence");
    }

    #[test]
    fn fixes_arrive_in_global_time_order() {
        let fixes: Vec<_> = interleaved_fixes(&cfg(4), Seconds::new(60)).collect();
        for w in fixes.windows(2) {
            assert!(w[0].1.time <= w[1].1.time, "load generator must emit time-ordered fixes");
        }
        let users: std::collections::BTreeSet<u64> = fixes.iter().map(|(uid, _)| *uid).collect();
        assert_eq!(users.len(), 4, "every generated user contributes fixes");
    }

    #[test]
    fn population_prefix_is_stable() {
        // Growing the population must not change the existing users'
        // streams — per-user seeding is by (seed, index).
        let small = user_streams(&cfg(2), Seconds::new(60));
        let large = user_streams(&cfg(3), Seconds::new(60));
        assert_eq!(small[..], large[..2], "user streams must be stable under population growth");
    }
}
