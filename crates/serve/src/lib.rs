//! Sharded multi-tenant ingestion service over streaming PoI extraction.
//!
//! The paper's adversary observes many users' location fixes online; at
//! deployment scale that is an ingestion service, not a per-trace loop.
//! This crate is that service, built entirely out of the engine the rest
//! of the workspace already verifies:
//!
//! - [`ShardRouter`] maps user ids to shards with a stable,
//!   dependency-free FNV-1a hash — the same user lands on the same shard
//!   across processes and across snapshot/restore cycles;
//! - [`Shard`] owns an ordered map of `user_id →`
//!   [`StreamingExtractor`](backwatch_core::poi::StreamingExtractor) and
//!   serializes all of them through the existing
//!   [`Checkpoint`](backwatch_core::poi::Checkpoint) wire format, so a
//!   shard snapshot is just framing around already-pinned bytes;
//! - [`IngestService`] composes router + shards, emits each completed
//!   [`Stay`](backwatch_core::poi::Stay) the moment its exit is
//!   confirmed, and snapshots/restores the whole pool —
//!   `tests/crash_resume.rs` kills a service at arbitrary fix
//!   boundaries and proves the resumed run's stays are *bit-identical*
//!   to an uninterrupted one (golden digest included);
//! - [`loadgen`] replays a deterministic synthetic population as one
//!   globally time-ordered fix stream, which is what the `ext_serve`
//!   experiment and the `serve` bench measure throughput against.
//!
//! Telemetry lands under `serve.shard.*`, counted at flush boundaries
//! (snapshot/finish/drop) — never one atomic per fix.

pub mod loadgen;
pub mod obs;
pub mod router;
pub mod service;
pub mod shard;

pub use router::ShardRouter;
pub use service::{stays_digest, IngestService, ServiceStats};
pub use shard::{RestoreError, Shard};
