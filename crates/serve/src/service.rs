//! The multi-tenant ingestion service: router + shards + snapshot
//! framing + serve-side telemetry.
//!
//! [`IngestService`] is the lat/lon deployment of the sharded engine
//! pool: fixes arrive tagged with a user id, the [`ShardRouter`] picks
//! the owning [`Shard`], and the shard's per-user [`StreamingExtractor`]
//! advances one step — emitting a completed [`Stay`] the moment its exit
//! is confirmed, exactly as the paper's online adversary would observe
//! it. The whole service serializes to one byte stream built from the
//! existing engine [`Checkpoint`] wire format, so a crashed process can
//! be restored and replayed bit-identically (pinned by
//! `tests/crash_resume.rs`).
//!
//! [`StreamingExtractor`]: backwatch_core::poi::StreamingExtractor
//! [`Checkpoint`]: backwatch_core::poi::Checkpoint

use crate::obs as serve_obs;
use crate::router::ShardRouter;
use crate::shard::{RestoreError, Shard};
use backwatch_core::poi::{ExtractorParams, Stay};
use backwatch_geo::distance::Metric;
use backwatch_trace::TracePoint;

/// Magic-plus-version word opening every serialized service snapshot
/// (`b"BWSRV"` folded into the high bytes, format version 1 in the low).
const SERVICE_MAGIC: u64 = 0x4257_5352_5600_0001;

/// Aggregate service state for periodic reporting: one row per shard.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceStats {
    /// Users with a live engine, per shard (index = shard index).
    pub users_per_shard: Vec<usize>,
    /// Fixes ingested since construction/restore.
    pub fixes: u64,
    /// Stays emitted since construction/restore (mid-stream and finish).
    pub stays: u64,
}

impl ServiceStats {
    /// Users with a live engine across all shards.
    #[must_use]
    pub fn users(&self) -> usize {
        self.users_per_shard.iter().sum()
    }
}

/// Sharded multi-tenant ingestion over raw lat/lon fixes.
#[derive(Debug)]
pub struct IngestService {
    router: ShardRouter,
    shards: Vec<Shard>,
    metric: Metric,
    params: ExtractorParams,
    fixes: u64,
    stays: u64,
    /// Stream time (seconds) of the most recent ingested fix.
    latest_fix_secs: Option<i64>,
    /// Stream time of the previous snapshot, for the cadence histogram.
    last_snapshot_secs: Option<i64>,
}

impl IngestService {
    /// A service of `n_shards` empty shards, all engines using `params`.
    ///
    /// # Panics
    ///
    /// Panics if `n_shards` is zero (see [`ShardRouter::new`]).
    #[must_use]
    pub fn new(n_shards: usize, params: ExtractorParams) -> Self {
        serve_obs::register();
        Self {
            router: ShardRouter::new(n_shards),
            shards: (0..n_shards).map(|_| Shard::new(params)).collect(),
            metric: params.metric,
            params,
            fixes: 0,
            stays: 0,
            latest_fix_secs: None,
            last_snapshot_secs: None,
        }
    }

    /// The router (exposed so callers can pre-compute shard placement).
    #[must_use]
    pub fn router(&self) -> ShardRouter {
        self.router
    }

    /// The extraction parameters engines run with.
    #[must_use]
    pub fn params(&self) -> &ExtractorParams {
        &self.params
    }

    /// Routes one fix to its user's engine and returns the stay it
    /// completed, if any. Creating a first-contact user is implicit.
    pub fn ingest(&mut self, user_id: u64, fix: TracePoint) -> Option<Stay> {
        self.latest_fix_secs = Some(fix.time.as_secs());
        let idx = self.router.shard_of(user_id);
        self.fixes += 1;
        let stay = self.shards[idx].ingest(user_id, fix, &self.metric);
        self.stays += u64::from(stay.is_some());
        stay
    }

    /// Ends every stream, emitting final in-progress stays in (shard
    /// index, user id) order — deterministic for a deterministic load.
    /// Flushes serve-side telemetry.
    pub fn finish(&mut self) -> Vec<(u64, Stay)> {
        let mut out = Vec::new();
        for shard in &mut self.shards {
            out.extend(shard.finish());
        }
        self.stays += out.len() as u64;
        self.flush_telemetry();
        out
    }

    /// Current per-shard population and cumulative tallies.
    #[must_use]
    pub fn stats(&self) -> ServiceStats {
        ServiceStats {
            users_per_shard: self.shards.iter().map(Shard::n_users).collect(),
            fixes: self.fixes,
            stays: self.stays,
        }
    }

    /// Serializes the whole service: the service magic word, the shard
    /// count, then each shard's [`Shard::snapshot`] bytes length-prefixed,
    /// in shard-index order. Deterministic for a deterministic load.
    ///
    /// Also the service's telemetry heartbeat: serve-side tallies are
    /// flushed, `serve.shard.snapshots_total` advances, and the
    /// stream-time gap since the previous snapshot lands on
    /// `serve.shard.checkpoint_interval_seconds`.
    pub fn snapshot_bytes(&mut self) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SERVICE_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&(self.shards.len() as u64).to_le_bytes());
        for shard in &self.shards {
            let sb = shard.snapshot();
            bytes.extend_from_slice(&(sb.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&sb);
        }
        self.flush_telemetry();
        if backwatch_obs::enabled() {
            serve_obs::SHARD_SNAPSHOTS.inc();
            if let (Some(prev), Some(now)) = (self.last_snapshot_secs, self.latest_fix_secs) {
                serve_obs::SHARD_CHECKPOINT_INTERVAL.record(now.saturating_sub(prev).max(0) as u64);
            }
        }
        self.last_snapshot_secs = self.latest_fix_secs;
        bytes
    }

    /// Rebuilds a service from [`snapshot_bytes`](Self::snapshot_bytes)
    /// so that replaying the post-snapshot fixes continues every user's
    /// stream bit-identically. `params` seeds engines for users who first
    /// appear after the restore and must match the snapshotting service's.
    ///
    /// # Errors
    ///
    /// A [`RestoreError`] naming the framing problem or the first
    /// rejected user checkpoint; `serve.shard.restore_failures_total`
    /// advances on every rejection. Never panics, whatever the bytes.
    pub fn restore(params: ExtractorParams, bytes: &[u8]) -> Result<Self, RestoreError> {
        serve_obs::register();
        Self::restore_inner(params, bytes).inspect_err(|_| {
            if backwatch_obs::enabled() {
                serve_obs::SHARD_RESTORE_FAILURES.inc();
            }
        })
    }

    /// [`restore`](Self::restore) minus the failure accounting.
    fn restore_inner(params: ExtractorParams, bytes: &[u8]) -> Result<Self, RestoreError> {
        let word = |at: usize| -> Result<u64, RestoreError> {
            let chunk = bytes.get(at..at + 8).ok_or(RestoreError::Truncated)?;
            let mut raw = [0u8; 8];
            raw.copy_from_slice(chunk);
            Ok(u64::from_le_bytes(raw))
        };
        if word(0)? != SERVICE_MAGIC {
            return Err(RestoreError::BadMagic);
        }
        let n_shards = usize::try_from(word(8)?).map_err(|_| RestoreError::BadFraming("shard count overflows usize"))?;
        if n_shards == 0 {
            return Err(RestoreError::BadFraming("service snapshot declares zero shards"));
        }
        let mut shards = Vec::with_capacity(n_shards.min(1 << 16));
        let mut at = 16;
        for _ in 0..n_shards {
            let len = usize::try_from(word(at)?).map_err(|_| RestoreError::BadFraming("shard length overflows usize"))?;
            at += 8;
            let end = at
                .checked_add(len)
                .ok_or(RestoreError::BadFraming("shard length overflows the stream"))?;
            let sb = bytes.get(at..end).ok_or(RestoreError::Truncated)?;
            shards.push(Shard::restore(params, sb)?);
            at = end;
        }
        if at != bytes.len() {
            return Err(RestoreError::BadFraming("trailing bytes after the declared shards"));
        }
        if backwatch_obs::enabled() {
            serve_obs::SHARD_RESTORES.inc();
        }
        Ok(Self {
            router: ShardRouter::new(n_shards),
            shards,
            metric: params.metric,
            params,
            fixes: 0,
            stays: 0,
            latest_fix_secs: None,
            last_snapshot_secs: None,
        })
    }

    /// Whether `user_id` currently has a live engine, and on which shard.
    #[must_use]
    pub fn shard_holding(&self, user_id: u64) -> Option<usize> {
        let idx = self.router.shard_of(user_id);
        self.shards.get(idx).filter(|s| s.contains_user(user_id)).map(|_| idx)
    }

    /// Flushes every shard's tallies and refreshes the population gauge.
    fn flush_telemetry(&mut self) {
        for shard in &mut self.shards {
            shard.flush_telemetry();
        }
        if backwatch_obs::enabled() {
            let users: usize = self.shards.iter().map(Shard::n_users).sum();
            serve_obs::SHARD_USERS.set(users as i64);
        }
    }
}

impl Drop for IngestService {
    /// Tallies accumulated since the last flush still reach telemetry
    /// when the service is dropped mid-stream.
    fn drop(&mut self) {
        self.flush_telemetry();
    }
}

/// Order-sensitive FNV-1a digest of emitted stays — the same fold the
/// equivalence suites use, extended with the user id so cross-user
/// attribution errors change the digest too.
#[must_use]
pub fn stays_digest(stays: &[(u64, Stay)]) -> u64 {
    let mut digest: u64 = 0xcbf2_9ce4_8422_2325;
    for (user_id, s) in stays {
        for bits in [
            *user_id,
            s.centroid.lat().to_bits(),
            s.centroid.lon().to_bits(),
            s.enter.as_secs() as u64,
            s.leave.as_secs() as u64,
            s.n_points as u64,
            s.end_index as u64,
        ] {
            digest = (digest ^ bits).wrapping_mul(0x0000_0100_0000_01b3);
        }
    }
    digest
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::LatLon;
    use backwatch_trace::Timestamp;

    fn fix(secs: i64, lat: f64, lon: f64) -> TracePoint {
        TracePoint::new(Timestamp::from_secs(secs), LatLon::clamped(lat, lon))
    }

    #[test]
    fn fixes_route_to_exactly_one_shard() {
        let mut svc = IngestService::new(4, ExtractorParams::paper_set1());
        for uid in 0..32u64 {
            svc.ingest(uid, fix(0, 39.9, 116.3));
        }
        let stats = svc.stats();
        assert_eq!(stats.users(), 32, "every user must land on exactly one shard");
        assert_eq!(stats.fixes, 32);
        for uid in 0..32u64 {
            assert_eq!(svc.shard_holding(uid), Some(svc.router().shard_of(uid)));
        }
    }

    #[test]
    fn service_snapshot_restore_round_trips() {
        let params = ExtractorParams::paper_set1();
        let mut svc = IngestService::new(3, params);
        for s in 0..200 {
            for uid in [1u64, 5, 9] {
                svc.ingest(uid, fix(s, 39.9 + uid as f64 * 1e-3, 116.3));
            }
        }
        let bytes = svc.snapshot_bytes();
        let restored = IngestService::restore(params, &bytes).expect("round trip");
        assert_eq!(restored.stats().users(), 3);
        for uid in [1u64, 5, 9] {
            assert_eq!(restored.shard_holding(uid), Some(restored.router().shard_of(uid)));
        }
    }

    #[test]
    fn restore_rejects_corrupted_service_framing() {
        let params = ExtractorParams::paper_set1();
        let mut svc = IngestService::new(2, params);
        svc.ingest(1, fix(0, 39.9, 116.3));
        let good = svc.snapshot_bytes();
        assert!(IngestService::restore(params, &[]).is_err());
        let mut bad_magic = good.clone();
        bad_magic[7] ^= 0x40;
        assert!(matches!(
            IngestService::restore(params, &bad_magic),
            Err(RestoreError::BadMagic)
        ));
        for cut in (0..good.len()).step_by(8) {
            assert!(IngestService::restore(params, &good[..cut]).is_err(), "cut at {cut}");
        }
        let mut padded = good;
        padded.push(0);
        assert!(IngestService::restore(params, &padded).is_err());
    }

    #[test]
    fn digest_is_sensitive_to_user_attribution() {
        let stay = Stay {
            centroid: LatLon::clamped(39.9, 116.3),
            enter: Timestamp::from_secs(0),
            leave: Timestamp::from_secs(700),
            n_points: 700,
            end_index: 699,
        };
        let a = stays_digest(&[(1, stay)]);
        let b = stays_digest(&[(2, stay)]);
        assert_ne!(a, b, "same stay under a different user must change the digest");
    }
}
