//! One shard: a set of per-user streaming extractors plus whole-shard
//! snapshot/restore.
//!
//! A shard owns every user the [`crate::router::ShardRouter`] assigns to
//! it, keyed in a `BTreeMap` — *ordered* on purpose: snapshot bytes and
//! finish-time stay emission walk users in ascending id order, so both
//! are deterministic functions of the ingested stream. (A `HashMap`'s
//! iteration order varies per process, which would break the
//! bit-identical crash-resume guarantee the integration tests pin.)
//!
//! The shard is layout-generic over the engine's [`Window`] exactly like
//! [`StreamingExtractor`] itself: the lat/lon service uses the default
//! AoS `CentroidBuffer`, and projected deployments can instantiate
//! `Shard<ProjectedPoint, SoaPlanarWindow>` to get the SoA hot path —
//! the checkpoint wire format is window-layout-independent, so snapshots
//! stay interchangeable.

use crate::obs as serve_obs;
use backwatch_core::poi::{CentroidBuffer, StreamPoint};
use backwatch_core::poi::{Checkpoint, CheckpointError, ExtractorParams, Stay, StreamingExtractor, Window};
use backwatch_trace::TracePoint;
use std::collections::BTreeMap;
use std::error::Error;
use std::fmt;

/// Magic-plus-version word opening every serialized shard snapshot
/// (`b"BWSHD"` folded into the high bytes, format version 1 in the low).
pub(crate) const SHARD_MAGIC: u64 = 0x4257_5348_4400_0001;

/// Why a shard snapshot failed to restore. Framing errors describe the
/// shard envelope; [`RestoreError::User`] wraps the underlying
/// [`CheckpointError`] of one user's embedded engine checkpoint (which
/// also lands on `core.stream.decode_failures_total` — the serve-level
/// `serve.shard.restore_failures_total` counts rejected envelopes).
#[derive(Debug, PartialEq, Eq)]
pub enum RestoreError {
    /// The byte stream ended before the structure it declared.
    Truncated,
    /// The first word is not the shard snapshot magic/version.
    BadMagic,
    /// A declared length does not fit the enclosing byte stream.
    BadFraming(&'static str),
    /// One user's embedded checkpoint failed to decode or resume.
    User {
        /// The user whose checkpoint was rejected.
        user_id: u64,
        /// The underlying engine decode error.
        source: CheckpointError,
    },
}

impl fmt::Display for RestoreError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Self::Truncated => write!(f, "shard snapshot truncated"),
            Self::BadMagic => write!(f, "shard snapshot magic/version mismatch"),
            Self::BadFraming(what) => write!(f, "shard snapshot framing error: {what}"),
            Self::User { user_id, source } => write!(f, "user {user_id} checkpoint rejected: {source}"),
        }
    }
}

impl Error for RestoreError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            Self::User { source, .. } => Some(source),
            _ => None,
        }
    }
}

/// A shard of the ingestion service: per-user streaming engines plus the
/// serve-side tallies that feed `serve.shard.*` telemetry.
pub struct Shard<P: StreamPoint = TracePoint, W: Window<Point = P> = CentroidBuffer<P>> {
    params: ExtractorParams,
    users: BTreeMap<u64, StreamingExtractor<P, W>>,
    fixes_unflushed: u64,
    stays_unflushed: u64,
}

impl<P: StreamPoint, W: Window<Point = P>> fmt::Debug for Shard<P, W> {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Shard")
            .field("users", &self.users.len())
            .field("params", &self.params)
            .finish_non_exhaustive()
    }
}

impl<P: StreamPoint, W: Window<Point = P>> Shard<P, W> {
    /// An empty shard; every engine it lazily creates uses `params`.
    #[must_use]
    pub fn new(params: ExtractorParams) -> Self {
        Self {
            params,
            users: BTreeMap::new(),
            fixes_unflushed: 0,
            stays_unflushed: 0,
        }
    }

    /// The extraction parameters new engines are created with.
    #[must_use]
    pub fn params(&self) -> &ExtractorParams {
        &self.params
    }

    /// Users with a live engine on this shard.
    #[must_use]
    pub fn n_users(&self) -> usize {
        self.users.len()
    }

    /// Whether `user_id` has a live engine on this shard.
    #[must_use]
    pub fn contains_user(&self, user_id: u64) -> bool {
        self.users.contains_key(&user_id)
    }

    /// Ids of users with a live engine, in ascending order.
    pub fn user_ids(&self) -> impl Iterator<Item = u64> + '_ {
        self.users.keys().copied()
    }

    /// Feeds one fix to `user_id`'s engine (creating it on first contact)
    /// and returns the stay the fix completed, if any.
    pub fn ingest(&mut self, user_id: u64, point: P, ctx: &P::Ctx) -> Option<Stay> {
        let engine = self
            .users
            .entry(user_id)
            .or_insert_with(|| StreamingExtractor::new(self.params));
        self.fixes_unflushed += 1;
        let stay = engine.push_with(point, ctx);
        self.stays_unflushed += u64::from(stay.is_some());
        stay
    }

    /// Ends every stream on this shard, emitting each user's final
    /// in-progress stay (if any) in ascending user-id order, and drops
    /// the engines. The shard stays usable — a later fix simply starts a
    /// fresh stream for its user.
    pub fn finish(&mut self) -> Vec<(u64, Stay)> {
        let mut out = Vec::new();
        for (&user_id, engine) in &mut self.users {
            if let Some(stay) = engine.finish() {
                out.push((user_id, stay));
            }
        }
        self.stays_unflushed += out.len() as u64;
        self.users.clear();
        out
    }

    /// Serializes every user's engine into one deterministic byte stream:
    /// the shard magic word, the user count, then per user (in ascending
    /// id order) the id, the checkpoint byte length, and the engine's
    /// [`Checkpoint`] wire bytes verbatim.
    #[must_use]
    pub fn snapshot(&self) -> Vec<u8> {
        let mut bytes = Vec::new();
        bytes.extend_from_slice(&SHARD_MAGIC.to_le_bytes());
        bytes.extend_from_slice(&(self.users.len() as u64).to_le_bytes());
        for (&user_id, engine) in &self.users {
            let cp = engine.checkpoint().to_bytes();
            bytes.extend_from_slice(&user_id.to_le_bytes());
            bytes.extend_from_slice(&(cp.len() as u64).to_le_bytes());
            bytes.extend_from_slice(&cp);
        }
        bytes
    }

    /// Rebuilds a shard from [`snapshot`](Self::snapshot) bytes so that
    /// replaying the fixes after the snapshot point continues every
    /// user's stream bit-identically.
    ///
    /// `params` seeds engines for users who first appear *after* the
    /// restore; restored engines carry their own parameters inside their
    /// checkpoints.
    ///
    /// # Errors
    ///
    /// A [`RestoreError`] naming the framing problem, or the first user
    /// whose embedded checkpoint failed to decode or resume. Never
    /// panics, whatever the input bytes.
    pub fn restore(params: ExtractorParams, bytes: &[u8]) -> Result<Self, RestoreError> {
        let mut cursor = Cursor { bytes, at: 0 };
        if cursor.word()? != SHARD_MAGIC {
            return Err(RestoreError::BadMagic);
        }
        let n_users = cursor.word()?;
        let mut users = BTreeMap::new();
        for _ in 0..n_users {
            let user_id = cursor.word()?;
            let len = cursor.word()?;
            let cp_bytes = cursor.take(len)?;
            let engine = Checkpoint::from_bytes(cp_bytes)
                .and_then(|cp| StreamingExtractor::resume(&cp))
                .map_err(|source| RestoreError::User { user_id, source })?;
            users.insert(user_id, engine);
        }
        if cursor.at != bytes.len() {
            return Err(RestoreError::BadFraming("trailing bytes after the declared users"));
        }
        Ok(Self {
            params,
            users,
            fixes_unflushed: 0,
            stays_unflushed: 0,
        })
    }

    /// Folds this shard's unflushed tallies into the shared
    /// `serve.shard.*` counters and zeroes them. Called by the service at
    /// snapshot/finish boundaries and on drop — never per fix.
    pub(crate) fn flush_telemetry(&mut self) {
        if backwatch_obs::enabled() {
            serve_obs::register();
            serve_obs::SHARD_FIXES.add(self.fixes_unflushed);
            serve_obs::SHARD_STAYS.add(self.stays_unflushed);
        }
        self.fixes_unflushed = 0;
        self.stays_unflushed = 0;
    }
}

impl<P: StreamPoint, W: Window<Point = P>> Drop for Shard<P, W> {
    /// Tallies accumulated since the last flush still reach telemetry
    /// when the shard is dropped mid-stream.
    fn drop(&mut self) {
        self.flush_telemetry();
    }
}

/// Bounds-checked little-endian word reader over snapshot bytes.
struct Cursor<'a> {
    bytes: &'a [u8],
    at: usize,
}

impl<'a> Cursor<'a> {
    /// Reads one little-endian u64, or [`RestoreError::Truncated`].
    fn word(&mut self) -> Result<u64, RestoreError> {
        let chunk = self.bytes.get(self.at..self.at + 8).ok_or(RestoreError::Truncated)?;
        let mut raw = [0u8; 8];
        raw.copy_from_slice(chunk);
        self.at += 8;
        Ok(u64::from_le_bytes(raw))
    }

    /// Takes `len` raw bytes, or a framing error if `len` does not fit
    /// (either outright oversized or past the end of the stream).
    fn take(&mut self, len: u64) -> Result<&'a [u8], RestoreError> {
        let len = usize::try_from(len).map_err(|_| RestoreError::BadFraming("checkpoint length overflows usize"))?;
        let end = self
            .at
            .checked_add(len)
            .ok_or(RestoreError::BadFraming("checkpoint length overflows the stream"))?;
        let slice = self.bytes.get(self.at..end).ok_or(RestoreError::Truncated)?;
        self.at = end;
        Ok(slice)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::LatLon;
    use backwatch_trace::Timestamp;

    fn params() -> ExtractorParams {
        ExtractorParams::paper_set1()
    }

    fn fix(secs: i64, lat: f64, lon: f64) -> TracePoint {
        TracePoint::new(Timestamp::from_secs(secs), LatLon::clamped(lat, lon))
    }

    /// Drives one user through a dwell long enough to emit a stay.
    #[test]
    fn ingest_creates_engines_and_emits_stays() {
        let mut shard: Shard = Shard::new(params());
        let metric = params().metric;
        let mut stays = Vec::new();
        // 700 s at one spot, then walk far away to confirm the exit.
        for s in 0..700 {
            stays.extend(shard.ingest(7, fix(s, 39.99, 116.31), &metric));
        }
        for s in 700..1000 {
            stays.extend(shard.ingest(7, fix(s, 39.99 + 0.01 * (s - 699) as f64, 116.31), &metric));
        }
        assert_eq!(shard.n_users(), 1);
        assert!(shard.contains_user(7));
        assert_eq!(stays.len(), 1, "the dwell must surface as one stay");
    }

    #[test]
    fn snapshot_round_trip_is_empty_safe() {
        let shard: Shard = Shard::new(params());
        let bytes = shard.snapshot();
        let restored: Shard = Shard::restore(params(), &bytes).expect("empty shard restores");
        assert_eq!(restored.n_users(), 0);
    }

    #[test]
    fn snapshot_is_deterministic_and_ordered_by_user_id() {
        let metric = params().metric;
        let mut a: Shard = Shard::new(params());
        let mut b: Shard = Shard::new(params());
        // Same fixes, opposite per-user insertion order.
        for s in 0..50 {
            a.ingest(2, fix(s, 39.9, 116.3), &metric);
            a.ingest(1, fix(s, 39.8, 116.2), &metric);
            b.ingest(1, fix(s, 39.8, 116.2), &metric);
            b.ingest(2, fix(s, 39.9, 116.3), &metric);
        }
        assert_eq!(
            a.snapshot(),
            b.snapshot(),
            "snapshot bytes must not depend on insertion order"
        );
        assert_eq!(a.user_ids().collect::<Vec<_>>(), vec![1, 2]);
    }

    #[test]
    fn restore_rejects_corruption_without_panicking() {
        let metric = params().metric;
        let mut shard: Shard = Shard::new(params());
        for s in 0..100 {
            shard.ingest(3, fix(s, 39.9, 116.3), &metric);
        }
        let good = shard.snapshot();
        // Bad magic.
        let mut bad = good.clone();
        bad[0] ^= 0xFF;
        assert!(matches!(
            Shard::<TracePoint>::restore(params(), &bad),
            Err(RestoreError::BadMagic)
        ));
        // Truncation at every 8-byte boundary (and a ragged tail).
        for cut in (0..good.len()).step_by(8).chain([good.len() - 3]) {
            let r = Shard::<TracePoint>::restore(params(), &good[..cut]);
            assert!(r.is_err(), "truncation to {cut} bytes must be rejected");
        }
        // Trailing garbage after the declared structure.
        let mut padded = good.clone();
        padded.extend_from_slice(&[0u8; 16]);
        assert!(matches!(
            Shard::<TracePoint>::restore(params(), &padded),
            Err(RestoreError::BadFraming("trailing bytes after the declared users"))
        ));
        // Oversized declared checkpoint length inside the stream.
        let mut oversized = good.clone();
        oversized[24..32].copy_from_slice(&u64::MAX.to_le_bytes());
        assert!(Shard::<TracePoint>::restore(params(), &oversized).is_err());
        // A structurally corrupted embedded checkpoint (its magic word,
        // at offset 32: shard magic, count, user id, length) surfaces the
        // owning user id.
        let mut user_bad = good;
        user_bad[32] ^= 0xFF;
        match Shard::<TracePoint>::restore(params(), &user_bad) {
            Err(RestoreError::User { user_id, .. }) => assert_eq!(user_id, 3),
            other => panic!("corrupted embedded checkpoint must name its user: {other:?}"),
        }
    }

    /// The layout-generic form compiles and round-trips with the SoA
    /// window (projected points): the wire format is layout-independent.
    #[test]
    fn soa_shard_round_trips_projected_streams() {
        use backwatch_core::poi::{PlanarCtx, SoaPlanarWindow};
        use backwatch_trace::{synth, ProjectedTrace};

        let cfg = synth::SynthConfig {
            n_users: 1,
            days: 1,
            ..synth::SynthConfig::small()
        };
        let user = synth::generate_user(&cfg, 0);
        let projected = ProjectedTrace::project(&user.trace);
        let ctx = PlanarCtx::new(&projected, params().metric);

        let mut soa: Shard<backwatch_trace::ProjectedPoint, SoaPlanarWindow> = Shard::new(params());
        let pts = projected.points();
        let half = pts.len() / 2;
        let mut stays = Vec::new();
        for p in &pts[..half] {
            stays.extend(soa.ingest(0, *p, &ctx).map(|s| (0u64, s)));
        }
        let bytes = soa.snapshot();
        let mut resumed: Shard<backwatch_trace::ProjectedPoint, SoaPlanarWindow> =
            Shard::restore(params(), &bytes).expect("SoA shard restores");
        for p in &pts[half..] {
            stays.extend(resumed.ingest(0, *p, &ctx).map(|s| (0u64, s)));
        }
        stays.extend(resumed.finish());

        // Oracle: one uninterrupted AoS engine over the same stream.
        let mut oracle: Shard<backwatch_trace::ProjectedPoint> = Shard::new(params());
        let mut expect = Vec::new();
        for p in pts {
            expect.extend(oracle.ingest(0, *p, &ctx).map(|s| (0u64, s)));
        }
        expect.extend(oracle.finish());
        assert_eq!(stays, expect, "SoA shard with a mid-stream restore must match the AoS oracle");
    }
}
