//! The 28 app-store categories of the 2016 Google Play market.

use std::fmt;

/// A Play Store category. The paper samples the top 100 apps from each of
/// the 28 categories that existed at study time.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[allow(missing_docs)] // variant names are self-describing category labels
pub enum Category {
    BooksAndReference,
    Business,
    Comics,
    Communication,
    Education,
    Entertainment,
    Finance,
    Games,
    HealthAndFitness,
    LibrariesAndDemo,
    Lifestyle,
    MediaAndVideo,
    Medical,
    MusicAndAudio,
    NewsAndMagazines,
    Personalization,
    Photography,
    Productivity,
    Shopping,
    Social,
    Sports,
    Tools,
    Transportation,
    TravelAndLocal,
    Weather,
    Widgets,
    Casual,
    Racing,
}

/// All 28 categories in a stable order.
pub const ALL_CATEGORIES: [Category; 28] = [
    Category::BooksAndReference,
    Category::Business,
    Category::Comics,
    Category::Communication,
    Category::Education,
    Category::Entertainment,
    Category::Finance,
    Category::Games,
    Category::HealthAndFitness,
    Category::LibrariesAndDemo,
    Category::Lifestyle,
    Category::MediaAndVideo,
    Category::Medical,
    Category::MusicAndAudio,
    Category::NewsAndMagazines,
    Category::Personalization,
    Category::Photography,
    Category::Productivity,
    Category::Shopping,
    Category::Social,
    Category::Sports,
    Category::Tools,
    Category::Transportation,
    Category::TravelAndLocal,
    Category::Weather,
    Category::Widgets,
    Category::Casual,
    Category::Racing,
];

impl Category {
    /// Lower-case slug suitable for package names.
    #[must_use]
    pub fn slug(&self) -> &'static str {
        match self {
            Category::BooksAndReference => "books",
            Category::Business => "business",
            Category::Comics => "comics",
            Category::Communication => "communication",
            Category::Education => "education",
            Category::Entertainment => "entertainment",
            Category::Finance => "finance",
            Category::Games => "games",
            Category::HealthAndFitness => "health",
            Category::LibrariesAndDemo => "libraries",
            Category::Lifestyle => "lifestyle",
            Category::MediaAndVideo => "media",
            Category::Medical => "medical",
            Category::MusicAndAudio => "music",
            Category::NewsAndMagazines => "news",
            Category::Personalization => "personalization",
            Category::Photography => "photography",
            Category::Productivity => "productivity",
            Category::Shopping => "shopping",
            Category::Social => "social",
            Category::Sports => "sports",
            Category::Tools => "tools",
            Category::Transportation => "transportation",
            Category::TravelAndLocal => "travel",
            Category::Weather => "weather",
            Category::Widgets => "widgets",
            Category::Casual => "casual",
            Category::Racing => "racing",
        }
    }

    /// How location-hungry apps of this category tend to be, as a relative
    /// weight used when the corpus generator decides which apps declare
    /// location permissions. Travel, weather, transportation and social
    /// apps declare far more often than comics readers.
    #[must_use]
    pub fn location_affinity(&self) -> f64 {
        match self {
            Category::TravelAndLocal | Category::Weather | Category::Transportation => 3.0,
            Category::Social | Category::Lifestyle | Category::Shopping | Category::Sports => 2.0,
            Category::Communication | Category::NewsAndMagazines | Category::HealthAndFitness | Category::Tools => 1.5,
            Category::Business | Category::Finance | Category::Photography | Category::Productivity => 1.0,
            Category::Games | Category::Casual | Category::Racing | Category::Entertainment => 0.8,
            _ => 0.5,
        }
    }
}

impl fmt::Display for Category {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.slug())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::collections::BTreeSet;

    #[test]
    fn there_are_28_distinct_categories() {
        let set: BTreeSet<Category> = ALL_CATEGORIES.into_iter().collect();
        assert_eq!(set.len(), 28);
    }

    #[test]
    fn slugs_are_unique_and_lowercase() {
        let slugs: BTreeSet<&str> = ALL_CATEGORIES.iter().map(Category::slug).collect();
        assert_eq!(slugs.len(), 28);
        assert!(slugs.iter().all(|s| s.chars().all(|c| c.is_ascii_lowercase())));
    }

    #[test]
    fn affinities_are_positive() {
        assert!(ALL_CATEGORIES.iter().all(|c| c.location_affinity() > 0.0));
        assert!(Category::TravelAndLocal.location_affinity() > Category::Comics.location_affinity());
    }
}
