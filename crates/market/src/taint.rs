//! Interprocedural, summary-based taint analysis: from "reaches a
//! location API" to "exfiltrates location, and at what precision".
//!
//! Reachability (PR 5) answers *whether* an app can call into the
//! location stack; it cannot tell an app that reads GPS and drops the
//! fix on the floor from one that POSTs raw coordinates to an ad
//! server. This pass closes that gap FlowDroid-style: location taint is
//! born at the source signatures in [`ir::SOURCES`], flows through the
//! dataflow instructions (`move-result`, `return-value`, `sput`/`sget`),
//! is *degraded* — never killed — by the sanitizer signatures in
//! [`ir::SANITIZERS`], and counts as exfiltrated when it reaches a
//! network sink from [`ir::NET_SINKS`].
//!
//! The taint value lattice is a chain over `u8`:
//!
//! ```text
//!   0 (untainted)  <  1+d (sanitized to d decimals, d = 0..=4)  <  255 (raw)
//! ```
//!
//! Join is `max` (any path carrying sharper data dominates) and a
//! sanitizer of degree `d` caps a value at `1 + d` (`min`) — truncating
//! already-coarser data cannot sharpen it. The engine runs a chaotic
//! iteration over `(method, input-taint)` contexts plus a global static-
//! field map; every transfer function is monotone on the finite chain,
//! so the iteration converges to the unique least fixpoint regardless of
//! evaluation order — which is what makes the cached sweep bit-identical
//! to this oracle.
//!
//! Apps land in a four-point classification refining — never
//! contradicting — [`ReachClass`]: a reachability non-accessor is a
//! taint [`TaintClass::NoAccess`] by construction (the permission gate
//! taints nothing), and any exfiltration verdict implies a reachable
//! source. Soundness caveats (reflection, ICC, native code) are shared
//! with the reachability pass and discussed in DESIGN.md §15.

use crate::corpus::MarketApp;
use crate::reach::{ReachClass, ReachFinding};
use backwatch_android::app::Manifest;
use backwatch_android::ir::{self, IrInstr, IrProgram};
use std::collections::{BTreeSet, HashMap};

/// Untainted.
pub const T_NONE: u8 = 0;
/// Raw (full-precision) location taint.
pub const T_RAW: u8 = 255;

/// Every value the taint chain can take: untainted, sanitized to
/// `d = 0..=4` decimals (encoded `1 + d`), raw. All transfer functions
/// map lattice values to lattice values, so the fragment transfer table
/// below is total over exactly these inputs.
pub const LATTICE: [u8; 7] = [T_NONE, 1, 2, 3, 4, 5, T_RAW];

/// Encodes a sanitizer degree as a lattice value.
#[must_use]
fn sanitized(d: u8) -> u8 {
    1u8.saturating_add(d)
}

/// The four-point per-app taint classification, in severity order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TaintClass {
    /// Reachability non-accessor: the permission gate (or absence of any
    /// reachable sink) means no location data ever enters the app.
    NoAccess,
    /// Location data is read but never reaches a network sink.
    AccessOnly,
    /// Location reaches a network sink, but every path through a network
    /// sink passed a sanitizer; `d` is the sharpest (largest) surviving
    /// decimal precision.
    ExfiltratesSanitized(u8),
    /// Raw, full-precision location reaches a network sink.
    ExfiltratesRaw,
}

impl TaintClass {
    /// Short stable label for reports.
    #[must_use]
    pub fn label(&self) -> String {
        match self {
            TaintClass::NoAccess => "no-access".to_owned(),
            TaintClass::AccessOnly => "access-only".to_owned(),
            TaintClass::ExfiltratesSanitized(d) => format!("exfiltrates-sanitized({d})"),
            TaintClass::ExfiltratesRaw => "exfiltrates-raw".to_owned(),
        }
    }

    /// Whether the class implies location leaves the device.
    #[must_use]
    pub fn exfiltrates(&self) -> bool {
        matches!(self, TaintClass::ExfiltratesSanitized(_) | TaintClass::ExfiltratesRaw)
    }

    /// The static sanitizer degree, when every exfiltrated path was
    /// sanitized.
    #[must_use]
    pub fn sanitized_degree(&self) -> Option<u8> {
        match self {
            TaintClass::ExfiltratesSanitized(d) => Some(*d),
            _ => None,
        }
    }

    /// The refinement contract against the reachability class: taint
    /// strictly narrows reachability, so any class other than
    /// [`TaintClass::NoAccess`] requires the app to be a reachability
    /// accessor.
    #[must_use]
    pub fn refines(&self, reach: ReachClass) -> bool {
        *self == TaintClass::NoAccess || reach != ReachClass::NonAccessor
    }

    fn from_leak(leak: u8) -> Self {
        match leak {
            T_NONE => TaintClass::AccessOnly,
            T_RAW => TaintClass::ExfiltratesRaw,
            s => TaintClass::ExfiltratesSanitized(s.saturating_sub(1)),
        }
    }
}

impl std::fmt::Display for TaintClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(&self.label())
    }
}

/// Records one classification in the `market.taint.*` counters — the
/// single bump site shared by the oracle and the cached sweep, so the
/// two paths move telemetry identically by construction.
pub(crate) fn record(class: TaintClass) -> TaintClass {
    crate::obs::TAINT_APPS_CLASSIFIED.inc();
    match class {
        TaintClass::NoAccess => crate::obs::TAINT_NO_ACCESS.inc(),
        TaintClass::AccessOnly => crate::obs::TAINT_ACCESS_ONLY.inc(),
        TaintClass::ExfiltratesSanitized(_) => {
            crate::obs::TAINT_HITS.inc();
            crate::obs::TAINT_EXFIL_SANITIZED.inc();
        }
        TaintClass::ExfiltratesRaw => {
            crate::obs::TAINT_HITS.inc();
            crate::obs::TAINT_EXFIL_RAW.inc();
        }
    }
    class
}

/// One taint-relevant operation, pre-classified from an [`IrInstr`] so
/// the oracle (walking instruction streams) and the cached sweep
/// (replaying per-method summaries) run the *same* engine on the same
/// input. Framework signatures shadow same-named program classes here,
/// exactly as [`ir::is_sink`] does for reachability.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum TaintOp {
    /// `const-string`: the accumulator now holds a constant — taint
    /// killed by overwrite.
    Kill,
    /// A location source: the pending result is raw taint.
    Source,
    /// A sanitizer of degree `d`: the pending result is the argument
    /// capped at `1 + d`.
    Sanitize(u8),
    /// A network sink: the argument's taint leaks off-device.
    NetLeak,
    /// A listener-registration sink (`requestLocationUpdates`): arms the
    /// `onLocationChanged` callback entries.
    Registers,
    /// A call whose target may be program-defined (own or fragment);
    /// unresolvable targets are framework edges whose result is clean.
    Call {
        /// Target class path.
        class: String,
        /// Target method name.
        method: String,
    },
    /// `move-result`: latch the pending result into the accumulator.
    MoveResult,
    /// `return-value`: the accumulator flows to the caller.
    ReturnValue,
    /// `sput`: the accumulator joins into a static field.
    Sput {
        /// Field-owning class path.
        class: String,
        /// Field name.
        field: String,
    },
    /// `sget`: the accumulator becomes the static field's taint.
    Sget {
        /// Field-owning class path.
        class: String,
        /// Field name.
        field: String,
    },
}

/// Lowers one instruction stream to its taint operations. This is the
/// *only* place instructions are classified against the signature
/// tables; `summarize_method` calls it once per digest and the oracle
/// calls it per program, so the two can never diverge.
#[must_use]
pub fn ops_for_instrs(instrs: &[IrInstr]) -> Vec<TaintOp> {
    instrs
        .iter()
        .map(|instr| match instr {
            IrInstr::ConstString(_) => TaintOp::Kill,
            IrInstr::Invoke { class, method } => {
                if ir::is_source(class, method) {
                    TaintOp::Source
                } else if let Some(d) = ir::sanitizer_degree(class, method) {
                    TaintOp::Sanitize(d)
                } else if ir::is_net_sink(class, method) {
                    TaintOp::NetLeak
                } else if ir::is_sink(class, method) {
                    TaintOp::Registers
                } else {
                    TaintOp::Call {
                        class: class.clone(),
                        method: method.clone(),
                    }
                }
            }
            IrInstr::MoveResult => TaintOp::MoveResult,
            IrInstr::ReturnValue => TaintOp::ReturnValue,
            IrInstr::Sput { class, field } => TaintOp::Sput {
                class: class.clone(),
                field: field.clone(),
            },
            IrInstr::Sget { class, field } => TaintOp::Sget {
                class: class.clone(),
                field: field.clone(),
            },
        })
        .collect()
}

/// What analyzing one `(method, input-taint)` context yields: the taint
/// of its return value, the sharpest taint it leaks through a network
/// sink (transitively), and whether it registers a location listener.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TaintOutcome {
    /// Taint of the returned value.
    pub ret: u8,
    /// Sharpest taint reaching a network sink from this context.
    pub leak: u8,
    /// Whether a listener-registration sink is invoked.
    pub registers: bool,
}

impl TaintOutcome {
    fn join(self, other: Self) -> Self {
        Self {
            ret: self.ret.max(other.ret),
            leak: self.leak.max(other.leak),
            registers: self.registers || other.registers,
        }
    }
}

/// Precomputed taint transfer table for one shared-library fragment:
/// for every fragment method and every lattice input, the full
/// [`TaintOutcome`]. A million apps embedding the fragment fold these
/// constants instead of traversing fragment code — the taint analogue
/// of `FragReach`.
///
/// Soundness rests on three fragment properties, the first two asserted
/// at build time: it touches no static fields (no `sput`/`sget`, so no
/// hidden coupling with app state), it defines no
/// `onLocationChanged` callback (so callback seeding is app-local), and
/// its calls are one-way — fragment code never calls back into app code.
#[derive(Debug)]
pub struct FragTaint {
    transfer: HashMap<String, HashMap<String, [TaintOutcome; LATTICE.len()]>>,
}

impl FragTaint {
    /// Builds the transfer table by solving the fragment in isolation at
    /// every lattice input.
    ///
    /// # Panics
    ///
    /// Panics if the fragment uses static fields or defines the listener
    /// callback — either would make the context-insensitive fold
    /// unsound, and no real fragment in the corpus does.
    #[must_use]
    pub fn build(program: &IrProgram) -> Self {
        for class in &program.classes {
            for method in &class.methods {
                assert!(
                    method.name != ir::LISTENER_CALLBACK,
                    "fragment {} defines {} — callback seeding would not be app-local",
                    class.name,
                    ir::LISTENER_CALLBACK,
                );
                assert!(
                    !method
                        .instrs
                        .iter()
                        .any(|i| matches!(i, IrInstr::Sput { .. } | IrInstr::Sget { .. })),
                    "fragment {} touches static fields — the transfer fold would be unsound",
                    class.name,
                );
            }
        }
        let lowered = lower_ops(program);
        let view = TaintView::new(lowered.iter().map(|(c, m, o)| (c.as_str(), m.as_str(), o.as_slice())), None);
        let mut solver = Solver::new(&view);
        for id in 0..view.method_count() {
            for &input in &LATTICE {
                solver.seed(id, input);
            }
        }
        solver.solve();
        let mut transfer: HashMap<String, HashMap<String, [TaintOutcome; LATTICE.len()]>> = HashMap::new();
        for (id, (class, method, _)) in lowered.iter().enumerate() {
            let mut row = [TaintOutcome::default(); LATTICE.len()];
            for (slot, &input) in row.iter_mut().zip(LATTICE.iter()) {
                *slot = solver.outcome(id, input);
            }
            transfer.entry(class.clone()).or_default().insert(method.clone(), row);
        }
        Self { transfer }
    }

    /// The outcome of entering the fragment at `(class, method)` with
    /// `input` taint; `None` when the fragment does not define the
    /// method (a framework edge).
    #[must_use]
    pub fn transfer(&self, class: &str, method: &str, input: u8) -> Option<TaintOutcome> {
        let row = self.transfer.get(class)?.get(method)?;
        let idx = LATTICE.iter().position(|&v| v == input)?;
        row.get(idx).copied()
    }
}

/// Lowers a whole program to per-method op streams, in declaration
/// order.
#[must_use]
pub(crate) fn lower_ops(program: &IrProgram) -> Vec<(String, String, Vec<TaintOp>)> {
    let mut lowered = Vec::new();
    for class in &program.classes {
        for method in &class.methods {
            lowered.push((class.name.clone(), method.name.clone(), ops_for_instrs(&method.instrs)));
        }
    }
    lowered
}

/// The solvable surface: method op streams by id, plus the optional
/// fragment folded as precomputed transfer constants. Built either from
/// a parsed program (oracle) or from cached `MethodSummary` op streams
/// (cached sweep) — the engine cannot tell the difference, which is the
/// parity argument.
pub(crate) struct TaintView<'a> {
    ids: HashMap<(&'a str, &'a str), usize>,
    ops: Vec<&'a [TaintOp]>,
    callbacks: Vec<usize>,
    fragment: Option<&'a FragTaint>,
}

impl<'a> TaintView<'a> {
    pub(crate) fn new(
        methods: impl IntoIterator<Item = (&'a str, &'a str, &'a [TaintOp])>,
        fragment: Option<&'a FragTaint>,
    ) -> Self {
        let mut ids = HashMap::new();
        let mut ops = Vec::new();
        let mut callbacks = Vec::new();
        for (class, method, stream) in methods {
            if method == ir::LISTENER_CALLBACK {
                callbacks.push(ops.len());
            }
            ids.insert((class, method), ops.len());
            ops.push(stream);
        }
        Self {
            ids,
            ops,
            callbacks,
            fragment,
        }
    }

    fn method_count(&self) -> usize {
        self.ops.len()
    }
}

/// Chaotic-iteration fixpoint engine over `(method, input)` contexts
/// plus a global static-field taint map. All updates are joins on a
/// finite chain, so the iteration terminates at the unique least
/// fixpoint whatever the evaluation order.
pub(crate) struct Solver<'a> {
    view: &'a TaintView<'a>,
    memo: HashMap<(usize, u8), TaintOutcome>,
    fields: HashMap<(&'a str, &'a str), u8>,
    contexts: BTreeSet<(usize, u8)>,
}

impl<'a> Solver<'a> {
    pub(crate) fn new(view: &'a TaintView<'a>) -> Self {
        Self {
            view,
            memo: HashMap::new(),
            fields: HashMap::new(),
            contexts: BTreeSet::new(),
        }
    }

    pub(crate) fn seed(&mut self, id: usize, input: u8) {
        self.contexts.insert((id, input));
    }

    pub(crate) fn outcome(&self, id: usize, input: u8) -> TaintOutcome {
        self.memo.get(&(id, input)).copied().unwrap_or_default()
    }

    pub(crate) fn solve(&mut self) {
        loop {
            let mut changed = false;
            let snapshot: Vec<(usize, u8)> = self.contexts.iter().copied().collect();
            for (id, input) in snapshot {
                let mut discovered = Vec::new();
                let out = eval(
                    self.view,
                    id,
                    input,
                    &self.memo,
                    &mut self.fields,
                    &mut discovered,
                    &mut changed,
                );
                let entry = self.memo.entry((id, input)).or_default();
                let joined = entry.join(out);
                if joined != *entry {
                    *entry = joined;
                    changed = true;
                }
                for ctx in discovered {
                    changed |= self.contexts.insert(ctx);
                }
            }
            if !changed {
                break;
            }
        }
    }
}

/// One abstract execution of a method body under the accumulator model:
/// `acc` is the single data register (the input taint at entry), `preg`
/// the pending invoke result. Reads the current memo/field state; any
/// raise it causes (field joins, new call contexts) is reported back so
/// the driving loop knows the state moved.
fn eval<'a>(
    view: &TaintView<'a>,
    id: usize,
    input: u8,
    memo: &HashMap<(usize, u8), TaintOutcome>,
    fields: &mut HashMap<(&'a str, &'a str), u8>,
    discovered: &mut Vec<(usize, u8)>,
    changed: &mut bool,
) -> TaintOutcome {
    let Some(ops) = view.ops.get(id) else {
        return TaintOutcome::default();
    };
    let mut acc = input;
    let mut preg = T_NONE;
    let mut out = TaintOutcome::default();
    for op in *ops {
        match op {
            TaintOp::Kill => acc = T_NONE,
            TaintOp::Source => preg = T_RAW,
            TaintOp::Sanitize(d) => preg = acc.min(sanitized(*d)),
            TaintOp::NetLeak => {
                out.leak = out.leak.max(acc);
                preg = T_NONE;
            }
            TaintOp::Registers => {
                out.registers = true;
                preg = T_NONE;
            }
            TaintOp::Call { class, method } => {
                if let Some(&callee) = view.ids.get(&(class.as_str(), method.as_str())) {
                    discovered.push((callee, acc));
                    let o = memo.get(&(callee, acc)).copied().unwrap_or_default();
                    preg = o.ret;
                    out.leak = out.leak.max(o.leak);
                    out.registers |= o.registers;
                } else if let Some(t) = view.fragment.and_then(|f| f.transfer(class, method, acc)) {
                    preg = t.ret;
                    out.leak = out.leak.max(t.leak);
                    out.registers |= t.registers;
                } else {
                    preg = T_NONE;
                }
            }
            TaintOp::MoveResult => {
                acc = preg;
                preg = T_NONE;
            }
            TaintOp::ReturnValue => out.ret = out.ret.max(acc),
            TaintOp::Sput { class, field } => {
                let slot = fields.entry((class.as_str(), field.as_str())).or_insert(T_NONE);
                let joined = (*slot).max(acc);
                if joined != *slot {
                    *slot = joined;
                    *changed = true;
                }
            }
            TaintOp::Sget { class, field } => {
                acc = fields.get(&(class.as_str(), field.as_str())).copied().unwrap_or(T_NONE);
            }
        }
    }
    out
}

/// Classifies one app over a solvable view, gated on its reachability
/// class: a reachability non-accessor taints nothing (the permission
/// gate models the API returning nothing), which makes
/// taint ⊆ reachability structural rather than empirical. Advances the
/// `market.taint.*` counters exactly once.
pub(crate) fn classify_with_view(manifest: &Manifest, view: &TaintView<'_>, reach: ReachClass) -> TaintClass {
    if reach == ReachClass::NonAccessor {
        return record(TaintClass::NoAccess);
    }
    // Roots: every declared component's lifecycle entries, at untainted
    // input. Components resolving into the fragment (a pathological but
    // legal manifest) fold its transfer constant like any other call.
    let mut own_roots: Vec<(usize, u8)> = Vec::new();
    let mut total = TaintOutcome::default();
    for component in manifest.components() {
        let class = component.class_path(manifest.package());
        for m in ir::entry_methods(component.kind) {
            if let Some(&id) = view.ids.get(&(class.as_str(), *m)) {
                own_roots.push((id, T_NONE));
            } else if let Some(t) = view.fragment.and_then(|f| f.transfer(&class, m, T_NONE)) {
                total = total.join(t);
            }
        }
    }
    let mut solver = Solver::new(view);
    for &(id, input) in &own_roots {
        solver.seed(id, input);
    }
    solver.solve();
    for &(id, input) in &own_roots {
        total = total.join(solver.outcome(id, input));
    }
    // A registered listener arms every own `onLocationChanged` with raw
    // taint (the framework delivers full-precision fixes); the fragment
    // defines none, by the FragTaint build-time assertion.
    if total.registers && !view.callbacks.is_empty() {
        for &cb in &view.callbacks {
            solver.seed(cb, T_RAW);
        }
        solver.solve();
        for &cb in &view.callbacks {
            total = total.join(solver.outcome(cb, T_RAW));
        }
    }
    record(TaintClass::from_leak(total.leak))
}

/// Oracle taint classification of one parsed program (possibly the
/// composed own+fragment program) against its manifest, given the
/// already-computed reachability class.
#[must_use]
pub fn analyze_program(manifest: &Manifest, program: &IrProgram, reach: ReachClass) -> TaintClass {
    crate::obs::register();
    let lowered = lower_ops(program);
    let view = TaintView::new(lowered.iter().map(|(c, m, o)| (c.as_str(), m.as_str(), o.as_slice())), None);
    classify_with_view(manifest, &view, reach)
}

/// Output of one oracle taint analysis: the reachability finding the
/// taint class refines, plus the class itself.
#[derive(Debug, Clone)]
pub struct TaintAnalysis {
    /// The reachability finding — identical to
    /// [`crate::reach::analyze_entry`].
    pub finding: ReachFinding,
    /// The refining taint class.
    pub taint: TaintClass,
    /// Whether the IR text round-trip failed (the app is then a
    /// non-accessor and [`TaintClass::NoAccess`], like a decompilation
    /// failure).
    pub parse_failed: bool,
}

/// Full oracle for one corpus entry: compose own+fragment code exactly
/// like [`crate::reach::analyze_entry`], classify reachability, then
/// classify taint over the same parsed program. The cached counterpart
/// is `summary::analyze_entry_cached`, pinned bit-identical (finding,
/// taint, and telemetry) by the differential suites.
#[must_use]
pub fn analyze_entry(entry: &MarketApp) -> TaintAnalysis {
    crate::obs::register();
    let mut program = crate::reach::lower_with_sdk(entry);
    if let Some(sdk) = &entry.sdk {
        program.classes.extend(sdk.program().classes.iter().cloned());
    }
    let (finding, parse_failed, parsed) = crate::reach::finish_app_analysis(entry.app.manifest(), &ir::render(&program));
    let taint = match &parsed {
        Some(p) => {
            let lowered = lower_ops(p);
            let view = TaintView::new(lowered.iter().map(|(c, m, o)| (c.as_str(), m.as_str(), o.as_slice())), None);
            classify_with_view(entry.app.manifest(), &view, finding.class)
        }
        None => record(TaintClass::NoAccess),
    };
    TaintAnalysis {
        finding,
        taint,
        parse_failed,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_android::app::{Component, ComponentKind, ManifestBuilder, ACTION_MAIN};
    use backwatch_android::ir::{IrClass, IrMethod};
    use backwatch_android::permission::Permission;

    fn manifest() -> Manifest {
        let mut b = ManifestBuilder::new("com.t.app");
        b.add_permission(Permission::AccessFineLocation);
        b.add_component(Component::new(ComponentKind::Activity, ".MainActivity").with_action(ACTION_MAIN));
        b.build()
    }

    fn invoke(class: &str, method: &str) -> IrInstr {
        IrInstr::Invoke {
            class: class.to_owned(),
            method: method.to_owned(),
        }
    }

    fn source() -> IrInstr {
        invoke(ir::LOCATION_MANAGER_CLASS, "getLastKnownLocation")
    }

    fn net_sink() -> IrInstr {
        invoke(ir::HTTP_URL_CONNECTION_CLASS, "getOutputStream")
    }

    fn main_program(instrs: Vec<IrInstr>) -> IrProgram {
        IrProgram {
            classes: vec![IrClass::new(
                "com/t/app/MainActivity",
                vec![IrMethod::new("onCreate", instrs)],
            )],
        }
    }

    fn classify(program: &IrProgram) -> TaintClass {
        analyze_program(&manifest(), program, ReachClass::ForegroundOnly)
    }

    #[test]
    fn lattice_is_a_chain_under_join_and_cap() {
        for (i, &a) in LATTICE.iter().enumerate() {
            for &b in &LATTICE[i..] {
                assert!(a <= b, "the encoding orders the chain");
                assert_eq!(a.max(b), b, "join picks the sharper value");
            }
        }
        // a sanitizer caps raw at its degree and never sharpens
        for d in 0..=ir::MAX_SANITIZER_DEGREE {
            assert_eq!(T_RAW.min(sanitized(d)), 1 + d);
            assert_eq!(1u8.min(sanitized(d)), 1, "coarser data stays coarse");
        }
    }

    #[test]
    fn raw_source_to_net_sink_is_exfiltrates_raw() {
        let p = main_program(vec![source(), IrInstr::MoveResult, net_sink()]);
        assert_eq!(classify(&p), TaintClass::ExfiltratesRaw);
    }

    #[test]
    fn sanitized_path_reports_its_degree() {
        for d in 0..=ir::MAX_SANITIZER_DEGREE {
            let p = main_program(vec![
                source(),
                IrInstr::MoveResult,
                invoke(ir::SANITIZER_CLASS, &format!("truncate{d}")),
                IrInstr::MoveResult,
                net_sink(),
            ]);
            assert_eq!(classify(&p), TaintClass::ExfiltratesSanitized(d));
        }
    }

    #[test]
    fn source_without_net_sink_is_access_only() {
        let p = main_program(vec![source(), IrInstr::MoveResult]);
        assert_eq!(classify(&p), TaintClass::AccessOnly);
    }

    #[test]
    fn untainted_net_sink_leaks_nothing() {
        let p = main_program(vec![IrInstr::ConstString("hello".to_owned()), net_sink()]);
        assert_eq!(classify(&p), TaintClass::AccessOnly);
    }

    #[test]
    fn constant_overwrite_kills_taint() {
        let p = main_program(vec![
            source(),
            IrInstr::MoveResult,
            IrInstr::ConstString("gps".to_owned()),
            net_sink(),
        ]);
        assert_eq!(classify(&p), TaintClass::AccessOnly);
    }

    #[test]
    fn sanitize_then_resend_raw_stays_raw() {
        // the adversarial shape: one path sanitizes, a later send ships
        // the re-fetched raw fix — the join must keep the sharper leak
        let p = main_program(vec![
            source(),
            IrInstr::MoveResult,
            invoke(ir::SANITIZER_CLASS, "truncate2"),
            IrInstr::MoveResult,
            net_sink(),
            source(),
            IrInstr::MoveResult,
            net_sink(),
        ]);
        assert_eq!(classify(&p), TaintClass::ExfiltratesRaw);
    }

    #[test]
    fn taint_flows_through_static_fields_and_returns() {
        let helper = "com/t/app/Store";
        let p = IrProgram {
            classes: vec![
                IrClass::new(
                    "com/t/app/MainActivity",
                    vec![IrMethod::new(
                        "onCreate",
                        vec![
                            source(),
                            IrInstr::MoveResult,
                            IrInstr::Sput {
                                class: helper.to_owned(),
                                field: "fix".to_owned(),
                            },
                            invoke(helper, "send"),
                        ],
                    )],
                ),
                IrClass::new(
                    helper,
                    vec![
                        IrMethod::new(
                            "snapshot",
                            vec![
                                IrInstr::Sget {
                                    class: helper.to_owned(),
                                    field: "fix".to_owned(),
                                },
                                IrInstr::ReturnValue,
                            ],
                        ),
                        IrMethod::new("send", vec![invoke(helper, "snapshot"), IrInstr::MoveResult, net_sink()]),
                    ],
                ),
            ],
        };
        assert_eq!(classify(&p), TaintClass::ExfiltratesRaw);
    }

    #[test]
    fn listener_callback_is_seeded_only_when_registered() {
        let callback = IrMethod::new(ir::LISTENER_CALLBACK, vec![net_sink()]);
        let armed = IrProgram {
            classes: vec![IrClass::new(
                "com/t/app/MainActivity",
                vec![
                    IrMethod::new(
                        "onCreate",
                        vec![
                            IrInstr::ConstString("gps".to_owned()),
                            invoke(ir::LOCATION_MANAGER_CLASS, "requestLocationUpdates"),
                        ],
                    ),
                    callback.clone(),
                ],
            )],
        };
        assert_eq!(classify(&armed), TaintClass::ExfiltratesRaw);
        let unarmed = IrProgram {
            classes: vec![IrClass::new(
                "com/t/app/MainActivity",
                vec![IrMethod::new("onCreate", vec![source(), IrInstr::MoveResult]), callback],
            )],
        };
        assert_eq!(classify(&unarmed), TaintClass::AccessOnly);
    }

    #[test]
    fn non_accessor_gate_forces_no_access() {
        let p = main_program(vec![source(), IrInstr::MoveResult, net_sink()]);
        assert_eq!(
            analyze_program(&manifest(), &p, ReachClass::NonAccessor),
            TaintClass::NoAccess
        );
    }

    #[test]
    fn classes_order_by_severity_and_refine_reach() {
        assert!(TaintClass::NoAccess < TaintClass::AccessOnly);
        assert!(TaintClass::AccessOnly < TaintClass::ExfiltratesSanitized(0));
        assert!(TaintClass::ExfiltratesSanitized(4) < TaintClass::ExfiltratesRaw);
        assert!(TaintClass::NoAccess.refines(ReachClass::NonAccessor));
        assert!(!TaintClass::ExfiltratesRaw.refines(ReachClass::NonAccessor));
        assert!(TaintClass::ExfiltratesRaw.refines(ReachClass::ForegroundOnly));
        assert_eq!(TaintClass::ExfiltratesSanitized(3).label(), "exfiltrates-sanitized(3)");
        assert_eq!(TaintClass::ExfiltratesRaw.to_string(), "exfiltrates-raw");
        assert_eq!(TaintClass::ExfiltratesSanitized(2).sanitized_degree(), Some(2));
        assert!(TaintClass::ExfiltratesRaw.sanitized_degree().is_none());
    }

    #[test]
    fn cyclic_calls_reach_the_fixpoint() {
        let main = "com/t/app/MainActivity";
        let p = IrProgram {
            classes: vec![IrClass::new(
                main,
                vec![
                    IrMethod::new("onCreate", vec![invoke(main, "ping")]),
                    IrMethod::new("ping", vec![invoke(main, "pong")]),
                    IrMethod::new("pong", vec![invoke(main, "ping"), source(), IrInstr::MoveResult, net_sink()]),
                ],
            )],
        };
        assert_eq!(classify(&p), TaintClass::ExfiltratesRaw);
    }

    #[test]
    fn fragment_transfer_matches_inline_composition() {
        // a tiny statics-free "fragment" that sanitizes and uploads
        let frag_class = "com/lib/Up";
        let frag = IrProgram {
            classes: vec![IrClass::new(
                frag_class,
                vec![IrMethod::new(
                    "ship",
                    vec![invoke(ir::SANITIZER_CLASS, "truncate1"), IrInstr::MoveResult, net_sink()],
                )],
            )],
        };
        let fragment = FragTaint::build(&frag);
        let own = vec![(
            "com/t/app/MainActivity".to_owned(),
            "onCreate".to_owned(),
            ops_for_instrs(&[source(), IrInstr::MoveResult, invoke(frag_class, "ship")]),
        )];
        let view = TaintView::new(
            own.iter().map(|(c, m, o)| (c.as_str(), m.as_str(), o.as_slice())),
            Some(&fragment),
        );
        let folded = classify_with_view(&manifest(), &view, ReachClass::ForegroundOnly);
        // versus the same code inlined into one program
        let mut inline = main_program(vec![source(), IrInstr::MoveResult, invoke(frag_class, "ship")]);
        inline.classes.extend(frag.classes.clone());
        assert_eq!(folded, classify(&inline));
        assert_eq!(folded, TaintClass::ExfiltratesSanitized(1));
        // the transfer row itself: raw in, degree-1 leak out, clean return
        let t = fragment.transfer(frag_class, "ship", T_RAW).expect("row exists");
        assert_eq!(t.leak, 2);
        assert_eq!(t.ret, T_NONE);
        assert!(!t.registers);
        assert!(fragment.transfer(frag_class, "missing", T_RAW).is_none());
    }

    #[test]
    fn fragment_with_statics_is_rejected() {
        let frag = IrProgram {
            classes: vec![IrClass::new(
                "com/lib/Bad",
                vec![IrMethod::new(
                    "stash",
                    vec![IrInstr::Sput {
                        class: "com/lib/Bad".to_owned(),
                        field: "f".to_owned(),
                    }],
                )],
            )],
        };
        assert!(std::panic::catch_unwind(|| FragTaint::build(&frag)).is_err());
    }
}
