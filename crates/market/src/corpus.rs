//! Calibrated synthetic app corpus.
//!
//! We cannot download the 2,800 APKs the paper measured, so we generate a
//! corpus whose *ground truth* matches every marginal the paper reports:
//! how many apps declare which location permissions, how many functionally
//! access location, how many keep accessing it in the background, which
//! provider combinations they register (Table I), and the distribution of
//! their background update intervals (Figure 1). At the default 28 × 100
//! scale the quotas equal the paper's integers exactly; at other scales
//! they shrink proportionally via largest-remainder apportionment.
//!
//! Every generated app carries its [`GroundTruth`] so that the measurement
//! pipeline's output can be verified against what was planted.

use crate::category::{Category, ALL_CATEGORIES};
use backwatch_android::app::{App, AppBuilder, Component, ComponentKind, LocationBehavior, ACTION_BOOT_COMPLETED, ACTION_MAIN};
use backwatch_android::permission::{LocationClaim, Permission};
use backwatch_android::provider::ProviderKind;
use backwatch_stats::sampling::weighted_index;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::{Rng, SeedableRng};
use std::fmt;

/// A provider combination — one column of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[allow(missing_docs)] // variants spell out their provider sets
pub enum ProviderCombo {
    Gps,
    Network,
    Passive,
    GpsNetwork,
    GpsPassive,
    NetworkPassive,
    GpsNetworkPassive,
    FusedNetwork,
    Fused,
}

/// Table I's eight columns, in the paper's order.
pub const TABLE1_COLUMNS: [ProviderCombo; 8] = [
    ProviderCombo::Gps,
    ProviderCombo::Network,
    ProviderCombo::Passive,
    ProviderCombo::GpsNetwork,
    ProviderCombo::GpsPassive,
    ProviderCombo::NetworkPassive,
    ProviderCombo::GpsNetworkPassive,
    ProviderCombo::FusedNetwork,
];

impl ProviderCombo {
    /// The providers in this combination.
    #[must_use]
    pub fn providers(&self) -> &'static [ProviderKind] {
        use ProviderKind::{Fused, Gps, Network, Passive};
        match self {
            ProviderCombo::Gps => &[Gps],
            ProviderCombo::Network => &[Network],
            ProviderCombo::Passive => &[Passive],
            ProviderCombo::GpsNetwork => &[Gps, Network],
            ProviderCombo::GpsPassive => &[Gps, Passive],
            ProviderCombo::NetworkPassive => &[Network, Passive],
            ProviderCombo::GpsNetworkPassive => &[Gps, Network, Passive],
            ProviderCombo::FusedNetwork => &[Fused, Network],
            ProviderCombo::Fused => &[Fused],
        }
    }

    /// Derives the combination from an unordered provider set, if it is one
    /// of the combinations this module models.
    #[must_use]
    pub fn from_providers(set: &[ProviderKind]) -> Option<Self> {
        let mut sorted: Vec<ProviderKind> = set.to_vec();
        sorted.sort();
        sorted.dedup();
        [
            ProviderCombo::Gps,
            ProviderCombo::Network,
            ProviderCombo::Passive,
            ProviderCombo::GpsNetwork,
            ProviderCombo::GpsPassive,
            ProviderCombo::NetworkPassive,
            ProviderCombo::GpsNetworkPassive,
            ProviderCombo::FusedNetwork,
            ProviderCombo::Fused,
        ]
        .into_iter()
        .find(|c| {
            let mut p: Vec<ProviderKind> = c.providers().to_vec();
            p.sort();
            p == sorted
        })
    }

    /// Whether the combination can deliver fine-granularity fixes to an app
    /// whose permissions allow fine access (GPS or fused present).
    #[must_use]
    pub fn delivers_fine(&self) -> bool {
        self.providers()
            .iter()
            .any(|p| matches!(p, ProviderKind::Gps | ProviderKind::Fused))
    }
}

impl fmt::Display for ProviderCombo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.providers().iter().map(|p| p.name()).collect();
        f.write_str(&names.join("+"))
    }
}

/// The paper's §III quotas at a given corpus size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quotas {
    /// Total apps (28 categories × apps per category).
    pub total: usize,
    /// Apps declaring at least one location permission (paper: 1,137).
    pub declaring: usize,
    /// Declaring apps with fine permission only (paper: 193 ≈ 17 %).
    pub fine_only: usize,
    /// Declaring apps with coarse permission only (paper: 182 ≈ 16 %).
    pub coarse_only: usize,
    /// Declaring apps with both permissions (paper: 762 ≈ 67 %).
    pub both: usize,
    /// Apps that functionally access location (paper: 528).
    pub functional: usize,
    /// Functional apps that auto-request at launch (paper: 393).
    pub auto_start: usize,
    /// Apps that access location in background (paper: 102).
    pub background: usize,
    /// Background apps that auto-start (paper: 85).
    pub bg_auto_start: usize,
    /// Table I cells: (declared claim, provider combo, count); cell counts
    /// sum to `background`.
    pub table1: Vec<(LocationClaim, ProviderCombo, usize)>,
    /// Figure 1 anchors: (background interval seconds, count); counts sum
    /// to `background`.
    pub intervals: Vec<(i64, usize)>,
}

/// Paper Table I cells at full scale (claim, combo, count).
const TABLE1_PAPER: [(LocationClaim, ProviderCombo, usize); 15] = [
    (LocationClaim::FineOnly, ProviderCombo::Gps, 7),
    (LocationClaim::FineOnly, ProviderCombo::Network, 3),
    (LocationClaim::FineOnly, ProviderCombo::Passive, 4),
    (LocationClaim::FineOnly, ProviderCombo::GpsNetwork, 2),
    (LocationClaim::FineOnly, ProviderCombo::NetworkPassive, 1),
    (LocationClaim::FineOnly, ProviderCombo::GpsNetworkPassive, 1),
    (LocationClaim::CoarseOnly, ProviderCombo::Passive, 6),
    (LocationClaim::FineAndCoarse, ProviderCombo::Gps, 32),
    (LocationClaim::FineAndCoarse, ProviderCombo::Network, 9),
    (LocationClaim::FineAndCoarse, ProviderCombo::Passive, 7),
    (LocationClaim::FineAndCoarse, ProviderCombo::GpsNetwork, 14),
    (LocationClaim::FineAndCoarse, ProviderCombo::GpsPassive, 5),
    (LocationClaim::FineAndCoarse, ProviderCombo::NetworkPassive, 4),
    (LocationClaim::FineAndCoarse, ProviderCombo::GpsNetworkPassive, 6),
    (LocationClaim::FineAndCoarse, ProviderCombo::FusedNetwork, 1),
];

/// Figure 1 anchors at full scale: (interval, apps). The CDF these induce
/// hits the paper's reported fractions: 57.8 % ≤ 10 s, 68.6 % ≤ 60 s,
/// ≈ 83 % ≤ 600 s, and a single app at the 7,200 s maximum.
const INTERVALS_PAPER: [(i64, usize); 12] = [
    (1, 20),
    (2, 15),
    (5, 12),
    (10, 12),
    (30, 6),
    (60, 5),
    (120, 6),
    (300, 5),
    (600, 4),
    (1800, 9),
    (3600, 7),
    (7200, 1),
];

/// Largest-remainder apportionment of `target` among weights `counts`.
fn apportion(counts: &[usize], target: usize) -> Vec<usize> {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![0; counts.len()];
    }
    let mut floors: Vec<usize> = Vec::with_capacity(counts.len());
    let mut remainders: Vec<(usize, f64)> = Vec::with_capacity(counts.len());
    let mut assigned = 0usize;
    for (i, &c) in counts.iter().enumerate() {
        let exact = c as f64 * target as f64 / total as f64;
        let fl = exact.floor() as usize;
        floors.push(fl);
        assigned += fl;
        remainders.push((i, exact - fl as f64));
    }
    remainders.sort_by(|a, b| b.1.partial_cmp(&a.1).expect("finite remainders").then(a.0.cmp(&b.0)));
    let mut left = target.saturating_sub(assigned);
    for (i, _) in remainders {
        if left == 0 {
            break;
        }
        // never promote a zero-weight cell
        if counts[i] > 0 {
            floors[i] += 1;
            left -= 1;
        }
    }
    floors
}

impl Quotas {
    /// Quotas for a corpus of `total` apps, scaled from the paper's
    /// 2,800-app study. At `total == 2800` the quotas are the paper's
    /// integers exactly.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    #[must_use]
    pub fn scaled(total: usize) -> Self {
        assert!(total > 0, "corpus must have at least one app");
        let scale = |n: usize| -> usize { (n * total + 1400) / 2800 };
        let declaring = scale(1137).min(total);
        // split of declaring into the three claims
        let claim_split = apportion(&[193, 182, 762], declaring);
        let functional = scale(528).min(declaring);
        let background = scale(102).min(functional).max(1);
        let auto_start = scale(393).min(functional);
        let bg_auto_start = scale(85).min(background).min(auto_start);

        let t1_counts: Vec<usize> = TABLE1_PAPER.iter().map(|&(_, _, c)| c).collect();
        let t1_scaled = apportion(&t1_counts, background);
        let table1: Vec<(LocationClaim, ProviderCombo, usize)> = TABLE1_PAPER
            .iter()
            .zip(&t1_scaled)
            .map(|(&(claim, combo, _), &c)| (claim, combo, c))
            .collect();

        let iv_counts: Vec<usize> = INTERVALS_PAPER.iter().map(|&(_, c)| c).collect();
        let iv_scaled = apportion(&iv_counts, background);
        let intervals: Vec<(i64, usize)> = INTERVALS_PAPER
            .iter()
            .zip(&iv_scaled)
            .map(|(&(secs, _), &c)| (secs, c))
            .collect();

        Self {
            total,
            declaring,
            fine_only: claim_split[0],
            coarse_only: claim_split[1],
            both: claim_split[2],
            functional,
            auto_start,
            background,
            bg_auto_start,
            table1,
            intervals,
        }
    }

    /// Background apps per claim row of Table I.
    #[must_use]
    pub fn table1_row_total(&self, claim: LocationClaim) -> usize {
        self.table1.iter().filter(|(c, _, _)| *c == claim).map(|(_, _, n)| n).sum()
    }
}

/// The planted truth for one generated app — what a perfect measurement
/// would recover.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GroundTruth {
    /// Declared permission posture.
    pub claim: LocationClaim,
    /// Whether the app ever requests location.
    pub functional: bool,
    /// Whether it requests right at launch.
    pub auto_start: bool,
    /// The provider combination it registers (if functional).
    pub combo: Option<ProviderCombo>,
    /// Its background polling interval (if it polls in background).
    pub bg_interval_s: Option<i64>,
}

/// A corpus entry: the app, its store category, and the planted truth.
#[derive(Debug, Clone)]
pub struct MarketApp {
    /// The installable app.
    pub app: App,
    /// Store category.
    pub category: Category,
    /// Ground truth for calibration checks.
    pub truth: GroundTruth,
}

/// Corpus generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusConfig {
    /// Apps per category (paper: 100).
    pub apps_per_category: usize,
    /// RNG seed for the assignment shuffles.
    pub seed: u64,
}

impl CorpusConfig {
    /// The paper's scale: 28 categories × 100 apps.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            apps_per_category: 100,
            seed: 0x5EED_AB99,
        }
    }

    /// A scaled-down corpus with `apps_per_category` apps per category.
    ///
    /// # Panics
    ///
    /// Panics if `apps_per_category == 0`.
    #[must_use]
    pub fn scaled(apps_per_category: usize) -> Self {
        assert!(apps_per_category > 0);
        Self {
            apps_per_category,
            ..Self::paper_scale()
        }
    }

    /// Total apps this configuration generates.
    #[must_use]
    pub fn total(&self) -> usize {
        ALL_CATEGORIES.len() * self.apps_per_category
    }
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// Generates the corpus described by `cfg`. Deterministic per seed.
#[must_use]
pub fn generate(cfg: &CorpusConfig) -> Vec<MarketApp> {
    let quotas = Quotas::scaled(cfg.total());
    let mut rng = StdRng::seed_from_u64(cfg.seed);

    // Slot list: (category, rank within category).
    let mut slots: Vec<(Category, usize)> = Vec::with_capacity(cfg.total());
    for cat in ALL_CATEGORIES {
        for rank in 0..cfg.apps_per_category {
            slots.push((cat, rank));
        }
    }

    // Pick which slots declare a location permission, weighted by category
    // affinity (Efraimidis–Spirakis weighted sampling without replacement).
    let mut keyed: Vec<(f64, usize)> = slots
        .iter()
        .enumerate()
        .map(|(i, (cat, _))| {
            let u: f64 = rng.gen_range(1e-12..1.0);
            ((-u.ln()) / cat.location_affinity(), i)
        })
        .collect();
    keyed.sort_by(|a, b| a.0.partial_cmp(&b.0).expect("finite keys"));
    let mut declaring_idx: Vec<usize> = keyed.iter().take(quotas.declaring).map(|&(_, i)| i).collect();
    declaring_idx.shuffle(&mut rng);

    // Segment the declaring apps: background | foreground-only functional |
    // inert over-privileged.
    let bg_idx = &declaring_idx[..quotas.background];
    let fg_idx = &declaring_idx[quotas.background..quotas.functional];
    let inert_idx = &declaring_idx[quotas.functional..];

    // Per-app plans, defaulting to "not declaring".
    #[derive(Clone)]
    struct Plan {
        claim: LocationClaim,
        behavior: LocationBehavior,
        functional: bool,
        auto_start: bool,
        combo: Option<ProviderCombo>,
        bg_interval: Option<i64>,
        service: bool,
    }
    let mut plans: Vec<Plan> = vec![
        Plan {
            claim: LocationClaim::None,
            behavior: LocationBehavior::inert(),
            functional: false,
            auto_start: false,
            combo: None,
            bg_interval: None,
            service: false,
        };
        slots.len()
    ];

    // --- Background apps: Table I cells drive claim + combo. ---
    let mut bg_assignments: Vec<(LocationClaim, ProviderCombo)> = Vec::with_capacity(quotas.background);
    for &(claim, combo, count) in &quotas.table1 {
        for _ in 0..count {
            bg_assignments.push((claim, combo));
        }
    }
    debug_assert_eq!(bg_assignments.len(), quotas.background);
    bg_assignments.shuffle(&mut rng);

    let mut bg_intervals: Vec<i64> = Vec::with_capacity(quotas.background);
    for &(secs, count) in &quotas.intervals {
        for _ in 0..count {
            bg_intervals.push(secs);
        }
    }
    debug_assert_eq!(bg_intervals.len(), quotas.background);
    bg_intervals.shuffle(&mut rng);

    for (k, &slot) in bg_idx.iter().enumerate() {
        let (claim, combo) = bg_assignments[k];
        let interval = bg_intervals[k];
        let fg_interval = rng.gen_range(1..=30);
        let behavior = LocationBehavior::requester(combo.providers().iter().copied(), fg_interval)
            .auto_start(k < quotas.bg_auto_start)
            .background_interval(interval);
        plans[slot] = Plan {
            claim,
            auto_start: behavior.is_auto_start(),
            behavior,
            functional: true,
            combo: Some(combo),
            bg_interval: Some(interval),
            service: true,
        };
    }

    // --- Remaining claim pool for foreground-only + inert apps. ---
    let mut claim_pool: Vec<LocationClaim> = Vec::new();
    let used_fine = quotas.table1_row_total(LocationClaim::FineOnly);
    let used_coarse = quotas.table1_row_total(LocationClaim::CoarseOnly);
    let used_both = quotas.table1_row_total(LocationClaim::FineAndCoarse);
    claim_pool.extend(std::iter::repeat_n(
        LocationClaim::FineOnly,
        quotas.fine_only.saturating_sub(used_fine),
    ));
    claim_pool.extend(std::iter::repeat_n(
        LocationClaim::CoarseOnly,
        quotas.coarse_only.saturating_sub(used_coarse),
    ));
    claim_pool.extend(std::iter::repeat_n(
        LocationClaim::FineAndCoarse,
        quotas.both.saturating_sub(used_both),
    ));
    // Rounding at tiny scales can leave the pool short; pad with the modal
    // claim.
    while claim_pool.len() < fg_idx.len() + inert_idx.len() {
        claim_pool.push(LocationClaim::FineAndCoarse);
    }
    claim_pool.shuffle(&mut rng);
    let mut claim_iter = claim_pool.into_iter();

    // --- Foreground-only functional apps. ---
    let fg_auto_quota = quotas.auto_start.saturating_sub(quotas.bg_auto_start).min(fg_idx.len());
    for (k, &slot) in fg_idx.iter().enumerate() {
        let claim = claim_iter.next().expect("claim pool sized above");
        let combo = pick_fg_combo(claim, &mut rng);
        let interval = rng.gen_range(1..=60);
        let behavior = LocationBehavior::requester(combo.providers().iter().copied(), interval).auto_start(k < fg_auto_quota);
        plans[slot] = Plan {
            claim,
            auto_start: behavior.is_auto_start(),
            behavior,
            functional: true,
            combo: Some(combo),
            bg_interval: None,
            service: false,
        };
    }

    // --- Over-privileged inert apps: declare but never request. ---
    for &slot in inert_idx {
        let claim = claim_iter.next().expect("claim pool sized above");
        plans[slot].claim = claim;
    }

    // --- Materialize apps. ---
    slots
        .iter()
        .zip(plans)
        .map(|(&(category, rank), plan)| {
            let package = format!("com.{}.app{rank:03}", category.slug());
            let mut builder = AppBuilder::new(package)
                .location_claim(plan.claim)
                .permission(Permission::Internet)
                .component(Component::new(ComponentKind::Activity, ".MainActivity").with_action(ACTION_MAIN))
                .location_service(plan.service)
                .behavior(plan.behavior);
            if rng.gen::<f64>() < 0.5 {
                builder = builder.permission(Permission::AccessNetworkState);
            }
            if plan.service {
                builder = builder.permission(Permission::WakeLock);
            }
            // background auto-start apps register at boot, so they declare
            // the receiver + permission pair real Android requires
            if plan.service && plan.auto_start {
                builder = builder
                    .component(Component::new(ComponentKind::Receiver, ".BootReceiver").with_action(ACTION_BOOT_COMPLETED))
                    .permission(Permission::ReceiveBootCompleted);
            }
            MarketApp {
                app: builder.build(),
                category,
                truth: GroundTruth {
                    claim: plan.claim,
                    functional: plan.functional,
                    auto_start: plan.auto_start,
                    combo: plan.combo,
                    bg_interval_s: plan.bg_interval,
                },
            }
        })
        .collect()
}

/// Combo choice for foreground-only requesters, respecting the claim.
fn pick_fg_combo(claim: LocationClaim, rng: &mut StdRng) -> ProviderCombo {
    if claim.allows_fine() {
        const COMBOS: [ProviderCombo; 6] = [
            ProviderCombo::Gps,
            ProviderCombo::Fused,
            ProviderCombo::GpsNetwork,
            ProviderCombo::Network,
            ProviderCombo::FusedNetwork,
            ProviderCombo::Passive,
        ];
        const WEIGHTS: [f64; 6] = [0.35, 0.25, 0.15, 0.12, 0.08, 0.05];
        COMBOS[weighted_index(rng, &WEIGHTS)]
    } else {
        const COMBOS: [ProviderCombo; 3] = [ProviderCombo::Network, ProviderCombo::Fused, ProviderCombo::Passive];
        const WEIGHTS: [f64; 3] = [0.6, 0.25, 0.15];
        COMBOS[weighted_index(rng, &WEIGHTS)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_quotas_match_paper_integers() {
        let q = Quotas::scaled(2800);
        assert_eq!(q.declaring, 1137);
        assert_eq!(q.fine_only, 193);
        assert_eq!(q.coarse_only, 182);
        assert_eq!(q.both, 762);
        assert_eq!(q.fine_only + q.coarse_only + q.both, 1137);
        assert_eq!(q.functional, 528);
        assert_eq!(q.auto_start, 393);
        assert_eq!(q.background, 102);
        assert_eq!(q.bg_auto_start, 85);
        let t1_total: usize = q.table1.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(t1_total, 102);
        assert_eq!(q.table1_row_total(LocationClaim::FineOnly), 18);
        assert_eq!(q.table1_row_total(LocationClaim::CoarseOnly), 6);
        assert_eq!(q.table1_row_total(LocationClaim::FineAndCoarse), 78);
        let iv_total: usize = q.intervals.iter().map(|&(_, c)| c).sum();
        assert_eq!(iv_total, 102);
    }

    #[test]
    fn paper_interval_cdf_anchors() {
        let q = Quotas::scaled(2800);
        let at_or_below = |cut: i64| -> usize { q.intervals.iter().filter(|&&(s, _)| s <= cut).map(|&(_, c)| c).sum() };
        assert_eq!(at_or_below(10), 59); // 57.8 %
        assert_eq!(at_or_below(60), 70); // 68.6 %
        assert_eq!(at_or_below(600), 85); // ≈ 83 %
        assert_eq!(at_or_below(7200), 102);
        // exactly one app at the 7200 s maximum
        assert_eq!(q.intervals.iter().find(|&&(s, _)| s == 7200).unwrap().1, 1);
    }

    #[test]
    fn scaled_quotas_are_consistent() {
        for per_cat in [1usize, 3, 10, 25, 100, 250] {
            let q = Quotas::scaled(per_cat * 28);
            assert!(q.declaring <= q.total);
            assert!(q.functional <= q.declaring);
            assert!(q.background <= q.functional);
            assert!(q.bg_auto_start <= q.background);
            assert!(q.auto_start <= q.functional);
            assert_eq!(q.fine_only + q.coarse_only + q.both, q.declaring);
            let t1: usize = q.table1.iter().map(|&(_, _, c)| c).sum();
            assert_eq!(t1, q.background, "table1 cells must sum to bg count at {per_cat}");
            let iv: usize = q.intervals.iter().map(|&(_, c)| c).sum();
            assert_eq!(iv, q.background);
        }
    }

    #[test]
    fn generation_matches_quotas_exactly() {
        let cfg = CorpusConfig::scaled(20);
        let corpus = generate(&cfg);
        let q = Quotas::scaled(cfg.total());
        assert_eq!(corpus.len(), q.total);
        let declaring = corpus.iter().filter(|a| a.truth.claim.declares_location()).count();
        assert_eq!(declaring, q.declaring);
        let functional = corpus.iter().filter(|a| a.truth.functional).count();
        assert_eq!(functional, q.functional);
        let background = corpus.iter().filter(|a| a.truth.bg_interval_s.is_some()).count();
        assert_eq!(background, q.background);
        let bg_auto = corpus
            .iter()
            .filter(|a| a.truth.bg_interval_s.is_some() && a.truth.auto_start)
            .count();
        assert_eq!(bg_auto, q.bg_auto_start);
        let auto = corpus.iter().filter(|a| a.truth.auto_start).count();
        assert_eq!(auto, q.auto_start.min(q.bg_auto_start + (q.functional - q.background)));
    }

    #[test]
    fn generated_behaviors_respect_declared_permissions() {
        let corpus = generate(&CorpusConfig::scaled(15));
        for entry in &corpus {
            let claim = entry.app.manifest().location_claim();
            assert_eq!(claim, entry.truth.claim);
            for &p in entry.app.behavior().providers() {
                assert!(p.permitted_for(claim), "{}: {p} not permitted under {claim}", entry.app);
            }
        }
    }

    #[test]
    fn generated_apps_declare_components() {
        let corpus = generate(&CorpusConfig::scaled(8));
        for entry in &corpus {
            let m = entry.app.manifest();
            assert!(
                m.components().iter().any(|c| c.kind == ComponentKind::Activity),
                "{}: every app has a launcher activity",
                entry.app
            );
            let is_bg = entry.truth.bg_interval_s.is_some();
            assert_eq!(m.has_location_service(), is_bg, "{}", entry.app);
            assert_eq!(m.has_boot_receiver(), is_bg && entry.truth.auto_start, "{}", entry.app);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig::scaled(5);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.app, y.app);
            assert_eq!(x.truth, y.truth);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = CorpusConfig::scaled(5);
        let a = generate(&cfg);
        cfg.seed ^= 1;
        let b = generate(&cfg);
        assert!(a.iter().zip(&b).any(|(x, y)| x.truth != y.truth));
    }

    #[test]
    fn location_heavy_categories_declare_more() {
        let corpus = generate(&CorpusConfig::paper_scale());
        let rate = |cat: Category| -> f64 {
            let apps: Vec<_> = corpus.iter().filter(|a| a.category == cat).collect();
            apps.iter().filter(|a| a.truth.claim.declares_location()).count() as f64 / apps.len() as f64
        };
        assert!(rate(Category::TravelAndLocal) > rate(Category::Comics));
        assert!(rate(Category::Weather) > rate(Category::LibrariesAndDemo));
    }

    #[test]
    fn combo_round_trips_through_provider_sets() {
        for combo in TABLE1_COLUMNS {
            assert_eq!(ProviderCombo::from_providers(combo.providers()), Some(combo));
        }
        assert_eq!(
            ProviderCombo::from_providers(&[ProviderKind::Network, ProviderKind::Gps]),
            Some(ProviderCombo::GpsNetwork)
        );
        assert_eq!(ProviderCombo::from_providers(&[]), None);
    }

    #[test]
    fn apportion_preserves_total_and_zeroes() {
        let out = apportion(&[32, 14, 5, 0, 6], 10);
        assert_eq!(out.iter().sum::<usize>(), 10);
        assert_eq!(out[3], 0, "zero-weight cell must stay zero");
        let out = apportion(&[1, 1, 1], 0);
        assert_eq!(out, vec![0, 0, 0]);
    }
}
