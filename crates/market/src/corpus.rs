//! Calibrated synthetic app corpus.
//!
//! We cannot download the 2,800 APKs the paper measured, so we generate a
//! corpus whose *ground truth* matches every marginal the paper reports:
//! how many apps declare which location permissions, how many functionally
//! access location, how many keep accessing it in the background, which
//! provider combinations they register (Table I), and the distribution of
//! their background update intervals (Figure 1). At the default 28 × 100
//! scale the quotas equal the paper's integers exactly.
//!
//! The corpus is *schedule-based and index-addressable*: every app is a
//! pure function of `(config, index)`, so [`stream`] yields apps one at a
//! time without materializing the market, [`app_at`] random-accesses any
//! slot in O(1), and any prefix of a larger market is bit-identical to the
//! smaller market — the properties the million-app incremental sweeps in
//! [`crate::sweep`] are built on. Slots are rank-major (index `i` is rank
//! `i / 28` of category `i % 28`); which slots declare location
//! permissions follows fixed per-category quotas spread evenly over ranks
//! (binary Bresenham), and every downstream role split (functional,
//! background, auto-start, Table I cell, interval anchor, claim) chains on
//! the app's *declaring ordinal* through precomputed quota-exact
//! interleave tables, so the paper integers come out exactly at full
//! scale and every class of app appears at small scales.
//!
//! Two market-realism knobs ride on top: `sdk_share_percent` links the
//! shared ad-SDK fragment ([`crate::sdk`]) into a seeded share of apps,
//! and `(snapshot, churn_ppm)` model market crawls over time — each epoch
//! a small seeded share of apps ships an update that redraws its
//! behavioral RNG, which is what the incremental analyzer diffs against.
//!
//! Every generated app carries its [`GroundTruth`] so that the measurement
//! pipeline's output can be verified against what was planted.

use crate::category::{Category, ALL_CATEGORIES};
use crate::sdk::SdkLib;
use backwatch_android::app::{
    App, AppBuilder, Component, ComponentKind, Exfiltration, LocationBehavior, ACTION_BOOT_COMPLETED, ACTION_MAIN,
};
use backwatch_android::ir;
use backwatch_android::permission::{LocationClaim, Permission};
use backwatch_android::provider::ProviderKind;
use backwatch_stats::sampling::weighted_index;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use std::fmt;
use std::sync::{Arc, OnceLock};

/// A provider combination — one column of the paper's Table I.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
#[allow(missing_docs)] // variants spell out their provider sets
pub enum ProviderCombo {
    Gps,
    Network,
    Passive,
    GpsNetwork,
    GpsPassive,
    NetworkPassive,
    GpsNetworkPassive,
    FusedNetwork,
    Fused,
}

/// Table I's eight columns, in the paper's order.
pub const TABLE1_COLUMNS: [ProviderCombo; 8] = [
    ProviderCombo::Gps,
    ProviderCombo::Network,
    ProviderCombo::Passive,
    ProviderCombo::GpsNetwork,
    ProviderCombo::GpsPassive,
    ProviderCombo::NetworkPassive,
    ProviderCombo::GpsNetworkPassive,
    ProviderCombo::FusedNetwork,
];

impl ProviderCombo {
    /// The providers in this combination.
    #[must_use]
    pub fn providers(&self) -> &'static [ProviderKind] {
        use ProviderKind::{Fused, Gps, Network, Passive};
        match self {
            ProviderCombo::Gps => &[Gps],
            ProviderCombo::Network => &[Network],
            ProviderCombo::Passive => &[Passive],
            ProviderCombo::GpsNetwork => &[Gps, Network],
            ProviderCombo::GpsPassive => &[Gps, Passive],
            ProviderCombo::NetworkPassive => &[Network, Passive],
            ProviderCombo::GpsNetworkPassive => &[Gps, Network, Passive],
            ProviderCombo::FusedNetwork => &[Fused, Network],
            ProviderCombo::Fused => &[Fused],
        }
    }

    /// Derives the combination from an unordered provider set, if it is one
    /// of the combinations this module models.
    #[must_use]
    pub fn from_providers(set: &[ProviderKind]) -> Option<Self> {
        let mut sorted: Vec<ProviderKind> = set.to_vec();
        sorted.sort();
        sorted.dedup();
        [
            ProviderCombo::Gps,
            ProviderCombo::Network,
            ProviderCombo::Passive,
            ProviderCombo::GpsNetwork,
            ProviderCombo::GpsPassive,
            ProviderCombo::NetworkPassive,
            ProviderCombo::GpsNetworkPassive,
            ProviderCombo::FusedNetwork,
            ProviderCombo::Fused,
        ]
        .into_iter()
        .find(|c| {
            let mut p: Vec<ProviderKind> = c.providers().to_vec();
            p.sort();
            p == sorted
        })
    }

    /// Whether the combination can deliver fine-granularity fixes to an app
    /// whose permissions allow fine access (GPS or fused present).
    #[must_use]
    pub fn delivers_fine(&self) -> bool {
        self.providers()
            .iter()
            .any(|p| matches!(p, ProviderKind::Gps | ProviderKind::Fused))
    }
}

impl fmt::Display for ProviderCombo {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let names: Vec<&str> = self.providers().iter().map(|p| p.name()).collect();
        f.write_str(&names.join("+"))
    }
}

/// The paper's §III quotas at a given corpus size.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Quotas {
    /// Total apps (28 categories × apps per category).
    pub total: usize,
    /// Apps declaring at least one location permission (paper: 1,137).
    pub declaring: usize,
    /// Declaring apps with fine permission only (paper: 193 ≈ 17 %).
    pub fine_only: usize,
    /// Declaring apps with coarse permission only (paper: 182 ≈ 16 %).
    pub coarse_only: usize,
    /// Declaring apps with both permissions (paper: 762 ≈ 67 %).
    pub both: usize,
    /// Apps that functionally access location (paper: 528).
    pub functional: usize,
    /// Functional apps that auto-request at launch (paper: 393).
    pub auto_start: usize,
    /// Apps that access location in background (paper: 102).
    pub background: usize,
    /// Background apps that auto-start (paper: 85).
    pub bg_auto_start: usize,
    /// Table I cells: (declared claim, provider combo, count); cell counts
    /// sum to `background`.
    pub table1: Vec<(LocationClaim, ProviderCombo, usize)>,
    /// Figure 1 anchors: (background interval seconds, count); counts sum
    /// to `background`.
    pub intervals: Vec<(i64, usize)>,
}

/// Paper Table I cells at full scale (claim, combo, count).
const TABLE1_PAPER: [(LocationClaim, ProviderCombo, usize); 15] = [
    (LocationClaim::FineOnly, ProviderCombo::Gps, 7),
    (LocationClaim::FineOnly, ProviderCombo::Network, 3),
    (LocationClaim::FineOnly, ProviderCombo::Passive, 4),
    (LocationClaim::FineOnly, ProviderCombo::GpsNetwork, 2),
    (LocationClaim::FineOnly, ProviderCombo::NetworkPassive, 1),
    (LocationClaim::FineOnly, ProviderCombo::GpsNetworkPassive, 1),
    (LocationClaim::CoarseOnly, ProviderCombo::Passive, 6),
    (LocationClaim::FineAndCoarse, ProviderCombo::Gps, 32),
    (LocationClaim::FineAndCoarse, ProviderCombo::Network, 9),
    (LocationClaim::FineAndCoarse, ProviderCombo::Passive, 7),
    (LocationClaim::FineAndCoarse, ProviderCombo::GpsNetwork, 14),
    (LocationClaim::FineAndCoarse, ProviderCombo::GpsPassive, 5),
    (LocationClaim::FineAndCoarse, ProviderCombo::NetworkPassive, 4),
    (LocationClaim::FineAndCoarse, ProviderCombo::GpsNetworkPassive, 6),
    (LocationClaim::FineAndCoarse, ProviderCombo::FusedNetwork, 1),
];

/// Figure 1 anchors at full scale: (interval, apps). The CDF these induce
/// hits the paper's reported fractions: 57.8 % ≤ 10 s, 68.6 % ≤ 60 s,
/// ≈ 83 % ≤ 600 s, and a single app at the 7,200 s maximum.
const INTERVALS_PAPER: [(i64, usize); 12] = [
    (1, 20),
    (2, 15),
    (5, 12),
    (10, 12),
    (30, 6),
    (60, 5),
    (120, 6),
    (300, 5),
    (600, 4),
    (1800, 9),
    (3600, 7),
    (7200, 1),
];

/// Number of store categories (width of one rank across the market).
const NCATS: usize = ALL_CATEGORIES.len();
/// Ranks per paper block: per-category declaring quotas are calibrated
/// per 100 ranks and repeat beyond.
const BLOCK: usize = 100;
/// Declaring apps per full paper market (the 1,137).
const P_DECLARING: usize = 1137;
/// Functional apps per `P_DECLARING` declaring apps (the 528).
const P_FUNCTIONAL: usize = 528;
/// Background apps per `P_FUNCTIONAL` functional apps (the 102).
const P_BACKGROUND: usize = 102;
/// Auto-start apps per `P_BACKGROUND` background apps (the 85).
const P_BG_AUTO: usize = 85;
/// Foreground-only functional apps per full market (528 − 102).
const P_FG_FUNCTIONAL: usize = 426;
/// Auto-start apps among those (393 − 85).
const P_FG_AUTO: usize = 308;
/// Non-background declaring apps per full market (1,137 − 102).
const P_NONBG: usize = 1035;
/// Claim counts over the non-background declaring apps, in
/// `[FineOnly, CoarseOnly, FineAndCoarse]` order: the paper's 193/182/762
/// minus the 18/6/78 consumed by Table I's background rows.
const NONBG_CLAIMS: [usize; 3] = [175, 176, 684];

/// `floor(n · num / den)` — how many of the first `n` positions a quota of
/// `num` per `den` selects (binary Bresenham).
fn bres(n: usize, num: usize, den: usize) -> usize {
    n * num / den
}

/// Whether position `n` itself is selected by the `num`-per-`den` quota.
fn bres_hit(n: usize, num: usize, den: usize) -> bool {
    bres(n + 1, num, den) > bres(n, num, den)
}

/// Largest-remainder apportionment of `target` among weights `counts`.
fn apportion(counts: &[usize], target: usize) -> Vec<usize> {
    let total: usize = counts.iter().sum();
    if total == 0 {
        return vec![0; counts.len()];
    }
    let mut floors: Vec<usize> = counts.iter().map(|&c| c * target / total).collect();
    let assigned: usize = floors.iter().sum();
    let mut order: Vec<usize> = (0..counts.len()).collect();
    order.sort_by_key(|&i| (std::cmp::Reverse(counts[i] * target % total), i));
    let mut left = target - assigned;
    for &i in &order {
        if left == 0 {
            break;
        }
        // never promote a zero-weight cell
        if counts[i] > 0 && !(counts[i] * target).is_multiple_of(total) {
            floors[i] += 1;
            left -= 1;
        }
    }
    debug_assert_eq!(left, 0, "fractional parts always cover the seats left");
    floors
}

/// A quota-exact interleave of `counts.len()` bucket labels over one
/// period of `sum(counts)` positions: position `n` gets the unsaturated
/// bucket with the largest proportional deficit, so every prefix tracks
/// the target mix and a full period contains each bucket exactly
/// `counts[k]` times. (A plain per-bucket Bresenham cannot do multi-way
/// splits exactly: floor differences are non-monotone across buckets.)
fn interleave(counts: &[usize]) -> Vec<u8> {
    let period: usize = counts.iter().sum();
    assert!(counts.len() <= u8::MAX as usize, "bucket labels are stored as u8");
    let mut assigned = vec![0usize; counts.len()];
    let mut out = Vec::with_capacity(period);
    for n in 0..period {
        let mut k_best = counts.len();
        let mut d_best = i64::MIN;
        for (k, (&c, &a)) in counts.iter().zip(&assigned).enumerate() {
            if a >= c {
                continue;
            }
            let deficit = ((n + 1) * c) as i64 - (period * a) as i64;
            if deficit > d_best {
                d_best = deficit;
                k_best = k;
            }
        }
        // sum(counts) == period keeps one bucket unsaturated at every step
        assert!(k_best < counts.len(), "interleave ran out of buckets");
        assigned[k_best] += 1;
        out.push(k_best as u8);
    }
    out
}

/// The precomputed role tables every split chains through.
struct PaperSchedule {
    /// Declaring apps per `BLOCK` ranks, per category.
    declaring_per_block: Vec<usize>,
    /// Background ordinal → Table I cell index, one full-scale period.
    cells: Vec<u8>,
    /// Background ordinal → `INTERVALS_PAPER` index, one period.
    intervals: Vec<u8>,
    /// Non-background declaring ordinal → `NONBG_CLAIMS` index, one period.
    claims: Vec<u8>,
}

fn schedule() -> &'static PaperSchedule {
    static SCHEDULE: OnceLock<PaperSchedule> = OnceLock::new();
    SCHEDULE.get_or_init(|| {
        let weights: Vec<usize> = ALL_CATEGORIES
            .iter()
            .map(|c| (c.location_affinity() * 10.0).round() as usize)
            .collect();
        let cell_counts: Vec<usize> = TABLE1_PAPER.iter().map(|&(_, _, c)| c).collect();
        let interval_counts: Vec<usize> = INTERVALS_PAPER.iter().map(|&(_, c)| c).collect();
        PaperSchedule {
            declaring_per_block: apportion(&weights, P_DECLARING),
            cells: interleave(&cell_counts),
            intervals: interleave(&interval_counts),
            claims: interleave(&NONBG_CLAIMS),
        }
    })
}

/// Whether slot `index` declares a location permission.
fn slot_declares(s: &PaperSchedule, index: usize) -> bool {
    bres_hit(index / NCATS, s.declaring_per_block[index % NCATS], BLOCK)
}

/// Number of declaring slots before `index` — O(categories) random access.
fn declaring_ordinal(s: &PaperSchedule, index: usize) -> usize {
    let cat = index % NCATS;
    let rank = index / NCATS;
    s.declaring_per_block
        .iter()
        .enumerate()
        .map(|(c, &q)| bres(rank + usize::from(c < cat), q, BLOCK))
        .sum()
}

/// The scheduled role of one declaring slot.
#[derive(Debug, Clone, Copy)]
struct DeclaringRole {
    claim: LocationClaim,
    functional: bool,
    background: bool,
    auto_start: bool,
    /// Index into `TABLE1_PAPER` (background slots only).
    cell: usize,
    /// Index into `INTERVALS_PAPER` (background slots only).
    interval: usize,
}

/// Claim for a declaring app that is not in a Table I cell.
fn nonbg_claim(s: &PaperSchedule, nb: usize) -> LocationClaim {
    match s.claims[nb % P_NONBG] {
        0 => LocationClaim::FineOnly,
        1 => LocationClaim::CoarseOnly,
        _ => LocationClaim::FineAndCoarse,
    }
}

/// Resolves the role of the `d`-th declaring app. Every split is a
/// Bresenham or interleave over the *previous* split's ordinal, so the
/// funnel is exact at full periods and proportionally correct at any
/// prefix.
fn role_from_ordinal(s: &PaperSchedule, d: usize) -> DeclaringRole {
    let phi = bres(d, P_FUNCTIONAL, P_DECLARING);
    let functional = bres_hit(d, P_FUNCTIONAL, P_DECLARING);
    let beta = bres(phi, P_BACKGROUND, P_FUNCTIONAL);
    if functional && bres_hit(phi, P_BACKGROUND, P_FUNCTIONAL) {
        let cell = s.cells[beta % P_BACKGROUND] as usize;
        return DeclaringRole {
            claim: TABLE1_PAPER[cell].0,
            functional: true,
            background: true,
            auto_start: bres_hit(beta, P_BG_AUTO, P_BACKGROUND),
            cell,
            interval: s.intervals[beta % P_BACKGROUND] as usize,
        };
    }
    let claim = nonbg_claim(s, d - beta);
    if functional {
        let gamma = phi - beta;
        DeclaringRole {
            claim,
            functional: true,
            background: false,
            auto_start: bres_hit(gamma, P_FG_AUTO, P_FG_FUNCTIONAL),
            cell: 0,
            interval: 0,
        }
    } else {
        DeclaringRole {
            claim,
            functional: false,
            background: false,
            auto_start: false,
            cell: 0,
            interval: 0,
        }
    }
}

impl Quotas {
    /// Quotas for a corpus of `total` apps, counted off the generation
    /// schedule itself (so generation matches them *exactly* at every
    /// scale). At `total == 2800` the quotas are the paper's integers.
    ///
    /// # Panics
    ///
    /// Panics if `total == 0`.
    #[must_use]
    pub fn scaled(total: usize) -> Self {
        assert!(total > 0, "corpus must have at least one app");
        let s = schedule();
        let mut q = Self {
            total,
            declaring: 0,
            fine_only: 0,
            coarse_only: 0,
            both: 0,
            functional: 0,
            auto_start: 0,
            background: 0,
            bg_auto_start: 0,
            table1: TABLE1_PAPER.iter().map(|&(claim, combo, _)| (claim, combo, 0)).collect(),
            intervals: INTERVALS_PAPER.iter().map(|&(secs, _)| (secs, 0)).collect(),
        };
        let mut d = 0usize;
        for i in 0..total {
            if !slot_declares(s, i) {
                continue;
            }
            let role = role_from_ordinal(s, d);
            d += 1;
            q.declaring += 1;
            match role.claim {
                LocationClaim::FineOnly => q.fine_only += 1,
                LocationClaim::CoarseOnly => q.coarse_only += 1,
                LocationClaim::FineAndCoarse => q.both += 1,
                LocationClaim::None => {}
            }
            if role.functional {
                q.functional += 1;
            }
            if role.auto_start {
                q.auto_start += 1;
            }
            if role.background {
                q.background += 1;
                if role.auto_start {
                    q.bg_auto_start += 1;
                }
                q.table1[role.cell].2 += 1;
                q.intervals[role.interval].1 += 1;
            }
        }
        q
    }

    /// Background apps per claim row of Table I.
    #[must_use]
    pub fn table1_row_total(&self, claim: LocationClaim) -> usize {
        self.table1.iter().filter(|(c, _, _)| *c == claim).map(|(_, _, n)| n).sum()
    }
}

/// The planted truth for one generated app — what a perfect measurement
/// would recover.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GroundTruth {
    /// Declared permission posture.
    pub claim: LocationClaim,
    /// Whether the app ever requests location.
    pub functional: bool,
    /// Whether it requests right at launch.
    pub auto_start: bool,
    /// The provider combination it registers (if functional).
    pub combo: Option<ProviderCombo>,
    /// Its background polling interval (if it polls in background).
    pub bg_interval_s: Option<i64>,
    /// What the app does with the fixes it reads: nothing, a sanitized
    /// upload, or a raw upload — what a perfect taint analysis recovers.
    pub exfil: Exfiltration,
}

/// A corpus entry: the app, its store category, the planted truth, and
/// (when the sharing knob selected it) the shared SDK fragment it links.
#[derive(Debug, Clone)]
pub struct MarketApp {
    /// The installable app.
    pub app: App,
    /// Store category.
    pub category: Category,
    /// Ground truth for calibration checks.
    pub truth: GroundTruth,
    /// The shared SDK fragment linked into this app, if any. The static
    /// analyzer wires its entry into the launcher activity; the fragment
    /// is sink-free on reachable paths so classifications are unaffected.
    pub sdk: Option<Arc<SdkLib>>,
}

/// Corpus generator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CorpusConfig {
    /// Apps per category (paper: 100).
    pub apps_per_category: usize,
    /// RNG seed for all per-slot draws.
    pub seed: u64,
    /// Percent of apps (0–100) that embed the shared SDK fragment.
    pub sdk_share_percent: u8,
    /// Market crawl epoch this corpus represents; 0 is the initial crawl.
    pub snapshot: u32,
    /// Parts-per-million chance per epoch that an app ships an update
    /// (which redraws its behavioral RNG).
    pub churn_ppm: u32,
}

impl CorpusConfig {
    /// The paper's scale: 28 categories × 100 apps.
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            apps_per_category: 100,
            seed: 0x5EED_AB99,
            sdk_share_percent: 0,
            snapshot: 0,
            churn_ppm: 10_000,
        }
    }

    /// A scaled-down corpus with `apps_per_category` apps per category.
    ///
    /// # Panics
    ///
    /// Panics if `apps_per_category == 0`.
    #[must_use]
    pub fn scaled(apps_per_category: usize) -> Self {
        assert!(apps_per_category > 0);
        Self {
            apps_per_category,
            ..Self::paper_scale()
        }
    }

    /// Same corpus with `percent` of apps embedding the shared SDK.
    ///
    /// # Panics
    ///
    /// Panics if `percent > 100`.
    #[must_use]
    pub fn with_sdk_share(mut self, percent: u8) -> Self {
        assert!(percent <= 100, "sdk share is a percentage");
        self.sdk_share_percent = percent;
        self
    }

    /// The same market as crawled at a later `snapshot` epoch: apps hit by
    /// churn in epochs `1..=snapshot` have shipped updates.
    #[must_use]
    pub fn at_snapshot(mut self, snapshot: u32) -> Self {
        self.snapshot = snapshot;
        self
    }

    /// Same corpus with a different per-epoch update probability.
    ///
    /// # Panics
    ///
    /// Panics if `ppm > 1_000_000`.
    #[must_use]
    pub fn with_churn_ppm(mut self, ppm: u32) -> Self {
        assert!(ppm <= 1_000_000, "churn is parts-per-million");
        self.churn_ppm = ppm;
        self
    }

    /// Total apps this configuration generates.
    #[must_use]
    pub fn total(&self) -> usize {
        ALL_CATEGORIES.len() * self.apps_per_category
    }
}

impl Default for CorpusConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

// Domain-separation tags for the per-slot hashes.
const TAG_BEHAVIOR: u8 = 0xB1;
const TAG_SDK: u8 = 0x5D;
const TAG_CHURN: u8 = 0xC4;
const TAG_EXFIL: u8 = 0xEF;

/// Seeded per-slot hash: every per-app draw is keyed off
/// `(seed, index, extra, tag)` so slots are independent of each other and
/// of the corpus size.
fn slot_hash(seed: u64, index: usize, extra: u32, tag: u8) -> u64 {
    let mut buf = [0u8; 21];
    buf[..8].copy_from_slice(&seed.to_le_bytes());
    buf[8..16].copy_from_slice(&(index as u64).to_le_bytes());
    buf[16..20].copy_from_slice(&extra.to_le_bytes());
    if let Some(last) = buf.last_mut() {
        *last = tag;
    }
    ir::fnv1a(&buf)
}

/// How many update epochs in `1..=cfg.snapshot` hit slot `index` — the
/// app's "version". A bumped version redraws the slot's behavioral RNG.
#[must_use]
pub fn app_version(cfg: &CorpusConfig, index: usize) -> u32 {
    (1..=cfg.snapshot).filter(|&epoch| churn_hit(cfg, index, epoch)).count() as u32
}

fn churn_hit(cfg: &CorpusConfig, index: usize, epoch: u32) -> bool {
    slot_hash(cfg.seed, index, epoch, TAG_CHURN) % 1_000_000 < u64::from(cfg.churn_ppm)
}

/// Whether slot `index` shipped any update between the two snapshots.
/// O(|snapshot delta|) — the version gate incremental sweeps use to skip
/// digest computation for the overwhelming majority of apps.
#[must_use]
pub fn version_changed(prev: &CorpusConfig, next: &CorpusConfig, index: usize) -> bool {
    let (lo, hi) = if prev.snapshot <= next.snapshot {
        (prev.snapshot, next.snapshot)
    } else {
        (next.snapshot, prev.snapshot)
    };
    ((lo + 1)..=hi).any(|epoch| churn_hit(next, index, epoch))
}

fn slot_has_sdk(cfg: &CorpusConfig, index: usize) -> bool {
    slot_hash(cfg.seed, index, 0, TAG_SDK) % 100 < u64::from(cfg.sdk_share_percent)
}

/// What a *functional* slot does with its fixes: 40% keep them on
/// device, 40% upload sanitized (degree drawn uniformly from the five
/// recognized sanitizers), 20% upload raw. SDK-linked apps route the
/// upload through the fragment's geo forwarder, exercising the cached
/// transfer tables; the draw is snapshot-independent like the SDK draw,
/// so churn redraws behavior without moving the taint mix.
fn slot_exfil(cfg: &CorpusConfig, index: usize) -> Exfiltration {
    let h = slot_hash(cfg.seed, index, 0, TAG_EXFIL);
    let via_sdk = slot_has_sdk(cfg, index);
    match h % 100 {
        0..=39 => Exfiltration::None,
        40..=79 => Exfiltration::Sanitized {
            decimals: ((h / 100) % 5) as u8,
            via_sdk,
        },
        _ => Exfiltration::Raw { via_sdk },
    }
}

/// Package name of slot `index` — stable across scales and snapshots.
#[must_use]
pub fn package_at(index: usize) -> String {
    format!("com.{}.app{:03}", ALL_CATEGORIES[index % NCATS].slug(), index / NCATS)
}

/// Materializes slot `index` under `cfg` given its scheduled role.
fn materialize(cfg: &CorpusConfig, index: usize, role: Option<DeclaringRole>) -> MarketApp {
    let category = ALL_CATEGORIES[index % NCATS];
    let version = app_version(cfg, index);
    let mut rng = StdRng::seed_from_u64(slot_hash(cfg.seed, index, version, TAG_BEHAVIOR));
    let (claim, behavior, functional, auto_start, combo, bg_interval, service) = match role {
        Some(role) if role.background => {
            let combo = TABLE1_PAPER[role.cell].1;
            let interval = INTERVALS_PAPER[role.interval].0;
            let fg_interval = rng.gen_range(1..=30);
            let behavior = LocationBehavior::requester(combo.providers().iter().copied(), fg_interval)
                .auto_start(role.auto_start)
                .background_interval(interval);
            (role.claim, behavior, true, role.auto_start, Some(combo), Some(interval), true)
        }
        Some(role) if role.functional => {
            let combo = pick_fg_combo(role.claim, &mut rng);
            let interval = rng.gen_range(1..=60);
            let behavior = LocationBehavior::requester(combo.providers().iter().copied(), interval).auto_start(role.auto_start);
            (role.claim, behavior, true, role.auto_start, Some(combo), None, false)
        }
        // over-privileged inert app: declares but never requests
        Some(role) => (role.claim, LocationBehavior::inert(), false, false, None, None, false),
        None => (
            LocationClaim::None,
            LocationBehavior::inert(),
            false,
            false,
            None,
            None,
            false,
        ),
    };
    let exfil = if functional {
        slot_exfil(cfg, index)
    } else {
        Exfiltration::None
    };
    let behavior = behavior.exfiltrate(exfil);
    let mut builder = AppBuilder::new(package_at(index))
        .location_claim(claim)
        .permission(Permission::Internet)
        .component(Component::new(ComponentKind::Activity, ".MainActivity").with_action(ACTION_MAIN))
        .location_service(service)
        .behavior(behavior);
    if rng.gen::<f64>() < 0.5 {
        builder = builder.permission(Permission::AccessNetworkState);
    }
    if service {
        builder = builder.permission(Permission::WakeLock);
    }
    // background auto-start apps register at boot, so they declare
    // the receiver + permission pair real Android requires
    if service && auto_start {
        builder = builder
            .component(Component::new(ComponentKind::Receiver, ".BootReceiver").with_action(ACTION_BOOT_COMPLETED))
            .permission(Permission::ReceiveBootCompleted);
    }
    let sdk = slot_has_sdk(cfg, index).then(crate::sdk::shared);
    MarketApp {
        app: builder.build(),
        category,
        truth: GroundTruth {
            claim,
            functional,
            auto_start,
            combo,
            bg_interval_s: bg_interval,
            exfil,
        },
        sdk,
    }
}

/// A lazy walk over the corpus in index order; see [`stream`].
#[derive(Debug, Clone)]
pub struct CorpusStream {
    cfg: CorpusConfig,
    next: usize,
    declaring_seen: usize,
}

impl Iterator for CorpusStream {
    type Item = MarketApp;

    fn next(&mut self) -> Option<MarketApp> {
        if self.next >= self.cfg.total() {
            return None;
        }
        let index = self.next;
        self.next += 1;
        let s = schedule();
        let role = if slot_declares(s, index) {
            let role = role_from_ordinal(s, self.declaring_seen);
            self.declaring_seen += 1;
            Some(role)
        } else {
            None
        };
        Some(materialize(&self.cfg, index, role))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = self.cfg.total() - self.next;
        (left, Some(left))
    }
}

impl ExactSizeIterator for CorpusStream {}

/// Streams the corpus one app at a time without materializing it.
/// Collecting the stream is bit-identical to [`generate`], and any prefix
/// is bit-identical to the same prefix of a larger `apps_per_category` —
/// the property that lets million-app sweeps run in constant memory.
#[must_use]
pub fn stream(cfg: &CorpusConfig) -> CorpusStream {
    CorpusStream {
        cfg: *cfg,
        next: 0,
        declaring_seen: 0,
    }
}

/// Random access: the app the stream would yield at `index`, in
/// O(categories) time.
///
/// # Panics
///
/// Panics if `index >= cfg.total()`.
#[must_use]
pub fn app_at(cfg: &CorpusConfig, index: usize) -> MarketApp {
    assert!(index < cfg.total(), "index {index} out of corpus bounds");
    let s = schedule();
    let role = if slot_declares(s, index) {
        Some(role_from_ordinal(s, declaring_ordinal(s, index)))
    } else {
        None
    };
    materialize(cfg, index, role)
}

/// Generates the corpus described by `cfg`. Deterministic per seed;
/// equal to collecting [`stream`].
#[must_use]
pub fn generate(cfg: &CorpusConfig) -> Vec<MarketApp> {
    stream(cfg).collect()
}

/// Combo choice for foreground-only requesters, respecting the claim.
fn pick_fg_combo(claim: LocationClaim, rng: &mut StdRng) -> ProviderCombo {
    if claim.allows_fine() {
        const COMBOS: [ProviderCombo; 6] = [
            ProviderCombo::Gps,
            ProviderCombo::Fused,
            ProviderCombo::GpsNetwork,
            ProviderCombo::Network,
            ProviderCombo::FusedNetwork,
            ProviderCombo::Passive,
        ];
        const WEIGHTS: [f64; 6] = [0.35, 0.25, 0.15, 0.12, 0.08, 0.05];
        COMBOS[weighted_index(rng, &WEIGHTS)]
    } else {
        const COMBOS: [ProviderCombo; 3] = [ProviderCombo::Network, ProviderCombo::Fused, ProviderCombo::Passive];
        const WEIGHTS: [f64; 3] = [0.6, 0.25, 0.15];
        COMBOS[weighted_index(rng, &WEIGHTS)]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_scale_quotas_match_paper_integers() {
        let q = Quotas::scaled(2800);
        assert_eq!(q.declaring, 1137);
        assert_eq!(q.fine_only, 193);
        assert_eq!(q.coarse_only, 182);
        assert_eq!(q.both, 762);
        assert_eq!(q.fine_only + q.coarse_only + q.both, 1137);
        assert_eq!(q.functional, 528);
        assert_eq!(q.auto_start, 393);
        assert_eq!(q.background, 102);
        assert_eq!(q.bg_auto_start, 85);
        let t1_total: usize = q.table1.iter().map(|&(_, _, c)| c).sum();
        assert_eq!(t1_total, 102);
        assert_eq!(q.table1_row_total(LocationClaim::FineOnly), 18);
        assert_eq!(q.table1_row_total(LocationClaim::CoarseOnly), 6);
        assert_eq!(q.table1_row_total(LocationClaim::FineAndCoarse), 78);
        let iv_total: usize = q.intervals.iter().map(|&(_, c)| c).sum();
        assert_eq!(iv_total, 102);
        // every Table I cell lands on its paper integer exactly
        for (planted, paper) in q.table1.iter().zip(&TABLE1_PAPER) {
            assert_eq!(planted, paper);
        }
        for (planted, paper) in q.intervals.iter().zip(&INTERVALS_PAPER) {
            assert_eq!(planted, paper);
        }
    }

    #[test]
    fn paper_interval_cdf_anchors() {
        let q = Quotas::scaled(2800);
        let at_or_below = |cut: i64| -> usize { q.intervals.iter().filter(|&&(s, _)| s <= cut).map(|&(_, c)| c).sum() };
        assert_eq!(at_or_below(10), 59); // 57.8 %
        assert_eq!(at_or_below(60), 70); // 68.6 %
        assert_eq!(at_or_below(600), 85); // ≈ 83 %
        assert_eq!(at_or_below(7200), 102);
        // exactly one app at the 7200 s maximum
        assert_eq!(q.intervals.iter().find(|&&(s, _)| s == 7200).unwrap().1, 1);
    }

    #[test]
    fn scaled_quotas_are_consistent() {
        for per_cat in [1usize, 3, 10, 25, 100, 250] {
            let q = Quotas::scaled(per_cat * 28);
            assert!(q.declaring <= q.total);
            assert!(q.functional <= q.declaring);
            assert!(q.background <= q.functional);
            assert!(q.bg_auto_start <= q.background);
            assert!(q.auto_start <= q.functional);
            assert_eq!(q.fine_only + q.coarse_only + q.both, q.declaring);
            let t1: usize = q.table1.iter().map(|&(_, _, c)| c).sum();
            assert_eq!(t1, q.background, "table1 cells must sum to bg count at {per_cat}");
            let iv: usize = q.intervals.iter().map(|&(_, c)| c).sum();
            assert_eq!(iv, q.background);
        }
    }

    #[test]
    fn all_reach_classes_appear_from_small_scales_up() {
        // the cross-validation suites rely on every class existing even in
        // small corpora — the chained-ordinal schedule guarantees it
        for per_cat in [4usize, 6, 8, 12] {
            let q = Quotas::scaled(per_cat * 28);
            assert!(q.declaring > q.functional, "inert apps at {per_cat}");
            assert!(q.functional > q.background, "fg-only apps at {per_cat}");
            assert!(q.background > q.bg_auto_start, "bg-capable apps at {per_cat}");
            assert!(q.bg_auto_start > 0, "auto-start apps at {per_cat}");
        }
    }

    #[test]
    fn generation_matches_quotas_exactly() {
        let cfg = CorpusConfig::scaled(20);
        let corpus = generate(&cfg);
        let q = Quotas::scaled(cfg.total());
        assert_eq!(corpus.len(), q.total);
        let declaring = corpus.iter().filter(|a| a.truth.claim.declares_location()).count();
        assert_eq!(declaring, q.declaring);
        let functional = corpus.iter().filter(|a| a.truth.functional).count();
        assert_eq!(functional, q.functional);
        let background = corpus.iter().filter(|a| a.truth.bg_interval_s.is_some()).count();
        assert_eq!(background, q.background);
        let bg_auto = corpus
            .iter()
            .filter(|a| a.truth.bg_interval_s.is_some() && a.truth.auto_start)
            .count();
        assert_eq!(bg_auto, q.bg_auto_start);
        let auto = corpus.iter().filter(|a| a.truth.auto_start).count();
        assert_eq!(auto, q.auto_start.min(q.bg_auto_start + (q.functional - q.background)));
    }

    #[test]
    fn generated_behaviors_respect_declared_permissions() {
        let corpus = generate(&CorpusConfig::scaled(15));
        for entry in &corpus {
            let claim = entry.app.manifest().location_claim();
            assert_eq!(claim, entry.truth.claim);
            for &p in entry.app.behavior().providers() {
                assert!(p.permitted_for(claim), "{}: {p} not permitted under {claim}", entry.app);
            }
        }
    }

    #[test]
    fn generated_apps_declare_components() {
        let corpus = generate(&CorpusConfig::scaled(8));
        for entry in &corpus {
            let m = entry.app.manifest();
            assert!(
                m.components().iter().any(|c| c.kind == ComponentKind::Activity),
                "{}: every app has a launcher activity",
                entry.app
            );
            let is_bg = entry.truth.bg_interval_s.is_some();
            assert_eq!(m.has_location_service(), is_bg, "{}", entry.app);
            assert_eq!(m.has_boot_receiver(), is_bg && entry.truth.auto_start, "{}", entry.app);
        }
    }

    #[test]
    fn generation_is_deterministic() {
        let cfg = CorpusConfig::scaled(5);
        let a = generate(&cfg);
        let b = generate(&cfg);
        assert_eq!(a.len(), b.len());
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(x.app, y.app);
            assert_eq!(x.truth, y.truth);
        }
    }

    #[test]
    fn different_seeds_differ() {
        let mut cfg = CorpusConfig::scaled(5);
        let a = generate(&cfg);
        cfg.seed ^= 1;
        let b = generate(&cfg);
        assert!(a.iter().zip(&b).any(|(x, y)| x.truth != y.truth));
    }

    #[test]
    fn location_heavy_categories_declare_more() {
        let corpus = generate(&CorpusConfig::paper_scale());
        let rate = |cat: Category| -> f64 {
            let apps: Vec<_> = corpus.iter().filter(|a| a.category == cat).collect();
            apps.iter().filter(|a| a.truth.claim.declares_location()).count() as f64 / apps.len() as f64
        };
        assert!(rate(Category::TravelAndLocal) > rate(Category::Comics));
        assert!(rate(Category::Weather) > rate(Category::LibrariesAndDemo));
    }

    #[test]
    fn combo_round_trips_through_provider_sets() {
        for combo in TABLE1_COLUMNS {
            assert_eq!(ProviderCombo::from_providers(combo.providers()), Some(combo));
        }
        assert_eq!(
            ProviderCombo::from_providers(&[ProviderKind::Network, ProviderKind::Gps]),
            Some(ProviderCombo::GpsNetwork)
        );
        assert_eq!(ProviderCombo::from_providers(&[]), None);
    }

    #[test]
    fn apportion_preserves_total_and_zeroes() {
        let out = apportion(&[32, 14, 5, 0, 6], 10);
        assert_eq!(out.iter().sum::<usize>(), 10);
        assert_eq!(out[3], 0, "zero-weight cell must stay zero");
        let out = apportion(&[1, 1, 1], 0);
        assert_eq!(out, vec![0, 0, 0]);
    }

    #[test]
    fn interleave_is_quota_exact_over_a_period() {
        for counts in [
            vec![175, 176, 684],
            vec![7, 3, 4, 2, 1, 1, 6, 32, 9, 7, 14, 5, 4, 6, 1],
            vec![20, 15, 12, 12, 6, 5, 6, 5, 4, 9, 7, 1],
        ] {
            let table = interleave(&counts);
            assert_eq!(table.len(), counts.iter().sum::<usize>());
            for (k, &c) in counts.iter().enumerate() {
                let got = table.iter().filter(|&&x| x as usize == k).count();
                assert_eq!(got, c, "bucket {k}");
            }
        }
    }

    #[test]
    fn random_access_matches_stream() {
        let cfg = CorpusConfig::scaled(7).with_sdk_share(35).at_snapshot(2);
        for (i, entry) in stream(&cfg).enumerate() {
            let direct = app_at(&cfg, i);
            assert_eq!(direct.app, entry.app, "slot {i}");
            assert_eq!(direct.truth, entry.truth, "slot {i}");
            assert_eq!(direct.sdk.is_some(), entry.sdk.is_some(), "slot {i}");
            assert_eq!(entry.app.manifest().package(), package_at(i));
        }
    }

    #[test]
    fn stream_prefix_is_stable_under_larger_totals() {
        let small = CorpusConfig::scaled(4).with_sdk_share(50);
        let big = CorpusConfig {
            apps_per_category: 11,
            ..small
        };
        for (i, (s, b)) in stream(&small).zip(stream(&big)).enumerate() {
            assert_eq!(s.app, b.app, "slot {i}");
            assert_eq!(s.truth, b.truth, "slot {i}");
            assert_eq!(s.sdk.is_some(), b.sdk.is_some(), "slot {i}");
        }
        assert_eq!(stream(&small).len(), small.total());
    }

    #[test]
    fn sdk_share_knob_controls_membership() {
        let none = generate(&CorpusConfig::scaled(5));
        assert!(none.iter().all(|e| e.sdk.is_none()), "default share is 0");
        let all = generate(&CorpusConfig::scaled(5).with_sdk_share(100));
        assert!(all.iter().all(|e| e.sdk.is_some()));
        let cfg = CorpusConfig::scaled(10).with_sdk_share(50);
        let half = generate(&cfg);
        let n = half.iter().filter(|e| e.sdk.is_some()).count();
        let total = cfg.total();
        assert!(n > total * 35 / 100 && n < total * 65 / 100, "{n}/{total} apps with sdk");
        // membership is a per-slot property: snapshots don't change it
        let later = generate(&cfg.at_snapshot(4));
        for (a, b) in half.iter().zip(&later) {
            assert_eq!(a.sdk.is_some(), b.sdk.is_some());
        }
    }

    #[test]
    fn snapshots_churn_behaviors_but_preserve_the_funnel() {
        let cfg = CorpusConfig::scaled(6).with_churn_ppm(200_000);
        let t0 = generate(&cfg);
        let t3 = generate(&cfg.at_snapshot(3));
        let mut changed = 0usize;
        for (i, (a, b)) in t0.iter().zip(&t3).enumerate() {
            // roles are scheduled per slot, so the funnel never moves
            assert_eq!(a.truth.claim, b.truth.claim, "slot {i}");
            assert_eq!(a.truth.functional, b.truth.functional, "slot {i}");
            assert_eq!(a.truth.auto_start, b.truth.auto_start, "slot {i}");
            assert_eq!(a.truth.bg_interval_s, b.truth.bg_interval_s, "slot {i}");
            changed += usize::from(a.app != b.app);
            assert_eq!(
                version_changed(&cfg, &cfg.at_snapshot(3), i),
                app_version(&cfg.at_snapshot(3), i) > 0,
                "slot {i}"
            );
        }
        // 20 % churn over three epochs must have updated *something*
        assert!(changed > 0, "churn changed no app");
        assert!(changed < t0.len(), "churn changed every app");
    }

    #[test]
    fn version_gate_is_sound() {
        // whenever the materialized app differs between snapshots, the
        // version gate must have flagged the slot (never vice versa
        // misses): unchanged version implies bit-identical app
        let base = CorpusConfig::scaled(5).with_churn_ppm(300_000);
        let next = base.at_snapshot(2);
        for i in 0..base.total() {
            if !version_changed(&base, &next, i) {
                let a = app_at(&base, i);
                let b = app_at(&next, i);
                assert_eq!(a.app, b.app, "slot {i} changed without a version bump");
            }
        }
    }
}
