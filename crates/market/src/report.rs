//! Plain-text renderings of the study's tables and figures.

use crate::corpus::TABLE1_COLUMNS;
use crate::reach::{ReachReport, ALL_CLASSES};
use crate::stats::{HeadlineStats, IntervalCdf, ProviderTable};
use backwatch_android::permission::LocationClaim;
use std::fmt::Write as _;

/// Renders the §III-B headline numbers as indented prose-style lines.
#[must_use]
pub fn render_headline(h: &HeadlineStats) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Market study headline statistics");
    let _ = writeln!(s, "  apps examined:                 {}", h.total_apps);
    let _ = writeln!(
        s,
        "  declare location permission:   {} ({:.1}%)",
        h.declaring,
        pct(h.declaring, h.total_apps)
    );
    let _ = writeln!(
        s,
        "    fine only:                   {} ({:.0}%)",
        h.fine_only,
        pct(h.fine_only, h.declaring)
    );
    let _ = writeln!(
        s,
        "    coarse only:                 {} ({:.0}%)",
        h.coarse_only,
        pct(h.coarse_only, h.declaring)
    );
    let _ = writeln!(
        s,
        "    both:                        {} ({:.0}%)",
        h.both,
        pct(h.both, h.declaring)
    );
    let _ = writeln!(s, "  functionally access location:  {}", h.functional);
    let _ = writeln!(s, "    auto-request at launch:      {}", h.auto_start);
    let _ = writeln!(
        s,
        "  access location in background: {} ({:.1}% of functional)",
        h.background,
        100.0 * h.background_share_of_functional()
    );
    let _ = writeln!(s, "    of which auto-start:         {}", h.bg_auto_start);
    let _ = writeln!(
        s,
        "    claim fine:                  {} ({:.2}%)",
        h.bg_claim_fine,
        pct(h.bg_claim_fine, h.background)
    );
    let _ = writeln!(
        s,
        "    use precise fixes:           {} ({:.1}%)",
        h.bg_use_fine,
        pct(h.bg_use_fine, h.bg_claim_fine)
    );
    let _ = writeln!(
        s,
        "    coarse despite fine claim:   {} ({:.1}%)",
        h.bg_coarse_despite_fine,
        pct(h.bg_coarse_despite_fine, h.bg_claim_fine)
    );
    s
}

/// Renders Table I (provider combinations × declared granularity).
#[must_use]
pub fn render_table1(t: &ProviderTable) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "TABLE I: Usage of location provider (background apps)");
    let _ = write!(s, "{:<14}", "Granularity");
    for combo in TABLE1_COLUMNS {
        let _ = write!(s, "{:>18}", combo.to_string());
    }
    let _ = writeln!(s, "{:>8}", "total");
    for claim in ProviderTable::rows() {
        let label = match claim {
            LocationClaim::FineOnly => "Fine",
            LocationClaim::CoarseOnly => "Coarse",
            LocationClaim::FineAndCoarse => "Fine & Coarse",
            LocationClaim::None => "None",
        };
        let _ = write!(s, "{label:<14}");
        for combo in TABLE1_COLUMNS {
            let _ = write!(s, "{:>18}", t.cell(claim, combo));
        }
        let _ = writeln!(s, "{:>8}", t.row_total(claim));
    }
    if t.unclassified > 0 {
        let _ = writeln!(s, "(unclassified provider sets: {})", t.unclassified);
    }
    s
}

/// Renders the static reachability funnel and per-class counts.
#[must_use]
pub fn render_reach(r: &ReachReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "Static location-reachability analysis");
    let _ = writeln!(
        s,
        "  funnel: {} apps -> {} declaring -> {} sink-reachable -> {} background -> {} auto-start",
        r.total, r.declaring, r.functional, r.background, r.auto_start
    );
    for class in ALL_CLASSES {
        let _ = writeln!(s, "  {:<20} {}", class.name(), r.class_count(class));
    }
    if r.parse_failures > 0 {
        let _ = writeln!(s, "  (IR round-trip failures: {})", r.parse_failures);
    }
    s
}

/// Renders Figure 1 (interval CDF) as an `interval  fraction` series.
#[must_use]
pub fn render_fig1(cdf: &IntervalCdf) -> String {
    let mut s = String::new();
    let _ = writeln!(
        s,
        "FIGURE 1: CDF of background location-request intervals ({} apps)",
        cdf.len()
    );
    let _ = writeln!(s, "{:>10}  {:>8}", "interval_s", "cdf");
    for (x, f) in cdf.series() {
        let _ = writeln!(s, "{x:>10}  {:>7.1}%", f * 100.0);
    }
    if let Some(max) = cdf.max_interval() {
        let _ = writeln!(s, "max observed interval: {max} s");
    }
    s
}

/// Table I as CSV: one row per (granularity, combo) cell.
#[must_use]
pub fn table1_csv(t: &ProviderTable) -> String {
    let mut s = String::from("granularity,combo,count\n");
    for claim in ProviderTable::rows() {
        let label = match claim {
            LocationClaim::FineOnly => "fine",
            LocationClaim::CoarseOnly => "coarse",
            LocationClaim::FineAndCoarse => "fine_and_coarse",
            LocationClaim::None => "none",
        };
        for combo in TABLE1_COLUMNS {
            let _ = writeln!(s, "{label},{combo},{}", t.cell(claim, combo));
        }
    }
    s
}

/// Figure 1 as CSV: `interval_s,cdf`.
#[must_use]
pub fn fig1_csv(cdf: &IntervalCdf) -> String {
    let mut s = String::from("interval_s,cdf\n");
    for (x, f) in cdf.series() {
        let _ = writeln!(s, "{x},{f:.6}");
    }
    s
}

fn pct(n: usize, d: usize) -> f64 {
    if d == 0 {
        0.0
    } else {
        100.0 * n as f64 / d as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::CorpusConfig;
    use crate::run_study;

    #[test]
    fn reports_render_without_panicking_and_mention_key_numbers() {
        let study = run_study(&CorpusConfig::scaled(8));
        let headline = render_headline(&study.headline);
        assert!(headline.contains("background"));
        assert!(headline.contains(&study.headline.background.to_string()));
        let table = render_table1(&study.provider_table);
        assert!(table.contains("TABLE I"));
        assert!(table.contains("Fine & Coarse"));
        let fig = render_fig1(&study.interval_cdf);
        assert!(fig.contains("FIGURE 1"));
        assert!(fig.contains("7200"));
    }

    #[test]
    fn reach_report_renders_funnel_and_classes() {
        let study = run_study(&CorpusConfig::scaled(8));
        let r = crate::reach::analyze(&study.corpus);
        let text = render_reach(&r);
        assert!(text.contains("funnel:"));
        assert!(text.contains(&format!("{} background", r.background)));
        for class in ALL_CLASSES {
            assert!(text.contains(class.name()), "missing {class}");
        }
    }

    #[test]
    fn csv_exports_have_expected_shapes() {
        let study = run_study(&CorpusConfig::scaled(8));
        let t1 = table1_csv(&study.provider_table);
        // header + 3 rows x 8 combos
        assert_eq!(t1.lines().count(), 1 + 3 * 8);
        let total: usize = t1
            .lines()
            .skip(1)
            .map(|l| l.rsplit(',').next().unwrap().parse::<usize>().unwrap())
            .sum();
        assert_eq!(total, study.provider_table.total());
        let f1 = fig1_csv(&study.interval_cdf);
        assert!(f1.starts_with("interval_s,cdf"));
        assert_eq!(f1.lines().count(), 1 + crate::stats::FIG1_POINTS.len());
    }

    #[test]
    fn empty_study_renders_cleanly() {
        let t = crate::stats::provider_table(&[], &[]);
        let s = render_table1(&t);
        assert!(s.contains("TABLE I"));
        let cdf = crate::stats::interval_cdf(&[]);
        let s = render_fig1(&cdf);
        assert!(s.contains("FIGURE 1"));
    }
}
