//! Interprocedural location-reachability analysis — the static half of
//! the pipeline, upgraded from manifest triage to sink analysis.
//!
//! The paper stops its static stage at permission claims and relies on
//! the device runs for everything past 1,137/2,800. This module closes
//! that gap the way follow-up work does: lower each app to the smali-like
//! IR, discover entry points from its manifest components, and run a
//! worklist reachability pass to the location-API sinks. An app is then
//! classified by *which kind of entry point* reaches a sink:
//!
//! - no location permission, or no sink reachable → **non-accessor**
//! - reachable only from activity entries → **foreground-only**
//! - reachable from a service entry → **background-capable**
//! - reachable from a `BOOT_COMPLETED` receiver (with the matching
//!   permission) → **auto-start**
//!
//! Provider sets are inferred from string constants in reachable methods
//! that invoke `LocationManager` sinks, plus the fused client's own sink
//! signatures, which lets the analysis rebuild Table I without running a
//! single app. Soundness caveats (reflection, ICC) are in DESIGN.md §10.
//!
//! Like the other two measurement channels (manifest XML, dumpsys text),
//! the analysis consumes the *serialized* IR: each lowered program is
//! rendered to text and parsed back before being analyzed, and programs
//! that fail to parse are counted and classified as non-accessors rather
//! than aborting the sweep.

use crate::corpus::{MarketApp, ProviderCombo};
use crate::sdk::SdkLib;
use crate::stats::ProviderTable;
use backwatch_android::app::{App, ComponentKind, Manifest};
use backwatch_android::ir::{self, IrInstr, IrProgram};
use backwatch_android::permission::{LocationClaim, Permission};
use backwatch_android::provider::ProviderKind;
use std::collections::{BTreeMap, BTreeSet, VecDeque};

/// The four classes the static analyzer assigns.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ReachClass {
    /// Cannot access location: no permission, or no reachable sink.
    NonAccessor,
    /// Sinks reachable only from activity entry points.
    ForegroundOnly,
    /// Sinks reachable from a service entry point.
    BackgroundCapable,
    /// Sinks reachable from a boot receiver — background at boot, no user
    /// action needed (the paper's 85 apps).
    AutoStart,
}

/// All classes, in funnel order.
pub const ALL_CLASSES: [ReachClass; 4] = [
    ReachClass::NonAccessor,
    ReachClass::ForegroundOnly,
    ReachClass::BackgroundCapable,
    ReachClass::AutoStart,
];

impl ReachClass {
    /// Short stable label for reports.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ReachClass::NonAccessor => "non-accessor",
            ReachClass::ForegroundOnly => "foreground-only",
            ReachClass::BackgroundCapable => "background-capable",
            ReachClass::AutoStart => "auto-start",
        }
    }

    /// Whether the class implies background access (the paper's 102).
    #[must_use]
    pub fn accesses_in_background(&self) -> bool {
        matches!(self, ReachClass::BackgroundCapable | ReachClass::AutoStart)
    }
}

impl std::fmt::Display for ReachClass {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Result of analyzing one program against one manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProgramAnalysis {
    /// The assigned class.
    pub class: ReachClass,
    /// Providers inferred from reachable sink call sites.
    pub providers: BTreeSet<ProviderKind>,
    /// Methods reached by the worklist pass, over all entry points.
    pub reachable_methods: usize,
    /// Declared components whose class is absent from the program.
    pub missing_components: usize,
}

/// Per-app finding of the corpus sweep.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReachFinding {
    /// Package name.
    pub package: String,
    /// The assigned class.
    pub class: ReachClass,
    /// Declared permission posture (from the manifest).
    pub claim: LocationClaim,
    /// Inferred provider set.
    pub providers: BTreeSet<ProviderKind>,
    /// The Table I combination, when the provider set matches one.
    pub combo: Option<ProviderCombo>,
}

/// Aggregated output of the static sweep: the paper's §III funnel,
/// computed without running any app.
#[derive(Debug, Clone)]
pub struct ReachReport {
    /// Per-app findings, in corpus order.
    pub findings: Vec<ReachFinding>,
    /// Total apps analyzed.
    pub total: usize,
    /// Apps declaring a location permission (paper: 1,137).
    pub declaring: usize,
    /// Apps with a reachable sink (paper's 528 functional apps).
    pub functional: usize,
    /// Apps classified background-capable or auto-start (paper: 102).
    pub background: usize,
    /// Apps classified auto-start (paper: 85).
    pub auto_start: usize,
    /// Table I rebuilt statically over the background apps.
    pub table1: ProviderTable,
    /// Lowered programs that failed the text round-trip (counted, not
    /// fatal; also in `market.reach.parse_failures_total`).
    pub parse_failures: usize,
}

impl ReachReport {
    /// Count of apps assigned `class`.
    #[must_use]
    pub fn class_count(&self, class: ReachClass) -> usize {
        self.findings.iter().filter(|f| f.class == class).count()
    }
}

/// Worklist BFS from `entries` over the program's call edges. Returns the
/// set of reached `(class, method)` pairs. Cycles are handled by the
/// visited set; edges into classes the program does not define (framework
/// calls, including the sinks themselves) are not traversed.
fn reachable_from(program: &IrProgram, entries: &[(String, String)]) -> BTreeSet<(String, String)> {
    let mut bodies: BTreeMap<(&str, &str), &[IrInstr]> = BTreeMap::new();
    for class in &program.classes {
        for method in &class.methods {
            bodies.insert((class.name.as_str(), method.name.as_str()), &method.instrs);
        }
    }
    let mut visited: BTreeSet<(String, String)> = BTreeSet::new();
    let mut queue: VecDeque<(String, String)> = VecDeque::new();
    for (c, m) in entries {
        if bodies.contains_key(&(c.as_str(), m.as_str())) && visited.insert((c.clone(), m.clone())) {
            queue.push_back((c.clone(), m.clone()));
        }
    }
    while let Some((c, m)) = queue.pop_front() {
        let Some(instrs) = bodies.get(&(c.as_str(), m.as_str())) else {
            continue;
        };
        for instr in *instrs {
            if let IrInstr::Invoke { class, method } = instr {
                if bodies.contains_key(&(class.as_str(), method.as_str())) && visited.insert((class.clone(), method.clone())) {
                    queue.push_back((class.clone(), method.clone()));
                }
            }
        }
    }
    visited
}

/// Whether any reached method invokes a location sink.
fn reaches_sink(program: &IrProgram, reached: &BTreeSet<(String, String)>) -> bool {
    program.classes.iter().any(|c| {
        c.methods.iter().any(|m| {
            reached.contains(&(c.name.clone(), m.name.clone()))
                && m.instrs
                    .iter()
                    .any(|i| matches!(i, IrInstr::Invoke { class, method } if ir::is_sink(class, method)))
        })
    })
}

/// Infers the provider set from the reached methods: provider-named
/// string constants in methods that invoke a `LocationManager` sink, plus
/// the fused provider whenever a fused-client sink is invoked.
fn infer_providers(program: &IrProgram, reached: &BTreeSet<(String, String)>) -> BTreeSet<ProviderKind> {
    let mut providers = BTreeSet::new();
    for class in &program.classes {
        for method in &class.methods {
            if !reached.contains(&(class.name.clone(), method.name.clone())) {
                continue;
            }
            let mut manager_sink = false;
            let mut fused_sink = false;
            for instr in &method.instrs {
                if let IrInstr::Invoke { class: c, method: m } = instr {
                    if ir::is_sink(c, m) {
                        manager_sink |= c == ir::LOCATION_MANAGER_CLASS;
                        fused_sink |= c == ir::FUSED_CLIENT_CLASS;
                    }
                }
            }
            if manager_sink {
                for instr in &method.instrs {
                    if let IrInstr::ConstString(s) = instr {
                        if let Ok(p) = s.parse::<ProviderKind>() {
                            providers.insert(p);
                        }
                    }
                }
            }
            if fused_sink {
                providers.insert(ProviderKind::Fused);
            }
        }
    }
    providers
}

/// Analyzes one program against its manifest: entry-point discovery,
/// reachability, classification, provider inference.
#[must_use]
pub fn analyze_program(manifest: &Manifest, program: &IrProgram) -> ProgramAnalysis {
    crate::obs::register();
    let mut missing_components = 0usize;

    // Entry points, bucketed by the lifecycle that invokes them.
    let mut activity_entries: Vec<(String, String)> = Vec::new();
    let mut service_entries: Vec<(String, String)> = Vec::new();
    let mut boot_entries: Vec<(String, String)> = Vec::new();
    let boot_permitted = manifest.permissions().contains(&Permission::ReceiveBootCompleted);
    for component in manifest.components() {
        let class = component.class_path(manifest.package());
        if program.class(&class).is_none() {
            missing_components += 1;
            crate::obs::REACH_MISSING_COMPONENTS.inc();
            continue;
        }
        let bucket: &mut Vec<(String, String)> = match component.kind {
            ComponentKind::Activity => &mut activity_entries,
            ComponentKind::Service => &mut service_entries,
            ComponentKind::Receiver if component.is_boot_receiver() && boot_permitted => &mut boot_entries,
            // non-boot receivers fire only while the app is interacting
            // with the user, so they gate nothing beyond foreground
            ComponentKind::Receiver => &mut activity_entries,
        };
        for m in ir::entry_methods(component.kind) {
            bucket.push((class.clone(), (*m).to_owned()));
        }
    }

    let class = if !manifest.location_claim().declares_location() {
        // the permission gate: reachable or not, registration would throw
        ReachClass::NonAccessor
    } else {
        let boot = reachable_from(program, &boot_entries);
        let service = reachable_from(program, &service_entries);
        let activity = reachable_from(program, &activity_entries);
        if reaches_sink(program, &boot) {
            ReachClass::AutoStart
        } else if reaches_sink(program, &service) {
            ReachClass::BackgroundCapable
        } else if reaches_sink(program, &activity) {
            ReachClass::ForegroundOnly
        } else {
            ReachClass::NonAccessor
        }
    };

    let all_entries: Vec<(String, String)> = activity_entries
        .iter()
        .chain(&service_entries)
        .chain(&boot_entries)
        .cloned()
        .collect();
    let reached = reachable_from(program, &all_entries);
    let providers = if class == ReachClass::NonAccessor {
        BTreeSet::new()
    } else {
        infer_providers(program, &reached)
    };
    crate::obs::REACH_APPS_CLASSIFIED.inc();
    if class.accesses_in_background() {
        crate::obs::REACH_BACKGROUND_APPS.inc();
    }
    ProgramAnalysis {
        class,
        providers,
        reachable_methods: reached.len(),
        missing_components,
    }
}

/// Lowers a corpus entry's own code and, when it links the shared SDK,
/// wires the fragment's boot call into every launcher activity's
/// `onCreate` — the build-system step that makes library code reachable
/// from app startup. The fragment's *classes* are not appended here; see
/// [`analyze_entry`] for the composed program.
pub(crate) fn lower_with_sdk(entry: &MarketApp) -> IrProgram {
    let mut program = ir::lower(&entry.app);
    if let Some(sdk) = &entry.sdk {
        wire_sdk(&mut program, entry.app.manifest(), sdk);
    }
    program
}

fn wire_sdk(program: &mut IrProgram, manifest: &Manifest, sdk: &SdkLib) {
    let (sdk_class, sdk_method) = sdk.entry();
    for component in manifest.components() {
        if component.kind != ComponentKind::Activity {
            continue;
        }
        let class_path = component.class_path(manifest.package());
        if let Some(class) = program.classes.iter_mut().find(|c| c.name == class_path) {
            if let Some(method) = class.methods.iter_mut().find(|m| m.name == "onCreate") {
                method.instrs.push(IrInstr::Invoke {
                    class: sdk_class.to_owned(),
                    method: sdk_method.to_owned(),
                });
            }
        }
    }
}

/// Analyzes one corpus entry end to end, *including* its linked SDK
/// fragment: the composed program (own classes with the SDK boot call
/// wired in, plus the fragment's classes) goes through the same text
/// round-trip and classification as [`analyze_app`]. Entries without an
/// SDK behave exactly like [`analyze_app`].
#[must_use]
pub fn analyze_entry(entry: &MarketApp) -> ReachFinding {
    analyze_entry_inner(entry).0
}

/// [`analyze_entry`] plus whether the IR text round-trip failed.
pub(crate) fn analyze_entry_inner(entry: &MarketApp) -> (ReachFinding, bool) {
    crate::obs::register();
    let mut program = lower_with_sdk(entry);
    if let Some(sdk) = &entry.sdk {
        program.classes.extend(sdk.program().classes.iter().cloned());
    }
    let (finding, parse_failed, _) = finish_app_analysis(entry.app.manifest(), &ir::render(&program));
    (finding, parse_failed)
}

/// Analyzes one app end to end: lower to IR, round-trip through the text
/// format, analyze. A program that fails the round-trip is counted and
/// classified as a non-accessor (the sweep equivalent of a decompilation
/// failure).
#[must_use]
pub fn analyze_app(app: &App) -> ReachFinding {
    analyze_app_inner(app).0
}

/// [`analyze_app`] plus whether the IR text round-trip failed.
fn analyze_app_inner(app: &App) -> (ReachFinding, bool) {
    crate::obs::register();
    let (finding, parse_failed, _) = finish_app_analysis(app.manifest(), &ir::render(&ir::lower(app)));
    (finding, parse_failed)
}

/// The shared tail of [`analyze_app`] and [`analyze_entry`]: parse the
/// rendered IR text and classify it against the manifest. Also hands the
/// parsed program back so the taint oracle can refine the finding
/// without a second parse (and without a second chance to diverge).
pub(crate) fn finish_app_analysis(manifest: &Manifest, text: &str) -> (ReachFinding, bool, Option<IrProgram>) {
    let (analysis, parse_failed, parsed) = match ir::parse(text) {
        Ok(program) => {
            let analysis = analyze_program(manifest, &program);
            (analysis, false, Some(program))
        }
        Err(_) => {
            crate::obs::REACH_PARSE_FAILURES.inc();
            (
                ProgramAnalysis {
                    class: ReachClass::NonAccessor,
                    providers: BTreeSet::new(),
                    reachable_methods: 0,
                    missing_components: 0,
                },
                true,
                None,
            )
        }
    };
    let provider_vec: Vec<ProviderKind> = analysis.providers.iter().copied().collect();
    let combo = ProviderCombo::from_providers(&provider_vec);
    if analysis.class != ReachClass::NonAccessor && combo.is_none() {
        crate::obs::REACH_UNKNOWN_COMBO.inc();
    }
    (
        ReachFinding {
            package: manifest.package().to_owned(),
            class: analysis.class,
            claim: manifest.location_claim(),
            providers: analysis.providers,
            combo,
        },
        parse_failed,
        parsed,
    )
}

/// Sweeps the whole corpus and aggregates the static funnel + Table I.
#[must_use]
pub fn analyze(corpus: &[MarketApp]) -> ReachReport {
    crate::obs::register();
    let mut parse_failures = 0usize;
    let findings: Vec<ReachFinding> = corpus
        .iter()
        .map(|e| {
            let (f, failed) = analyze_entry_inner(e);
            parse_failures += usize::from(failed);
            f
        })
        .collect();
    let declaring = findings.iter().filter(|f| f.claim.declares_location()).count();
    let functional = findings.iter().filter(|f| f.class != ReachClass::NonAccessor).count();
    let background = findings.iter().filter(|f| f.class.accesses_in_background()).count();
    let auto_start = findings.iter().filter(|f| f.class == ReachClass::AutoStart).count();

    let mut cells: BTreeMap<(LocationClaim, ProviderCombo), usize> = BTreeMap::new();
    let mut unclassified = 0usize;
    for f in findings.iter().filter(|f| f.class.accesses_in_background()) {
        match f.combo {
            Some(combo) => *cells.entry((f.claim, combo)).or_insert(0) += 1,
            None => unclassified += 1,
        }
    }
    ReachReport {
        total: findings.len(),
        declaring,
        functional,
        background,
        auto_start,
        table1: ProviderTable::from_cells(cells, unclassified),
        parse_failures,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig, Quotas};
    use backwatch_android::app::{AppBuilder, Component, LocationBehavior, ACTION_BOOT_COMPLETED, ACTION_MAIN};
    use backwatch_android::ir::{IrClass, IrMethod};

    fn manifest_with(components: Vec<Component>, perms: &[Permission]) -> Manifest {
        let mut b = backwatch_android::app::ManifestBuilder::new("com.t.app");
        for p in perms {
            b.add_permission(*p);
        }
        for c in components {
            b.add_component(c);
        }
        b.build()
    }

    fn activity_main() -> Component {
        Component::new(ComponentKind::Activity, ".MainActivity").with_action(ACTION_MAIN)
    }

    #[test]
    fn unreachable_sink_is_non_accessor() {
        let manifest = manifest_with(vec![activity_main()], &[Permission::AccessFineLocation]);
        let program = IrProgram {
            classes: vec![
                IrClass::new("com/t/app/MainActivity", vec![IrMethod::new("onCreate", vec![])]),
                IrClass::new(
                    "com/t/app/Dead",
                    vec![IrMethod::new(
                        "helper",
                        vec![IrInstr::Invoke {
                            class: ir::LOCATION_MANAGER_CLASS.to_owned(),
                            method: "requestLocationUpdates".to_owned(),
                        }],
                    )],
                ),
            ],
        };
        let a = analyze_program(&manifest, &program);
        assert_eq!(a.class, ReachClass::NonAccessor);
        assert!(a.providers.is_empty());
    }

    #[test]
    fn permission_gate_blocks_reachable_sink() {
        let manifest = manifest_with(vec![activity_main()], &[Permission::Internet]);
        let program = IrProgram {
            classes: vec![IrClass::new(
                "com/t/app/MainActivity",
                vec![IrMethod::new(
                    "onCreate",
                    vec![IrInstr::Invoke {
                        class: ir::LOCATION_MANAGER_CLASS.to_owned(),
                        method: "getLastKnownLocation".to_owned(),
                    }],
                )],
            )],
        };
        assert_eq!(analyze_program(&manifest, &program).class, ReachClass::NonAccessor);
    }

    #[test]
    fn sink_named_app_method_is_not_a_sink() {
        let manifest = manifest_with(vec![activity_main()], &[Permission::AccessFineLocation]);
        let program = IrProgram {
            classes: vec![IrClass::new(
                "com/t/app/MainActivity",
                vec![
                    IrMethod::new(
                        "onCreate",
                        vec![IrInstr::Invoke {
                            class: "com/t/app/MainActivity".to_owned(),
                            method: "requestLocationUpdates".to_owned(),
                        }],
                    ),
                    IrMethod::new("requestLocationUpdates", vec![IrInstr::ConstString("gps".to_owned())]),
                ],
            )],
        };
        assert_eq!(analyze_program(&manifest, &program).class, ReachClass::NonAccessor);
    }

    #[test]
    fn missing_component_class_is_counted_and_skipped() {
        let manifest = manifest_with(
            vec![activity_main(), Component::new(ComponentKind::Service, ".GhostService")],
            &[Permission::AccessFineLocation],
        );
        let program = IrProgram {
            classes: vec![IrClass::new(
                "com/t/app/MainActivity",
                vec![IrMethod::new("onCreate", vec![])],
            )],
        };
        let a = analyze_program(&manifest, &program);
        assert_eq!(a.missing_components, 1);
        assert_eq!(a.class, ReachClass::NonAccessor);
    }

    #[test]
    fn worklist_survives_call_cycles() {
        let manifest = manifest_with(vec![activity_main()], &[Permission::AccessFineLocation]);
        let program = IrProgram {
            classes: vec![IrClass::new(
                "com/t/app/MainActivity",
                vec![
                    IrMethod::new(
                        "onCreate",
                        vec![IrInstr::Invoke {
                            class: "com/t/app/MainActivity".to_owned(),
                            method: "ping".to_owned(),
                        }],
                    ),
                    IrMethod::new(
                        "ping",
                        vec![IrInstr::Invoke {
                            class: "com/t/app/MainActivity".to_owned(),
                            method: "pong".to_owned(),
                        }],
                    ),
                    IrMethod::new(
                        "pong",
                        vec![
                            IrInstr::Invoke {
                                class: "com/t/app/MainActivity".to_owned(),
                                method: "ping".to_owned(),
                            },
                            IrInstr::ConstString("network".to_owned()),
                            IrInstr::Invoke {
                                class: ir::LOCATION_MANAGER_CLASS.to_owned(),
                                method: "requestLocationUpdates".to_owned(),
                            },
                        ],
                    ),
                ],
            )],
        };
        let a = analyze_program(&manifest, &program);
        assert_eq!(a.class, ReachClass::ForegroundOnly);
        assert_eq!(a.providers, BTreeSet::from([ProviderKind::Network]));
    }

    fn app_with(behavior: LocationBehavior, claim: LocationClaim, service: bool, boot: bool) -> App {
        let mut b = AppBuilder::new("com.t.app").location_claim(claim).component(activity_main());
        b = b.location_service(service);
        if boot {
            b = b
                .component(Component::new(ComponentKind::Receiver, ".BootReceiver").with_action(ACTION_BOOT_COMPLETED))
                .permission(Permission::ReceiveBootCompleted);
        }
        b.behavior(behavior).build()
    }

    #[test]
    fn lowered_apps_classify_by_behavior() {
        use ProviderKind::{Gps, Network};
        let fine = LocationClaim::FineAndCoarse;
        let cases = [
            (
                app_with(LocationBehavior::inert(), fine, false, false),
                ReachClass::NonAccessor,
            ),
            (
                app_with(LocationBehavior::requester([Gps], 5), fine, false, false),
                ReachClass::ForegroundOnly,
            ),
            (
                app_with(
                    LocationBehavior::requester([Gps, Network], 5).background_interval(60),
                    fine,
                    true,
                    false,
                ),
                ReachClass::BackgroundCapable,
            ),
            (
                app_with(
                    LocationBehavior::requester([Network], 5)
                        .auto_start(true)
                        .background_interval(60),
                    fine,
                    true,
                    true,
                ),
                ReachClass::AutoStart,
            ),
        ];
        for (app, expected) in cases {
            let f = analyze_app(&app);
            assert_eq!(f.class, expected, "behavior {:?}", app.behavior());
        }
    }

    #[test]
    fn sdk_fragment_never_changes_classification() {
        // the standard fragment is sink-free on reachable paths: linking
        // it (at 100 % share) must leave every classification and
        // provider set exactly where the bare analysis puts it
        let corpus = generate(&CorpusConfig::scaled(5).with_sdk_share(100));
        for entry in &corpus {
            assert!(entry.sdk.is_some());
            let bare = analyze_app(&entry.app);
            let composed = analyze_entry(entry);
            assert_eq!(bare.class, composed.class, "{}", bare.package);
            assert_eq!(bare.providers, composed.providers, "{}", bare.package);
        }
    }

    #[test]
    fn sink_bearing_fragment_is_seen_by_the_analysis() {
        let corpus = generate(&CorpusConfig::scaled(5));
        // a declaring-but-inert app with the sink-bearing test SDK wired
        // into its activity must become foreground-only via fragment code
        let inert = corpus
            .iter()
            .find(|e| e.truth.claim.declares_location() && !e.truth.functional)
            .unwrap();
        let mut doctored = inert.clone();
        doctored.sdk = Some(crate::sdk::shared_with_sink());
        let f = analyze_entry(&doctored);
        assert_eq!(f.class, ReachClass::ForegroundOnly, "{}", f.package);
        assert_eq!(f.providers, BTreeSet::from([ProviderKind::Gps]));
        // while the permission gate still holds for non-declaring hosts
        let none = corpus.iter().find(|e| !e.truth.claim.declares_location()).unwrap();
        let mut gated = none.clone();
        gated.sdk = Some(crate::sdk::shared_with_sink());
        assert_eq!(analyze_entry(&gated).class, ReachClass::NonAccessor);
    }

    #[test]
    fn corpus_sweep_matches_planted_quotas() {
        let cfg = CorpusConfig::scaled(8);
        let corpus = generate(&cfg);
        let q = Quotas::scaled(cfg.total());
        let r = analyze(&corpus);
        assert_eq!(r.total, q.total);
        assert_eq!(r.declaring, q.declaring);
        assert_eq!(r.functional, q.functional);
        assert_eq!(r.background, q.background);
        assert_eq!(r.auto_start, q.bg_auto_start);
        assert_eq!(r.parse_failures, 0);
        assert_eq!(r.table1.unclassified, 0);
        assert_eq!(r.table1.total(), q.background);
    }

    #[test]
    fn static_table1_matches_planted_cells() {
        let cfg = CorpusConfig::scaled(8);
        let corpus = generate(&cfg);
        let q = Quotas::scaled(cfg.total());
        let r = analyze(&corpus);
        for (claim, combo, count) in &q.table1 {
            assert_eq!(r.table1.cell(*claim, *combo), *count, "cell {claim:?}/{combo}");
        }
    }

    #[test]
    fn findings_agree_with_ground_truth_per_app() {
        let corpus = generate(&CorpusConfig::scaled(6));
        let r = analyze(&corpus);
        for (entry, f) in corpus.iter().zip(&r.findings) {
            let expected = match (
                entry.truth.functional,
                entry.truth.bg_interval_s.is_some(),
                entry.truth.auto_start,
            ) {
                (false, _, _) => ReachClass::NonAccessor,
                (true, false, _) => ReachClass::ForegroundOnly,
                (true, true, false) => ReachClass::BackgroundCapable,
                (true, true, true) => ReachClass::AutoStart,
            };
            assert_eq!(f.class, expected, "{}", f.package);
            if entry.truth.functional {
                assert_eq!(f.combo, entry.truth.combo, "{}", f.package);
            }
        }
    }
}
