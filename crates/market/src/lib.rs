//! App-market measurement study (paper §III).
//!
//! The paper downloads the top-100 apps of all 28 Google Play categories,
//! triages manifests statically, then runs every location-declaring app on
//! a phone and reads `dumpsys location` to find the ones that keep
//! requesting location from the background. This crate rebuilds that
//! pipeline end to end over the simulated device from `backwatch-android`:
//!
//! - [`category`] — the 28 store categories.
//! - [`corpus`] — a synthetic corpus generator whose ground-truth quotas
//!   are calibrated to the paper's reported marginals (1,137/2,800 apps
//!   declaring a location permission, 528 functional, 102 background, the
//!   full Table I provider matrix, and the Figure 1 interval CDF). At the
//!   default 28×100 scale the quotas are the paper's numbers *exactly*;
//!   other scales shrink them proportionally.
//! - [`static_analysis`] — the Apktool step: read manifests, classify
//!   permission claims.
//! - [`reach`] — the interprocedural static stage: lower each app to the
//!   smali-like IR, discover entry points from its manifest components,
//!   and classify by which entry points reach a location-API sink.
//! - [`taint`] — the refinement of [`reach`]: summary-based taint
//!   tracking from location sources through sanitizers to network
//!   sinks, classifying *what leaves the device and at what precision*.
//! - [`dynamic_analysis`] — the device step: install, launch, trigger,
//!   background, read `dumpsys`, parse what it says.
//! - [`stats`] — aggregation into the paper's headline numbers, Table I,
//!   and Figure 1.
//! - [`report`] — plain-text renderings of those tables.
//!
//! The point of measuring a corpus we generated ourselves is that every
//! aggregate the pipeline reports can be checked against the generator's
//! ground truth — the measurement *method* is what is being reproduced.
//!
//! # Examples
//!
//! ```
//! use backwatch_market::{corpus::CorpusConfig, run_study};
//!
//! let study = run_study(&CorpusConfig::scaled(10)); // 28 x 10 apps
//! assert_eq!(study.headline.total_apps, 280);
//! assert!(study.headline.background > 0);
//! ```

pub mod breakdown;
pub mod category;
pub mod corpus;
pub mod dynamic_analysis;
pub mod obs;
pub mod reach;
pub mod report;
pub mod sdk;
pub mod static_analysis;
pub mod stats;
pub mod summary;
pub mod sweep;
pub mod taint;

use corpus::CorpusConfig;

/// Bundled output of the full §III pipeline.
#[derive(Debug, Clone)]
pub struct Study {
    /// The generated corpus (with ground truth attached).
    pub corpus: Vec<corpus::MarketApp>,
    /// Static manifest findings.
    pub static_report: static_analysis::StaticReport,
    /// Per-app dynamic observations (location-declaring apps only).
    pub observations: Vec<dynamic_analysis::DynamicObservation>,
    /// Headline statistics (§III-B prose numbers).
    pub headline: stats::HeadlineStats,
    /// Table I: provider combinations × declared granularity.
    pub provider_table: stats::ProviderTable,
    /// Figure 1: CDF of background update intervals.
    pub interval_cdf: stats::IntervalCdf,
}

/// Runs the complete §III measurement: generate corpus → static triage →
/// dynamic analysis → aggregate statistics.
#[must_use]
pub fn run_study(cfg: &CorpusConfig) -> Study {
    let corpus = corpus::generate(cfg);
    let static_report = static_analysis::analyze(&corpus);
    let observations = dynamic_analysis::analyze_corpus(&corpus);
    let headline = stats::headline(&corpus, &static_report, &observations);
    let provider_table = stats::provider_table(&corpus, &observations);
    let interval_cdf = stats::interval_cdf(&observations);
    Study {
        corpus,
        static_report,
        observations,
        headline,
        provider_table,
        interval_cdf,
    }
}
