//! Parallel and incremental corpus sweeps over the summary cache.
//!
//! [`sweep`] is the scale path for [`crate::reach::analyze`]: it walks a
//! corpus by *index* (no materialized `Vec<MarketApp>`), analyzes each
//! entry through the content-hash cache, and keeps one compact
//! [`AppRecord`] plus one app-level digest per app — a few dozen bytes
//! instead of a whole synthetic APK, which is what makes million-app
//! corpora fit in memory. Work distribution copies the experiments
//! pool's contention-free shape: workers claim contiguous index batches
//! from one atomic counter, buffer results privately, and a single
//! deterministic scatter restores corpus order after the join, so the
//! output is bit-identical whatever the thread count.
//!
//! [`sweep_incremental`] is the market-update path: given the previous
//! snapshot's [`SweepResult`], it re-analyzes only apps whose app-level
//! digest actually changed (the churn model updates a small fraction per
//! epoch) and carries every other record over verbatim, returning a
//! [`ReachDelta`] of what moved. The differential suite pins both paths
//! bit-identical to the uncached oracle.

use crate::corpus::{app_at, package_at, version_changed, CorpusConfig, ProviderCombo};
use crate::reach::{ReachClass, ReachFinding, ReachReport};
use crate::stats::ProviderTable;
use crate::summary::{analyze_entry_cached, app_digest, CacheTally, CachedAnalysis, SummaryCache};
use crate::taint::TaintClass;
use backwatch_android::permission::LocationClaim;
use backwatch_android::provider::{ProviderKind, ALL_PROVIDERS};
use std::collections::{BTreeMap, BTreeSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

/// Compact per-app sweep output: everything the funnel, Table I, and the
/// delta report need, in a fixed-size record (providers are a bitmask
/// over [`ALL_PROVIDERS`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct AppRecord {
    /// Assigned reachability class.
    pub class: ReachClass,
    /// The refining taint class.
    pub taint: TaintClass,
    /// Declared permission posture.
    pub claim: LocationClaim,
    /// Inferred provider set, as a bitmask over [`ALL_PROVIDERS`].
    pub providers: u8,
    /// Table I combination, when the provider set matches one.
    pub combo: Option<ProviderCombo>,
    /// Whether the own-code IR text round-trip failed.
    pub parse_failed: bool,
}

fn provider_mask(set: &BTreeSet<ProviderKind>) -> u8 {
    let mut mask = 0u8;
    for (bit, kind) in ALL_PROVIDERS.iter().enumerate() {
        if set.contains(kind) {
            mask |= 1 << bit;
        }
    }
    mask
}

impl AppRecord {
    fn from_analysis(analysis: &CachedAnalysis) -> Self {
        Self {
            class: analysis.finding.class,
            taint: analysis.taint,
            claim: analysis.finding.claim,
            providers: provider_mask(&analysis.finding.providers),
            combo: analysis.finding.combo,
            parse_failed: analysis.parse_failed,
        }
    }

    /// The provider set this record's bitmask encodes.
    #[must_use]
    pub fn providers_set(&self) -> BTreeSet<ProviderKind> {
        ALL_PROVIDERS
            .iter()
            .enumerate()
            .filter(|(bit, _)| self.providers & (1 << bit) != 0)
            .map(|(_, kind)| *kind)
            .collect()
    }
}

/// The paper's §III funnel as plain counts.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct Funnel {
    /// Apps swept.
    pub total: usize,
    /// Apps declaring a location permission.
    pub declaring: usize,
    /// Apps with a reachable sink.
    pub functional: usize,
    /// Apps classified background-capable or auto-start.
    pub background: usize,
    /// Apps classified auto-start.
    pub auto_start: usize,
    /// Own-code IR round-trip failures.
    pub parse_failures: usize,
    /// Taint: apps that read location but never reach a network sink.
    pub access_only: usize,
    /// Taint: apps whose every leaking path passed a sanitizer.
    pub exfil_sanitized: usize,
    /// Taint: apps leaking raw location.
    pub exfil_raw: usize,
}

/// Output of one sweep (cold or incremental) over one corpus snapshot.
#[derive(Debug, Clone)]
pub struct SweepResult {
    /// The snapshot this sweep describes.
    pub cfg: CorpusConfig,
    /// Per-app records, in corpus order.
    pub records: Vec<AppRecord>,
    /// Per-app content digests, in corpus order — what the next
    /// incremental sweep compares against.
    pub digests: Vec<u64>,
    /// Summary-cache traffic this sweep generated.
    pub tally: CacheTally,
    /// Apps actually run through analysis this sweep.
    pub analyzed: usize,
    /// Apps carried over from the previous sweep unchanged.
    pub reused: usize,
    /// Wall-clock time of the sweep.
    pub wall: Duration,
}

impl SweepResult {
    /// The §III funnel over this sweep's records.
    #[must_use]
    pub fn funnel(&self) -> Funnel {
        let mut f = Funnel {
            total: self.records.len(),
            ..Funnel::default()
        };
        for r in &self.records {
            f.declaring += usize::from(r.claim.declares_location());
            f.functional += usize::from(r.class != ReachClass::NonAccessor);
            f.background += usize::from(r.class.accesses_in_background());
            f.auto_start += usize::from(r.class == ReachClass::AutoStart);
            f.parse_failures += usize::from(r.parse_failed);
            match r.taint {
                TaintClass::AccessOnly => f.access_only += 1,
                TaintClass::ExfiltratesSanitized(_) => f.exfil_sanitized += 1,
                TaintClass::ExfiltratesRaw => f.exfil_raw += 1,
                TaintClass::NoAccess => {}
            }
        }
        f
    }

    /// How many records carry each taint class, keyed by the exact class
    /// (sanitized degrees are separate keys).
    #[must_use]
    pub fn taint_histogram(&self) -> BTreeMap<TaintClass, usize> {
        let mut hist = BTreeMap::new();
        for r in &self.records {
            *hist.entry(r.taint).or_insert(0) += 1;
        }
        hist
    }

    /// Reconstructs the full [`ReachFinding`] for one corpus index (the
    /// package name is schedule-derived, so records do not store it).
    ///
    /// # Panics
    ///
    /// Panics if `index` is out of range for this sweep.
    #[must_use]
    pub fn finding_at(&self, index: usize) -> ReachFinding {
        assert!(index < self.records.len(), "index {index} out of sweep range");
        let record = &self.records[index];
        ReachFinding {
            package: package_at(index),
            class: record.class,
            claim: record.claim,
            providers: record.providers_set(),
            combo: record.combo,
        }
    }

    /// Expands this sweep into the oracle's [`ReachReport`] shape —
    /// bit-identical to [`crate::reach::analyze`] over the same snapshot
    /// (the differential suite pins this).
    #[must_use]
    pub fn report(&self) -> ReachReport {
        let findings: Vec<ReachFinding> = (0..self.records.len()).map(|i| self.finding_at(i)).collect();
        let mut cells: BTreeMap<(LocationClaim, ProviderCombo), usize> = BTreeMap::new();
        let mut unclassified = 0usize;
        for f in findings.iter().filter(|f| f.class.accesses_in_background()) {
            match f.combo {
                Some(combo) => *cells.entry((f.claim, combo)).or_insert(0) += 1,
                None => unclassified += 1,
            }
        }
        let funnel = self.funnel();
        ReachReport {
            total: funnel.total,
            declaring: funnel.declaring,
            functional: funnel.functional,
            background: funnel.background,
            auto_start: funnel.auto_start,
            table1: ProviderTable::from_cells(cells, unclassified),
            parse_failures: funnel.parse_failures,
            findings,
        }
    }
}

/// How many batches each worker should see on average (same tuning as
/// the experiments pool: amortize the claim `fetch_add`, still rebalance
/// under skewed per-app cost).
const BATCHES_PER_WORKER: usize = 8;

fn effective_workers(threads: usize, n: usize) -> usize {
    let cores = std::thread::available_parallelism().map_or(1, std::num::NonZeroUsize::get);
    threads.clamp(1, n.max(1)).min(cores.max(1))
}

/// Runs `f(i)` for every `i in 0..n` across scoped workers claiming
/// contiguous index batches from a shared atomic counter; results come
/// back in index order whatever the interleaving.
fn run_workers<T, F>(n: usize, threads: usize, f: F) -> Vec<T>
where
    T: Send,
    F: Fn(usize) -> T + Sync,
{
    let threads = effective_workers(threads, n);
    let batch = (n / (threads * BATCHES_PER_WORKER)).max(1) as u64;
    let next = AtomicU64::new(0);
    let mut outs: Vec<Vec<(usize, T)>> = Vec::new();
    outs.resize_with(threads, Vec::new);

    std::thread::scope(|scope| {
        let next = &next;
        let f = &f;
        for out in &mut outs {
            scope.spawn(move || loop {
                let start = next.fetch_add(batch, Ordering::Relaxed);
                if start >= n as u64 {
                    break;
                }
                let end = (start + batch).min(n as u64);
                for i in start..end {
                    let i = i as usize;
                    out.push((i, f(i)));
                }
            });
        }
    });

    let mut slots: Vec<Option<T>> = Vec::new();
    slots.resize_with(n, || None);
    for (i, value) in outs.into_iter().flatten() {
        if let Some(slot) = slots.get_mut(i) {
            *slot = Some(value);
        }
    }
    let ordered: Vec<T> = slots.into_iter().flatten().collect();
    assert_eq!(ordered.len(), n, "every corpus index must be claimed exactly once");
    ordered
}

/// Cold sweep: analyzes every app in the snapshot through the summary
/// cache, streaming by index (no materialized corpus). Records the wall
/// clock on `market.reach.sweep_seconds`; does *not* advance
/// `market.reach.apps_reanalyzed_total` — a cold sweep is not a
/// re-analysis.
#[must_use]
pub fn sweep(cfg: &CorpusConfig, threads: usize, cache: &SummaryCache) -> SweepResult {
    crate::obs::register();
    let start = Instant::now();
    let n = cfg.total();
    let out = run_workers(n, threads, |i| {
        let analysis = analyze_entry_cached(&app_at(cfg, i), cache);
        (AppRecord::from_analysis(&analysis), analysis.app_digest, analysis.tally)
    });
    let mut records = Vec::with_capacity(n);
    let mut digests = Vec::with_capacity(n);
    let mut tally = CacheTally::default();
    for (record, digest, t) in out {
        records.push(record);
        digests.push(digest);
        tally.absorb(t);
    }
    let wall = start.elapsed();
    crate::obs::REACH_SWEEP_SECONDS.record(wall.as_secs());
    SweepResult {
        cfg: *cfg,
        records,
        digests,
        tally,
        analyzed: n,
        reused: 0,
        wall,
    }
}

/// What changed between two swept snapshots.
#[derive(Debug, Clone)]
pub struct ReachDelta {
    /// Apps in the snapshot.
    pub total: usize,
    /// Apps whose churn version advanced between the snapshots (the
    /// cheap schedule-level pre-filter).
    pub version_changed: usize,
    /// Apps whose app-level content digest actually changed — exactly
    /// the apps the incremental sweep re-analyzed.
    pub digest_changed: usize,
    /// Apps whose reachability class moved: `(index, before, after)`.
    pub reclassified: Vec<(usize, ReachClass, ReachClass)>,
    /// Funnel of the previous snapshot.
    pub funnel_before: Funnel,
    /// Funnel of the new snapshot.
    pub funnel_after: Funnel,
}

enum Visit {
    Reused(AppRecord, u64),
    Reanalyzed(AppRecord, u64, CacheTally),
}

/// Incremental sweep: re-analyzes only apps whose content digest changed
/// between `prev.cfg` and `cfg`, carrying every other record over from
/// `prev`. The result is bit-identical to a cold [`sweep`] of `cfg` (the
/// differential suite pins it); only the work differs. Advances
/// `market.reach.apps_reanalyzed_total` by the re-analyzed count.
///
/// # Panics
///
/// Panics if `cfg` is not a later snapshot of the same market as
/// `prev.cfg` (same seed, size, SDK share, and churn rate).
#[must_use]
pub fn sweep_incremental(
    cfg: &CorpusConfig,
    prev: &SweepResult,
    threads: usize,
    cache: &SummaryCache,
) -> (SweepResult, ReachDelta) {
    crate::obs::register();
    assert_eq!(cfg.seed, prev.cfg.seed, "incremental sweeps compare snapshots of one market");
    assert_eq!(cfg.apps_per_category, prev.cfg.apps_per_category, "snapshot sizes must match");
    assert_eq!(
        cfg.sdk_share_percent, prev.cfg.sdk_share_percent,
        "SDK share is a market property"
    );
    assert_eq!(cfg.churn_ppm, prev.cfg.churn_ppm, "churn rate is a market property");
    assert!(cfg.snapshot >= prev.cfg.snapshot, "snapshots only move forward");
    let n = cfg.total();
    assert_eq!(prev.records.len(), n, "previous sweep must cover the same corpus");

    let start = Instant::now();
    let prev_records = &prev.records;
    let prev_digests = &prev.digests;

    // Version gate: one schedule hash per app, scanned sequentially —
    // routing a million no-op visits through the worker pool costs more
    // than the hashes themselves.
    let stale: Vec<usize> = (0..n).filter(|&i| version_changed(&prev.cfg, cfg, i)).collect();

    // Everything below the gate is carried over wholesale; only stale
    // slots can differ, so only those go through the pool.
    let mut records = prev.records.clone();
    let mut digests = prev.digests.clone();
    let visits = run_workers(stale.len(), threads, |k| {
        let i = stale[k];
        // the version moved; only a digest change warrants re-analysis
        let entry = app_at(cfg, i);
        let digest = app_digest(&entry);
        if digest == prev_digests[i] {
            return Visit::Reused(prev_records[i], digest);
        }
        let analysis = analyze_entry_cached(&entry, cache);
        Visit::Reanalyzed(AppRecord::from_analysis(&analysis), analysis.app_digest, analysis.tally)
    });

    let mut tally = CacheTally::default();
    let mut digest_changed = 0usize;
    let mut reclassified = Vec::new();
    for (&i, visit) in stale.iter().zip(visits) {
        let (record, digest) = match visit {
            Visit::Reused(record, digest) => (record, digest),
            Visit::Reanalyzed(record, digest, t) => {
                digest_changed += 1;
                tally.absorb(t);
                (record, digest)
            }
        };
        if record.class != prev_records[i].class {
            reclassified.push((i, prev_records[i].class, record.class));
        }
        records[i] = record;
        digests[i] = digest;
    }
    let version_moved = stale.len();
    crate::obs::REACH_APPS_REANALYZED.add(digest_changed as u64);
    let wall = start.elapsed();
    crate::obs::REACH_SWEEP_SECONDS.record(wall.as_secs());

    let result = SweepResult {
        cfg: *cfg,
        records,
        digests,
        tally,
        analyzed: digest_changed,
        reused: n - digest_changed,
        wall,
    };
    let delta = ReachDelta {
        total: n,
        version_changed: version_moved,
        digest_changed,
        reclassified,
        funnel_before: prev.funnel(),
        funnel_after: result.funnel(),
    };
    (result, delta)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::generate;
    use crate::reach::analyze;

    fn assert_matches_oracle(result: &SweepResult, cfg: &CorpusConfig) {
        let corpus = generate(cfg);
        let oracle = analyze(&corpus);
        assert_eq!(result.records.len(), oracle.findings.len());
        for (i, expected) in oracle.findings.iter().enumerate() {
            assert_eq!(result.finding_at(i), *expected, "app {i}");
        }
        for (i, entry) in corpus.iter().enumerate() {
            let record = result.records[i];
            assert_eq!(record.taint, crate::taint::analyze_entry(entry).taint, "taint app {i}");
            assert!(record.taint.refines(record.class), "refinement app {i}");
        }
        let report = result.report();
        assert_eq!(report.total, oracle.total);
        assert_eq!(report.declaring, oracle.declaring);
        assert_eq!(report.functional, oracle.functional);
        assert_eq!(report.background, oracle.background);
        assert_eq!(report.auto_start, oracle.auto_start);
        assert_eq!(report.parse_failures, oracle.parse_failures);
        assert_eq!(report.table1, oracle.table1);
    }

    #[test]
    fn cold_sweep_matches_the_oracle() {
        let cfg = CorpusConfig::scaled(6).with_sdk_share(60);
        let result = sweep(&cfg, 1, &SummaryCache::new());
        assert_eq!(result.analyzed, cfg.total());
        assert_eq!(result.reused, 0);
        assert_matches_oracle(&result, &cfg);
    }

    #[test]
    fn thread_count_never_changes_the_records() {
        let cfg = CorpusConfig::scaled(5).with_sdk_share(40);
        let one = sweep(&cfg, 1, &SummaryCache::new());
        let many = sweep(&cfg, 4, &SummaryCache::new());
        assert_eq!(one.records, many.records);
        assert_eq!(one.digests, many.digests);
        // cache traffic totals are deterministic too: every class lookup
        // happens exactly once per app whatever the interleaving
        assert_eq!(one.tally.hits + one.tally.misses, many.tally.hits + many.tally.misses);
    }

    #[test]
    fn incremental_sweep_matches_a_cold_sweep_of_the_next_snapshot() {
        let base = CorpusConfig::scaled(6).with_sdk_share(50).with_churn_ppm(120_000);
        let next = base.at_snapshot(2);
        let cache = SummaryCache::new();
        let cold_base = sweep(&base, 2, &cache);
        let (inc, delta) = sweep_incremental(&next, &cold_base, 2, &cache);
        let cold_next = sweep(&next, 2, &SummaryCache::new());
        assert_eq!(inc.records, cold_next.records);
        assert_eq!(inc.digests, cold_next.digests);
        assert_eq!(delta.total, base.total());
        assert_eq!(delta.digest_changed, inc.analyzed);
        assert!(delta.digest_changed <= delta.version_changed);
        assert!(
            delta.version_changed > 0 && delta.version_changed < delta.total,
            "this churn rate must move some but not all apps ({} of {})",
            delta.version_changed,
            delta.total
        );
        // the funnel is schedule-determined, so churn cannot move it
        assert_eq!(delta.funnel_before, delta.funnel_after);
        for (i, before, after) in &delta.reclassified {
            assert_ne!(before, after, "app {i}");
        }
    }

    #[test]
    fn zero_churn_reanalyzes_nothing() {
        let base = CorpusConfig::scaled(4).with_sdk_share(30).with_churn_ppm(0);
        let next = base.at_snapshot(5);
        let cache = SummaryCache::new();
        let cold = sweep(&base, 1, &cache);
        let (inc, delta) = sweep_incremental(&next, &cold, 1, &cache);
        assert_eq!(delta.version_changed, 0);
        assert_eq!(delta.digest_changed, 0);
        assert_eq!(inc.analyzed, 0);
        assert_eq!(inc.reused, base.total());
        assert_eq!(inc.records, cold.records);
        assert!(delta.reclassified.is_empty());
    }

    #[test]
    fn provider_mask_round_trips() {
        for bits in 0u8..16 {
            let set: BTreeSet<ProviderKind> = ALL_PROVIDERS
                .iter()
                .enumerate()
                .filter(|(bit, _)| bits & (1 << bit) != 0)
                .map(|(_, k)| *k)
                .collect();
            assert_eq!(provider_mask(&set), bits);
        }
    }

    #[test]
    fn funnel_counts_follow_the_records() {
        let cfg = CorpusConfig::scaled(7);
        let result = sweep(&cfg, 1, &SummaryCache::new());
        let f = result.funnel();
        assert_eq!(f.total, cfg.total());
        assert!(f.declaring >= f.functional);
        assert!(f.functional >= f.background);
        assert!(f.background >= f.auto_start);
        assert!(f.auto_start > 0, "scaled(7) schedules auto-start apps");
        assert_eq!(f.parse_failures, 0);
        // the taint mix is scheduled over functional apps: every class
        // shows up, and the split exhausts the functional count
        assert!(f.access_only > 0 && f.exfil_sanitized > 0 && f.exfil_raw > 0);
        assert_eq!(f.access_only + f.exfil_sanitized + f.exfil_raw, f.functional);
        let hist = result.taint_histogram();
        assert_eq!(hist.values().sum::<usize>(), f.total);
    }
}
