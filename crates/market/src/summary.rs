//! Content-hash summary cache: per-class reachability summaries keyed by
//! IR digest, so corpus sweeps compose cached facts instead of re-walking
//! shared code.
//!
//! The structural bet (from the ad-SDK tracking literature) is that
//! market code is massively shared: the same library classes appear in
//! thousands of apps, hash to the same [`ir::digest_class`] value, and
//! therefore need summarizing exactly once. A [`ClassSummary`] records,
//! per method, everything the reachability pass ever asks of a class —
//! its call edges, whether it invokes a `LocationManager` or fused-client
//! sink, and which provider string constants sit next to the manager
//! sinks. [`analyze_entry_cached`] then rebuilds the oracle's worklist
//! BFS over summaries instead of instruction streams, and the linked SDK
//! fragment collapses further still: one [`FragmentSummary`] holds the
//! *transitive* sink/provider facts for every fragment method, so a
//! million apps embedding the fragment cost one fragment analysis total.
//!
//! Correctness contract: for every corpus entry, the finding returned
//! here is bit-identical to [`crate::reach::analyze_entry`], and the
//! `market.reach.*` telemetry advances identically — the differential
//! suite in `tests/reach_cache.rs` pins both. Soundness depends on
//! content digests being collision-free in practice; DESIGN.md §13
//! discusses the FNV-vs-cryptographic-hash tradeoff.

use crate::corpus::MarketApp;
use crate::reach::{ReachClass, ReachFinding};
use crate::sdk::SdkLib;
use crate::taint::{self, FragTaint, TaintClass, TaintOp};
use backwatch_android::app::{ComponentKind, Manifest};
use backwatch_android::ir::{self, IrClass, IrInstr};
use backwatch_android::permission::Permission;
use backwatch_android::provider::ProviderKind;
use std::collections::{BTreeSet, HashMap, HashSet, VecDeque};
use std::sync::{Arc, Mutex, MutexGuard, PoisonError};

/// What the reachability pass needs to know about one method.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MethodSummary {
    /// Every `invoke` target, in program order (unresolvable targets —
    /// framework classes, including the sinks — simply never match).
    pub callees: Vec<(String, String)>,
    /// Whether the method invokes a `LocationManager` sink.
    pub manager_sink: bool,
    /// Whether the method invokes a fused-client sink.
    pub fused_sink: bool,
    /// Provider names among the method's string constants — the
    /// provider evidence if `manager_sink` is set.
    pub const_providers: Vec<ProviderKind>,
    /// The method's taint operations, pre-classified against the
    /// signature tables — what the cached taint engine replays instead
    /// of re-walking instructions.
    pub taint_ops: Vec<TaintOp>,
}

/// Digest-keyed summary of one class: the unit of cache reuse.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ClassSummary {
    /// Class path.
    pub name: String,
    /// [`ir::digest_class`] of the summarized IR.
    pub digest: u64,
    /// Per-method summaries, in declaration order.
    pub methods: Vec<(String, MethodSummary)>,
}

fn summarize_method(instrs: &[IrInstr]) -> MethodSummary {
    let mut callees = Vec::new();
    let mut manager_sink = false;
    let mut fused_sink = false;
    let mut const_providers = Vec::new();
    for instr in instrs {
        match instr {
            IrInstr::Invoke { class, method } => {
                if ir::is_sink(class, method) {
                    manager_sink |= class == ir::LOCATION_MANAGER_CLASS;
                    fused_sink |= class == ir::FUSED_CLIENT_CLASS;
                }
                callees.push((class.clone(), method.clone()));
            }
            IrInstr::ConstString(s) => {
                if let Ok(p) = s.parse::<ProviderKind>() {
                    if !const_providers.contains(&p) {
                        const_providers.push(p);
                    }
                }
            }
            // pure dataflow instructions: no call edges, no sink or
            // provider evidence — they matter only to the taint ops below
            IrInstr::MoveResult | IrInstr::ReturnValue | IrInstr::Sput { .. } | IrInstr::Sget { .. } => {}
        }
    }
    MethodSummary {
        callees,
        manager_sink,
        fused_sink,
        const_providers,
        taint_ops: taint::ops_for_instrs(instrs),
    }
}

/// Summarizes one class (used on cache misses).
#[must_use]
pub fn summarize_class(class: &IrClass) -> ClassSummary {
    ClassSummary {
        name: class.name.clone(),
        digest: ir::digest_class(class),
        methods: class
            .methods
            .iter()
            .map(|m| (m.name.clone(), summarize_method(&m.instrs)))
            .collect(),
    }
}

/// Transitive reachability facts for one fragment method: what entering
/// the fragment at this method can ever reach, precomputed so app
/// analyses fold a constant instead of traversing fragment code.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FragReach {
    /// A sink is reachable from this method within the fragment.
    pub sink: bool,
    /// Providers evidenced along those reachable fragment methods.
    pub providers: BTreeSet<ProviderKind>,
}

/// One shared library fragment, summarized transitively. Sound because
/// the call direction is one-way: apps call into the fragment, fragment
/// code never calls back into app code.
#[derive(Debug)]
pub struct FragmentSummary {
    /// The fragment's [`SdkLib::digest`].
    pub digest: u64,
    /// Classes in the fragment (the cache counts one hit per class when
    /// a composed program reuses the fragment wholesale).
    pub class_count: usize,
    /// Precomputed taint transfer table: the taint analogue of the
    /// reachability facts, solved once per fragment digest at every
    /// lattice input (sound for the same one-way-call reason, plus the
    /// statics-free/no-callback assertions [`FragTaint::build`] makes).
    pub taint: FragTaint,
    reach: HashMap<String, HashMap<String, FragReach>>,
}

impl FragmentSummary {
    fn build(sdk: &SdkLib) -> Self {
        let program = sdk.program();
        // local per-method facts
        let mut ids: HashMap<(String, String), usize> = HashMap::new();
        let mut facts: Vec<(String, String, MethodSummary)> = Vec::new();
        for class in &program.classes {
            for method in &class.methods {
                ids.insert((class.name.clone(), method.name.clone()), facts.len());
                facts.push((class.name.clone(), method.name.clone(), summarize_method(&method.instrs)));
            }
        }
        // transitive closure per method (the fragment is small; a BFS per
        // method is simpler than SCC condensation and runs once ever)
        let mut reach: HashMap<String, HashMap<String, FragReach>> = HashMap::new();
        for (start, (class, method, _)) in facts.iter().enumerate() {
            let mut sink = false;
            let mut providers = BTreeSet::new();
            let mut visited = vec![false; facts.len()];
            let mut queue = VecDeque::from([start]);
            if let Some(slot) = visited.get_mut(start) {
                *slot = true;
            }
            while let Some(id) = queue.pop_front() {
                let Some((_, _, ms)) = facts.get(id) else { continue };
                if ms.manager_sink {
                    sink = true;
                    providers.extend(ms.const_providers.iter().copied());
                }
                if ms.fused_sink {
                    sink = true;
                    providers.insert(ProviderKind::Fused);
                }
                for callee in &ms.callees {
                    if let Some(&next) = ids.get(callee) {
                        if let Some(slot) = visited.get_mut(next) {
                            if !*slot {
                                *slot = true;
                                queue.push_back(next);
                            }
                        }
                    }
                }
            }
            reach
                .entry(class.clone())
                .or_default()
                .insert(method.clone(), FragReach { sink, providers });
        }
        Self {
            digest: sdk.digest(),
            class_count: program.classes.len(),
            taint: FragTaint::build(program),
            reach,
        }
    }

    /// Whether the fragment defines `class`.
    #[must_use]
    pub fn defines_class(&self, class: &str) -> bool {
        self.reach.contains_key(class)
    }

    /// Transitive facts for entering the fragment at `(class, method)`.
    #[must_use]
    pub fn reach(&self, class: &str, method: &str) -> Option<&FragReach> {
        self.reach.get(class)?.get(method)
    }
}

/// Cache hit/miss tally for one analysis or one whole sweep, counted per
/// composed-program class (a fragment reuse scores one hit per fragment
/// class — that is what it saves).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CacheTally {
    /// Class summaries served from the cache.
    pub hits: u64,
    /// Class summaries computed fresh.
    pub misses: u64,
}

impl CacheTally {
    /// Folds another tally into this one.
    pub fn absorb(&mut self, other: Self) {
        self.hits += other.hits;
        self.misses += other.misses;
    }

    /// Hit fraction in `[0, 1]`; 0 when nothing was looked up.
    #[must_use]
    pub fn hit_rate(&self) -> f64 {
        let total = self.hits + self.misses;
        if total == 0 {
            0.0
        } else {
            self.hits as f64 / total as f64
        }
    }
}

const SHARDS: usize = 16;
/// Per-shard entry cap: 16 shards × 4,096 summaries bounds the cache to
/// ~65k classes however many million apps stream past it.
const DEFAULT_SHARD_CAPACITY: usize = 4096;

fn lock<T>(m: &Mutex<T>) -> MutexGuard<'_, T> {
    // a panicked holder cannot leave a summary map half-written: entries
    // are inserted whole, so recover the map rather than poison-cascade
    m.lock().unwrap_or_else(PoisonError::into_inner)
}

/// Sharded, capacity-bounded map from class digest to summary, plus an
/// unbounded side map for whole-fragment summaries.
///
/// Eviction picks an arbitrary resident entry; because summaries are
/// content-addressed this only ever costs a recomputation, never
/// correctness. Fragment summaries are never evicted — they are the
/// high-leverage entries the hit rate lives on.
#[derive(Debug)]
pub struct SummaryCache {
    shards: [Mutex<HashMap<u64, Arc<ClassSummary>>>; SHARDS],
    fragments: Mutex<HashMap<u64, Arc<FragmentSummary>>>,
    shard_capacity: usize,
}

impl Default for SummaryCache {
    fn default() -> Self {
        Self::new()
    }
}

impl SummaryCache {
    /// A cache with the default capacity bound.
    #[must_use]
    pub fn new() -> Self {
        Self::with_shard_capacity(DEFAULT_SHARD_CAPACITY)
    }

    /// A cache holding at most `capacity` class summaries per shard.
    ///
    /// # Panics
    ///
    /// Panics if `capacity == 0`.
    #[must_use]
    pub fn with_shard_capacity(capacity: usize) -> Self {
        assert!(capacity > 0, "a zero-capacity cache cannot make progress");
        Self {
            shards: std::array::from_fn(|_| Mutex::new(HashMap::new())),
            fragments: Mutex::new(HashMap::new()),
            shard_capacity: capacity,
        }
    }

    /// Class summaries currently resident (fragments not included).
    #[must_use]
    pub fn len(&self) -> usize {
        self.shards.iter().map(|s| lock(s).len()).sum()
    }

    /// Whether no class summary is resident.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The summary for `class`, from the cache when its digest is
    /// resident. Advances `market.reach.cache_{hits,misses}_total` and
    /// the caller's `tally` by one.
    pub fn class_summary(&self, class: &IrClass, tally: &mut CacheTally) -> Arc<ClassSummary> {
        let digest = ir::digest_class(class);
        let shard_idx = (digest % SHARDS as u64) as usize;
        let mut shard = lock(&self.shards[shard_idx]);
        if let Some(hit) = shard.get(&digest) {
            tally.hits += 1;
            crate::obs::REACH_CACHE_HITS.inc();
            return Arc::clone(hit);
        }
        tally.misses += 1;
        crate::obs::REACH_CACHE_MISSES.inc();
        let summary = Arc::new(summarize_class(class));
        if shard.len() >= self.shard_capacity {
            if let Some(victim) = shard.keys().next().copied() {
                shard.remove(&victim);
            }
        }
        shard.insert(digest, Arc::clone(&summary));
        summary
    }

    /// The transitive summary for a whole SDK fragment. A resident
    /// fragment counts `class_count` hits (that is how many class
    /// summaries the reuse saves); building it counts the same in
    /// misses. Fragment summaries are never evicted.
    pub fn fragment_summary(&self, sdk: &SdkLib, tally: &mut CacheTally) -> Arc<FragmentSummary> {
        let mut fragments = lock(&self.fragments);
        if let Some(hit) = fragments.get(&sdk.digest()) {
            tally.hits += hit.class_count as u64;
            crate::obs::REACH_CACHE_HITS.add(hit.class_count as u64);
            return Arc::clone(hit);
        }
        // build under the lock: concurrent first-users of a fragment then
        // tally deterministically (one build, the rest hit)
        let summary = Arc::new(FragmentSummary::build(sdk));
        tally.misses += summary.class_count as u64;
        crate::obs::REACH_CACHE_MISSES.add(summary.class_count as u64);
        fragments.insert(sdk.digest(), Arc::clone(&summary));
        summary
    }
}

/// Output of one cached per-app analysis.
#[derive(Debug, Clone)]
pub struct CachedAnalysis {
    /// The finding — bit-identical to [`crate::reach::analyze_entry`].
    pub finding: ReachFinding,
    /// The refining taint class — bit-identical to
    /// [`crate::taint::analyze_entry`].
    pub taint: TaintClass,
    /// Whether the own-code IR text round-trip failed.
    pub parse_failed: bool,
    /// Cache traffic this app generated.
    pub tally: CacheTally,
    /// App-level digest (own wired IR ⊕ fragment ⊕ manifest) — what
    /// incremental sweeps compare across snapshots.
    pub app_digest: u64,
}

fn digest_parts(own_wired: &ir::IrProgram, entry: &MarketApp) -> u64 {
    let mut buf = [0u8; 24];
    buf[..8].copy_from_slice(&ir::digest_program(own_wired).to_le_bytes());
    let fragment = entry.sdk.as_ref().map_or(0, |sdk| sdk.digest());
    buf[8..16].copy_from_slice(&fragment.to_le_bytes());
    // the manifest is part of the analyzed surface (permission gate,
    // components), so it is part of the change-detection surface too
    let manifest = ir::fnv1a(backwatch_android::manifest_xml::render(entry.app.manifest()).as_bytes());
    buf[16..].copy_from_slice(&manifest.to_le_bytes());
    ir::fnv1a(&buf)
}

/// App-level content digest of one corpus entry: its own wired IR, its
/// linked fragment, and its manifest. Two entries with equal digests
/// analyze identically; incremental sweeps reuse prior findings on
/// digest equality.
#[must_use]
pub fn app_digest(entry: &MarketApp) -> u64 {
    digest_parts(&crate::reach::lower_with_sdk(entry), entry)
}

/// Worklist state over summaries: own methods by id, fragment folded as
/// precomputed constants.
struct World<'a> {
    ids: HashMap<(&'a str, &'a str), usize>,
    methods: Vec<&'a MethodSummary>,
    own_classes: HashSet<&'a str>,
    fragment: Option<&'a FragmentSummary>,
}

impl<'a> World<'a> {
    fn new(summaries: &'a [Arc<ClassSummary>], fragment: Option<&'a FragmentSummary>) -> Self {
        let mut ids = HashMap::new();
        let mut methods = Vec::new();
        let mut own_classes = HashSet::new();
        for class in summaries {
            own_classes.insert(class.name.as_str());
            for (name, ms) in &class.methods {
                ids.insert((class.name.as_str(), name.as_str()), methods.len());
                methods.push(ms);
            }
        }
        Self {
            ids,
            methods,
            own_classes,
            fragment,
        }
    }

    fn defines_class(&self, class: &str) -> bool {
        self.own_classes.contains(class) || self.fragment.is_some_and(|f| f.defines_class(class))
    }

    /// Seeds or traverses one call target: own methods enter the BFS,
    /// fragment methods fold their precomputed transitive facts,
    /// everything else is a framework edge and stops (exactly like the
    /// oracle's bodies-only traversal).
    fn touch(
        &self,
        class: &str,
        method: &str,
        visited: &mut [bool],
        queue: &mut VecDeque<usize>,
        sink: &mut bool,
        providers: &mut BTreeSet<ProviderKind>,
    ) {
        if let Some(&id) = self.ids.get(&(class, method)) {
            if let Some(slot) = visited.get_mut(id) {
                if !*slot {
                    *slot = true;
                    queue.push_back(id);
                }
            }
        } else if let Some(reach) = self.fragment.and_then(|f| f.reach(class, method)) {
            *sink |= reach.sink;
            providers.extend(reach.providers.iter().copied());
        }
    }

    /// BFS from `entries`: does any reached method hit a sink, and what
    /// provider evidence do the reached methods carry?
    fn explore(&self, entries: &[(String, String)]) -> (bool, BTreeSet<ProviderKind>) {
        let mut sink = false;
        let mut providers = BTreeSet::new();
        let mut visited = vec![false; self.methods.len()];
        let mut queue = VecDeque::new();
        for (class, method) in entries {
            self.touch(class, method, &mut visited, &mut queue, &mut sink, &mut providers);
        }
        while let Some(id) = queue.pop_front() {
            let Some(&ms) = self.methods.get(id) else { continue };
            if ms.manager_sink {
                sink = true;
                providers.extend(ms.const_providers.iter().copied());
            }
            if ms.fused_sink {
                sink = true;
                providers.insert(ProviderKind::Fused);
            }
            for (class, method) in &ms.callees {
                self.touch(class, method, &mut visited, &mut queue, &mut sink, &mut providers);
            }
        }
        (sink, providers)
    }
}

/// Mirror of the oracle's `analyze_program` + combo derivation, over
/// summaries. Advances the same `market.reach.*` counters the oracle
/// does, in the same cases.
fn classify(manifest: &Manifest, world: &World<'_>) -> ReachFinding {
    let mut activity_entries: Vec<(String, String)> = Vec::new();
    let mut service_entries: Vec<(String, String)> = Vec::new();
    let mut boot_entries: Vec<(String, String)> = Vec::new();
    let boot_permitted = manifest.permissions().contains(&Permission::ReceiveBootCompleted);
    for component in manifest.components() {
        let class = component.class_path(manifest.package());
        if !world.defines_class(&class) {
            crate::obs::REACH_MISSING_COMPONENTS.inc();
            continue;
        }
        let bucket: &mut Vec<(String, String)> = match component.kind {
            ComponentKind::Activity => &mut activity_entries,
            ComponentKind::Service => &mut service_entries,
            ComponentKind::Receiver if component.is_boot_receiver() && boot_permitted => &mut boot_entries,
            ComponentKind::Receiver => &mut activity_entries,
        };
        for m in ir::entry_methods(component.kind) {
            bucket.push((class.clone(), (*m).to_owned()));
        }
    }

    let class = if manifest.location_claim().declares_location() {
        if world.explore(&boot_entries).0 {
            ReachClass::AutoStart
        } else if world.explore(&service_entries).0 {
            ReachClass::BackgroundCapable
        } else if world.explore(&activity_entries).0 {
            ReachClass::ForegroundOnly
        } else {
            ReachClass::NonAccessor
        }
    } else {
        ReachClass::NonAccessor
    };

    let providers = if class == ReachClass::NonAccessor {
        BTreeSet::new()
    } else {
        let all: Vec<(String, String)> = activity_entries
            .iter()
            .chain(&service_entries)
            .chain(&boot_entries)
            .cloned()
            .collect();
        world.explore(&all).1
    };
    crate::obs::REACH_APPS_CLASSIFIED.inc();
    if class.accesses_in_background() {
        crate::obs::REACH_BACKGROUND_APPS.inc();
    }
    let provider_vec: Vec<ProviderKind> = providers.iter().copied().collect();
    let combo = crate::corpus::ProviderCombo::from_providers(&provider_vec);
    if class != ReachClass::NonAccessor && combo.is_none() {
        crate::obs::REACH_UNKNOWN_COMBO.inc();
    }
    ReachFinding {
        package: manifest.package().to_owned(),
        class,
        claim: manifest.location_claim(),
        providers,
        combo,
    }
}

/// Cached counterpart of [`crate::reach::analyze_entry`]: same serialized
/// own-code discipline (lower → render → parse), but the per-class walk
/// composes cached summaries and the fragment folds as one precomputed
/// summary. Returns the finding plus the app digest incremental sweeps
/// key on.
#[must_use]
pub fn analyze_entry_cached(entry: &MarketApp, cache: &SummaryCache) -> CachedAnalysis {
    crate::obs::register();
    let mut tally = CacheTally::default();
    let manifest = entry.app.manifest();
    let own_wired = crate::reach::lower_with_sdk(entry);
    let app_digest = digest_parts(&own_wired, entry);
    let fragment = entry.sdk.as_ref().map(|sdk| cache.fragment_summary(sdk, &mut tally));
    let text = ir::render(&own_wired);
    let Ok(own) = ir::parse(&text) else {
        crate::obs::REACH_PARSE_FAILURES.inc();
        return CachedAnalysis {
            finding: ReachFinding {
                package: manifest.package().to_owned(),
                class: ReachClass::NonAccessor,
                claim: manifest.location_claim(),
                providers: BTreeSet::new(),
                combo: None,
            },
            taint: taint::record(TaintClass::NoAccess),
            parse_failed: true,
            tally,
            app_digest,
        };
    };
    let summaries: Vec<Arc<ClassSummary>> = own.classes.iter().map(|c| cache.class_summary(c, &mut tally)).collect();
    let finding = classify(manifest, &World::new(&summaries, fragment.as_deref()));
    // the taint pass replays the cached per-method op streams over the
    // same view shape, folding the fragment's precomputed transfer table
    let methods = summaries.iter().flat_map(|cs| {
        cs.methods
            .iter()
            .map(|(m, ms)| (cs.name.as_str(), m.as_str(), ms.taint_ops.as_slice()))
    });
    let view = taint::TaintView::new(methods, fragment.as_deref().map(|f| &f.taint));
    let taint = taint::classify_with_view(manifest, &view, finding.class);
    CachedAnalysis {
        finding,
        taint,
        parse_failed: false,
        tally,
        app_digest,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig};
    use crate::reach::analyze_entry;

    #[test]
    fn cached_analysis_matches_oracle_per_app() {
        let corpus = generate(&CorpusConfig::scaled(6).with_sdk_share(60));
        let cache = SummaryCache::new();
        for entry in &corpus {
            let oracle = analyze_entry(entry);
            let cached = analyze_entry_cached(entry, &cache);
            assert_eq!(cached.finding, oracle, "{}", oracle.package);
            assert!(!cached.parse_failed);
        }
    }

    #[test]
    fn second_pass_hits_for_every_own_class() {
        let corpus = generate(&CorpusConfig::scaled(3).with_sdk_share(100));
        let cache = SummaryCache::new();
        let mut cold = CacheTally::default();
        let mut warm = CacheTally::default();
        for entry in &corpus {
            cold.absorb(analyze_entry_cached(entry, &cache).tally);
        }
        for entry in &corpus {
            warm.absorb(analyze_entry_cached(entry, &cache).tally);
        }
        assert_eq!(warm.misses, 0, "everything is resident on the second pass");
        assert_eq!(warm.hits, cold.hits + cold.misses);
        assert!(cold.hits > 0, "fragment reuse hits within the first pass");
    }

    #[test]
    fn fragment_summary_folds_transitively_and_survives_cycles() {
        let sdk = crate::sdk::shared();
        let frag = FragmentSummary::build(&sdk);
        assert_eq!(frag.class_count, sdk.class_count());
        // the boot entry reaches deep fragment code but no sink
        let (class, method) = sdk.entry();
        let boot = frag.reach(class, method).expect("entry summarized");
        assert!(!boot.sink);
        assert!(boot.providers.is_empty());
        // the cyclic queue pair terminates and stays sink-free
        let push = frag.reach("com/adnet/metrics/Queue", "push").expect("cycle summarized");
        assert!(!push.sink);
        // the dead radar *is* a sink — just unreachable from boot
        let radar = frag.reach("com/adnet/radar/DeadRadar", "scan").expect("decoy summarized");
        assert!(radar.sink);
        assert_eq!(radar.providers, BTreeSet::from([ProviderKind::Gps]));
        // and the sink-bearing variant propagates it to the entry
        let dirty = FragmentSummary::build(&crate::sdk::shared_with_sink());
        let boot = dirty.reach(class, method).expect("entry summarized");
        assert!(boot.sink);
        assert_eq!(boot.providers, BTreeSet::from([ProviderKind::Gps]));
    }

    #[test]
    fn eviction_is_correctness_neutral() {
        // a cache too small to hold anything still produces oracle output
        let corpus = generate(&CorpusConfig::scaled(4).with_sdk_share(40));
        let tiny = SummaryCache::with_shard_capacity(1);
        for entry in &corpus {
            let oracle = analyze_entry(entry);
            assert_eq!(analyze_entry_cached(entry, &tiny).finding, oracle, "{}", oracle.package);
        }
        assert!(tiny.len() <= SHARDS, "capacity bound holds");
    }

    #[test]
    fn app_digest_tracks_content_not_identity() {
        let cfg = CorpusConfig::scaled(4).with_sdk_share(50);
        let a = generate(&cfg);
        let b = generate(&cfg);
        for (x, y) in a.iter().zip(&b) {
            assert_eq!(app_digest(x), app_digest(y));
        }
        // digests separate apps from each other
        let mut seen = std::collections::HashSet::new();
        for e in &a {
            seen.insert(app_digest(e));
        }
        assert!(seen.len() > a.len() / 2, "app digests are overwhelmingly distinct");
        // and changing only the linked fragment changes the digest
        let mut doctored = a.first().expect("non-empty corpus").clone();
        let before = app_digest(&doctored);
        doctored.sdk = Some(crate::sdk::shared_with_sink());
        assert_ne!(app_digest(&doctored), before);
    }
}
