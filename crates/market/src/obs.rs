//! Telemetry statics for the market crate.

use backwatch_obs::{Counter, Histogram};
use std::sync::Once;

/// Apps run through the dynamic-analysis protocol.
pub static DYNAMIC_APPS: Counter = Counter::new();
/// Apps observed to keep listeners alive in the background.
pub static DYNAMIC_BACKGROUND_APPS: Counter = Counter::new();
/// Apps classified by the static reachability analyzer.
pub static REACH_APPS_CLASSIFIED: Counter = Counter::new();
/// Apps the analyzer classified background-capable or auto-start.
pub static REACH_BACKGROUND_APPS: Counter = Counter::new();
/// Declared components whose class was absent from the lowered IR.
pub static REACH_MISSING_COMPONENTS: Counter = Counter::new();
/// Lowered programs that failed the IR text round-trip.
pub static REACH_PARSE_FAILURES: Counter = Counter::new();
/// Functional apps whose inferred provider set matches no Table I combo.
pub static REACH_UNKNOWN_COMBO: Counter = Counter::new();
/// Rendered manifests that failed to parse back during static triage.
pub static STATIC_PARSE_FAILURES: Counter = Counter::new();
/// Ratio computations that hit a zero denominator and returned 0.0.
pub static STATIC_ZERO_DENOMINATOR: Counter = Counter::new();
/// Per-class summary lookups served from the content-hash cache.
pub static REACH_CACHE_HITS: Counter = Counter::new();
/// Per-class summary lookups that had to compute a fresh summary.
pub static REACH_CACHE_MISSES: Counter = Counter::new();
/// Apps an *incremental* sweep actually re-analyzed because their
/// app-level digest changed (cold sweeps do not count — they are not
/// re-analyses).
pub static REACH_APPS_REANALYZED: Counter = Counter::new();
/// Apps classified by the interprocedural taint pass.
pub static TAINT_APPS_CLASSIFIED: Counter = Counter::new();
/// Apps the taint pass classified no-access.
pub static TAINT_NO_ACCESS: Counter = Counter::new();
/// Apps that read location but never reach a network sink.
pub static TAINT_ACCESS_ONLY: Counter = Counter::new();
/// Apps in either exfiltration class (sanitized or raw).
pub static TAINT_HITS: Counter = Counter::new();
/// Apps whose every leaking path passed a sanitizer.
pub static TAINT_EXFIL_SANITIZED: Counter = Counter::new();
/// Apps leaking raw, full-precision location.
pub static TAINT_EXFIL_RAW: Counter = Counter::new();

/// Bucket bounds, in wall-clock seconds, for one whole-corpus sweep:
/// sub-second small corpora up to multi-minute million-app sweeps.
static SWEEP_BOUNDS_S: [u64; 9] = [1, 2, 5, 10, 30, 60, 120, 300, 600];

/// Wall-clock seconds one corpus sweep (cold or incremental) took.
pub static REACH_SWEEP_SECONDS: Histogram = Histogram::new(&SWEEP_BOUNDS_S);

static REGISTER: Once = Once::new();

/// Registers this crate's metrics with the global registry (idempotent).
pub fn register() {
    REGISTER.call_once(|| {
        backwatch_obs::register_counter(
            "market.dynamic.apps_analyzed_total",
            "apps run through the dynamic-analysis protocol",
            &DYNAMIC_APPS,
        );
        backwatch_obs::register_counter(
            "market.dynamic.background_apps_total",
            "apps whose listeners survived backgrounding",
            &DYNAMIC_BACKGROUND_APPS,
        );
        backwatch_obs::register_counter(
            "market.reach.apps_classified_total",
            "apps classified by the static reachability analyzer",
            &REACH_APPS_CLASSIFIED,
        );
        backwatch_obs::register_counter(
            "market.reach.background_apps_total",
            "apps the analyzer classified background-capable or auto-start",
            &REACH_BACKGROUND_APPS,
        );
        backwatch_obs::register_counter(
            "market.reach.missing_components_total",
            "declared components whose class was absent from the IR",
            &REACH_MISSING_COMPONENTS,
        );
        backwatch_obs::register_counter(
            "market.reach.parse_failures_total",
            "lowered programs that failed the IR text round-trip",
            &REACH_PARSE_FAILURES,
        );
        backwatch_obs::register_counter(
            "market.reach.unknown_combo_total",
            "functional apps whose provider set matches no Table I combo",
            &REACH_UNKNOWN_COMBO,
        );
        backwatch_obs::register_counter(
            "market.reach.cache_hits_total",
            "per-class summary lookups served from the content-hash cache",
            &REACH_CACHE_HITS,
        );
        backwatch_obs::register_counter(
            "market.reach.cache_misses_total",
            "per-class summary lookups that computed a fresh summary",
            &REACH_CACHE_MISSES,
        );
        backwatch_obs::register_counter(
            "market.reach.apps_reanalyzed_total",
            "apps an incremental sweep re-analyzed after a digest change",
            &REACH_APPS_REANALYZED,
        );
        backwatch_obs::register_histogram(
            "market.reach.sweep_seconds",
            "wall-clock seconds one corpus sweep took",
            &REACH_SWEEP_SECONDS,
        );
        backwatch_obs::register_counter(
            "market.taint.apps_classified_total",
            "apps classified by the interprocedural taint pass",
            &TAINT_APPS_CLASSIFIED,
        );
        backwatch_obs::register_counter(
            "market.taint.no_access_total",
            "apps the taint pass classified no-access",
            &TAINT_NO_ACCESS,
        );
        backwatch_obs::register_counter(
            "market.taint.access_only_total",
            "apps that read location but never reach a network sink",
            &TAINT_ACCESS_ONLY,
        );
        backwatch_obs::register_counter(
            "market.taint.hits_total",
            "apps in either exfiltration class, sanitized or raw",
            &TAINT_HITS,
        );
        backwatch_obs::register_counter(
            "market.taint.exfil_sanitized_total",
            "apps whose every leaking path passed a sanitizer",
            &TAINT_EXFIL_SANITIZED,
        );
        backwatch_obs::register_counter(
            "market.taint.exfil_raw_total",
            "apps leaking raw full-precision location",
            &TAINT_EXFIL_RAW,
        );
        backwatch_obs::register_counter(
            "market.static.parse_failures_total",
            "rendered manifests that failed to parse back during triage",
            &STATIC_PARSE_FAILURES,
        );
        backwatch_obs::register_counter(
            "market.static.zero_denominator_total",
            "ratio computations that hit a zero denominator",
            &STATIC_ZERO_DENOMINATOR,
        );
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn register_is_idempotent() {
        super::register();
        super::register();
        let snap = backwatch_obs::snapshot();
        if !snap.samples.is_empty() {
            assert!(snap.counter("market.dynamic.apps_analyzed_total").is_some());
        }
    }
}
