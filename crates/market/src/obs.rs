//! Telemetry statics for the market crate.

use backwatch_obs::Counter;
use std::sync::Once;

/// Apps run through the dynamic-analysis protocol.
pub static DYNAMIC_APPS: Counter = Counter::new();
/// Apps observed to keep listeners alive in the background.
pub static DYNAMIC_BACKGROUND_APPS: Counter = Counter::new();

static REGISTER: Once = Once::new();

/// Registers this crate's metrics with the global registry (idempotent).
pub fn register() {
    REGISTER.call_once(|| {
        backwatch_obs::register_counter(
            "market.dynamic.apps_analyzed_total",
            "apps run through the dynamic-analysis protocol",
            &DYNAMIC_APPS,
        );
        backwatch_obs::register_counter(
            "market.dynamic.background_apps_total",
            "apps whose listeners survived backgrounding",
            &DYNAMIC_BACKGROUND_APPS,
        );
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn register_is_idempotent() {
        super::register();
        super::register();
        let snap = backwatch_obs::snapshot();
        if !snap.samples.is_empty() {
            assert!(snap.counter("market.dynamic.apps_analyzed_total").is_some());
        }
    }
}
