//! Static manifest triage — the Apktool step of the study.
//!
//! The paper first separates the apps that cannot access location at all
//! (no location permission in the manifest) from those that declare one,
//! and splits the declaring apps by claim. Only manifests are consulted;
//! runtime behavior is invisible here.
//!
//! Like the dynamic step (which round-trips through `dumpsys` text), the
//! triage deliberately goes through the decoded `AndroidManifest.xml`
//! representation: each manifest is rendered to XML and parsed back
//! before being classified, so the pipeline consumes exactly what
//! Apktool-based scripts consume.

use crate::corpus::MarketApp;
use backwatch_android::manifest_xml;
use backwatch_android::permission::LocationClaim;

/// Outcome of triaging one manifest.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ManifestFinding {
    /// The app's package name.
    pub package: String,
    /// Declared location-permission posture.
    pub claim: LocationClaim,
    /// Whether the manifest declares a long-running service component.
    pub has_service: bool,
}

/// Aggregated static findings over a corpus.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StaticReport {
    /// Per-app findings, in corpus order.
    pub findings: Vec<ManifestFinding>,
    /// Total apps triaged.
    pub total: usize,
    /// Apps declaring at least one location permission.
    pub declaring: usize,
    /// Declaring apps with only `ACCESS_FINE_LOCATION`.
    pub fine_only: usize,
    /// Declaring apps with only `ACCESS_COARSE_LOCATION`.
    pub coarse_only: usize,
    /// Declaring apps with both permissions.
    pub both: usize,
}

impl StaticReport {
    /// Fraction of declaring apps with only the fine permission.
    #[must_use]
    pub fn fine_only_share(&self) -> f64 {
        share(self.fine_only, self.declaring)
    }

    /// Fraction of declaring apps with only the coarse permission.
    #[must_use]
    pub fn coarse_only_share(&self) -> f64 {
        share(self.coarse_only, self.declaring)
    }

    /// Fraction of declaring apps with both permissions.
    #[must_use]
    pub fn both_share(&self) -> f64 {
        share(self.both, self.declaring)
    }
}

fn share(n: usize, d: usize) -> f64 {
    if d == 0 {
        // defined as 0.0 rather than NaN, and counted so an empty-corpus
        // run is visible in telemetry
        crate::obs::register();
        crate::obs::STATIC_ZERO_DENOMINATOR.inc();
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Triage every manifest in the corpus, via the XML channel.
///
/// Manifests that fail the render-and-parse round-trip are counted
/// (`market.static.parse_failures_total`) and fall back to the in-memory
/// manifest — the sweep equivalent of an Apktool decode failure, which
/// must not abort a 2,800-app run.
#[must_use]
pub fn analyze(corpus: &[MarketApp]) -> StaticReport {
    crate::obs::register();
    let findings: Vec<ManifestFinding> = corpus
        .iter()
        .map(|entry| {
            // Round-trip through the decoded-manifest text, as Apktool
            // pipelines do; our own renderings always parse.
            let xml = manifest_xml::render(entry.app.manifest());
            let manifest = match manifest_xml::parse(&xml) {
                Ok(m) => m,
                Err(_) => {
                    crate::obs::STATIC_PARSE_FAILURES.inc();
                    entry.app.manifest().clone()
                }
            };
            ManifestFinding {
                package: manifest.package().to_owned(),
                claim: manifest.location_claim(),
                has_service: manifest.has_location_service(),
            }
        })
        .collect();
    let declaring = findings.iter().filter(|f| f.claim.declares_location()).count();
    let fine_only = findings.iter().filter(|f| f.claim == LocationClaim::FineOnly).count();
    let coarse_only = findings.iter().filter(|f| f.claim == LocationClaim::CoarseOnly).count();
    let both = findings.iter().filter(|f| f.claim == LocationClaim::FineAndCoarse).count();
    StaticReport {
        total: findings.len(),
        declaring,
        fine_only,
        coarse_only,
        both,
        findings,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig, Quotas};

    #[test]
    fn static_report_recovers_planted_quotas() {
        let cfg = CorpusConfig::scaled(10);
        let corpus = generate(&cfg);
        let q = Quotas::scaled(cfg.total());
        let report = analyze(&corpus);
        assert_eq!(report.total, q.total);
        assert_eq!(report.declaring, q.declaring);
        assert_eq!(report.fine_only, q.fine_only);
        assert_eq!(report.coarse_only, q.coarse_only);
        assert_eq!(report.both, q.both);
    }

    #[test]
    fn shares_sum_to_one_over_declaring() {
        let corpus = generate(&CorpusConfig::scaled(10));
        let r = analyze(&corpus);
        let sum = r.fine_only_share() + r.coarse_only_share() + r.both_share();
        assert!((sum - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_scale_shares_match_paper_percentages() {
        let corpus = generate(&CorpusConfig::paper_scale());
        let r = analyze(&corpus);
        assert!((r.fine_only_share() - 0.17).abs() < 0.005);
        assert!((r.coarse_only_share() - 0.16).abs() < 0.005);
        assert!((r.both_share() - 0.67).abs() < 0.005);
    }

    #[test]
    fn xml_round_trip_equals_direct_manifest_reading() {
        let corpus = generate(&CorpusConfig::scaled(5));
        let report = analyze(&corpus);
        for (entry, finding) in corpus.iter().zip(&report.findings) {
            assert_eq!(finding.package, entry.app.manifest().package());
            assert_eq!(finding.claim, entry.app.manifest().location_claim());
            assert_eq!(finding.has_service, entry.app.manifest().has_location_service());
        }
    }

    #[test]
    fn empty_corpus_is_all_zero() {
        let before = crate::obs::STATIC_ZERO_DENOMINATOR.get();
        let r = analyze(&[]);
        assert_eq!(r.total, 0);
        assert_eq!(r.declaring, 0);
        // shares over a zero denominator are 0.0, never NaN…
        for s in [r.fine_only_share(), r.coarse_only_share(), r.both_share()] {
            assert_eq!(s, 0.0);
            assert!(s.is_finite());
        }
        // …and each hit is counted rather than silently absorbed
        if backwatch_obs::enabled() {
            // >= rather than ==: parallel tests share the process-wide counter
            assert!(crate::obs::STATIC_ZERO_DENOMINATOR.get() >= before + 3);
        }
    }
}
