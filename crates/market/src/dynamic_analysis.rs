//! Dynamic analysis: run each declaring app on the simulated device and
//! observe it through `dumpsys`.
//!
//! The protocol follows the paper's §III-A: *"We launch the app, try to
//! trigger location access, move the app to background, and finally close
//! it. We use a system diagnostic tool 'dumpsys' to examine how apps
//! request location."* Observations are recovered exclusively from the
//! rendered-and-parsed dumpsys text and the device access log — never from
//! the app's internal `LocationBehavior` — so the pipeline has the same
//! observability limits the authors had.

use crate::category::Category;
use crate::corpus::{MarketApp, ProviderCombo};
use backwatch_android::dumpsys;
use backwatch_android::provider::{Granularity, ProviderKind};
use backwatch_android::system::Device;
use std::collections::BTreeSet;

/// What the dynamic run observed about one app.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct DynamicObservation {
    /// Package name.
    pub package: String,
    /// Store category.
    pub category: Category,
    /// Declared claim (from the static step; dynamic analysis is only run
    /// on declaring apps).
    pub claim: backwatch_android::permission::LocationClaim,
    /// Whether the app registered any location listener during the run.
    pub functional: bool,
    /// Whether listeners appeared right after launch, before any simulated
    /// user interaction.
    pub auto_start: bool,
    /// Whether listeners survived backgrounding (the paper's core signal).
    pub background: bool,
    /// Providers seen registered at any point of the run.
    pub providers: BTreeSet<ProviderKind>,
    /// Requested update interval while in background, seconds.
    pub bg_interval_s: Option<i64>,
    /// Granularities of fixes actually delivered during the run.
    pub delivered: BTreeSet<Granularity>,
}

impl DynamicObservation {
    /// The provider combination, when it matches a Table I column.
    #[must_use]
    pub fn combo(&self) -> Option<ProviderCombo> {
        let v: Vec<ProviderKind> = self.providers.iter().copied().collect();
        ProviderCombo::from_providers(&v)
    }

    /// Whether the app, by its registrations, can obtain precise fixes
    /// (registers GPS, or fused under a fine claim) — the paper's
    /// "accesses precise location" classification.
    #[must_use]
    pub fn uses_fine_in_practice(&self) -> bool {
        self.providers.contains(&ProviderKind::Gps) || (self.providers.contains(&ProviderKind::Fused) && self.claim.allows_fine())
    }
}

/// How long each phase of the protocol runs, in simulated seconds.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct Protocol {
    /// Settle time after launch before the first dumpsys.
    pub settle_s: i64,
    /// Time to wait after triggering location use.
    pub trigger_s: i64,
    /// Observation window after backgrounding.
    pub background_s: i64,
}

impl Default for Protocol {
    fn default() -> Self {
        Self {
            settle_s: 30,
            trigger_s: 30,
            background_s: 120,
        }
    }
}

/// Runs the protocol on a single app, on a fresh device.
///
/// Apps whose registration attempt throws the simulated
/// `SecurityException` are reported as non-functional, exactly as a
/// crashing app would have looked to the authors.
#[must_use]
pub fn analyze_app(entry: &MarketApp, protocol: Protocol) -> DynamicObservation {
    crate::obs::register();
    crate::obs::DYNAMIC_APPS.inc();
    let mut device = Device::new();
    let id = device.install(entry.app.clone());
    let mut providers: BTreeSet<ProviderKind> = BTreeSet::new();
    let mut auto_start = false;
    let mut functional = false;

    // Phase 1: launch and let it settle.
    let launched = device.launch(id).is_ok();
    if launched {
        device.advance(protocol.settle_s);
        let entries = dumpsys::parse(&dumpsys::render(&device)).expect("our own dumpsys output parses");
        if !entries.is_empty() {
            functional = true;
            auto_start = true;
            providers.extend(entries.iter().map(|e| e.provider));
        }

        // Phase 2: if silent, poke it like a user would.
        if !functional && device.trigger_location_use(id).is_ok() {
            device.advance(protocol.trigger_s);
            let entries = dumpsys::parse(&dumpsys::render(&device)).expect("our own dumpsys output parses");
            if !entries.is_empty() {
                functional = true;
                providers.extend(entries.iter().map(|e| e.provider));
            }
        }
    }

    // Phase 3: background it and watch dumpsys for surviving listeners.
    let mut background = false;
    let mut bg_interval_s = None;
    if launched && device.move_to_background(id).is_ok() {
        device.advance(protocol.background_s);
        let entries = dumpsys::parse(&dumpsys::render(&device)).expect("our own dumpsys output parses");
        let bg_entries: Vec<_> = entries.iter().filter(|e| e.background).collect();
        if !bg_entries.is_empty() {
            background = true;
            crate::obs::DYNAMIC_BACKGROUND_APPS.inc();
            providers.extend(bg_entries.iter().map(|e| e.provider));
            bg_interval_s = bg_entries.iter().map(|e| e.interval_s).min();
        }
    }

    // Granularities actually delivered during the whole run.
    let delivered: BTreeSet<Granularity> = device.access_log().iter().map(|r| r.granularity).collect();

    // Phase 4: close the app.
    let _ = device.stop(id);

    DynamicObservation {
        package: entry.app.manifest().package().to_owned(),
        category: entry.category,
        claim: entry.app.manifest().location_claim(),
        functional,
        auto_start,
        background,
        providers,
        bg_interval_s,
        delivered,
    }
}

/// Runs the protocol over every location-declaring app of the corpus (the
/// paper only manually tests the 1,137 declaring apps).
#[must_use]
pub fn analyze_corpus(corpus: &[MarketApp]) -> Vec<DynamicObservation> {
    analyze_corpus_with(corpus, Protocol::default())
}

/// [`analyze_corpus`] with a custom protocol.
#[must_use]
pub fn analyze_corpus_with(corpus: &[MarketApp], protocol: Protocol) -> Vec<DynamicObservation> {
    corpus
        .iter()
        .filter(|e| e.app.manifest().location_claim().declares_location())
        .map(|e| analyze_app(e, protocol))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig, Quotas};

    #[test]
    fn observations_match_planted_truth() {
        let cfg = CorpusConfig::scaled(8);
        let corpus = generate(&cfg);
        let obs = analyze_corpus(&corpus);
        let by_package: std::collections::HashMap<&str, &DynamicObservation> =
            obs.iter().map(|o| (o.package.as_str(), o)).collect();
        for entry in corpus.iter().filter(|e| e.truth.claim.declares_location()) {
            let o = by_package[entry.app.manifest().package()];
            assert_eq!(o.functional, entry.truth.functional, "{}", o.package);
            assert_eq!(o.background, entry.truth.bg_interval_s.is_some(), "{}", o.package);
            assert_eq!(o.bg_interval_s, entry.truth.bg_interval_s, "{}", o.package);
            if entry.truth.functional {
                assert_eq!(o.auto_start, entry.truth.auto_start, "{}", o.package);
                assert_eq!(o.combo(), entry.truth.combo, "{}", o.package);
            }
        }
    }

    #[test]
    fn only_declaring_apps_are_tested() {
        let cfg = CorpusConfig::scaled(4);
        let corpus = generate(&cfg);
        let obs = analyze_corpus(&corpus);
        assert_eq!(obs.len(), Quotas::scaled(cfg.total()).declaring);
    }

    #[test]
    fn fine_in_practice_matches_provider_logic() {
        let corpus = generate(&CorpusConfig::scaled(8));
        let obs = analyze_corpus(&corpus);
        for o in obs.iter().filter(|o| o.functional) {
            let has_gps = o.providers.contains(&ProviderKind::Gps);
            if has_gps {
                assert!(o.uses_fine_in_practice());
            }
        }
    }

    #[test]
    fn delivered_granularity_consistent_with_claim() {
        let corpus = generate(&CorpusConfig::scaled(8));
        for o in analyze_corpus(&corpus) {
            if !o.claim.allows_fine() {
                assert!(
                    !o.delivered.contains(&Granularity::Fine),
                    "{} received fine fixes under a coarse claim",
                    o.package
                );
            }
        }
    }

    #[test]
    fn protocol_is_deterministic() {
        let corpus = generate(&CorpusConfig::scaled(3));
        let a = analyze_corpus(&corpus);
        let b = analyze_corpus(&corpus);
        assert_eq!(a, b);
    }
}
