//! The shared third-party SDK fragment.
//!
//! Real markets ship the same ad/analytics library inside thousands of
//! apps, which is exactly what makes per-class summary caching pay off:
//! the library's classes hash to the same digests in every app that
//! embeds them. This module is that library, once — a fixed ~49-class
//! [`IrProgram`] fragment that [`crate::corpus`] links into a configured
//! share of the corpus and [`crate::reach`] wires into each host app's
//! launcher activity.
//!
//! The standard fragment is deliberately *sink-free on every reachable
//! path*: embedding it must never change an app's [`ReachClass`], so the
//! cached sweep stays comparable to the paper funnel whatever the share
//! knob says. It still contains a location sink — in a dead class no
//! fragment method calls — so the analysis has to prove unreachability
//! rather than assume it. A second, sink-bearing variant exists for the
//! differential tests that need the opposite guarantee.
//!
//! [`ReachClass`]: crate::reach::ReachClass

use backwatch_android::ir::{self, IrClass, IrInstr, IrMethod, IrProgram};
use std::sync::{Arc, OnceLock};

/// Class whose invocation boots the SDK inside a host app.
pub const ENTRY_CLASS: &str = "com/adnet/core/Sdk";
/// Method on [`ENTRY_CLASS`] that hosts invoke.
pub const ENTRY_METHOD: &str = "boot";

/// How many ad-unit filler classes the fragment carries. Together with
/// the core/net/metrics/radar/track classes this puts the fragment at 49
/// classes — the same order of magnitude as the host apps' own code, so
/// cache hit rates at high sharing are dominated by fragment reuse.
const AD_UNITS: usize = 40;

/// A shared library fragment: its IR, and the content digest the summary
/// cache keys it under.
#[derive(Debug)]
pub struct SdkLib {
    program: IrProgram,
    digest: u64,
}

impl SdkLib {
    fn from_program(program: IrProgram) -> Self {
        let digest = ir::digest_program(&program);
        Self { program, digest }
    }

    /// The fragment's classes.
    #[must_use]
    pub fn program(&self) -> &IrProgram {
        &self.program
    }

    /// Content digest over the whole fragment (order-sensitive, like
    /// [`ir::digest_program`]).
    #[must_use]
    pub fn digest(&self) -> u64 {
        self.digest
    }

    /// The `(class, method)` hosts invoke to boot the SDK.
    #[must_use]
    pub fn entry(&self) -> (&'static str, &'static str) {
        (ENTRY_CLASS, ENTRY_METHOD)
    }

    /// Number of classes in the fragment.
    #[must_use]
    pub fn class_count(&self) -> usize {
        self.program.classes.len()
    }

    /// Whether the fragment defines `class`.
    #[must_use]
    pub fn defines_class(&self, class: &str) -> bool {
        self.program.classes.iter().any(|c| c.name == class)
    }
}

fn invoke(class: &str, method: &str) -> IrInstr {
    IrInstr::Invoke {
        class: class.to_owned(),
        method: method.to_owned(),
    }
}

fn konst(s: &str) -> IrInstr {
    IrInstr::ConstString(s.to_owned())
}

/// Builds the fragment body. `boot_calls_radar` wires the dead sink class
/// into the entry path — only the test variant does that.
fn build(boot_calls_radar: bool) -> IrProgram {
    let mut boot = vec![
        konst("sdk-7.4.1"),
        invoke("com/adnet/core/Config", "load"),
        invoke("com/adnet/core/Lifecycle", "attach"),
    ];
    if boot_calls_radar {
        boot.push(invoke("com/adnet/radar/DeadRadar", "scan"));
    }
    let mut classes = vec![
        IrClass::new(
            ENTRY_CLASS,
            vec![
                IrMethod::new(ENTRY_METHOD, boot),
                IrMethod::new("version", vec![konst("7.4.1")]),
            ],
        ),
        IrClass::new(
            "com/adnet/core/Config",
            vec![IrMethod::new(
                "load",
                vec![konst("cfg.adnet.json"), invoke("com/adnet/net/Http", "open")],
            )],
        ),
        IrClass::new(
            "com/adnet/core/Lifecycle",
            vec![IrMethod::new("attach", vec![invoke("com/adnet/metrics/Beacon", "emit")])],
        ),
        IrClass::new(
            "com/adnet/net/Http",
            vec![
                IrMethod::new(
                    "open",
                    vec![invoke("com/adnet/net/Dns", "resolve"), invoke("com/adnet/ads/Unit00", "run")],
                ),
                IrMethod::new("close", vec![]),
            ],
        ),
        IrClass::new(
            "com/adnet/net/Dns",
            vec![IrMethod::new("resolve", vec![konst("cdn.adnet.example")])],
        ),
        IrClass::new(
            "com/adnet/metrics/Beacon",
            vec![IrMethod::new("emit", vec![invoke("com/adnet/metrics/Queue", "push")])],
        ),
        // push <-> drain cycle: fragment summaries must fold cyclic
        // intra-fragment reachability, not just trees
        IrClass::new(
            "com/adnet/metrics/Queue",
            vec![
                IrMethod::new("push", vec![invoke("com/adnet/metrics/Queue", "drain")]),
                IrMethod::new("drain", vec![invoke("com/adnet/metrics/Queue", "push")]),
            ],
        ),
    ];
    for i in 0..AD_UNITS {
        let mut run = vec![konst(&format!("unit-{i:02}"))];
        if i + 1 < AD_UNITS {
            run.push(invoke(&format!("com/adnet/ads/Unit{:02}", i + 1), "run"));
        }
        classes.push(IrClass::new(
            format!("com/adnet/ads/Unit{i:02}"),
            vec![IrMethod::new("run", run)],
        ));
    }
    // the decoy: a real location sink (with a provider const-string) that
    // no fragment method reaches unless `boot_calls_radar`
    classes.push(IrClass::new(
        "com/adnet/radar/DeadRadar",
        vec![IrMethod::new(
            "scan",
            vec![konst("gps"), invoke(ir::LOCATION_MANAGER_CLASS, "requestLocationUpdates")],
        )],
    ));
    // the geo forwarder hosts hand coordinates to: whatever taint its
    // argument carries goes straight to the ad-request upload. Dead from
    // `boot`, so linking the fragment still never changes a ReachClass —
    // only apps that *call* it exfiltrate through it.
    classes.push(IrClass::new(
        ir::SDK_GEO_CLASS,
        vec![IrMethod::new(
            ir::SDK_GEO_METHOD,
            vec![invoke(ir::AD_REQUEST_CLASS, "setLocation")],
        )],
    ));
    IrProgram { classes }
}

/// The shared SDK fragment every SDK-bearing corpus app links. Built once
/// per process; the returned `Arc` is cheap to clone into each
/// [`crate::corpus::MarketApp`].
#[must_use]
pub fn shared() -> Arc<SdkLib> {
    static SHARED: OnceLock<Arc<SdkLib>> = OnceLock::new();
    Arc::clone(SHARED.get_or_init(|| Arc::new(SdkLib::from_program(build(false)))))
}

/// Test-support variant whose entry path *does* reach the location sink.
/// Differential suites use it to prove the analysis sees fragment code
/// rather than skipping it.
#[must_use]
pub fn shared_with_sink() -> Arc<SdkLib> {
    static SHARED: OnceLock<Arc<SdkLib>> = OnceLock::new();
    Arc::clone(SHARED.get_or_init(|| Arc::new(SdkLib::from_program(build(true)))))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fragment_round_trips_through_ir_text() {
        let sdk = shared();
        let text = ir::render(sdk.program());
        let parsed = ir::parse(&text).expect("fragment must round-trip");
        assert_eq!(&parsed, sdk.program());
        assert_eq!(ir::digest_program(&parsed), sdk.digest());
    }

    #[test]
    fn fragment_has_expected_shape() {
        let sdk = shared();
        assert_eq!(sdk.class_count(), 49);
        assert!(sdk.defines_class(ENTRY_CLASS));
        assert!(sdk.defines_class("com/adnet/radar/DeadRadar"));
        assert!(sdk.defines_class(ir::SDK_GEO_CLASS));
        assert!(!sdk.defines_class("com/adnet/radar/Ghost"));
        // the entry is a real method
        let entry = sdk.program().class(ENTRY_CLASS).and_then(|c| c.method(ENTRY_METHOD));
        assert!(entry.is_some());
    }

    #[test]
    fn variants_differ_only_in_the_radar_edge() {
        let clean = shared();
        let dirty = shared_with_sink();
        assert_ne!(clean.digest(), dirty.digest());
        assert_eq!(clean.class_count(), dirty.class_count());
    }

    #[test]
    fn shared_is_cached() {
        assert!(Arc::ptr_eq(&shared(), &shared()));
    }
}
