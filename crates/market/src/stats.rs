//! Aggregation of the study's observations into the paper's numbers.

use crate::corpus::{MarketApp, ProviderCombo, TABLE1_COLUMNS};
use crate::dynamic_analysis::DynamicObservation;
use crate::static_analysis::StaticReport;
use backwatch_android::permission::LocationClaim;
use backwatch_stats::summary::Ecdf;
use std::collections::BTreeMap;

/// The §III-B prose numbers.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct HeadlineStats {
    /// Apps examined (paper: 2,800).
    pub total_apps: usize,
    /// Apps declaring a location permission (paper: 1,137).
    pub declaring: usize,
    /// Fine-only / coarse-only / both splits of the declaring apps.
    pub fine_only: usize,
    /// Declaring apps with only the coarse permission.
    pub coarse_only: usize,
    /// Declaring apps with both permissions.
    pub both: usize,
    /// Apps observed to functionally request location (paper: 528).
    pub functional: usize,
    /// Functional apps that registered listeners at launch (paper: 393).
    pub auto_start: usize,
    /// Apps that kept listeners alive in the background (paper: 102).
    pub background: usize,
    /// Background apps that auto-start (paper: 85).
    pub bg_auto_start: usize,
    /// Background apps with a fine claim (paper: 96, i.e. 94.12 %).
    pub bg_claim_fine: usize,
    /// Background apps that in practice obtain precise fixes (paper: 68).
    pub bg_use_fine: usize,
    /// Background apps that claim fine but in practice only obtain coarse
    /// fixes (paper: 28).
    pub bg_coarse_despite_fine: usize,
}

impl HeadlineStats {
    /// Background apps as a share of functional apps (paper: 19.3 %).
    #[must_use]
    pub fn background_share_of_functional(&self) -> f64 {
        ratio(self.background, self.functional)
    }

    /// Background apps as a share of declaring apps (paper: ~9 %).
    #[must_use]
    pub fn background_share_of_declaring(&self) -> f64 {
        ratio(self.background, self.declaring)
    }
}

fn ratio(n: usize, d: usize) -> f64 {
    if d == 0 {
        // defined as 0.0 rather than NaN, and counted so an all-zero
        // denominator sweep is visible in telemetry
        crate::obs::register();
        crate::obs::STATIC_ZERO_DENOMINATOR.inc();
        0.0
    } else {
        n as f64 / d as f64
    }
}

/// Computes the headline statistics from the pipeline outputs.
#[must_use]
pub fn headline(corpus: &[MarketApp], statics: &StaticReport, observations: &[DynamicObservation]) -> HeadlineStats {
    let functional = observations.iter().filter(|o| o.functional).count();
    let auto_start = observations.iter().filter(|o| o.functional && o.auto_start).count();
    let bg: Vec<&DynamicObservation> = observations.iter().filter(|o| o.background).collect();
    let bg_auto_start = bg.iter().filter(|o| o.auto_start).count();
    let bg_claim_fine = bg.iter().filter(|o| o.claim.allows_fine()).count();
    let bg_use_fine = bg.iter().filter(|o| o.uses_fine_in_practice()).count();
    let bg_coarse_despite_fine = bg
        .iter()
        .filter(|o| o.claim.allows_fine() && !o.uses_fine_in_practice())
        .count();
    HeadlineStats {
        total_apps: corpus.len(),
        declaring: statics.declaring,
        fine_only: statics.fine_only,
        coarse_only: statics.coarse_only,
        both: statics.both,
        functional,
        auto_start,
        background: bg.len(),
        bg_auto_start,
        bg_claim_fine,
        bg_use_fine,
        bg_coarse_despite_fine,
    }
}

/// Table I: declared granularity rows × provider-combination columns over
/// the background apps.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProviderTable {
    cells: BTreeMap<(LocationClaim, ProviderCombo), usize>,
    /// Background observations whose provider set is not one of the
    /// modelled combinations (always 0 for generated corpora; kept so real
    /// measurements cannot silently drop apps).
    pub unclassified: usize,
}

impl ProviderTable {
    /// Builds a table directly from cell counts — used by the static
    /// reachability analyzer to rebuild Table I without observations.
    #[must_use]
    pub fn from_cells(cells: BTreeMap<(LocationClaim, ProviderCombo), usize>, unclassified: usize) -> Self {
        Self { cells, unclassified }
    }

    /// The count in one cell.
    #[must_use]
    pub fn cell(&self, claim: LocationClaim, combo: ProviderCombo) -> usize {
        self.cells.get(&(claim, combo)).copied().unwrap_or(0)
    }

    /// Row total for a claim.
    #[must_use]
    pub fn row_total(&self, claim: LocationClaim) -> usize {
        self.cells.iter().filter(|((c, _), _)| *c == claim).map(|(_, n)| n).sum()
    }

    /// Grand total (excluding unclassified).
    #[must_use]
    pub fn total(&self) -> usize {
        self.cells.values().sum()
    }

    /// The three claim rows in Table I order.
    #[must_use]
    pub fn rows() -> [LocationClaim; 3] {
        [
            LocationClaim::FineOnly,
            LocationClaim::CoarseOnly,
            LocationClaim::FineAndCoarse,
        ]
    }
}

/// Builds Table I from the background observations.
#[must_use]
pub fn provider_table(_corpus: &[MarketApp], observations: &[DynamicObservation]) -> ProviderTable {
    let mut cells: BTreeMap<(LocationClaim, ProviderCombo), usize> = BTreeMap::new();
    let mut unclassified = 0;
    for o in observations.iter().filter(|o| o.background) {
        match o.combo() {
            Some(combo) => *cells.entry((o.claim, combo)).or_insert(0) += 1,
            None => unclassified += 1,
        }
    }
    ProviderTable { cells, unclassified }
}

/// Figure 1: the CDF of background update intervals.
#[derive(Debug, Clone, PartialEq)]
pub struct IntervalCdf {
    ecdf: Ecdf,
}

/// The x-axis sample points used when rendering Figure 1.
pub const FIG1_POINTS: [i64; 13] = [1, 2, 5, 10, 30, 60, 120, 300, 600, 1200, 1800, 3600, 7200];

impl IntervalCdf {
    /// Number of background apps behind the CDF.
    #[must_use]
    pub fn len(&self) -> usize {
        self.ecdf.len()
    }

    /// Whether no background apps were observed.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.ecdf.is_empty()
    }

    /// Fraction of background apps updating at least every `secs` seconds.
    #[must_use]
    pub fn fraction_within(&self, secs: i64) -> f64 {
        self.ecdf.fraction_at_or_below(secs as f64)
    }

    /// The largest observed interval, if any (paper: 7,200 s).
    #[must_use]
    pub fn max_interval(&self) -> Option<i64> {
        self.ecdf.max().map(|x| x as i64)
    }

    /// The `(interval, fraction)` series over [`FIG1_POINTS`].
    #[must_use]
    pub fn series(&self) -> Vec<(i64, f64)> {
        FIG1_POINTS.iter().map(|&x| (x, self.fraction_within(x))).collect()
    }
}

/// Builds Figure 1 from the background observations.
#[must_use]
pub fn interval_cdf(observations: &[DynamicObservation]) -> IntervalCdf {
    let intervals: Vec<f64> = observations
        .iter()
        .filter_map(|o| o.bg_interval_s)
        .map(|s| s as f64)
        .collect();
    IntervalCdf {
        ecdf: Ecdf::new(intervals),
    }
}

/// Sanity view: every Table I column has at least one named column constant.
#[must_use]
pub fn table1_columns() -> &'static [ProviderCombo] {
    &TABLE1_COLUMNS
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig, Quotas};
    use crate::dynamic_analysis::analyze_corpus;
    use crate::static_analysis::analyze;

    fn small_study() -> (Vec<MarketApp>, StaticReport, Vec<DynamicObservation>) {
        let cfg = CorpusConfig::scaled(8);
        let corpus = generate(&cfg);
        let statics = analyze(&corpus);
        let obs = analyze_corpus(&corpus);
        (corpus, statics, obs)
    }

    #[test]
    fn headline_matches_quotas() {
        let (corpus, statics, obs) = small_study();
        let q = Quotas::scaled(corpus.len());
        let h = headline(&corpus, &statics, &obs);
        assert_eq!(h.total_apps, q.total);
        assert_eq!(h.declaring, q.declaring);
        assert_eq!(h.functional, q.functional);
        assert_eq!(h.background, q.background);
        assert_eq!(h.bg_auto_start, q.bg_auto_start);
        assert_eq!(
            h.bg_claim_fine,
            q.table1_row_total(LocationClaim::FineOnly) + q.table1_row_total(LocationClaim::FineAndCoarse)
        );
    }

    #[test]
    fn provider_table_sums_to_background_count() {
        let (corpus, _, obs) = small_study();
        let q = Quotas::scaled(corpus.len());
        let t = provider_table(&corpus, &obs);
        assert_eq!(t.total() + t.unclassified, q.background);
        assert_eq!(t.unclassified, 0, "generated corpora only use modelled combos");
        let rows_sum: usize = ProviderTable::rows().iter().map(|&r| t.row_total(r)).sum();
        assert_eq!(rows_sum, t.total());
    }

    #[test]
    fn provider_table_matches_planted_cells() {
        let (corpus, _, obs) = small_study();
        let t = provider_table(&corpus, &obs);
        let q = Quotas::scaled(corpus.len());
        for (claim, combo, count) in &q.table1 {
            assert_eq!(t.cell(*claim, *combo), *count, "cell {claim:?}/{combo}");
        }
    }

    #[test]
    fn interval_cdf_is_monotone_and_complete() {
        let (_, _, obs) = small_study();
        let cdf = interval_cdf(&obs);
        assert!(!cdf.is_empty());
        let series = cdf.series();
        for w in series.windows(2) {
            assert!(w[1].1 >= w[0].1);
        }
        assert_eq!(series.last().unwrap().1, 1.0);
    }

    #[test]
    fn fine_use_counts_are_consistent() {
        let (corpus, statics, obs) = small_study();
        let h = headline(&corpus, &statics, &obs);
        assert_eq!(h.bg_use_fine + h.bg_coarse_despite_fine, h.bg_claim_fine);
        assert!(h.background_share_of_functional() > 0.0);
    }

    #[test]
    fn empty_observations_yield_empty_aggregates() {
        let t = provider_table(&[], &[]);
        assert_eq!(t.total(), 0);
        let cdf = interval_cdf(&[]);
        assert!(cdf.is_empty());
        assert_eq!(cdf.max_interval(), None);
        assert_eq!(cdf.fraction_within(10), 0.0);
    }
}
