//! Secondary analyses of the market study: per-category breakdowns and
//! the over-privilege picture (Felt et al., CCS 2011 — apps declaring
//! permissions they never exercise, which §III-B observes for location).

use crate::category::{Category, ALL_CATEGORIES};
use crate::corpus::MarketApp;
use crate::dynamic_analysis::DynamicObservation;
use crate::reach::ReachFinding;
use std::collections::HashMap;
use std::fmt::Write as _;

/// Per-category location posture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CategoryRow {
    /// The category.
    pub category: Category,
    /// Apps sampled in the category.
    pub apps: usize,
    /// Apps declaring a location permission.
    pub declaring: usize,
    /// Apps functionally accessing location.
    pub functional: usize,
    /// Apps accessing location in background.
    pub background: usize,
}

/// Computes the per-category breakdown.
#[must_use]
pub fn category_breakdown(corpus: &[MarketApp], observations: &[DynamicObservation]) -> Vec<CategoryRow> {
    let mut by_package: HashMap<&str, &DynamicObservation> = HashMap::with_capacity(observations.len());
    for o in observations {
        by_package.insert(o.package.as_str(), o);
    }
    ALL_CATEGORIES
        .iter()
        .map(|&category| {
            let apps_in: Vec<&MarketApp> = corpus.iter().filter(|a| a.category == category).collect();
            let declaring = apps_in
                .iter()
                .filter(|a| a.app.manifest().location_claim().declares_location())
                .count();
            let functional = apps_in
                .iter()
                .filter_map(|a| by_package.get(a.app.manifest().package()))
                .filter(|o| o.functional)
                .count();
            let background = apps_in
                .iter()
                .filter_map(|a| by_package.get(a.app.manifest().package()))
                .filter(|o| o.background)
                .count();
            CategoryRow {
                category,
                apps: apps_in.len(),
                declaring,
                functional,
                background,
            }
        })
        .collect()
}

/// The over-privilege summary: declared-but-unused location permissions.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct OverprivilegeReport {
    /// Apps declaring a location permission.
    pub declaring: usize,
    /// Declaring apps that never exercised the permission during the
    /// dynamic run (the paper observes 1,137 − 528 = 609 such apps).
    pub inert: usize,
}

impl OverprivilegeReport {
    /// Fraction of declaring apps that are over-privileged.
    #[must_use]
    pub fn fraction(&self) -> f64 {
        if self.declaring == 0 {
            0.0
        } else {
            self.inert as f64 / self.declaring as f64
        }
    }
}

/// Computes the over-privilege report from the observations.
#[must_use]
pub fn overprivilege(observations: &[DynamicObservation]) -> OverprivilegeReport {
    let declaring = observations.len();
    let inert = observations.iter().filter(|o| !o.functional).count();
    OverprivilegeReport { declaring, inert }
}

/// Per-category agreement between the static reachability analyzer and
/// the dynamic run on the paper's core signal (background access).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ReachAgreementRow {
    /// The category.
    pub category: Category,
    /// Apps sampled in the category.
    pub apps: usize,
    /// Apps the static analyzer classified as background-capable or
    /// auto-start.
    pub static_background: usize,
    /// Apps the dynamic run observed polling in the background.
    pub dynamic_background: usize,
    /// Apps on which the two pipelines disagree about background access.
    pub disagreements: usize,
}

/// Computes the per-category static-vs-dynamic agreement table. Apps the
/// dynamic stage skipped (non-declaring) count as dynamically
/// non-background.
#[must_use]
pub fn reach_agreement(
    corpus: &[MarketApp],
    findings: &[ReachFinding],
    observations: &[DynamicObservation],
) -> Vec<ReachAgreementRow> {
    let static_bg: HashMap<&str, bool> = findings
        .iter()
        .map(|f| (f.package.as_str(), f.class.accesses_in_background()))
        .collect();
    let dynamic_bg: HashMap<&str, bool> = observations.iter().map(|o| (o.package.as_str(), o.background)).collect();
    ALL_CATEGORIES
        .iter()
        .map(|&category| {
            let mut apps = 0usize;
            let mut s_bg = 0usize;
            let mut d_bg = 0usize;
            let mut disagreements = 0usize;
            for entry in corpus.iter().filter(|a| a.category == category) {
                apps += 1;
                let pkg = entry.app.manifest().package();
                let s = static_bg.get(pkg).copied().unwrap_or(false);
                let d = dynamic_bg.get(pkg).copied().unwrap_or(false);
                s_bg += usize::from(s);
                d_bg += usize::from(d);
                disagreements += usize::from(s != d);
            }
            ReachAgreementRow {
                category,
                apps,
                static_background: s_bg,
                dynamic_background: d_bg,
                disagreements,
            }
        })
        .collect()
}

/// Renders the category table, most background-hungry categories first.
#[must_use]
pub fn render_breakdown(rows: &[CategoryRow]) -> String {
    let mut sorted: Vec<&CategoryRow> = rows.iter().collect();
    sorted.sort_by(|a, b| b.background.cmp(&a.background).then(b.declaring.cmp(&a.declaring)));
    let mut s = String::new();
    let _ = writeln!(s, "Per-category location posture (sorted by background pollers)");
    let _ = writeln!(
        s,
        "{:<18} {:>6} {:>10} {:>11} {:>11}",
        "category", "apps", "declaring", "functional", "background"
    );
    for r in sorted {
        let _ = writeln!(
            s,
            "{:<18} {:>6} {:>10} {:>11} {:>11}",
            r.category.slug(),
            r.apps,
            r.declaring,
            r.functional,
            r.background
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::corpus::{generate, CorpusConfig, Quotas};
    use crate::dynamic_analysis::analyze_corpus;

    fn study() -> (Vec<MarketApp>, Vec<DynamicObservation>) {
        let corpus = generate(&CorpusConfig::scaled(10));
        let obs = analyze_corpus(&corpus);
        (corpus, obs)
    }

    #[test]
    fn breakdown_covers_all_categories_and_sums_match() {
        let (corpus, obs) = study();
        let rows = category_breakdown(&corpus, &obs);
        assert_eq!(rows.len(), 28);
        let q = Quotas::scaled(corpus.len());
        assert_eq!(rows.iter().map(|r| r.apps).sum::<usize>(), q.total);
        assert_eq!(rows.iter().map(|r| r.declaring).sum::<usize>(), q.declaring);
        assert_eq!(rows.iter().map(|r| r.functional).sum::<usize>(), q.functional);
        assert_eq!(rows.iter().map(|r| r.background).sum::<usize>(), q.background);
    }

    #[test]
    fn row_counts_are_internally_consistent() {
        let (corpus, obs) = study();
        for r in category_breakdown(&corpus, &obs) {
            assert!(r.declaring <= r.apps);
            assert!(r.functional <= r.declaring);
            assert!(r.background <= r.functional);
        }
    }

    #[test]
    fn location_heavy_categories_lead() {
        let (corpus, obs) = study();
        let rows = category_breakdown(&corpus, &obs);
        let declaring_of = |c: Category| rows.iter().find(|r| r.category == c).unwrap().declaring;
        assert!(declaring_of(Category::TravelAndLocal) > declaring_of(Category::Comics));
    }

    #[test]
    fn reach_agreement_is_perfect_on_generated_corpus() {
        let (corpus, obs) = study();
        let findings = crate::reach::analyze(&corpus).findings;
        let rows = reach_agreement(&corpus, &findings, &obs);
        assert_eq!(rows.len(), 28);
        let q = Quotas::scaled(corpus.len());
        assert_eq!(rows.iter().map(|r| r.static_background).sum::<usize>(), q.background);
        assert_eq!(rows.iter().map(|r| r.dynamic_background).sum::<usize>(), q.background);
        assert_eq!(rows.iter().map(|r| r.disagreements).sum::<usize>(), 0);
    }

    #[test]
    fn overprivilege_matches_quota_arithmetic() {
        let (corpus, obs) = study();
        let q = Quotas::scaled(corpus.len());
        let report = overprivilege(&obs);
        assert_eq!(report.declaring, q.declaring);
        assert_eq!(report.inert, q.declaring - q.functional);
        let expected_fraction = (q.declaring - q.functional) as f64 / q.declaring as f64;
        assert!((report.fraction() - expected_fraction).abs() < 1e-12);
    }

    #[test]
    fn render_is_sorted_by_background() {
        let (corpus, obs) = study();
        let rows = category_breakdown(&corpus, &obs);
        let text = render_breakdown(&rows);
        assert!(text.contains("category"));
        // every category slug appears
        for r in &rows {
            assert!(text.contains(r.category.slug()));
        }
    }
}
