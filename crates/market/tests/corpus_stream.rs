//! Streamed-corpus equivalence: `corpus::stream` must be a drop-in for
//! `corpus::generate` — same apps, same order, same ground truth, same
//! SDK membership — and any prefix of the stream must be stable when the
//! corpus grows (apps are addressed by schedule slot, so adding ranks
//! never perturbs earlier ones). The first property is pinned
//! element-for-element at paper scale; the second is a property test
//! over sizes, seeds, and knob settings.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_market::corpus::{app_at, generate, stream, CorpusConfig, MarketApp};
use proptest::prelude::*;

fn assert_same_entry(a: &MarketApp, b: &MarketApp, i: usize) {
    assert_eq!(a.app, b.app, "app at index {i}");
    assert_eq!(a.category, b.category, "category at index {i}");
    assert_eq!(a.truth, b.truth, "ground truth at index {i}");
    assert_eq!(
        a.sdk.as_ref().map(|s| s.digest()),
        b.sdk.as_ref().map(|s| s.digest()),
        "SDK membership at index {i}"
    );
}

#[test]
fn stream_collects_to_generate_at_paper_scale() {
    let cfg = CorpusConfig::paper_scale().with_sdk_share(90);
    let streamed: Vec<MarketApp> = stream(&cfg).collect();
    let generated = generate(&cfg);
    assert_eq!(streamed.len(), cfg.total());
    assert_eq!(generated.len(), cfg.total());
    for (i, (s, g)) in streamed.iter().zip(&generated).enumerate() {
        assert_same_entry(s, g, i);
    }
}

#[test]
fn stream_length_is_exact() {
    let cfg = CorpusConfig::scaled(9).with_sdk_share(25);
    let mut s = stream(&cfg);
    assert_eq!(s.len(), cfg.total());
    let mut drained = 0usize;
    while let Some(entry) = s.next() {
        drained += 1;
        assert_eq!(s.len(), cfg.total() - drained);
        // the stream is random-access consistent while it drains
        assert_eq!(entry.app, app_at(&cfg, drained - 1).app);
    }
    assert_eq!(drained, cfg.total());
}

#[test]
fn sdk_fragment_is_shared_not_duplicated() {
    let cfg = CorpusConfig::scaled(4).with_sdk_share(100);
    let corpus: Vec<MarketApp> = stream(&cfg).collect();
    let mut linked = corpus.iter().filter_map(|e| e.sdk.as_ref());
    let first = linked.next().expect("full share links every app");
    for other in linked {
        assert!(
            std::sync::Arc::ptr_eq(first, other),
            "one fragment allocation serves the whole corpus"
        );
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// Growing the market never rewrites history: the first `total`
    /// apps of a larger corpus are bit-identical to the smaller corpus,
    /// across seeds, SDK share, and snapshot epochs.
    #[test]
    fn any_prefix_is_stable_under_larger_totals(
        small in 1usize..=8,
        extra in 1usize..=8,
        seed in any::<u64>(),
        share in 0u8..=100,
        snapshot in 0u32..=3,
    ) {
        let a = CorpusConfig { apps_per_category: small, seed, sdk_share_percent: share, snapshot, churn_ppm: 10_000 };
        let b = CorpusConfig { apps_per_category: small + extra, ..a };
        let full: Vec<MarketApp> = stream(&a).collect();
        let prefix: Vec<MarketApp> = stream(&b).take(a.total()).collect();
        prop_assert_eq!(full.len(), prefix.len());
        for (i, (f, p)) in full.iter().zip(&prefix).enumerate() {
            assert_same_entry(f, p, i);
        }
    }
}
