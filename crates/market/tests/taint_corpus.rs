//! Taint half of the shared IR fixture corpus: fixtures under
//! `crates/android/tests/ir_corpus/` carrying a `#taint:` directive are
//! run through [`backwatch_market::taint::analyze_program`] against the
//! same standard manifest `reach_corpus` uses, and the assigned taint
//! class label must match the directive. Fixtures that additionally
//! declare `#taint-sdk: shared` get the shared SDK fragment's classes
//! composed in first — the source→SDK-forwarder→network flow the ad-SDK
//! aggregation literature singles out.
//!
//! Every fixture is checked against the refinement contract too: the
//! taint class may narrow the reachability class, never contradict it.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_android::app::{Component, ComponentKind, Manifest, ManifestBuilder, ACTION_BOOT_COMPLETED, ACTION_MAIN};
use backwatch_android::ir;
use backwatch_android::permission::Permission;
use backwatch_market::{reach, taint};
use std::fs;
use std::path::PathBuf;

/// Mirror of `reach_corpus`'s standard manifest.
fn standard_manifest() -> Manifest {
    let mut b = ManifestBuilder::new("com.fix.app");
    b.add_permission(Permission::AccessFineLocation);
    b.add_permission(Permission::AccessCoarseLocation);
    b.add_permission(Permission::ReceiveBootCompleted);
    b.add_component(Component::new(ComponentKind::Activity, ".MainActivity").with_action(ACTION_MAIN));
    b.add_component(Component::new(ComponentKind::Service, ".LocationService"));
    b.add_component(Component::new(ComponentKind::Receiver, ".BootReceiver").with_action(ACTION_BOOT_COMPLETED));
    b.build()
}

fn directive<'a>(text: &'a str, key: &str) -> Option<&'a str> {
    text.lines()
        .take_while(|l| l.starts_with('#'))
        .find_map(|l| l.strip_prefix(key))
        .map(str::trim)
}

#[test]
fn fixture_taint_classes_match_their_directives() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../android/tests/ir_corpus");
    let manifest = standard_manifest();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("shared ir_corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ir"))
        .collect();
    fixtures.sort();

    let mut checked = 0usize;
    for path in fixtures {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_owned();
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: unreadable fixture: {e}"));
        let Some(want) = directive(&text, "#taint:") else {
            continue;
        };
        let mut program = ir::parse(&text).unwrap_or_else(|e| panic!("{name}: #taint fixture must parse: {e}"));
        if let Some(sdk) = directive(&text, "#taint-sdk:") {
            assert_eq!(sdk, "shared", "{name}: only the shared fragment is composable");
            let fragment = backwatch_market::sdk::shared();
            program.classes.extend(fragment.program().classes.iter().cloned());
        }
        let reach_class = reach::analyze_program(&manifest, &program).class;
        let taint_class = taint::analyze_program(&manifest, &program, reach_class);
        assert_eq!(taint_class.label(), want, "{name}: wrong taint class");
        assert!(
            taint_class.refines(reach_class),
            "{name}: taint class {taint_class} contradicts reachability {reach_class}"
        );
        checked += 1;
    }
    assert!(
        checked >= 6,
        "only {checked} fixtures carry a #taint: directive — expected the full adversarial taint set"
    );
}
