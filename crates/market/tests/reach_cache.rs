//! Cache-correctness differential suite: the cached, parallel, and
//! incremental sweep paths must be *bit-identical* to the uncached
//! sequential oracle (`reach::analyze`) — same per-app finding, same
//! §III funnel (2,800 → 1,137 → 528 → 102 → 85 at paper scale), same
//! Table I — under every knob setting, including an adversarial
//! sink-bearing fragment. The cache is allowed to change how much work
//! happens, never what comes out.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_market::corpus::{generate, CorpusConfig};
use backwatch_market::reach::{self, ReachClass};
use backwatch_market::sdk;
use backwatch_market::summary::{analyze_entry_cached, SummaryCache};
use backwatch_market::sweep::{sweep, sweep_incremental};

#[test]
fn cached_sweep_matches_the_oracle_at_paper_scale() {
    let cfg = CorpusConfig::paper_scale().with_sdk_share(90);
    let oracle = reach::analyze(&generate(&cfg));
    // the paper's funnel first, so a corpus regression cannot masquerade
    // as a cache bug
    assert_eq!(oracle.total, 2800);
    assert_eq!(oracle.declaring, 1137);
    assert_eq!(oracle.functional, 528);
    assert_eq!(oracle.background, 102);
    assert_eq!(oracle.auto_start, 85);
    assert_eq!(oracle.parse_failures, 0);

    let cold = sweep(&cfg, 1, &SummaryCache::new());
    for (i, expected) in oracle.findings.iter().enumerate() {
        assert_eq!(cold.finding_at(i), *expected, "app {i}");
    }
    let report = cold.report();
    assert_eq!(report.total, oracle.total);
    assert_eq!(report.declaring, oracle.declaring);
    assert_eq!(report.functional, oracle.functional);
    assert_eq!(report.background, oracle.background);
    assert_eq!(report.auto_start, oracle.auto_start);
    assert_eq!(report.parse_failures, oracle.parse_failures);
    assert_eq!(report.table1, oracle.table1);

    // at 90% sharing the cache must carry the sweep: the shared fragment
    // plus repeated own-code shapes dominate the lookups
    assert!(
        cold.tally.hit_rate() >= 0.90,
        "paper-plausible sharing must reach a 90% hit rate, got {:.3}",
        cold.tally.hit_rate()
    );
}

#[test]
fn parallel_sweep_is_bit_identical_to_sequential() {
    let cfg = CorpusConfig::paper_scale().with_sdk_share(60);
    let sequential = sweep(&cfg, 1, &SummaryCache::new());
    let parallel = sweep(&cfg, 4, &SummaryCache::new());
    assert_eq!(sequential.records, parallel.records);
    assert_eq!(sequential.digests, parallel.digests);
    assert_eq!(
        sequential.tally.hits + sequential.tally.misses,
        parallel.tally.hits + parallel.tally.misses,
        "every class lookup happens exactly once per app, whatever the interleaving"
    );
}

#[test]
fn incremental_equals_cold_across_churn_rates() {
    for churn_ppm in [0u32, 10_000, 1_000_000] {
        let base = CorpusConfig::scaled(25).with_sdk_share(60).with_churn_ppm(churn_ppm);
        let next = base.at_snapshot(3);
        let cache = SummaryCache::new();
        let cold_base = sweep(&base, 2, &cache);
        let (incremental, delta) = sweep_incremental(&next, &cold_base, 2, &cache);
        let cold_next = sweep(&next, 2, &SummaryCache::new());
        assert_eq!(incremental.records, cold_next.records, "churn {churn_ppm} ppm");
        assert_eq!(incremental.digests, cold_next.digests, "churn {churn_ppm} ppm");
        assert!(delta.digest_changed <= delta.version_changed);
        assert_eq!(incremental.analyzed, delta.digest_changed);
        assert_eq!(incremental.reused, delta.total - delta.digest_changed);
        match churn_ppm {
            0 => assert_eq!(delta.version_changed, 0),
            1_000_000 => assert_eq!(delta.version_changed, delta.total, "certain churn updates every app"),
            _ => assert!(
                delta.version_changed > 0 && delta.version_changed < delta.total,
                "moderate churn moves some but not all of {} apps (moved {})",
                delta.total,
                delta.version_changed
            ),
        }
        // roles are schedule-determined, so churn never moves the funnel
        assert_eq!(delta.funnel_before, delta.funnel_after, "churn {churn_ppm} ppm");
    }
}

#[test]
fn adversarial_sink_bearing_fragment_stays_differential() {
    // swap every linked fragment for the variant whose boot path reaches
    // a location sink: classifications *should* move, and the cached
    // path must move in lockstep with the oracle
    let cfg = CorpusConfig::scaled(5).with_sdk_share(100);
    let mut corpus = generate(&cfg);
    for entry in &mut corpus {
        entry.sdk = Some(sdk::shared_with_sink());
    }
    let cache = SummaryCache::new();
    let mut promoted = 0usize;
    for entry in &corpus {
        let oracle = reach::analyze_entry(entry);
        let cached = analyze_entry_cached(entry, &cache);
        assert_eq!(cached.finding, oracle, "{}", oracle.package);
        promoted += usize::from(oracle.claim.declares_location() && oracle.class != ReachClass::NonAccessor);
    }
    let declaring = corpus.iter().filter(|e| e.truth.claim.declares_location()).count();
    assert_eq!(
        promoted, declaring,
        "a reachable sink in the fragment makes every declaring app functional"
    );
}

#[test]
fn tiny_cache_under_eviction_pressure_stays_differential() {
    let cfg = CorpusConfig::scaled(8).with_sdk_share(45);
    let oracle = reach::analyze(&generate(&cfg));
    let tiny = SummaryCache::with_shard_capacity(2);
    let cold = sweep(&cfg, 3, &tiny);
    for (i, expected) in oracle.findings.iter().enumerate() {
        assert_eq!(cold.finding_at(i), *expected, "app {i}");
    }
}
