//! Telemetry-differential check for the taint pass: the cached sweep
//! must advance the `market.taint.*` counters exactly as the uncached
//! taint oracle does for the same corpus, a warm re-sweep must move them
//! by the same amount again (classification happens per app per sweep,
//! cached or not), and only incremental digest changes advance the
//! shared re-analysis counter. Single `#[test]` on purpose: the counters
//! are process-global, so deltas are only meaningful when nothing else
//! in the binary runs concurrently.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_market::corpus::{generate, CorpusConfig};
use backwatch_market::summary::SummaryCache;
use backwatch_market::sweep::{sweep, sweep_incremental};
use backwatch_market::taint;

const TAINT_COUNTERS: [&str; 6] = [
    "market.taint.apps_classified_total",
    "market.taint.no_access_total",
    "market.taint.access_only_total",
    "market.taint.hits_total",
    "market.taint.exfil_sanitized_total",
    "market.taint.exfil_raw_total",
];

fn taint_counters() -> Vec<u64> {
    let snap = backwatch_obs::snapshot();
    TAINT_COUNTERS
        .iter()
        .map(|name| snap.counter(name).expect("market counters registered"))
        .collect()
}

fn counter(name: &str) -> u64 {
    backwatch_obs::snapshot().counter(name).expect("market counters registered")
}

#[test]
fn cached_sweep_advances_taint_counters_exactly_as_the_oracle() {
    let cfg = CorpusConfig::scaled(10).with_sdk_share(70).with_churn_ppm(50_000);
    let corpus = generate(&cfg);
    backwatch_market::obs::register();
    if backwatch_obs::snapshot().samples.is_empty() {
        // telemetry compiled out (obs `disabled` feature): nothing to compare
        return;
    }

    let before = taint_counters();
    for entry in &corpus {
        let _ = taint::analyze_entry(entry);
    }
    let mid = taint_counters();
    let cache = SummaryCache::new();
    let cold = sweep(&cfg, 2, &cache);
    let after = taint_counters();

    let oracle_delta: Vec<u64> = mid.iter().zip(&before).map(|(m, b)| m - b).collect();
    let cached_delta: Vec<u64> = after.iter().zip(&mid).map(|(a, m)| a - m).collect();
    assert_eq!(
        cached_delta, oracle_delta,
        "cached sweep must move {TAINT_COUNTERS:?} exactly as the oracle"
    );
    assert_eq!(
        oracle_delta.first().copied(),
        Some(cfg.total() as u64),
        "one taint classification per app"
    );
    // the class counters partition the classified apps, and hits is the
    // exfiltration tail of that partition
    assert_eq!(oracle_delta[0], oracle_delta[1] + oracle_delta[2] + oracle_delta[3]);
    assert_eq!(oracle_delta[3], oracle_delta[4] + oracle_delta[5]);
    assert!(
        oracle_delta[4] > 0 && oracle_delta[5] > 0,
        "corpus carries both exfiltration flavors"
    );

    // a warm sweep still classifies every app (from cache), so the taint
    // counters advance by the same delta again while the cache is fully
    // resident
    let warm = sweep(&cfg, 2, &cache);
    let warm_after = taint_counters();
    let warm_delta: Vec<u64> = warm_after.iter().zip(&after).map(|(w, a)| w - a).collect();
    assert_eq!(warm_delta, oracle_delta, "warm sweep classifies every app again");
    assert_eq!(warm.tally.misses, 0, "second sweep of the same corpus is fully resident");

    // only incremental digest changes advance the shared re-analysis
    // counter; carried-over records do not re-classify
    let reanalyzed_before = counter("market.reach.apps_reanalyzed_total");
    let classified_before = counter("market.taint.apps_classified_total");
    let (_, delta) = sweep_incremental(&cfg.at_snapshot(4), &cold, 2, &cache);
    assert_eq!(
        counter("market.reach.apps_reanalyzed_total") - reanalyzed_before,
        delta.digest_changed as u64
    );
    assert_eq!(
        counter("market.taint.apps_classified_total") - classified_before,
        delta.digest_changed as u64,
        "incremental sweep re-classifies only the digest-changed slice"
    );
    assert!(delta.digest_changed < cfg.total());
}
