//! Property suite for the interprocedural taint pass. Three invariants,
//! each checked over randomly drawn corpora rather than hand-picked
//! fixtures:
//!
//! 1. **Refinement**: the taint class never contradicts the reachability
//!    class — `no_access` exactly on non-accessors — and the cached sweep
//!    assigns the same class as the uncached oracle on every app.
//! 2. **Thread invariance**: the per-app taint records of a parallel
//!    sweep are bit-identical to the sequential sweep's.
//! 3. **Incremental soundness**: an incremental re-sweep after churn
//!    lands on the same taint classes as a cold sweep of the new
//!    snapshot, at every churn rate drawn.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_market::corpus::{stream, CorpusConfig};
use backwatch_market::summary::SummaryCache;
use backwatch_market::sweep::{sweep, sweep_incremental};
use backwatch_market::taint::{self, TaintClass};
use proptest::prelude::*;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Taint refines reachability and the cached path agrees with the
    /// oracle, app by app, whatever the corpus knobs.
    #[test]
    fn taint_refines_reach_and_matches_oracle(
        size in 1usize..=6,
        seed in any::<u64>(),
        share in 0u8..=100,
    ) {
        let cfg = CorpusConfig { apps_per_category: size, seed, sdk_share_percent: share, snapshot: 0, churn_ppm: 10_000 };
        let swept = sweep(&cfg, 2, &SummaryCache::new());
        for (i, entry) in stream(&cfg).enumerate() {
            let record = &swept.records[i];
            let oracle = taint::analyze_entry(&entry);
            prop_assert_eq!(record.taint, oracle.taint, "app {}", i);
            prop_assert!(
                record.taint.refines(record.class),
                "app {}: taint {} contradicts reach {:?}", i, record.taint, record.class
            );
            // no-access and non-accessor are the same set of apps
            prop_assert_eq!(
                record.taint == TaintClass::NoAccess,
                record.class == backwatch_market::reach::ReachClass::NonAccessor,
                "app {}", i
            );
        }
    }

    /// Taint records are independent of the sweep's thread count.
    #[test]
    fn taint_records_are_thread_invariant(
        size in 1usize..=5,
        seed in any::<u64>(),
        share in 0u8..=100,
        threads in 2usize..=6,
    ) {
        let cfg = CorpusConfig { apps_per_category: size, seed, sdk_share_percent: share, snapshot: 0, churn_ppm: 10_000 };
        let sequential = sweep(&cfg, 1, &SummaryCache::new());
        let parallel = sweep(&cfg, threads, &SummaryCache::new());
        prop_assert_eq!(&sequential.records, &parallel.records);
        prop_assert_eq!(sequential.taint_histogram(), parallel.taint_histogram());
    }

    /// Incremental re-sweep after churn agrees with a cold sweep of the
    /// new snapshot on every taint class, while re-analyzing only the
    /// digest-changed slice.
    #[test]
    fn incremental_taint_equals_cold(
        size in 1usize..=5,
        seed in any::<u64>(),
        share in 0u8..=100,
        churn_ppm in prop_oneof![Just(0u32), 1u32..=200_000, Just(1_000_000u32)],
    ) {
        let base = CorpusConfig { apps_per_category: size, seed, sdk_share_percent: share, snapshot: 0, churn_ppm };
        let next = base.at_snapshot(1);
        let cache = SummaryCache::new();
        let cold_base = sweep(&base, 2, &cache);
        let (incremental, delta) = sweep_incremental(&next, &cold_base, 2, &cache);
        let cold_next = sweep(&next, 2, &SummaryCache::new());
        prop_assert_eq!(&incremental.records, &cold_next.records);
        prop_assert_eq!(incremental.taint_histogram(), cold_next.taint_histogram());
        prop_assert_eq!(incremental.analyzed, delta.digest_changed);
    }
}
