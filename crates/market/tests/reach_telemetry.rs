//! Telemetry-differential check: the cached sweep must advance the
//! `market.reach.*` counters exactly as the uncached oracle does for the
//! same corpus, and the cache/incremental counters must reconcile with
//! the sweep's own tallies. This file holds a single `#[test]` on
//! purpose: the counters are process-global, so the deltas are only
//! meaningful when nothing else in the binary runs concurrently.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_market::corpus::{generate, CorpusConfig};
use backwatch_market::reach;
use backwatch_market::summary::SummaryCache;
use backwatch_market::sweep::{sweep, sweep_incremental};

const REACH_COUNTERS: [&str; 5] = [
    "market.reach.apps_classified_total",
    "market.reach.background_apps_total",
    "market.reach.missing_components_total",
    "market.reach.parse_failures_total",
    "market.reach.unknown_combo_total",
];

fn reach_counters() -> Vec<u64> {
    let snap = backwatch_obs::snapshot();
    REACH_COUNTERS
        .iter()
        .map(|name| snap.counter(name).expect("market counters registered"))
        .collect()
}

fn counter(name: &str) -> u64 {
    backwatch_obs::snapshot().counter(name).expect("market counters registered")
}

#[test]
fn cached_and_incremental_sweeps_advance_the_same_counters_as_the_oracle() {
    let cfg = CorpusConfig::scaled(10).with_sdk_share(70).with_churn_ppm(50_000);
    let corpus = generate(&cfg);
    backwatch_market::obs::register();
    if backwatch_obs::snapshot().samples.is_empty() {
        // telemetry compiled out (obs `disabled` feature): nothing to compare
        return;
    }

    let before = reach_counters();
    let _oracle = reach::analyze(&corpus);
    let mid = reach_counters();
    let cache = SummaryCache::new();
    let cold = sweep(&cfg, 2, &cache);
    let after = reach_counters();

    let oracle_delta: Vec<u64> = mid.iter().zip(&before).map(|(m, b)| m - b).collect();
    let cached_delta: Vec<u64> = after.iter().zip(&mid).map(|(a, m)| a - m).collect();
    assert_eq!(
        cached_delta, oracle_delta,
        "cached sweep must move {REACH_COUNTERS:?} exactly as the oracle"
    );
    assert_eq!(
        oracle_delta.first().copied(),
        Some(cfg.total() as u64),
        "one classification per app"
    );

    // cache counters reconcile with the sweep's own tally, and the
    // oracle path never touches them
    let hits_after = counter("market.reach.cache_hits_total");
    let misses_after = counter("market.reach.cache_misses_total");
    let warm = sweep(&cfg, 2, &cache);
    assert_eq!(counter("market.reach.cache_hits_total") - hits_after, warm.tally.hits);
    assert_eq!(counter("market.reach.cache_misses_total") - misses_after, warm.tally.misses);
    assert_eq!(warm.tally.misses, 0, "second sweep of the same corpus is fully resident");

    // cold sweeps are not re-analyses; only incremental digest changes
    // advance the re-analysis counter, by exactly the delta's count
    let reanalyzed_before = counter("market.reach.apps_reanalyzed_total");
    let (_, delta) = sweep_incremental(&cfg.at_snapshot(4), &cold, 2, &cache);
    assert_eq!(
        counter("market.reach.apps_reanalyzed_total") - reanalyzed_before,
        delta.digest_changed as u64
    );
    assert!(
        delta.digest_changed < cfg.total(),
        "churn leaves most of the market untouched between snapshots"
    );
}
