//! Classification half of the shared IR fixture corpus: fixtures under
//! `crates/android/tests/ir_corpus/` that carry a second `#class:`
//! directive are run through [`backwatch_market::reach::analyze_program`]
//! against a fixed standard manifest, and the assigned reachability class
//! must match the directive. The parse-side contract (parse-or-counted-
//! error, never panic) lives in the android crate's `ir_corpus` test;
//! this one pins the *semantics* — cycles terminate, dead sinks stay
//! non-accessor, sink-named app methods are not sinks, missing entry
//! classes are counted and skipped.
//!
//! The test lives here rather than in the android crate because reach
//! analysis is a market concern and android must not depend on market.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_android::app::{Component, ComponentKind, Manifest, ManifestBuilder, ACTION_BOOT_COMPLETED, ACTION_MAIN};
use backwatch_android::ir;
use backwatch_android::permission::Permission;
use backwatch_market::reach;
use std::fs;
use std::path::PathBuf;

/// The standard manifest every classification fixture is analyzed under:
/// full location claim plus one component of each kind, so fixtures can
/// exercise any entry bucket by defining (or omitting) the matching class.
fn standard_manifest() -> Manifest {
    let mut b = ManifestBuilder::new("com.fix.app");
    b.add_permission(Permission::AccessFineLocation);
    b.add_permission(Permission::AccessCoarseLocation);
    b.add_permission(Permission::ReceiveBootCompleted);
    b.add_component(Component::new(ComponentKind::Activity, ".MainActivity").with_action(ACTION_MAIN));
    b.add_component(Component::new(ComponentKind::Service, ".LocationService"));
    b.add_component(Component::new(ComponentKind::Receiver, ".BootReceiver").with_action(ACTION_BOOT_COMPLETED));
    b.build()
}

fn class_directive(text: &str) -> Option<&str> {
    text.lines().nth(1)?.strip_prefix("#class:").map(str::trim)
}

#[test]
fn fixture_classes_match_their_directives() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("../android/tests/ir_corpus");
    let manifest = standard_manifest();
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("shared ir_corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ir"))
        .collect();
    fixtures.sort();

    let mut classified = 0usize;
    for path in fixtures {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_owned();
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: unreadable fixture: {e}"));
        let Some(want) = class_directive(&text) else {
            continue;
        };
        let program = ir::parse(&text).unwrap_or_else(|e| panic!("{name}: #class fixture must parse: {e}"));
        let analysis = reach::analyze_program(&manifest, &program);
        assert_eq!(analysis.class.name(), want, "{name}: wrong reachability class");
        classified += 1;

        // every declared component missing from the program is counted
        let present = |suffix: &str| program.classes.iter().any(|c| c.name == format!("com/fix/app/{suffix}"));
        let expected_missing = 3
            - usize::from(present("MainActivity"))
            - usize::from(present("LocationService"))
            - usize::from(present("BootReceiver"));
        assert_eq!(
            analysis.missing_components, expected_missing,
            "{name}: wrong missing-component count"
        );
    }
    assert!(
        classified >= 13,
        "only {classified} fixtures carry a #class: directive — expected the full classification set"
    );
}
