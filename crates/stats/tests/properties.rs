//! Property-based tests for the statistics substrate.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_stats::{chi2, entropy, gamma, summary::Ecdf, CountHistogram};
use proptest::prelude::*;

proptest! {
    #[test]
    fn ln_gamma_recurrence(x in 0.1f64..50.0) {
        // Γ(x+1) = x Γ(x)  =>  lnΓ(x+1) = ln x + lnΓ(x)
        let lhs = gamma::ln_gamma(x + 1.0);
        let rhs = x.ln() + gamma::ln_gamma(x);
        prop_assert!((lhs - rhs).abs() < 1e-9, "x={x} lhs={lhs} rhs={rhs}");
    }

    #[test]
    fn incomplete_gamma_complementary(a in 0.1f64..100.0, x in 0.0f64..200.0) {
        let p = gamma::reg_lower_gamma(a, x);
        let q = gamma::reg_upper_gamma(a, x);
        prop_assert!((p + q - 1.0).abs() < 1e-9);
        prop_assert!((0.0..=1.0).contains(&p));
    }

    #[test]
    fn chi2_cdf_bounds_and_monotonicity(df in 0.5f64..200.0, x in 0.0f64..500.0, dx in 0.0f64..50.0) {
        let c1 = chi2::cdf(x, df);
        let c2 = chi2::cdf(x + dx, df);
        prop_assert!((0.0..=1.0).contains(&c1));
        prop_assert!(c2 >= c1 - 1e-12);
    }

    #[test]
    fn chi2_inverse_round_trip(df in 0.5f64..150.0, p in 0.001f64..0.999) {
        let x = chi2::inverse_cdf(p, df);
        prop_assert!((chi2::cdf(x, df) - p).abs() < 1e-8, "df={df} p={p} x={x}");
    }

    #[test]
    fn gof_statistic_zero_iff_equal(counts in prop::collection::vec(1.0f64..1000.0, 2..30)) {
        let out = chi2::GofTest::new(0.05, chi2::Tail::Upper).run(&counts, &counts).unwrap();
        prop_assert_eq!(out.statistic, 0.0);
        prop_assert!(!out.rejected);
    }

    #[test]
    fn gof_statistic_nonnegative(
        observed in prop::collection::vec(0.0f64..1000.0, 5),
        expected in prop::collection::vec(0.1f64..1000.0, 5),
    ) {
        let out = chi2::GofTest::new(0.05, chi2::Tail::Upper).run(&observed, &expected).unwrap();
        prop_assert!(out.statistic >= 0.0);
        prop_assert!((0.0..=1.0).contains(&out.p_value));
    }

    #[test]
    fn histogram_total_conserved(keys in prop::collection::vec(0u32..50, 0..200)) {
        let h: CountHistogram<u32> = keys.iter().copied().collect();
        prop_assert_eq!(h.total() as usize, keys.len());
        let recount: u64 = h.iter().map(|(_, c)| c).sum();
        prop_assert_eq!(recount, h.total());
    }

    #[test]
    fn histogram_align_preserves_counts(
        a in prop::collection::vec(0u32..20, 1..100),
        b in prop::collection::vec(0u32..20, 1..100),
    ) {
        let ha: CountHistogram<u32> = a.iter().copied().collect();
        let hb: CountHistogram<u32> = b.iter().copied().collect();
        let (obs, exp) = ha.align(&hb);
        prop_assert_eq!(obs.len(), exp.len());
        prop_assert_eq!(obs.iter().sum::<f64>() as u64, ha.total());
        prop_assert_eq!(exp.iter().sum::<f64>() as u64, hb.total());
    }

    #[test]
    fn entropy_bounded_by_log_n(weights in prop::collection::vec(0.001f64..100.0, 1..64)) {
        let probs = entropy::normalize(&weights).unwrap();
        let h = entropy::shannon_bits(&probs);
        prop_assert!(h >= -1e-12);
        prop_assert!(h <= (weights.len() as f64).log2() + 1e-9);
    }

    #[test]
    fn degree_of_anonymity_in_unit_interval(weights in prop::collection::vec(0.0f64..100.0, 1..64)) {
        if let Some(d) = entropy::degree_of_anonymity(&weights) {
            prop_assert!((0.0..=1.0).contains(&d));
        }
    }

    #[test]
    fn ecdf_monotone(sample in prop::collection::vec(-1000.0f64..1000.0, 1..200), a in -1000.0f64..1000.0, b in 0.0f64..500.0) {
        let e = Ecdf::new(sample);
        prop_assert!(e.fraction_at_or_below(a) <= e.fraction_at_or_below(a + b) + 1e-12);
        prop_assert_eq!(e.fraction_at_or_below(f64::from(2000)), 1.0);
    }
}
