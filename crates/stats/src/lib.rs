//! Statistics substrate for the `backwatch` workspace.
//!
//! The paper's privacy model leans on a handful of statistical tools that we
//! implement from scratch (no external stats crates):
//!
//! - [`gamma`] — log-gamma and the regularized incomplete gamma functions,
//!   the numerical core behind the chi-square distribution.
//! - [`chi2`] — chi-square CDF/survival/inverse and Pearson's goodness-of-fit
//!   test, used to compute the paper's `His_bin` metric (§IV-B, Formula 1).
//! - [`histogram`] — sparse categorical count histograms over arbitrary
//!   hashable keys (regions for pattern 1, movement transitions for
//!   pattern 2).
//! - [`entropy`] — Shannon entropy and the normalized *degree of anonymity*
//!   (§IV-B, Formulas 3–5).
//! - [`sampling`] — the random distributions the synthetic substrates need
//!   (normal via Box-Muller, truncated normal, Zipf, weighted choice),
//!   implemented over [`rand`]'s uniform source.
//! - [`summary`] — small descriptive-statistics helpers (mean, quantiles,
//!   empirical CDFs) used by the measurement reports.
//!
//! # Examples
//!
//! ```
//! use backwatch_stats::chi2;
//!
//! // The 95th percentile of chi-square with 3 degrees of freedom is 7.815.
//! let p = chi2::survival(7.815, 3.0);
//! assert!((p - 0.05).abs() < 1e-3);
//! ```

pub mod chi2;
pub mod divergence;
pub mod entropy;
pub mod gamma;
pub mod histogram;
pub mod obs;
pub mod sampling;
pub mod summary;

pub use chi2::{chi_square_gof, GofOutcome, GofTest};
pub use histogram::CountHistogram;
