//! Divergences between discrete distributions.
//!
//! Complements the chi-square machinery with the information-theoretic
//! distances commonly used to compare mobility profiles: Kullback–Leibler
//! divergence, the symmetric bounded Jensen–Shannon divergence, and total
//! variation distance. All operate on parallel probability vectors (use
//! [`crate::CountHistogram::align`] plus [`crate::entropy::normalize`] to
//! produce them).

/// Kullback–Leibler divergence `D(p ‖ q)` in bits.
///
/// Returns `f64::INFINITY` when `p` has mass where `q` has none (the
/// standard convention). Zero-mass entries of `p` contribute nothing.
///
/// # Panics
///
/// Panics if the slices differ in length, or entries are negative or
/// non-finite, or either does not sum to ≈ 1.
#[must_use]
pub fn kl_divergence_bits(p: &[f64], q: &[f64]) -> f64 {
    validate_dist("p", p);
    validate_dist("q", q);
    assert_eq!(p.len(), q.len(), "distributions must have equal support size");
    let mut d = 0.0;
    for (&pi, &qi) in p.iter().zip(q) {
        if pi > 0.0 {
            if qi <= 0.0 {
                return f64::INFINITY;
            }
            d += pi * (pi / qi).log2();
        }
    }
    d.max(0.0)
}

/// Jensen–Shannon divergence in bits: symmetric, bounded in `[0, 1]`.
///
/// # Panics
///
/// As [`kl_divergence_bits`].
#[must_use]
pub fn js_divergence_bits(p: &[f64], q: &[f64]) -> f64 {
    validate_dist("p", p);
    validate_dist("q", q);
    assert_eq!(p.len(), q.len(), "distributions must have equal support size");
    let m: Vec<f64> = p.iter().zip(q).map(|(&a, &b)| (a + b) / 2.0).collect();
    (kl_divergence_bits(p, &m) + kl_divergence_bits(q, &m)) / 2.0
}

/// Total variation distance `½ Σ |p − q|`, in `[0, 1]`.
///
/// # Panics
///
/// As [`kl_divergence_bits`].
#[must_use]
pub fn total_variation(p: &[f64], q: &[f64]) -> f64 {
    validate_dist("p", p);
    validate_dist("q", q);
    assert_eq!(p.len(), q.len(), "distributions must have equal support size");
    p.iter().zip(q).map(|(&a, &b)| (a - b).abs()).sum::<f64>() / 2.0
}

fn validate_dist(name: &str, xs: &[f64]) {
    assert!(!xs.is_empty(), "{name} must be non-empty");
    let mut sum = 0.0;
    for &x in xs {
        assert!(x.is_finite() && x >= 0.0, "{name} entries must be finite and >= 0, got {x}");
        sum += x;
    }
    assert!((sum - 1.0).abs() < 1e-6, "{name} must sum to 1, sums to {sum}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn kl_is_zero_iff_equal() {
        let p = [0.5, 0.3, 0.2];
        assert!(kl_divergence_bits(&p, &p).abs() < 1e-12);
        let q = [0.4, 0.4, 0.2];
        assert!(kl_divergence_bits(&p, &q) > 0.0);
    }

    #[test]
    fn kl_is_asymmetric() {
        let p = [0.9, 0.1];
        let q = [0.5, 0.5];
        let pq = kl_divergence_bits(&p, &q);
        let qp = kl_divergence_bits(&q, &p);
        assert!((pq - qp).abs() > 0.01);
    }

    #[test]
    fn kl_infinite_on_missing_support() {
        let p = [0.5, 0.5];
        let q = [1.0, 0.0];
        assert_eq!(kl_divergence_bits(&p, &q), f64::INFINITY);
        // but not the other way: q has no mass where p has none
        assert!(kl_divergence_bits(&q, &p).is_finite());
    }

    #[test]
    fn js_is_symmetric_and_bounded() {
        let p = [0.9, 0.1, 0.0];
        let q = [0.0, 0.1, 0.9];
        let a = js_divergence_bits(&p, &q);
        let b = js_divergence_bits(&q, &p);
        assert!((a - b).abs() < 1e-12);
        assert!((0.0..=1.0 + 1e-12).contains(&a));
        // disjoint supports give the maximum of 1 bit
        let disjoint = js_divergence_bits(&[1.0, 0.0], &[0.0, 1.0]);
        assert!((disjoint - 1.0).abs() < 1e-12);
    }

    #[test]
    fn tv_matches_hand_computation() {
        let p = [0.7, 0.2, 0.1];
        let q = [0.5, 0.3, 0.2];
        // ½(0.2 + 0.1 + 0.1) = 0.2
        assert!((total_variation(&p, &q) - 0.2).abs() < 1e-12);
        assert_eq!(total_variation(&p, &p), 0.0);
    }

    #[test]
    fn tv_bounds_js() {
        // Pinsker-flavored sanity: on the same pair, both vanish together
        let p = [0.25, 0.25, 0.25, 0.25];
        let q = [0.251, 0.249, 0.25, 0.25];
        assert!(js_divergence_bits(&p, &q) < 0.001);
        assert!(total_variation(&p, &q) < 0.01);
    }

    #[test]
    #[should_panic(expected = "must sum to 1")]
    fn unnormalized_input_panics() {
        let _ = total_variation(&[0.5, 0.1], &[0.5, 0.5]);
    }

    #[test]
    #[should_panic(expected = "equal support")]
    fn mismatched_lengths_panic() {
        let _ = kl_divergence_bits(&[1.0], &[0.5, 0.5]);
    }
}
