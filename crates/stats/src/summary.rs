//! Descriptive statistics and empirical CDFs for measurement reports.
//!
//! [`quantile`] and [`Ecdf`] are fed by long report pipelines where a
//! single NaN (e.g. a 0/0 ratio) used to take the whole run down with a
//! sort-comparator panic. They now *drop* non-finite values instead, and
//! every drop is counted in the `stats.summary.nonfinite_dropped_total`
//! telemetry counter so silent data loss stays visible.

/// Keeps only the finite values of `xs`, counting dropped NaN/±∞ in the
/// `stats.summary.nonfinite_dropped_total` telemetry counter.
fn finite_only(xs: impl Iterator<Item = f64>) -> Vec<f64> {
    let mut out = Vec::new();
    let mut dropped: u64 = 0;
    for x in xs {
        if x.is_finite() {
            out.push(x);
        } else {
            dropped += 1;
        }
    }
    if dropped > 0 {
        crate::obs::register();
        crate::obs::SUMMARY_NONFINITE_DROPPED.add(dropped);
    }
    out
}

/// Arithmetic mean; `None` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
#[must_use]
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some((xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt())
}

/// Quantile by linear interpolation between order statistics
/// (the common "type 7" definition); `None` for an empty slice.
///
/// Non-finite values (NaN, ±∞) are dropped before the order statistics
/// are taken — each drop is counted in telemetry — and a slice with no
/// finite value yields `None`.
///
/// # Panics
///
/// Panics if `q ∉ [0, 1]`.
#[must_use]
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1], got {q}");
    let mut sorted = finite_only(xs.iter().copied());
    if sorted.is_empty() {
        return None;
    }
    sorted.sort_by(f64::total_cmp);
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// An empirical cumulative distribution function over a sample.
///
/// # Examples
///
/// ```
/// use backwatch_stats::summary::Ecdf;
///
/// let ecdf = Ecdf::new(vec![1.0, 2.0, 2.0, 10.0]);
/// assert_eq!(ecdf.fraction_at_or_below(2.0), 0.75);
/// assert_eq!(ecdf.fraction_at_or_below(0.5), 0.0);
/// assert_eq!(ecdf.fraction_at_or_below(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from a sample, taking ownership and sorting it.
    ///
    /// Non-finite values (NaN, ±∞) are dropped rather than panicking; each
    /// drop is counted in the `stats.summary.nonfinite_dropped_total`
    /// telemetry counter.
    #[must_use]
    pub fn new(sample: Vec<f64>) -> Self {
        let mut sorted = finite_only(sample.into_iter());
        sorted.sort_by(f64::total_cmp);
        Self { sorted }
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of observations `<= x`; `0.0` for an empty sample.
    #[must_use]
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The largest observation, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The smallest observation, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Evaluates the ECDF at each of `points`, producing `(x, F(x))` pairs —
    /// the series plotted in the paper's Figure 1.
    #[must_use]
    pub fn series(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.fraction_at_or_below(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(std_dev(&xs), Some(2.0));
    }

    #[test]
    fn empty_stats_are_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(3.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), Some(2.5));
    }

    #[test]
    fn ecdf_step_behaviour() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0, 3.0]);
        assert_eq!(e.fraction_at_or_below(0.0), 0.0);
        assert_eq!(e.fraction_at_or_below(1.0), 0.25);
        assert_eq!(e.fraction_at_or_below(2.9), 0.25);
        assert_eq!(e.fraction_at_or_below(3.0), 0.75);
        assert_eq!(e.fraction_at_or_below(100.0), 1.0);
        assert_eq!(e.min(), Some(1.0));
        assert_eq!(e.max(), Some(5.0));
    }

    #[test]
    fn ecdf_series_matches_pointwise() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]);
        let s = e.series(&[0.5, 1.5, 3.5]);
        assert_eq!(s, vec![(0.5, 0.0), (1.5, 1.0 / 3.0), (3.5, 1.0)]);
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(Vec::new());
        assert!(e.is_empty());
        assert_eq!(e.fraction_at_or_below(1.0), 0.0);
        assert_eq!(e.max(), None);
    }

    #[test]
    fn quantile_drops_nonfinite_and_counts_them() {
        crate::obs::register();
        let before = crate::obs::SUMMARY_NONFINITE_DROPPED.get();
        let xs = [f64::NAN, 3.0, f64::INFINITY, 1.0, f64::NEG_INFINITY, 2.0];
        assert_eq!(quantile(&xs, 0.5), Some(2.0));
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(3.0));
        let dropped = crate::obs::SUMMARY_NONFINITE_DROPPED.get() - before;
        // three calls, three non-finite values each (0 when obs is built disabled)
        assert!(dropped == 9 || dropped == 0, "unexpected drop count {dropped}");
    }

    #[test]
    fn quantile_of_only_nonfinite_is_none() {
        assert_eq!(quantile(&[f64::NAN], 0.5), None);
        assert_eq!(quantile(&[f64::INFINITY, f64::NEG_INFINITY], 0.5), None);
    }

    #[test]
    fn ecdf_drops_nonfinite() {
        let e = Ecdf::new(vec![f64::NAN, 1.0, f64::INFINITY, 2.0]);
        assert_eq!(e.len(), 2);
        assert_eq!(e.max(), Some(2.0));
        assert_eq!(e.fraction_at_or_below(1.5), 0.5);
    }

    mod props {
        use super::super::*;
        use proptest::prelude::*;

        fn messy_f64() -> impl Strategy<Value = f64> {
            prop_oneof![
                -1.0e9..1.0e9f64,
                -1.0e9..1.0e9f64,
                -1.0e9..1.0e9f64,
                Just(f64::NAN),
                Just(f64::INFINITY),
                Just(f64::NEG_INFINITY),
            ]
        }

        proptest! {
            #[test]
            fn quantile_never_panics_and_matches_finite_subset(
                xs in prop::collection::vec(messy_f64(), 0..40),
                q in 0.0..=1.0f64,
            ) {
                let finite: Vec<f64> = xs.iter().copied().filter(|x| x.is_finite()).collect();
                let got = quantile(&xs, q);
                let want = quantile(&finite, q);
                prop_assert_eq!(got.is_some(), !finite.is_empty());
                if let (Some(g), Some(w)) = (got, want) {
                    prop_assert!((g - w).abs() <= 1e-12 * w.abs().max(1.0));
                }
            }

            #[test]
            fn ecdf_never_panics_and_keeps_only_finite(
                xs in prop::collection::vec(messy_f64(), 0..40),
            ) {
                let n_finite = xs.iter().filter(|x| x.is_finite()).count();
                let e = Ecdf::new(xs);
                prop_assert_eq!(e.len(), n_finite);
                // monotone and bounded even after filtering
                prop_assert!(e.fraction_at_or_below(f64::NEG_INFINITY) <= e.fraction_at_or_below(f64::INFINITY));
                if n_finite > 0 {
                    prop_assert_eq!(e.fraction_at_or_below(e.max().unwrap()), 1.0);
                }
            }
        }
    }
}
