//! Descriptive statistics and empirical CDFs for measurement reports.

/// Arithmetic mean; `None` for an empty slice.
#[must_use]
pub fn mean(xs: &[f64]) -> Option<f64> {
    if xs.is_empty() {
        return None;
    }
    Some(xs.iter().sum::<f64>() / xs.len() as f64)
}

/// Population standard deviation; `None` for an empty slice.
#[must_use]
pub fn std_dev(xs: &[f64]) -> Option<f64> {
    let m = mean(xs)?;
    Some((xs.iter().map(|x| (x - m).powi(2)).sum::<f64>() / xs.len() as f64).sqrt())
}

/// Quantile by linear interpolation between order statistics
/// (the common "type 7" definition); `None` for an empty slice.
///
/// # Panics
///
/// Panics if `q ∉ [0, 1]`.
#[must_use]
pub fn quantile(xs: &[f64], q: f64) -> Option<f64> {
    assert!((0.0..=1.0).contains(&q), "quantile must be in [0, 1], got {q}");
    if xs.is_empty() {
        return None;
    }
    let mut sorted = xs.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("non-finite value in quantile input"));
    let pos = q * (sorted.len() - 1) as f64;
    let lo = pos.floor() as usize;
    let hi = pos.ceil() as usize;
    let frac = pos - lo as f64;
    Some(sorted[lo] + (sorted[hi] - sorted[lo]) * frac)
}

/// An empirical cumulative distribution function over a sample.
///
/// # Examples
///
/// ```
/// use backwatch_stats::summary::Ecdf;
///
/// let ecdf = Ecdf::new(vec![1.0, 2.0, 2.0, 10.0]);
/// assert_eq!(ecdf.fraction_at_or_below(2.0), 0.75);
/// assert_eq!(ecdf.fraction_at_or_below(0.5), 0.0);
/// assert_eq!(ecdf.fraction_at_or_below(10.0), 1.0);
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Ecdf {
    sorted: Vec<f64>,
}

impl Ecdf {
    /// Builds the ECDF from a sample, taking ownership and sorting it.
    ///
    /// # Panics
    ///
    /// Panics if any value is non-finite.
    #[must_use]
    pub fn new(mut sample: Vec<f64>) -> Self {
        assert!(sample.iter().all(|x| x.is_finite()), "ECDF sample must be finite");
        sample.sort_by(|a, b| a.partial_cmp(b).expect("finite values compare"));
        Self { sorted: sample }
    }

    /// Number of observations.
    #[must_use]
    pub fn len(&self) -> usize {
        self.sorted.len()
    }

    /// Whether the sample is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.sorted.is_empty()
    }

    /// Fraction of observations `<= x`; `0.0` for an empty sample.
    #[must_use]
    pub fn fraction_at_or_below(&self, x: f64) -> f64 {
        if self.sorted.is_empty() {
            return 0.0;
        }
        let count = self.sorted.partition_point(|&v| v <= x);
        count as f64 / self.sorted.len() as f64
    }

    /// The largest observation, if any.
    #[must_use]
    pub fn max(&self) -> Option<f64> {
        self.sorted.last().copied()
    }

    /// The smallest observation, if any.
    #[must_use]
    pub fn min(&self) -> Option<f64> {
        self.sorted.first().copied()
    }

    /// Evaluates the ECDF at each of `points`, producing `(x, F(x))` pairs —
    /// the series plotted in the paper's Figure 1.
    #[must_use]
    pub fn series(&self, points: &[f64]) -> Vec<(f64, f64)> {
        points.iter().map(|&x| (x, self.fraction_at_or_below(x))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_and_std() {
        let xs = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&xs), Some(5.0));
        assert_eq!(std_dev(&xs), Some(2.0));
    }

    #[test]
    fn empty_stats_are_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(quantile(&[], 0.5), None);
    }

    #[test]
    fn quantile_endpoints() {
        let xs = [3.0, 1.0, 2.0];
        assert_eq!(quantile(&xs, 0.0), Some(1.0));
        assert_eq!(quantile(&xs, 1.0), Some(3.0));
        assert_eq!(quantile(&xs, 0.5), Some(2.0));
    }

    #[test]
    fn quantile_interpolates() {
        let xs = [0.0, 10.0];
        assert_eq!(quantile(&xs, 0.25), Some(2.5));
    }

    #[test]
    fn ecdf_step_behaviour() {
        let e = Ecdf::new(vec![5.0, 1.0, 3.0, 3.0]);
        assert_eq!(e.fraction_at_or_below(0.0), 0.0);
        assert_eq!(e.fraction_at_or_below(1.0), 0.25);
        assert_eq!(e.fraction_at_or_below(2.9), 0.25);
        assert_eq!(e.fraction_at_or_below(3.0), 0.75);
        assert_eq!(e.fraction_at_or_below(100.0), 1.0);
        assert_eq!(e.min(), Some(1.0));
        assert_eq!(e.max(), Some(5.0));
    }

    #[test]
    fn ecdf_series_matches_pointwise() {
        let e = Ecdf::new(vec![1.0, 2.0, 3.0]);
        let s = e.series(&[0.5, 1.5, 3.5]);
        assert_eq!(s, vec![(0.5, 0.0), (1.5, 1.0 / 3.0), (3.5, 1.0)]);
    }

    #[test]
    fn ecdf_empty() {
        let e = Ecdf::new(Vec::new());
        assert!(e.is_empty());
        assert_eq!(e.fraction_at_or_below(1.0), 0.0);
        assert_eq!(e.max(), None);
    }
}
