//! Telemetry statics for the stats crate.
//!
//! Counters live here as `static` items so instrumented code pays one
//! relaxed `fetch_add` and never touches the registry; [`register`] is
//! idempotent and called lazily from the instrumentation sites.

use backwatch_obs::Counter;
use std::sync::Once;

/// Pearson chi-square goodness-of-fit evaluations run.
pub static CHI2_EVALS: Counter = Counter::new();
/// Non-finite values (NaN, ±∞) dropped from quantile/ECDF inputs.
pub static SUMMARY_NONFINITE_DROPPED: Counter = Counter::new();

static REGISTER: Once = Once::new();

/// Registers this crate's metrics with the global registry (idempotent).
pub fn register() {
    REGISTER.call_once(|| {
        backwatch_obs::register_counter(
            "stats.chi2.evals_total",
            "Pearson chi-square goodness-of-fit evaluations",
            &CHI2_EVALS,
        );
        backwatch_obs::register_counter(
            "stats.summary.nonfinite_dropped_total",
            "non-finite values dropped from quantile/ECDF inputs",
            &SUMMARY_NONFINITE_DROPPED,
        );
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn register_is_idempotent() {
        super::register();
        super::register();
        let snap = backwatch_obs::snapshot();
        if !snap.samples.is_empty() {
            assert!(snap.counter("stats.chi2.evals_total").is_some());
        }
    }
}
