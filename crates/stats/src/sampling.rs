//! Random distributions for the synthetic substrates.
//!
//! Only `rand`'s uniform source is taken as a dependency; the distributions
//! themselves (normal via Box-Muller, truncated normal, exponential, Zipf,
//! weighted categorical) are implemented here so the workspace does not need
//! `rand_distr`.

use rand::Rng;

/// Samples a standard-normal variate with the Box-Muller transform.
pub fn standard_normal<R: Rng + ?Sized>(rng: &mut R) -> f64 {
    // u1 in (0, 1] so ln(u1) is finite.
    let u1: f64 = 1.0 - rng.gen::<f64>();
    let u2: f64 = rng.gen();
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

/// Samples `N(mean, sd²)`.
///
/// # Panics
///
/// Panics if `sd` is negative or either parameter is non-finite.
pub fn normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64) -> f64 {
    assert!(
        mean.is_finite() && sd.is_finite() && sd >= 0.0,
        "bad normal params mean={mean} sd={sd}"
    );
    mean + sd * standard_normal(rng)
}

/// Samples `N(mean, sd²)` truncated to `[lo, hi]` by rejection, falling back
/// to clamping after 64 rejections (only reachable for pathological bounds).
///
/// # Panics
///
/// Panics if `lo > hi` or any parameter is non-finite.
pub fn truncated_normal<R: Rng + ?Sized>(rng: &mut R, mean: f64, sd: f64, lo: f64, hi: f64) -> f64 {
    assert!(lo.is_finite() && hi.is_finite() && lo <= hi, "bad bounds lo={lo} hi={hi}");
    for _ in 0..64 {
        let x = normal(rng, mean, sd);
        if (lo..=hi).contains(&x) {
            return x;
        }
    }
    normal(rng, mean, sd).clamp(lo, hi)
}

/// Samples an exponential variate with the given `rate` (λ).
///
/// # Panics
///
/// Panics if `rate` is not strictly positive and finite.
pub fn exponential<R: Rng + ?Sized>(rng: &mut R, rate: f64) -> f64 {
    assert!(rate.is_finite() && rate > 0.0, "rate must be positive, got {rate}");
    let u: f64 = 1.0 - rng.gen::<f64>();
    -u.ln() / rate
}

/// A Zipf distribution over ranks `1..=n` with exponent `s`:
/// `P(k) ∝ k^(-s)`.
///
/// Human place-visit popularity is famously Zipf-like; the mobility
/// synthesizer uses this to pick which of a user's places a day's errand
/// targets.
#[derive(Debug, Clone, PartialEq)]
pub struct Zipf {
    cdf: Vec<f64>,
}

impl Zipf {
    /// Builds the distribution table for `n` ranks with exponent `s`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `s` is negative or non-finite.
    #[must_use]
    pub fn new(n: usize, s: f64) -> Self {
        assert!(n > 0, "Zipf needs at least one rank");
        assert!(s.is_finite() && s >= 0.0, "exponent must be >= 0, got {s}");
        let mut cdf = Vec::with_capacity(n);
        let mut acc = 0.0;
        for k in 1..=n {
            acc += (k as f64).powf(-s);
            cdf.push(acc);
        }
        let total = acc;
        for v in &mut cdf {
            *v /= total;
        }
        Self { cdf }
    }

    /// Number of ranks.
    #[must_use]
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Whether the distribution has no ranks (never true — `new` requires
    /// `n > 0` — but provided for API completeness).
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Samples a rank in `0..n` (0-based index of the Zipf rank).
    pub fn sample<R: Rng + ?Sized>(&self, rng: &mut R) -> usize {
        let u: f64 = rng.gen();
        match self.cdf.binary_search_by(|c| c.partial_cmp(&u).expect("cdf is finite")) {
            Ok(i) => i,
            Err(i) => i.min(self.cdf.len() - 1),
        }
    }
}

/// Picks an index proportionally to `weights`.
///
/// # Panics
///
/// Panics if `weights` is empty, any weight is negative/non-finite, or all
/// weights are zero.
pub fn weighted_index<R: Rng + ?Sized>(rng: &mut R, weights: &[f64]) -> usize {
    assert!(!weights.is_empty(), "weighted_index needs at least one weight");
    let mut total = 0.0;
    for &w in weights {
        assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0, got {w}");
        total += w;
    }
    assert!(total > 0.0, "weights must not all be zero");
    let mut target = rng.gen::<f64>() * total;
    for (i, &w) in weights.iter().enumerate() {
        if target < w {
            return i;
        }
        target -= w;
    }
    weights.len() - 1
}

/// Returns `true` with probability `p`.
///
/// # Panics
///
/// Panics if `p ∉ [0, 1]`.
pub fn coin<R: Rng + ?Sized>(rng: &mut R, p: f64) -> bool {
    assert!((0.0..=1.0).contains(&p), "probability must be in [0, 1], got {p}");
    rng.gen::<f64>() < p
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn rng() -> StdRng {
        StdRng::seed_from_u64(0xBACC_57A7)
    }

    #[test]
    fn normal_moments() {
        let mut r = rng();
        let n = 200_000;
        let samples: Vec<f64> = (0..n).map(|_| normal(&mut r, 5.0, 2.0)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|x| (x - mean).powi(2)).sum::<f64>() / n as f64;
        assert!((mean - 5.0).abs() < 0.05, "mean={mean}");
        assert!((var - 4.0).abs() < 0.1, "var={var}");
    }

    #[test]
    fn truncated_normal_respects_bounds() {
        let mut r = rng();
        for _ in 0..10_000 {
            let x = truncated_normal(&mut r, 0.0, 10.0, -1.0, 1.0);
            assert!((-1.0..=1.0).contains(&x));
        }
    }

    #[test]
    fn exponential_mean() {
        let mut r = rng();
        let n = 100_000;
        let mean = (0..n).map(|_| exponential(&mut r, 0.5)).sum::<f64>() / n as f64;
        assert!((mean - 2.0).abs() < 0.05, "mean={mean}");
    }

    #[test]
    fn zipf_rank_one_dominates() {
        let mut r = rng();
        let z = Zipf::new(10, 1.0);
        let mut counts = [0usize; 10];
        for _ in 0..50_000 {
            counts[z.sample(&mut r)] += 1;
        }
        assert!(counts[0] > counts[1]);
        assert!(counts[1] > counts[5]);
        // P(rank 1) = 1 / H_10 ≈ 0.341
        let p0 = counts[0] as f64 / 50_000.0;
        assert!((p0 - 0.341).abs() < 0.02, "p0={p0}");
    }

    #[test]
    fn zipf_uniform_when_s_zero() {
        let mut r = rng();
        let z = Zipf::new(4, 0.0);
        let mut counts = [0usize; 4];
        for _ in 0..40_000 {
            counts[z.sample(&mut r)] += 1;
        }
        for c in counts {
            let p = c as f64 / 40_000.0;
            assert!((p - 0.25).abs() < 0.02, "p={p}");
        }
    }

    #[test]
    fn weighted_index_proportions() {
        let mut r = rng();
        let weights = [1.0, 3.0, 0.0, 6.0];
        let mut counts = [0usize; 4];
        for _ in 0..100_000 {
            counts[weighted_index(&mut r, &weights)] += 1;
        }
        assert_eq!(counts[2], 0);
        let p3 = counts[3] as f64 / 100_000.0;
        assert!((p3 - 0.6).abs() < 0.01, "p3={p3}");
    }

    #[test]
    #[should_panic(expected = "at least one weight")]
    fn weighted_index_empty_panics() {
        let mut r = rng();
        let _ = weighted_index(&mut r, &[]);
    }

    #[test]
    fn coin_extremes() {
        let mut r = rng();
        assert!(!coin(&mut r, 0.0));
        assert!(coin(&mut r, 1.0));
    }

    #[test]
    fn deterministic_under_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(standard_normal(&mut a).to_bits(), standard_normal(&mut b).to_bits());
        }
    }
}
