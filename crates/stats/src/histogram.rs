//! Sparse categorical count histograms.
//!
//! Both of the paper's profile representations are count histograms over a
//! discrete key space: regions (pattern 1) or movement transitions
//! (pattern 2). [`CountHistogram`] stores counts sparsely and supports the
//! alignment operation needed by the chi-square comparison: producing
//! observed/expected vectors over the union of the two key sets.

use std::borrow::Borrow;
use std::collections::BTreeMap;
use std::hash::Hash;

/// A sparse histogram of `u64` counts keyed by `K`.
///
/// Keys are kept in a `BTreeMap` so iteration order — and therefore the
/// category order fed into chi-square tests — is deterministic.
///
/// # Examples
///
/// ```
/// use backwatch_stats::CountHistogram;
///
/// let mut h = CountHistogram::new();
/// h.add("home->work");
/// h.add("home->work");
/// h.add("work->gym");
/// assert_eq!(h.count(&"home->work"), 2);
/// assert_eq!(h.total(), 3);
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct CountHistogram<K: Ord> {
    counts: BTreeMap<K, u64>,
    total: u64,
}

impl<K: Ord> Default for CountHistogram<K> {
    fn default() -> Self {
        Self::new()
    }
}

impl<K: Ord> CountHistogram<K> {
    /// Creates an empty histogram.
    #[must_use]
    pub fn new() -> Self {
        Self {
            counts: BTreeMap::new(),
            total: 0,
        }
    }

    /// Increments the count for `key` by one.
    pub fn add(&mut self, key: K) {
        self.add_n(key, 1);
    }

    /// Increments the count for `key` by `n`.
    pub fn add_n(&mut self, key: K, n: u64) {
        if n == 0 {
            return;
        }
        *self.counts.entry(key).or_insert(0) += n;
        self.total += n;
    }

    /// The count recorded for `key` (zero if absent).
    pub fn count<Q>(&self, key: &Q) -> u64
    where
        K: Borrow<Q>,
        Q: Ord + ?Sized,
    {
        self.counts.get(key).copied().unwrap_or(0)
    }

    /// Sum of all counts.
    #[must_use]
    pub fn total(&self) -> u64 {
        self.total
    }

    /// Number of distinct keys with a positive count.
    #[must_use]
    pub fn len(&self) -> usize {
        self.counts.len()
    }

    /// Whether the histogram holds no counts.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.counts.is_empty()
    }

    /// Iterates over `(key, count)` pairs in key order.
    pub fn iter(&self) -> impl Iterator<Item = (&K, u64)> {
        self.counts.iter().map(|(k, &c)| (k, c))
    }

    /// The keys in sorted order.
    pub fn keys(&self) -> impl Iterator<Item = &K> {
        self.counts.keys()
    }

    /// Probability mass function: counts normalized by the total.
    ///
    /// Returns an empty vector for an empty histogram.
    #[must_use]
    pub fn pmf(&self) -> Vec<f64> {
        if self.total == 0 {
            return Vec::new();
        }
        let t = self.total as f64;
        self.counts.values().map(|&c| c as f64 / t).collect()
    }

    /// Merges another histogram into this one.
    pub fn merge(&mut self, other: &CountHistogram<K>)
    where
        K: Clone,
    {
        for (k, c) in other.iter() {
            self.add_n(k.clone(), c);
        }
    }

    /// Aligns `self` (observed) against `profile` (expected) over the union
    /// of both key sets, returning parallel count vectors in key order.
    ///
    /// Categories absent from one side get a zero in that side's vector.
    /// This is exactly the shape [`crate::chi2::GofTest::run`] consumes
    /// (after the caller substitutes its floor for zero expected counts).
    #[must_use]
    pub fn align(&self, profile: &CountHistogram<K>) -> (Vec<f64>, Vec<f64>)
    where
        K: Clone,
    {
        let mut keys: Vec<&K> = self.counts.keys().chain(profile.counts.keys()).collect();
        keys.sort();
        keys.dedup();
        let observed = keys.iter().map(|k| self.count(k) as f64).collect();
        let expected = keys.iter().map(|k| profile.count(k) as f64).collect();
        (observed, expected)
    }
}

impl<K: Ord + Hash> FromIterator<K> for CountHistogram<K> {
    fn from_iter<I: IntoIterator<Item = K>>(iter: I) -> Self {
        let mut h = Self::new();
        for k in iter {
            h.add(k);
        }
        h
    }
}

impl<K: Ord + Hash> Extend<K> for CountHistogram<K> {
    fn extend<I: IntoIterator<Item = K>>(&mut self, iter: I) {
        for k in iter {
            self.add(k);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_and_count() {
        let mut h = CountHistogram::new();
        h.add(1);
        h.add(1);
        h.add(2);
        assert_eq!(h.count(&1), 2);
        assert_eq!(h.count(&2), 1);
        assert_eq!(h.count(&3), 0);
        assert_eq!(h.total(), 3);
        assert_eq!(h.len(), 2);
    }

    #[test]
    fn add_n_zero_is_noop() {
        let mut h: CountHistogram<i32> = CountHistogram::new();
        h.add_n(5, 0);
        assert!(h.is_empty());
        assert_eq!(h.total(), 0);
    }

    #[test]
    fn from_iterator_counts_duplicates() {
        let h: CountHistogram<&str> = ["a", "b", "a", "a"].into_iter().collect();
        assert_eq!(h.count(&"a"), 3);
        assert_eq!(h.count(&"b"), 1);
    }

    #[test]
    fn pmf_sums_to_one() {
        let h: CountHistogram<u8> = [1, 1, 2, 3, 3, 3].into_iter().collect();
        let pmf = h.pmf();
        let sum: f64 = pmf.iter().sum();
        assert!((sum - 1.0).abs() < 1e-12);
        assert_eq!(pmf, vec![2.0 / 6.0, 1.0 / 6.0, 3.0 / 6.0]);
    }

    #[test]
    fn pmf_of_empty_is_empty() {
        let h: CountHistogram<u8> = CountHistogram::new();
        assert!(h.pmf().is_empty());
    }

    #[test]
    fn merge_conserves_totals() {
        let mut a: CountHistogram<char> = ['x', 'y'].into_iter().collect();
        let b: CountHistogram<char> = ['y', 'z', 'z'].into_iter().collect();
        a.merge(&b);
        assert_eq!(a.total(), 5);
        assert_eq!(a.count(&'y'), 2);
        assert_eq!(a.count(&'z'), 2);
    }

    #[test]
    fn align_covers_union_in_order() {
        let obs: CountHistogram<&str> = ["a", "a", "c"].into_iter().collect();
        let prof: CountHistogram<&str> = ["a", "b", "b", "b"].into_iter().collect();
        let (o, e) = obs.align(&prof);
        // union keys sorted: a, b, c
        assert_eq!(o, vec![2.0, 0.0, 1.0]);
        assert_eq!(e, vec![1.0, 3.0, 0.0]);
    }

    #[test]
    fn iteration_is_sorted() {
        let h: CountHistogram<i32> = [3, 1, 2].into_iter().collect();
        let keys: Vec<i32> = h.keys().copied().collect();
        assert_eq!(keys, vec![1, 2, 3]);
    }

    #[test]
    fn extend_adds_counts() {
        let mut h: CountHistogram<i32> = CountHistogram::new();
        h.extend([1, 2, 2]);
        assert_eq!(h.total(), 3);
    }
}
