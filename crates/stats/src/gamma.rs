//! Log-gamma and regularized incomplete gamma functions.
//!
//! These are the numerical primitives behind the chi-square distribution in
//! [`crate::chi2`]. The implementations follow the classic *Numerical
//! Recipes* formulations: a Lanczos approximation for `ln Γ(x)`, the series
//! expansion for the lower incomplete gamma `P(a, x)` when `x < a + 1`, and
//! the continued fraction for the upper incomplete gamma `Q(a, x)`
//! otherwise.

/// Natural logarithm of the gamma function, `ln Γ(x)`, for `x > 0`.
///
/// Uses the Lanczos approximation (g = 7, n = 9), accurate to ~15
/// significant digits across the positive reals.
///
/// # Panics
///
/// Panics if `x <= 0` or `x` is not finite.
///
/// # Examples
///
/// ```
/// use backwatch_stats::gamma::ln_gamma;
///
/// assert!((ln_gamma(1.0)).abs() < 1e-12);           // Γ(1) = 1
/// assert!((ln_gamma(5.0) - 24f64.ln()).abs() < 1e-10); // Γ(5) = 24
/// ```
#[must_use]
pub fn ln_gamma(x: f64) -> f64 {
    assert!(x.is_finite() && x > 0.0, "ln_gamma domain is x > 0, got {x}");
    // Lanczos coefficients for g = 7, n = 9.
    const G: f64 = 7.0;
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_9,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_1,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula: Γ(x)Γ(1-x) = π / sin(πx)
        let pi = std::f64::consts::PI;
        return (pi / (pi * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut acc = COEFFS[0];
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        acc += c / (x + i as f64);
    }
    let t = x + G + 0.5;
    0.5 * (2.0 * std::f64::consts::PI).ln() + (x + 0.5) * t.ln() - t + acc.ln()
}

/// Regularized lower incomplete gamma function `P(a, x) = γ(a, x) / Γ(a)`.
///
/// `P(a, 0) = 0` and `P(a, ∞) = 1`; monotonically increasing in `x`.
///
/// # Panics
///
/// Panics if `a <= 0`, `x < 0`, or either is not finite.
#[must_use]
pub fn reg_lower_gamma(a: f64, x: f64) -> f64 {
    assert!(a.is_finite() && a > 0.0, "shape a must be > 0, got {a}");
    assert!(x.is_finite() && x >= 0.0, "x must be >= 0, got {x}");
    if x == 0.0 {
        return 0.0;
    }
    if x < a + 1.0 {
        lower_series(a, x)
    } else {
        1.0 - upper_continued_fraction(a, x)
    }
}

/// Regularized upper incomplete gamma function `Q(a, x) = 1 - P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0`, `x < 0`, or either is not finite.
#[must_use]
pub fn reg_upper_gamma(a: f64, x: f64) -> f64 {
    assert!(a.is_finite() && a > 0.0, "shape a must be > 0, got {a}");
    assert!(x.is_finite() && x >= 0.0, "x must be >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        1.0 - lower_series(a, x)
    } else {
        upper_continued_fraction(a, x)
    }
}

const MAX_ITER: usize = 500;
const EPS: f64 = 1e-14;

/// Series expansion for P(a, x), converges fast for x < a + 1.
fn lower_series(a: f64, x: f64) -> f64 {
    let mut term = 1.0 / a;
    let mut sum = term;
    let mut ap = a;
    for _ in 0..MAX_ITER {
        ap += 1.0;
        term *= x / ap;
        sum += term;
        if term.abs() < sum.abs() * EPS {
            break;
        }
    }
    (sum.ln() + a * x.ln() - x - ln_gamma(a)).exp().clamp(0.0, 1.0)
}

/// Modified Lentz continued fraction for Q(a, x), converges fast for
/// x >= a + 1.
fn upper_continued_fraction(a: f64, x: f64) -> f64 {
    const TINY: f64 = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / TINY;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..=MAX_ITER {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < TINY {
            d = TINY;
        }
        c = b + an / c;
        if c.abs() < TINY {
            c = TINY;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < EPS {
            break;
        }
    }
    (h.ln() + a * x.ln() - x - ln_gamma(a)).exp().clamp(0.0, 1.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ln_gamma_matches_factorials() {
        // Γ(n) = (n-1)!
        let mut fact = 1.0f64;
        for n in 1..15u32 {
            if n > 1 {
                fact *= f64::from(n - 1);
            }
            let lg = ln_gamma(f64::from(n));
            assert!((lg - fact.ln()).abs() < 1e-9, "n={n} lg={lg} ln={}", fact.ln());
        }
    }

    #[test]
    fn ln_gamma_half() {
        // Γ(1/2) = sqrt(π)
        let expected = std::f64::consts::PI.sqrt().ln();
        assert!((ln_gamma(0.5) - expected).abs() < 1e-12);
    }

    #[test]
    fn ln_gamma_three_halves() {
        // Γ(3/2) = sqrt(π)/2
        let expected = (std::f64::consts::PI.sqrt() / 2.0).ln();
        assert!((ln_gamma(1.5) - expected).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "domain")]
    fn ln_gamma_rejects_non_positive() {
        let _ = ln_gamma(0.0);
    }

    #[test]
    fn incomplete_gamma_boundaries() {
        for a in [0.5, 1.0, 2.5, 10.0] {
            assert_eq!(reg_lower_gamma(a, 0.0), 0.0);
            assert_eq!(reg_upper_gamma(a, 0.0), 1.0);
            assert!(reg_lower_gamma(a, 1e6) > 1.0 - 1e-10);
        }
    }

    #[test]
    fn p_plus_q_is_one() {
        for a in [0.5, 1.0, 3.0, 7.5, 50.0] {
            for x in [0.1, 0.5, 1.0, 2.0, 5.0, 20.0, 100.0] {
                let p = reg_lower_gamma(a, x);
                let q = reg_upper_gamma(a, x);
                assert!((p + q - 1.0).abs() < 1e-10, "a={a} x={x} p={p} q={q}");
            }
        }
    }

    #[test]
    fn exponential_special_case() {
        // For a=1, P(1, x) = 1 - exp(-x).
        for x in [0.1, 0.7, 1.0, 3.0, 10.0] {
            let p = reg_lower_gamma(1.0, x);
            let expected = 1.0 - (-x).exp();
            assert!((p - expected).abs() < 1e-12, "x={x}");
        }
    }

    #[test]
    fn monotone_in_x() {
        let a = 2.5;
        let mut last = -1.0;
        for i in 0..200 {
            let x = f64::from(i) * 0.1;
            let p = reg_lower_gamma(a, x);
            assert!(p >= last - 1e-12);
            last = p;
        }
    }
}
