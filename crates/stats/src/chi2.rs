//! Chi-square distribution and Pearson's goodness-of-fit test.
//!
//! The paper decides whether an adversary's collected histogram "fits" a
//! user's profile with a Pearson chi-square goodness-of-fit test (§IV-B,
//! Formula 1), rejecting the null at p < 0.05 on the *lower* tail: a very
//! small statistic means the observed histogram matches the profile too
//! poorly-scaled to be distinguishable — in the paper's convention, failing
//! to reject means the release is **unsafe** (`His_bin = 1`).

use crate::gamma::{reg_lower_gamma, reg_upper_gamma};

/// Cumulative distribution function of chi-square with `df` degrees of
/// freedom: `Pr[X <= x]`.
///
/// # Panics
///
/// Panics if `df <= 0` or `x < 0`.
///
/// # Examples
///
/// ```
/// use backwatch_stats::chi2::cdf;
///
/// // median of chi-square(2) is 2 ln 2 ≈ 1.386
/// assert!((cdf(2.0 * 2f64.ln(), 2.0) - 0.5).abs() < 1e-12);
/// ```
#[must_use]
pub fn cdf(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    assert!(x >= 0.0, "chi-square statistic must be non-negative, got {x}");
    reg_lower_gamma(df / 2.0, x / 2.0)
}

/// Survival function `Pr[X > x] = 1 - cdf(x, df)` — the classic upper-tail
/// p-value.
///
/// # Panics
///
/// Panics if `df <= 0` or `x < 0`.
#[must_use]
pub fn survival(x: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    assert!(x >= 0.0, "chi-square statistic must be non-negative, got {x}");
    reg_upper_gamma(df / 2.0, x / 2.0)
}

/// Inverse CDF (quantile function) by bisection: the `x` with
/// `cdf(x, df) = p`.
///
/// Accurate to ~1e-10 in `x`, which is far tighter than any use in this
/// workspace requires.
///
/// # Panics
///
/// Panics if `df <= 0` or `p ∉ [0, 1)`.
#[must_use]
pub fn inverse_cdf(p: f64, df: f64) -> f64 {
    assert!(df > 0.0, "degrees of freedom must be positive, got {df}");
    assert!((0.0..1.0).contains(&p), "probability must be in [0, 1), got {p}");
    if p == 0.0 {
        return 0.0;
    }
    // Bracket the root: mean + 20 sd always covers the needed quantiles.
    let mut lo = 0.0f64;
    let mut hi = df + 20.0 * (2.0 * df).sqrt() + 20.0;
    while cdf(hi, df) < p {
        hi *= 2.0;
    }
    for _ in 0..200 {
        let mid = 0.5 * (lo + hi);
        if cdf(mid, df) < p {
            lo = mid;
        } else {
            hi = mid;
        }
        if hi - lo < 1e-12 * hi.max(1.0) {
            break;
        }
    }
    0.5 * (lo + hi)
}

/// Which tail of the chi-square distribution a goodness-of-fit test
/// examines.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Tail {
    /// Classic Pearson upper tail: reject when the statistic is large
    /// (observed counts deviate from expectations).
    Upper,
    /// Lower tail, as used by the paper: reject when the statistic is
    /// small. The paper tests the lower tail so that *failing* to reject
    /// means the collected (scaled) histogram is consistent with the
    /// profile.
    #[default]
    Lower,
}

/// Result of a chi-square goodness-of-fit test.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GofOutcome {
    /// The Pearson statistic `Σ (o_i - e_i)² / e_i`.
    pub statistic: f64,
    /// Degrees of freedom used, `k - 1` for `k` categories.
    pub df: f64,
    /// The p-value on the requested tail.
    pub p_value: f64,
    /// Whether the null hypothesis (observations drawn from the expected
    /// distribution) was rejected at the configured significance level.
    pub rejected: bool,
}

/// A configured Pearson chi-square goodness-of-fit test.
///
/// # Examples
///
/// ```
/// use backwatch_stats::{GofTest, chi2::Tail};
///
/// let test = GofTest::new(0.05, Tail::Upper);
/// // A die rolled 120 times, perfectly uniform: cannot reject fairness.
/// let outcome = test.run(&[20.0; 6], &[20.0; 6]).unwrap();
/// assert!(!outcome.rejected);
/// assert_eq!(outcome.statistic, 0.0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct GofTest {
    alpha: f64,
    tail: Tail,
}

/// Error produced by [`GofTest::run`] on malformed inputs.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum GofError {
    /// Observed and expected slices have different lengths.
    LengthMismatch {
        /// Number of observed categories.
        observed: usize,
        /// Number of expected categories.
        expected: usize,
    },
    /// Fewer than two categories — no degrees of freedom.
    TooFewCategories,
    /// An expected count was zero or negative (Pearson's statistic is
    /// undefined there).
    NonPositiveExpected {
        /// Index of the offending category.
        index: usize,
    },
}

impl std::fmt::Display for GofError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            GofError::LengthMismatch { observed, expected } => {
                write!(f, "observed has {observed} categories but expected has {expected}")
            }
            GofError::TooFewCategories => write!(f, "goodness-of-fit needs at least two categories"),
            GofError::NonPositiveExpected { index } => {
                write!(f, "expected count at index {index} is not positive")
            }
        }
    }
}

impl std::error::Error for GofError {}

impl Default for GofTest {
    fn default() -> Self {
        Self::paper()
    }
}

impl GofTest {
    /// Creates a test with significance level `alpha` on the given tail.
    ///
    /// # Panics
    ///
    /// Panics if `alpha ∉ (0, 1)`.
    #[must_use]
    pub fn new(alpha: f64, tail: Tail) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0, 1), got {alpha}");
        Self { alpha, tail }
    }

    /// The paper's configuration: lower-tail test at α = 0.05 (§IV-C).
    #[must_use]
    pub fn paper() -> Self {
        Self::new(0.05, Tail::Lower)
    }

    /// The configured significance level.
    #[must_use]
    pub fn alpha(&self) -> f64 {
        self.alpha
    }

    /// The configured tail.
    #[must_use]
    pub fn tail(&self) -> Tail {
        self.tail
    }

    /// Runs the test of `observed` counts against `expected` counts.
    ///
    /// Degrees of freedom are `k - 1` where `k = observed.len()`.
    ///
    /// # Errors
    ///
    /// Returns [`GofError`] if the slices differ in length, have fewer than
    /// two categories, or any expected count is non-positive.
    pub fn run(&self, observed: &[f64], expected: &[f64]) -> Result<GofOutcome, GofError> {
        if observed.len() != expected.len() {
            return Err(GofError::LengthMismatch {
                observed: observed.len(),
                expected: expected.len(),
            });
        }
        if observed.len() < 2 {
            return Err(GofError::TooFewCategories);
        }
        crate::obs::register();
        crate::obs::CHI2_EVALS.inc();
        let mut statistic = 0.0;
        for (i, (&o, &e)) in observed.iter().zip(expected).enumerate() {
            if e <= 0.0 || e.is_nan() {
                return Err(GofError::NonPositiveExpected { index: i });
            }
            let d = o - e;
            statistic += d * d / e;
        }
        let df = (observed.len() - 1) as f64;
        let p_value = match self.tail {
            Tail::Upper => survival(statistic, df),
            Tail::Lower => cdf(statistic, df),
        };
        Ok(GofOutcome {
            statistic,
            df,
            p_value,
            rejected: p_value < self.alpha,
        })
    }
}

/// Convenience wrapper: Pearson chi-square goodness-of-fit with the paper's
/// configuration (lower tail, α = 0.05).
///
/// # Errors
///
/// Propagates [`GofError`] from [`GofTest::run`].
pub fn chi_square_gof(observed: &[f64], expected: &[f64]) -> Result<GofOutcome, GofError> {
    GofTest::paper().run(observed, expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Published chi-square critical values: (df, upper-tail alpha, value).
    const CRITICAL_VALUES: &[(f64, f64, f64)] = &[
        (1.0, 0.05, 3.841),
        (2.0, 0.05, 5.991),
        (3.0, 0.05, 7.815),
        (4.0, 0.05, 9.488),
        (5.0, 0.05, 11.070),
        (10.0, 0.05, 18.307),
        (20.0, 0.05, 31.410),
        (1.0, 0.01, 6.635),
        (5.0, 0.01, 15.086),
        (10.0, 0.01, 23.209),
        (30.0, 0.05, 43.773),
        (100.0, 0.05, 124.342),
    ];

    #[test]
    fn survival_matches_published_tables() {
        for &(df, alpha, crit) in CRITICAL_VALUES {
            let p = survival(crit, df);
            assert!((p - alpha).abs() < 5e-4, "df={df} crit={crit}: p={p} want {alpha}");
        }
    }

    #[test]
    fn inverse_cdf_matches_published_tables() {
        for &(df, alpha, crit) in CRITICAL_VALUES {
            let x = inverse_cdf(1.0 - alpha, df);
            assert!((x - crit).abs() < 5e-3, "df={df}: x={x} want {crit}");
        }
    }

    #[test]
    fn cdf_is_monotone() {
        let mut last = 0.0;
        for i in 0..500 {
            let x = f64::from(i) * 0.1;
            let c = cdf(x, 7.0);
            assert!(c >= last);
            last = c;
        }
    }

    #[test]
    fn inverse_round_trip() {
        for df in [1.0, 2.0, 5.0, 17.0, 80.0] {
            for p in [0.01, 0.1, 0.5, 0.9, 0.99] {
                let x = inverse_cdf(p, df);
                assert!((cdf(x, df) - p).abs() < 1e-9, "df={df} p={p}");
            }
        }
    }

    #[test]
    fn gof_rejects_gross_mismatch_upper() {
        let test = GofTest::new(0.05, Tail::Upper);
        let observed = [100.0, 0.0, 0.0, 0.0];
        let expected = [25.0, 25.0, 25.0, 25.0];
        let out = test.run(&observed, &expected).unwrap();
        assert!(out.rejected);
        assert!(out.statistic > 100.0);
    }

    #[test]
    fn gof_accepts_exact_match_upper() {
        let test = GofTest::new(0.05, Tail::Upper);
        let counts = [10.0, 20.0, 30.0];
        let out = test.run(&counts, &counts).unwrap();
        assert!(!out.rejected);
        assert_eq!(out.statistic, 0.0);
        assert!((out.p_value - 1.0).abs() < 1e-12);
    }

    #[test]
    fn paper_lower_tail_rejects_exact_match() {
        // In the paper's lower-tail convention, a statistic of ~0 has
        // p ≈ 0 < 0.05 on the lower tail → null rejected → histograms
        // "match" → the release is unsafe. The rejection flag is true here;
        // His_bin interpretation is layered on in the privacy crate.
        let out = chi_square_gof(&[10.0, 20.0, 30.0], &[10.0, 20.0, 30.0]).unwrap();
        assert!(out.rejected);
        assert!(out.p_value < 1e-6);
    }

    #[test]
    fn gof_error_on_length_mismatch() {
        let err = chi_square_gof(&[1.0, 2.0], &[1.0, 2.0, 3.0]).unwrap_err();
        assert!(matches!(
            err,
            GofError::LengthMismatch {
                observed: 2,
                expected: 3
            }
        ));
    }

    #[test]
    fn gof_error_on_single_category() {
        let err = chi_square_gof(&[1.0], &[1.0]).unwrap_err();
        assert_eq!(err, GofError::TooFewCategories);
    }

    #[test]
    fn gof_error_on_zero_expected() {
        let err = chi_square_gof(&[1.0, 2.0], &[1.0, 0.0]).unwrap_err();
        assert_eq!(err, GofError::NonPositiveExpected { index: 1 });
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn invalid_alpha_panics() {
        let _ = GofTest::new(1.5, Tail::Upper);
    }

    #[test]
    fn default_is_paper_config() {
        let t = GofTest::default();
        assert_eq!(t.alpha(), 0.05);
        assert_eq!(t.tail(), Tail::Lower);
    }
}
