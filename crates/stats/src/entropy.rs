//! Shannon entropy and the degree of anonymity.
//!
//! The paper measures how much an inference attack narrows down a user's
//! identity with the entropy of the adversary's posterior over candidate
//! profiles (§IV-B, Formulas 3–5): `Deg_anonymity = H(X) / H_M` where
//! `H_M = log₂ N` is the entropy of a uniform guess over the `N` profiles
//! the adversary holds.

/// Shannon entropy, in bits, of a probability vector.
///
/// Zero-probability entries contribute nothing. Entries are *not* required
/// to sum exactly to one (callers may pass unnormalized posteriors through
/// [`normalize`] first), but every entry must be non-negative and finite.
///
/// # Panics
///
/// Panics if any probability is negative or non-finite.
///
/// # Examples
///
/// ```
/// use backwatch_stats::entropy::shannon_bits;
///
/// assert_eq!(shannon_bits(&[1.0]), 0.0);
/// assert!((shannon_bits(&[0.5, 0.5]) - 1.0).abs() < 1e-12);
/// ```
#[must_use]
pub fn shannon_bits(probabilities: &[f64]) -> f64 {
    let mut h = 0.0;
    for &p in probabilities {
        assert!(p.is_finite() && p >= 0.0, "probabilities must be finite and >= 0, got {p}");
        if p > 0.0 {
            h -= p * p.log2();
        }
    }
    h
}

/// Normalizes non-negative weights into a probability vector.
///
/// Returns `None` if the weights sum to zero (no distribution exists).
///
/// # Panics
///
/// Panics if any weight is negative or non-finite.
#[must_use]
pub fn normalize(weights: &[f64]) -> Option<Vec<f64>> {
    let mut sum = 0.0;
    for &w in weights {
        assert!(w.is_finite() && w >= 0.0, "weights must be finite and >= 0, got {w}");
        sum += w;
    }
    if sum <= 0.0 {
        return None;
    }
    Some(weights.iter().map(|w| w / sum).collect())
}

/// The paper's degree of anonymity (Formula 5): `H(X) / log₂ N`, where the
/// posterior `X` is formed by normalizing `weights` and `N = weights.len()`
/// is the size of the adversary's profile collection.
///
/// Returns a value in `[0, 1]`:
/// - `0.0` — the posterior is a point mass (or only one candidate exists):
///   the adversary has identified the user, maximal leakage.
/// - `1.0` — the posterior is uniform: the release revealed nothing.
///
/// Returns `None` if `weights` is empty or sums to zero.
///
/// # Panics
///
/// Panics if any weight is negative or non-finite.
///
/// # Examples
///
/// ```
/// use backwatch_stats::entropy::degree_of_anonymity;
///
/// // Matching exactly one of four profiles: fully identified.
/// assert_eq!(degree_of_anonymity(&[3.2, 0.0, 0.0, 0.0]), Some(0.0));
/// // Matching all four equally: full anonymity.
/// assert_eq!(degree_of_anonymity(&[1.0, 1.0, 1.0, 1.0]), Some(1.0));
/// ```
#[must_use]
pub fn degree_of_anonymity(weights: &[f64]) -> Option<f64> {
    if weights.is_empty() {
        return None;
    }
    let probs = normalize(weights)?;
    let n = weights.len();
    if n == 1 {
        // A single candidate: the adversary trivially identifies the user.
        return Some(0.0);
    }
    let h = shannon_bits(&probs);
    let h_max = (n as f64).log2();
    Some((h / h_max).clamp(0.0, 1.0))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn entropy_of_point_mass_is_zero() {
        assert_eq!(shannon_bits(&[1.0, 0.0, 0.0]), 0.0);
    }

    #[test]
    fn entropy_of_uniform_is_log_n() {
        for n in [2usize, 4, 8, 100] {
            let probs = vec![1.0 / n as f64; n];
            let h = shannon_bits(&probs);
            assert!((h - (n as f64).log2()).abs() < 1e-10, "n={n}");
        }
    }

    #[test]
    fn entropy_is_maximal_at_uniform() {
        let skewed = shannon_bits(&[0.7, 0.1, 0.1, 0.1]);
        let uniform = shannon_bits(&[0.25; 4]);
        assert!(skewed < uniform);
    }

    #[test]
    #[should_panic(expected = "probabilities")]
    fn negative_probability_panics() {
        let _ = shannon_bits(&[-0.1, 1.1]);
    }

    #[test]
    fn normalize_standard_case() {
        let p = normalize(&[2.0, 6.0]).unwrap();
        assert_eq!(p, vec![0.25, 0.75]);
    }

    #[test]
    fn normalize_zero_sum_is_none() {
        assert!(normalize(&[0.0, 0.0]).is_none());
        assert!(normalize(&[]).is_none());
    }

    #[test]
    fn degree_bounds() {
        // Any posterior yields a degree in [0, 1].
        for weights in [vec![1.0, 2.0, 3.0], vec![5.0, 0.001], vec![1.0; 10]] {
            let d = degree_of_anonymity(&weights).unwrap();
            assert!((0.0..=1.0).contains(&d), "{d}");
        }
    }

    #[test]
    fn degree_single_candidate_is_zero() {
        assert_eq!(degree_of_anonymity(&[42.0]), Some(0.0));
    }

    #[test]
    fn degree_empty_is_none() {
        assert_eq!(degree_of_anonymity(&[]), None);
    }

    #[test]
    fn degree_matches_paper_example() {
        // Paper Formula 2: user matched 5 profiles with chi-square weights;
        // equal statistics give the maximum anonymity set.
        let d = degree_of_anonymity(&[2.0; 5]).unwrap();
        assert!((d - 1.0).abs() < 1e-12);
        // Unequal statistics strictly reduce the degree.
        let d2 = degree_of_anonymity(&[10.0, 1.0, 1.0, 1.0, 1.0]).unwrap();
        assert!(d2 < 1.0);
        assert!(d2 > 0.0);
    }
}
