//! Property-based tests for the LPPM mechanisms.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_defense::cloaking::KAnonymousCloaking;
use backwatch_defense::decoy::{FixedDecoy, SyntheticDecoy};
use backwatch_defense::geoind::GeoIndistinguishability;
use backwatch_defense::perturbation::GaussianPerturbation;
use backwatch_defense::suppression::{SensitiveZone, ZoneSuppression};
use backwatch_defense::throttle::ReleaseThrottle;
use backwatch_defense::truncation::GridTruncation;
use backwatch_defense::{Lppm, NoDefense};
use backwatch_geo::{Grid, LatLon, Meters, Seconds};
use backwatch_trace::{Timestamp, Trace, TracePoint};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

fn arb_trace() -> impl Strategy<Value = Trace> {
    prop::collection::vec((1i64..300, -50i32..50, -50i32..50), 0..80).prop_map(|steps| {
        let mut t = 0i64;
        let (mut lat, mut lon) = (39.9f64, 116.4f64);
        let mut pts = Vec::new();
        for (dt, dlat, dlon) in steps {
            t += dt;
            lat = (lat + f64::from(dlat) * 1e-4).clamp(39.0, 40.8);
            lon = (lon + f64::from(dlon) * 1e-4).clamp(115.5, 117.3);
            pts.push(TracePoint::new(Timestamp::from_secs(t), LatLon::new(lat, lon).unwrap()));
        }
        Trace::from_points(pts)
    })
}

fn origin() -> LatLon {
    LatLon::new(39.9, 116.4).unwrap()
}

/// Every non-suppressing mechanism in one object-safe list.
fn shape_preserving() -> Vec<Box<dyn Lppm>> {
    vec![
        Box::new(NoDefense),
        Box::new(GaussianPerturbation::new(Meters::new(30.0))),
        Box::new(GeoIndistinguishability::new(0.01)),
        Box::new(GridTruncation::new(Grid::new(origin(), Meters::new(500.0)))),
        Box::new(KAnonymousCloaking::new(origin(), Meters::new(250.0), 6, 2, vec![origin()])),
        Box::new(FixedDecoy::new(origin())),
        Box::new(SyntheticDecoy::new(origin(), Meters::new(15.0), Meters::new(400.0))),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn shape_preserving_mechanisms_keep_length_and_times(trace in arb_trace(), seed in 0u64..1000) {
        for mech in shape_preserving() {
            let mut rng = StdRng::seed_from_u64(seed);
            let out = mech.apply(&trace, &mut rng);
            prop_assert_eq!(out.len(), trace.len(), "{} changed the fix count", mech.name());
            for (a, b) in trace.iter().zip(out.iter()) {
                prop_assert_eq!(a.time, b.time, "{} changed timestamps", mech.name());
            }
        }
    }

    #[test]
    fn all_mechanisms_are_deterministic_per_seed(trace in arb_trace(), seed in 0u64..1000) {
        let mut all = shape_preserving();
        all.push(Box::new(ReleaseThrottle::new(Seconds::new(60))));
        all.push(Box::new(ZoneSuppression::new(vec![SensitiveZone::new(origin(), Meters::new(500.0))])));
        for mech in all {
            let a = mech.apply(&trace, &mut StdRng::seed_from_u64(seed));
            let b = mech.apply(&trace, &mut StdRng::seed_from_u64(seed));
            prop_assert_eq!(a, b, "{} is not deterministic", mech.name());
        }
    }

    #[test]
    fn throttle_output_is_a_time_subset(trace in arb_trace(), interval in 1i64..600) {
        let mut rng = StdRng::seed_from_u64(0);
        let out = ReleaseThrottle::new(Seconds::new(interval)).apply(&trace, &mut rng);
        prop_assert!(out.len() <= trace.len());
        for w in out.points().windows(2) {
            prop_assert!(w[1].time - w[0].time >= interval);
        }
        // every released fix is an original fix
        for p in out.iter() {
            prop_assert!(trace.iter().any(|q| q == p));
        }
    }

    #[test]
    fn suppression_never_releases_zone_fixes(trace in arb_trace(), radius in 100.0f64..5000.0) {
        let zone = SensitiveZone::new(origin(), Meters::new(radius));
        let mech = ZoneSuppression::new(vec![zone]);
        let mut rng = StdRng::seed_from_u64(0);
        let out = mech.apply(&trace, &mut rng);
        use backwatch_geo::distance::Metric;
        for p in out.iter() {
            prop_assert!(!zone.contains(p.pos, Metric::Equirectangular));
        }
        prop_assert!(out.len() <= trace.len());
    }

    #[test]
    fn truncation_is_idempotent(trace in arb_trace()) {
        let grid = Grid::new(origin(), Meters::new(750.0));
        let mech = GridTruncation::new(grid);
        let mut rng = StdRng::seed_from_u64(0);
        let once = mech.apply(&trace, &mut rng);
        let twice = mech.apply(&once, &mut rng);
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn decoys_never_release_true_positions(trace in arb_trace()) {
        // the decoy anchor is far outside the generated envelope
        let anchor = LatLon::new(38.0, 114.0).unwrap();
        for mech in [
            Box::new(FixedDecoy::new(anchor)) as Box<dyn Lppm>,
            Box::new(SyntheticDecoy::new(anchor, Meters::new(15.0), Meters::new(400.0))),
        ] {
            let mut rng = StdRng::seed_from_u64(1);
            let out = mech.apply(&trace, &mut rng);
            use backwatch_geo::distance::haversine;
            for p in out.iter() {
                prop_assert!(haversine(p.pos, anchor) < 1_000.0, "{} leaked a real fix", mech.name());
            }
        }
    }
}
