//! Location truncation (Micinski et al., MoST 2013; LP-Guardian).
//!
//! Every released fix is quantized to the center of a grid cell, so apps
//! keep working ("find restaurants near me") while dwell positions lose
//! the precision PoI extraction needs.

use crate::Lppm;
use backwatch_geo::Grid;
use backwatch_trace::{coarsen, Trace};
use rand::RngCore;

/// Snap-to-grid truncation.
#[derive(Debug, Clone, Copy)]
pub struct GridTruncation {
    grid: Grid,
    name: &'static str,
}

impl GridTruncation {
    /// Truncates to the given grid.
    #[must_use]
    pub fn new(grid: Grid) -> Self {
        Self {
            grid,
            name: "grid-truncation",
        }
    }

    /// The truncation grid.
    #[must_use]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }
}

impl Lppm for GridTruncation {
    fn name(&self) -> &str {
        self.name
    }

    fn apply(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Trace {
        coarsen::snap_to_grid(trace, &self.grid)
    }
}

/// Decimal-digit truncation: every released coordinate keeps only `d`
/// decimal digits.
///
/// This is the same lossy transform [`backwatch_core::leakage`] models as
/// an adversary-side *observation channel* (truncated coordinates leaking
/// through network traffic); deployed deliberately on the release path it
/// doubles as a defense. Sharing the transform keeps the X11 sweep and
/// the defense ablation measuring the same channel.
#[derive(Debug, Clone, Copy)]
pub struct DecimalTruncation {
    decimals: u8,
    name: &'static str,
}

impl DecimalTruncation {
    /// Truncates to `decimals` decimal digits (0 ≤ d ≤ 9).
    #[must_use]
    pub fn new(decimals: u8) -> Self {
        assert!(decimals <= 9, "decimal truncation beyond 9 digits is meaningless");
        Self {
            decimals,
            name: "decimal-truncation",
        }
    }

    /// The retained decimal digits.
    #[must_use]
    pub fn decimals(&self) -> u8 {
        self.decimals
    }
}

impl Lppm for DecimalTruncation {
    fn name(&self) -> &str {
        self.name
    }

    fn apply(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Trace {
        backwatch_core::leakage::observe(
            trace,
            backwatch_geo::Seconds::new(1),
            backwatch_core::leakage::Precision::Decimals(self.decimals),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::{distance::haversine, LatLon};
    use backwatch_trace::{Timestamp, TracePoint};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace() -> Trace {
        Trace::from_points(
            (0..100)
                .map(|i| TracePoint::new(Timestamp::from_secs(i), LatLon::new(39.9 + i as f64 * 1e-5, 116.4).unwrap()))
                .collect(),
        )
    }

    #[test]
    fn preserves_length_and_times() {
        let g = Grid::new(LatLon::new(39.9, 116.4).unwrap(), backwatch_geo::Meters::new(500.0));
        let mut rng = StdRng::seed_from_u64(0);
        let out = GridTruncation::new(g).apply(&trace(), &mut rng);
        assert_eq!(out.len(), 100);
        for (a, b) in trace().iter().zip(out.iter()) {
            assert_eq!(a.time, b.time);
        }
    }

    #[test]
    fn displacement_bounded_by_cell_diagonal() {
        let g = Grid::new(LatLon::new(39.9, 116.4).unwrap(), backwatch_geo::Meters::new(500.0));
        let mut rng = StdRng::seed_from_u64(0);
        let out = GridTruncation::new(g).apply(&trace(), &mut rng);
        for (a, b) in trace().iter().zip(out.iter()) {
            assert!(haversine(a.pos, b.pos) <= 500.0 * std::f64::consts::SQRT_2 / 2.0 * 1.02);
        }
    }

    #[test]
    fn quantizes_nearby_fixes_together() {
        let g = Grid::new(LatLon::new(39.9, 116.4).unwrap(), backwatch_geo::Meters::new(2000.0));
        let mut rng = StdRng::seed_from_u64(0);
        let out = GridTruncation::new(g).apply(&trace(), &mut rng);
        let first = out.points()[0].pos;
        assert!(out.iter().all(|p| p.pos == first));
    }

    #[test]
    fn decimal_truncation_keeps_length_times_and_digit_budget() {
        let mut rng = StdRng::seed_from_u64(0);
        let out = DecimalTruncation::new(2).apply(&trace(), &mut rng);
        assert_eq!(out.len(), 100);
        for (a, b) in trace().iter().zip(out.iter()) {
            assert_eq!(a.time, b.time);
            // truncation never moves a coordinate by a full cell
            assert!((a.pos.lat() - b.pos.lat()).abs() < 0.01);
            assert!((a.pos.lon() - b.pos.lon()).abs() < 0.01);
            // and the result sits on the 0.01-degree lattice
            assert!((b.pos.lat() * 100.0 - (b.pos.lat() * 100.0).round()).abs() < 1e-9);
        }
    }

    #[test]
    fn coarse_decimal_truncation_collapses_the_routine() {
        let mut rng = StdRng::seed_from_u64(0);
        let out = DecimalTruncation::new(0).apply(&trace(), &mut rng);
        let first = out.points()[0].pos;
        assert!(out.iter().all(|p| p.pos == first));
    }
}
