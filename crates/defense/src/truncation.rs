//! Location truncation (Micinski et al., MoST 2013; LP-Guardian).
//!
//! Every released fix is quantized to the center of a grid cell, so apps
//! keep working ("find restaurants near me") while dwell positions lose
//! the precision PoI extraction needs.

use crate::Lppm;
use backwatch_geo::Grid;
use backwatch_trace::{coarsen, Trace};
use rand::RngCore;

/// Snap-to-grid truncation.
#[derive(Debug, Clone, Copy)]
pub struct GridTruncation {
    grid: Grid,
    name: &'static str,
}

impl GridTruncation {
    /// Truncates to the given grid.
    #[must_use]
    pub fn new(grid: Grid) -> Self {
        Self {
            grid,
            name: "grid-truncation",
        }
    }

    /// The truncation grid.
    #[must_use]
    pub fn grid(&self) -> &Grid {
        &self.grid
    }
}

impl Lppm for GridTruncation {
    fn name(&self) -> &str {
        self.name
    }

    fn apply(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Trace {
        coarsen::snap_to_grid(trace, &self.grid)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::{distance::haversine, LatLon};
    use backwatch_trace::{Timestamp, TracePoint};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace() -> Trace {
        Trace::from_points(
            (0..100)
                .map(|i| TracePoint::new(Timestamp::from_secs(i), LatLon::new(39.9 + i as f64 * 1e-5, 116.4).unwrap()))
                .collect(),
        )
    }

    #[test]
    fn preserves_length_and_times() {
        let g = Grid::new(LatLon::new(39.9, 116.4).unwrap(), backwatch_geo::Meters::new(500.0));
        let mut rng = StdRng::seed_from_u64(0);
        let out = GridTruncation::new(g).apply(&trace(), &mut rng);
        assert_eq!(out.len(), 100);
        for (a, b) in trace().iter().zip(out.iter()) {
            assert_eq!(a.time, b.time);
        }
    }

    #[test]
    fn displacement_bounded_by_cell_diagonal() {
        let g = Grid::new(LatLon::new(39.9, 116.4).unwrap(), backwatch_geo::Meters::new(500.0));
        let mut rng = StdRng::seed_from_u64(0);
        let out = GridTruncation::new(g).apply(&trace(), &mut rng);
        for (a, b) in trace().iter().zip(out.iter()) {
            assert!(haversine(a.pos, b.pos) <= 500.0 * std::f64::consts::SQRT_2 / 2.0 * 1.02);
        }
    }

    #[test]
    fn quantizes_nearby_fixes_together() {
        let g = Grid::new(LatLon::new(39.9, 116.4).unwrap(), backwatch_geo::Meters::new(2000.0));
        let mut rng = StdRng::seed_from_u64(0);
        let out = GridTruncation::new(g).apply(&trace(), &mut rng);
        let first = out.points()[0].pos;
        assert!(out.iter().all(|p| p.pos == first));
    }
}
