//! Geo-indistinguishability (Andrés et al., CCS 2013): planar Laplace
//! noise with a formal ε-privacy guarantee.
//!
//! The successor to the ad-hoc mechanisms the paper's related work
//! surveys: adding noise from a polar Laplace distribution makes any two
//! locations within distance `r` statistically indistinguishable up to a
//! factor `e^(ε·r)`. Smaller ε means more privacy and more noise; the
//! characteristic noise scale is `1/ε` meters.

use crate::Lppm;
use backwatch_geo::enu::Frame;
use backwatch_geo::Meters;
use backwatch_trace::{Trace, TracePoint};
use rand::{Rng, RngCore};

/// The planar Laplace mechanism.
#[derive(Debug, Clone, Copy)]
pub struct GeoIndistinguishability {
    epsilon_per_m: f64,
}

impl GeoIndistinguishability {
    /// Creates the mechanism with privacy parameter `epsilon_per_m`
    /// (ε per meter). Typical values: `0.01` (≈ 100 m noise scale) for
    /// city-level utility, `0.001` for strong privacy.
    ///
    /// # Panics
    ///
    /// Panics if `epsilon_per_m` is not strictly positive and finite.
    #[must_use]
    pub fn new(epsilon_per_m: f64) -> Self {
        assert!(
            epsilon_per_m.is_finite() && epsilon_per_m > 0.0,
            "epsilon must be positive, got {epsilon_per_m}"
        );
        Self { epsilon_per_m }
    }

    /// The privacy parameter.
    #[must_use]
    pub fn epsilon_per_m(&self) -> f64 {
        self.epsilon_per_m
    }

    /// Samples a radius from the polar Laplace distribution via the
    /// inverse CDF: `C(r) = 1 − (1 + εr)·e^(−εr)`, inverted with the
    /// branch `W₋₁` of the Lambert W function.
    fn sample_radius<R: Rng + ?Sized>(&self, rng: &mut R) -> f64 {
        let p: f64 = rng.gen_range(f64::EPSILON..1.0);
        // r = −(W₋₁((p−1)/e) + 1) / ε
        let w = lambert_w_minus1((p - 1.0) / std::f64::consts::E);
        -(w + 1.0) / self.epsilon_per_m
    }
}

/// The `W₋₁` branch of the Lambert W function on `[-1/e, 0)`, via Newton
/// iteration from the asymptotic seed.
///
/// Accurate to ~1e-12 over the domain the mechanism uses.
fn lambert_w_minus1(x: f64) -> f64 {
    assert!(
        (-1.0 / std::f64::consts::E..0.0).contains(&x),
        "W_-1 domain is [-1/e, 0), got {x}"
    );
    // Seed: W ≈ ln(−x) − ln(−ln(−x)) for x → 0⁻, and −1 near −1/e.
    let l = (-x).ln();
    let mut w = if l < -2.0 {
        l - (-l).ln()
    } else {
        -1.0 - (2.0 * (1.0 + std::f64::consts::E * x)).sqrt()
    };
    for _ in 0..64 {
        let ew = w.exp();
        let f = w * ew - x;
        let step = f / (ew * (w + 1.0) - f * (w + 2.0) / (2.0 * w + 2.0));
        w -= step;
        if step.abs() < 1e-14 * w.abs().max(1.0) {
            break;
        }
    }
    w
}

impl Lppm for GeoIndistinguishability {
    fn name(&self) -> &str {
        "geo-indistinguishability"
    }

    fn apply(&self, trace: &Trace, rng: &mut dyn RngCore) -> Trace {
        let Some(first) = trace.first() else {
            return Trace::new();
        };
        let frame = Frame::new(first.pos);
        trace
            .iter()
            .map(|p| {
                let r = self.sample_radius(rng);
                let theta = rng.gen::<f64>() * std::f64::consts::TAU;
                let (e, n) = frame.to_enu(p.pos);
                TracePoint::new(
                    p.time,
                    frame.to_latlon(Meters::new(e + r * theta.cos()), Meters::new(n + r * theta.sin())),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::{distance::haversine, LatLon};
    use backwatch_trace::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace(n: i64) -> Trace {
        Trace::from_points(
            (0..n)
                .map(|i| TracePoint::new(Timestamp::from_secs(i), LatLon::new(39.9, 116.4).unwrap()))
                .collect(),
        )
    }

    #[test]
    fn lambert_w_satisfies_defining_equation() {
        for x in [-0.3, -0.2, -0.1, -0.05, -0.01, -0.001] {
            let w = lambert_w_minus1(x);
            assert!(w <= -1.0, "W_-1 branch is <= -1, got {w} at {x}");
            assert!((w * w.exp() - x).abs() < 1e-9, "x={x} w={w}");
        }
    }

    #[test]
    fn mean_radius_matches_theory() {
        // E[r] = 2/ε for the polar Laplace
        let mech = GeoIndistinguishability::new(0.01); // scale 100 m, mean 200 m
        let mut rng = StdRng::seed_from_u64(9);
        let n = 20_000;
        let mean: f64 = (0..n).map(|_| mech.sample_radius(&mut rng)).sum::<f64>() / f64::from(n);
        assert!((mean - 200.0).abs() < 5.0, "mean radius {mean}");
    }

    #[test]
    fn smaller_epsilon_means_more_noise() {
        let t = trace(2_000);
        let displacement = |eps: f64| {
            let mut rng = StdRng::seed_from_u64(10);
            let out = GeoIndistinguishability::new(eps).apply(&t, &mut rng);
            t.iter().zip(out.iter()).map(|(a, b)| haversine(a.pos, b.pos)).sum::<f64>() / t.len() as f64
        };
        let strong = displacement(0.001);
        let weak = displacement(0.05);
        assert!(strong > weak * 10.0, "strong {strong} vs weak {weak}");
    }

    #[test]
    fn preserves_timestamps_and_length() {
        let t = trace(100);
        let mut rng = StdRng::seed_from_u64(11);
        let out = GeoIndistinguishability::new(0.01).apply(&t, &mut rng);
        assert_eq!(out.len(), t.len());
        for (a, b) in t.iter().zip(out.iter()) {
            assert_eq!(a.time, b.time);
        }
    }

    #[test]
    fn empty_trace_stays_empty() {
        let mut rng = StdRng::seed_from_u64(12);
        assert!(GeoIndistinguishability::new(0.01).apply(&Trace::new(), &mut rng).is_empty());
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn zero_epsilon_panics() {
        let _ = GeoIndistinguishability::new(0.0);
    }
}
