//! Gaussian perturbation: add zero-mean noise to every released fix.
//!
//! A soft alternative to truncation — positions stay roughly right on
//! average, but dwell clusters smear beyond the PoI radius once the noise
//! scale passes it.

use crate::Lppm;
use backwatch_geo::enu::Frame;
use backwatch_geo::Meters;
use backwatch_stats::sampling::normal;
use backwatch_trace::{Trace, TracePoint};
use rand::RngCore;

/// Independent per-fix Gaussian noise of `sigma` meters per axis.
#[derive(Debug, Clone, Copy)]
pub struct GaussianPerturbation {
    sigma_m: f64,
}

impl GaussianPerturbation {
    /// Creates the mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `sigma` is negative or non-finite.
    #[must_use]
    pub fn new(sigma: Meters) -> Self {
        let sigma_m = sigma.get();
        assert!(sigma_m.is_finite() && sigma_m >= 0.0, "sigma must be >= 0, got {sigma_m}");
        Self { sigma_m }
    }

    /// The configured noise scale.
    #[must_use]
    pub fn sigma(&self) -> Meters {
        Meters::new(self.sigma_m)
    }
}

impl Lppm for GaussianPerturbation {
    fn name(&self) -> &str {
        "gaussian-perturbation"
    }

    fn apply(&self, trace: &Trace, rng: &mut dyn RngCore) -> Trace {
        if self.sigma_m == 0.0 {
            return trace.clone();
        }
        let Some(first) = trace.first() else {
            return Trace::new();
        };
        let frame = Frame::new(first.pos);
        trace
            .iter()
            .map(|p| {
                let (e, n) = frame.to_enu(p.pos);
                TracePoint::new(
                    p.time,
                    frame.to_latlon(
                        Meters::new(e + normal(rng, 0.0, self.sigma_m)),
                        Meters::new(n + normal(rng, 0.0, self.sigma_m)),
                    ),
                )
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::distance::haversine;
    use backwatch_geo::LatLon;
    use backwatch_trace::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace() -> Trace {
        Trace::from_points(
            (0..2000)
                .map(|i| TracePoint::new(Timestamp::from_secs(i), LatLon::new(39.9, 116.4).unwrap()))
                .collect(),
        )
    }

    #[test]
    fn zero_sigma_is_identity() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = GaussianPerturbation::new(Meters::ZERO).apply(&trace(), &mut rng);
        assert_eq!(out, trace());
    }

    #[test]
    fn mean_displacement_matches_rayleigh() {
        let mut rng = StdRng::seed_from_u64(2);
        let out = GaussianPerturbation::new(Meters::new(50.0)).apply(&trace(), &mut rng);
        let mean: f64 = trace()
            .iter()
            .zip(out.iter())
            .map(|(a, b)| haversine(a.pos, b.pos))
            .sum::<f64>()
            / 2000.0;
        // E[Rayleigh(50)] = 50·sqrt(π/2) ≈ 62.7
        assert!((mean - 62.7).abs() < 5.0, "mean {mean}");
    }

    #[test]
    fn deterministic_given_seed() {
        let a = GaussianPerturbation::new(Meters::new(10.0)).apply(&trace(), &mut StdRng::seed_from_u64(3));
        let b = GaussianPerturbation::new(Meters::new(10.0)).apply(&trace(), &mut StdRng::seed_from_u64(3));
        assert_eq!(a, b);
    }

    #[test]
    fn empty_trace_stays_empty() {
        let mut rng = StdRng::seed_from_u64(4);
        assert!(GaussianPerturbation::new(Meters::new(10.0))
            .apply(&Trace::new(), &mut rng)
            .is_empty());
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_panics() {
        let _ = GaussianPerturbation::new(Meters::new(-1.0));
    }
}
