//! Location Privacy Protection Mechanisms (LPPMs).
//!
//! The paper's related work surveys a family of defenses — location
//! truncation (Micinski et al., LP-Guardian), fake/shadow data (MockDroid,
//! TISSA), spatial cloaking under k-anonymity (Gruteser & Grunwald,
//! Gedik & Liu), selective suppression (Beresford & Stajano, Hoh &
//! Gruteser) — and the paper itself implies a simple OS-side mitigation:
//! throttle how often background apps may update location. This crate
//! implements each as an [`Lppm`] transformation over the released trace
//! and provides [`eval`], a harness that scores any mechanism against the
//! paper's own metrics (PoI recall, sensitive-place recovery, His_bin
//! detection, identification) plus a utility cost (positional error).
//!
//! # Examples
//!
//! ```
//! use backwatch_defense::{truncation::GridTruncation, Lppm};
//! use backwatch_geo::{Grid, LatLon, Meters};
//! use backwatch_trace::synth::{generate_user, SynthConfig};
//! use rand::rngs::StdRng;
//! use rand::SeedableRng;
//!
//! let user = generate_user(&SynthConfig::small(), 0);
//! let grid = Grid::new(LatLon::new(39.9042, 116.4074).unwrap(), Meters::new(1000.0));
//! let defense = GridTruncation::new(grid);
//! let mut rng = StdRng::seed_from_u64(1);
//! let released = defense.apply(&user.trace, &mut rng);
//! assert_eq!(released.len(), user.trace.len());
//! ```

pub mod cloaking;
pub mod decoy;
pub mod eval;
pub mod geoind;
pub mod perturbation;
pub mod suppression;
pub mod throttle;
pub mod truncation;

use backwatch_trace::Trace;
use rand::RngCore;

/// A location privacy protection mechanism: a transformation applied to
/// the stream of fixes an app would otherwise receive.
///
/// Implementations must be deterministic given the RNG stream, so
/// evaluations are reproducible.
pub trait Lppm {
    /// Short human-readable mechanism name.
    fn name(&self) -> &str;

    /// Transforms the true trace into the released trace.
    fn apply(&self, trace: &Trace, rng: &mut dyn RngCore) -> Trace;
}

/// The identity mechanism: release everything untouched (the baseline
/// every defense is compared against).
#[derive(Debug, Clone, Copy, Default)]
pub struct NoDefense;

impl Lppm for NoDefense {
    fn name(&self) -> &str {
        "none"
    }

    fn apply(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Trace {
        trace.clone()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_trace::synth::{generate_user, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn no_defense_is_identity() {
        let user = generate_user(&SynthConfig::small(), 0);
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(NoDefense.apply(&user.trace, &mut rng), user.trace);
        assert_eq!(NoDefense.name(), "none");
    }

    #[test]
    fn lppm_is_object_safe() {
        let mechanisms: Vec<Box<dyn Lppm>> = vec![Box::new(NoDefense)];
        assert_eq!(mechanisms[0].name(), "none");
    }
}
