//! Fake and shadow locations (MockDroid, TISSA).
//!
//! MockDroid lets the user hand an app *fake* data instead of revoking a
//! permission; TISSA generalizes to shadow data. Two variants:
//!
//! - [`FixedDecoy`] — every background fix is the same innocuous anchor
//!   (the app believes the user never moves).
//! - [`SyntheticDecoy`] — fixes follow a plausible random walk around the
//!   anchor, so naive liveness checks ("is the location changing?") still
//!   pass while nothing real leaks.

use crate::Lppm;
use backwatch_geo::enu::Frame;
use backwatch_geo::{LatLon, Meters};
use backwatch_stats::sampling::normal;
use backwatch_trace::{Trace, TracePoint};
use rand::RngCore;

/// Release one fixed position for every request.
#[derive(Debug, Clone, Copy)]
pub struct FixedDecoy {
    anchor: LatLon,
}

impl FixedDecoy {
    /// Creates the mechanism with the position to expose.
    #[must_use]
    pub fn new(anchor: LatLon) -> Self {
        Self { anchor }
    }
}

impl Lppm for FixedDecoy {
    fn name(&self) -> &str {
        "fixed-decoy"
    }

    fn apply(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Trace {
        trace.iter().map(|p| TracePoint::new(p.time, self.anchor)).collect()
    }
}

/// Release a bounded random walk around an anchor.
#[derive(Debug, Clone, Copy)]
pub struct SyntheticDecoy {
    anchor: LatLon,
    step_m: f64,
    leash_m: f64,
}

impl SyntheticDecoy {
    /// Creates the mechanism: per-fix Gaussian steps of `step` meters,
    /// pulled back so the walk stays within `leash` of the anchor.
    ///
    /// # Panics
    ///
    /// Panics if `step` is negative or `leash` is not positive.
    #[must_use]
    pub fn new(anchor: LatLon, step: Meters, leash: Meters) -> Self {
        let step_m = step.get();
        let leash_m = leash.get();
        assert!(step_m >= 0.0 && step_m.is_finite(), "step must be >= 0");
        assert!(leash_m > 0.0 && leash_m.is_finite(), "leash must be positive");
        Self { anchor, step_m, leash_m }
    }
}

impl Lppm for SyntheticDecoy {
    fn name(&self) -> &str {
        "synthetic-decoy"
    }

    fn apply(&self, trace: &Trace, rng: &mut dyn RngCore) -> Trace {
        let frame = Frame::new(self.anchor);
        let (mut x, mut y) = (0.0f64, 0.0f64);
        trace
            .iter()
            .map(|p| {
                x += normal(rng, 0.0, self.step_m);
                y += normal(rng, 0.0, self.step_m);
                let r = (x * x + y * y).sqrt();
                if r > self.leash_m {
                    let scale = self.leash_m / r;
                    x *= scale;
                    y *= scale;
                }
                TracePoint::new(p.time, frame.to_latlon(Meters::new(x), Meters::new(y)))
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::distance::haversine;
    use backwatch_trace::Timestamp;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace() -> Trace {
        Trace::from_points(
            (0..500)
                .map(|i| {
                    TracePoint::new(
                        Timestamp::from_secs(i * 10),
                        LatLon::new(39.9 + i as f64 * 1e-4, 116.4).unwrap(),
                    )
                })
                .collect(),
        )
    }

    fn anchor() -> LatLon {
        LatLon::new(40.0, 116.0).unwrap()
    }

    #[test]
    fn fixed_decoy_reveals_nothing() {
        let mut rng = StdRng::seed_from_u64(0);
        let out = FixedDecoy::new(anchor()).apply(&trace(), &mut rng);
        assert_eq!(out.len(), trace().len());
        assert!(out.iter().all(|p| p.pos == anchor()));
        // timestamps preserved so the app sees a live feed
        assert_eq!(out.first().unwrap().time, trace().first().unwrap().time);
    }

    #[test]
    fn synthetic_decoy_moves_but_stays_leashed() {
        let mut rng = StdRng::seed_from_u64(1);
        let out = SyntheticDecoy::new(anchor(), Meters::new(20.0), Meters::new(500.0)).apply(&trace(), &mut rng);
        // it moves (liveness)…
        let distinct: std::collections::HashSet<u64> =
            out.iter().map(|p| p.pos.lat().to_bits() ^ p.pos.lon().to_bits()).collect();
        assert!(distinct.len() > 100);
        // …but never beyond the leash (small tolerance for projection)
        for p in out.iter() {
            assert!(haversine(p.pos, anchor()) <= 505.0);
        }
    }

    #[test]
    fn synthetic_decoy_is_unrelated_to_true_positions() {
        let mut rng = StdRng::seed_from_u64(2);
        let out = SyntheticDecoy::new(anchor(), Meters::new(20.0), Meters::new(500.0)).apply(&trace(), &mut rng);
        // every released fix is near the decoy anchor, not near the true
        // route (which is ~15 km away)
        for (t, r) in trace().iter().zip(out.iter()) {
            assert!(haversine(t.pos, r.pos) > 5_000.0);
        }
    }

    #[test]
    #[should_panic(expected = "leash")]
    fn zero_leash_panics() {
        let _ = SyntheticDecoy::new(anchor(), Meters::new(10.0), Meters::ZERO);
    }
}
