//! Spatial cloaking under k-anonymity (Gruteser & Grunwald 2003;
//! Gedik & Liu 2005).
//!
//! Each released fix is replaced by the center of the smallest grid cell
//! — from a hierarchy of cells doubling in size — that contains the
//! anchor points (homes) of at least `k` users of the population. Dense
//! downtown fixes stay precise-ish; fixes in sparse suburbs blur until
//! enough neighbours share the cell.

use crate::Lppm;
use backwatch_geo::{Grid, LatLon, Meters};
use backwatch_trace::{Trace, TracePoint};
use rand::RngCore;

/// k-anonymous hierarchical cloaking.
#[derive(Debug, Clone)]
pub struct KAnonymousCloaking {
    k: usize,
    levels: Vec<Grid>,
    anchors: Vec<LatLon>,
}

impl KAnonymousCloaking {
    /// Builds the mechanism from the population's anchor points.
    ///
    /// `base_cell` is the finest cell size; the hierarchy doubles it
    /// `levels` times. A fix that cannot be k-anonymized even at the
    /// coarsest level is released at that coarsest level anyway (the
    /// alternative — suppression — is what [`crate::suppression`]
    /// provides).
    ///
    /// # Panics
    ///
    /// Panics if `k == 0`, `levels == 0`, `base_cell` is not positive, or
    /// `anchors` is empty.
    #[must_use]
    pub fn new(origin: LatLon, base_cell: Meters, levels: usize, k: usize, anchors: Vec<LatLon>) -> Self {
        let base_cell_m = base_cell.get();
        assert!(k >= 1, "k must be at least 1");
        assert!(levels >= 1, "need at least one level");
        assert!(base_cell_m > 0.0, "cell size must be positive");
        assert!(!anchors.is_empty(), "population anchors must be non-empty");
        let levels = (0..levels)
            .map(|i| Grid::new(origin, Meters::new(base_cell_m * f64::powi(2.0, i as i32))))
            .collect();
        Self { k, levels, anchors }
    }

    /// The anonymity parameter.
    #[must_use]
    pub fn k(&self) -> usize {
        self.k
    }

    /// Number of anchors in the cell of `grid` containing `pos`.
    fn occupancy(&self, grid: &Grid, pos: LatLon) -> usize {
        let cell = grid.cell_of(pos);
        self.anchors.iter().filter(|a| grid.cell_of(**a) == cell).count()
    }

    /// The released position for a true position: the center of the
    /// smallest cell holding at least `k` anchors (coarsest level as the
    /// fallback).
    #[must_use]
    pub fn cloak(&self, pos: LatLon) -> LatLon {
        for grid in &self.levels {
            if self.occupancy(grid, pos) >= self.k {
                return grid.snap(pos);
            }
        }
        self.levels.last().expect("at least one level").snap(pos)
    }
}

impl Lppm for KAnonymousCloaking {
    fn name(&self) -> &str {
        "k-anonymous-cloaking"
    }

    fn apply(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Trace {
        trace.iter().map(|p| TracePoint::new(p.time, self.cloak(p.pos))).collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::distance::haversine;

    fn origin() -> LatLon {
        LatLon::new(39.9, 116.4).unwrap()
    }

    /// 10 anchors huddled downtown, 1 anchor in the suburb.
    fn anchors() -> Vec<LatLon> {
        let mut v: Vec<LatLon> = (0..10)
            .map(|i| LatLon::new(39.9 + f64::from(i) * 1e-4, 116.4).unwrap())
            .collect();
        v.push(LatLon::new(39.98, 116.52).unwrap()); // lone suburbanite
        v
    }

    fn mech(k: usize) -> KAnonymousCloaking {
        KAnonymousCloaking::new(origin(), Meters::new(250.0), 7, k, anchors())
    }

    #[test]
    fn dense_area_is_released_at_fine_level() {
        let m = mech(5);
        let downtown = LatLon::new(39.9002, 116.4001).unwrap();
        let released = m.cloak(downtown);
        // all 10 downtown anchors share the 250 m cell, so the fix moves
        // at most half a fine-cell diagonal
        assert!(haversine(downtown, released) <= 250.0);
    }

    #[test]
    fn sparse_area_is_released_coarse() {
        let m = mech(5);
        let suburb = LatLon::new(39.98, 116.52).unwrap();
        let released = m.cloak(suburb);
        // only 1 anchor nearby: the mechanism must climb the hierarchy,
        // moving the fix much further than the fine cell would
        assert!(haversine(suburb, released) > 250.0, "moved {} m", haversine(suburb, released));
    }

    #[test]
    fn k1_keeps_own_cell_when_anchor_present() {
        let m = mech(1);
        let suburb = LatLon::new(39.98, 116.52).unwrap();
        // with k = 1, the suburbanite's own anchor suffices at the finest
        // level
        assert!(haversine(suburb, m.cloak(suburb)) <= 250.0);
    }

    #[test]
    fn larger_k_never_decreases_displacement() {
        let pos = LatLon::new(39.9002, 116.4001).unwrap();
        let d5 = haversine(pos, mech(5).cloak(pos));
        let d11 = haversine(pos, mech(11).cloak(pos));
        assert!(d11 >= d5);
    }

    #[test]
    fn apply_preserves_timestamps() {
        use backwatch_trace::Timestamp;
        use rand::rngs::StdRng;
        use rand::SeedableRng;
        let trace = Trace::from_points(
            (0..5)
                .map(|i| TracePoint::new(Timestamp::from_secs(i), LatLon::new(39.9, 116.4).unwrap()))
                .collect(),
        );
        let mut rng = StdRng::seed_from_u64(0);
        let out = mech(5).apply(&trace, &mut rng);
        assert_eq!(out.len(), 5);
        for (a, b) in trace.iter().zip(out.iter()) {
            assert_eq!(a.time, b.time);
        }
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        let _ = KAnonymousCloaking::new(origin(), Meters::new(250.0), 3, 0, anchors());
    }
}
