//! Selective suppression: drop fixes near user-designated sensitive
//! zones (the paper's "users can block the access to sensitive
//! locations", §IV-B; mix-zone flavored after Beresford & Stajano).

use crate::Lppm;
use backwatch_geo::distance::Metric;
use backwatch_geo::{LatLon, Meters};
use backwatch_trace::Trace;
use rand::RngCore;

/// A circular zone in which no fixes are released.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SensitiveZone {
    /// Zone center.
    pub center: LatLon,
    /// Zone radius, meters.
    pub radius_m: f64,
}

impl SensitiveZone {
    /// Creates a zone.
    ///
    /// # Panics
    ///
    /// Panics if `radius` is not strictly positive.
    #[must_use]
    pub fn new(center: LatLon, radius: Meters) -> Self {
        let radius_m = radius.get();
        assert!(radius_m > 0.0 && radius_m.is_finite(), "zone radius must be positive");
        Self { center, radius_m }
    }

    /// Whether `pos` falls inside the zone.
    #[must_use]
    pub fn contains(&self, pos: LatLon, metric: Metric) -> bool {
        metric.distance(pos, self.center) <= self.radius_m
    }
}

/// Suppress every fix inside any of the configured zones.
#[derive(Debug, Clone)]
pub struct ZoneSuppression {
    zones: Vec<SensitiveZone>,
    metric: Metric,
}

impl ZoneSuppression {
    /// Creates the mechanism from a zone list.
    #[must_use]
    pub fn new(zones: Vec<SensitiveZone>) -> Self {
        Self {
            zones,
            metric: Metric::Equirectangular,
        }
    }

    /// The configured zones.
    #[must_use]
    pub fn zones(&self) -> &[SensitiveZone] {
        &self.zones
    }
}

impl Lppm for ZoneSuppression {
    fn name(&self) -> &str {
        "zone-suppression"
    }

    fn apply(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Trace {
        trace
            .iter()
            .filter(|p| !self.zones.iter().any(|z| z.contains(p.pos, self.metric)))
            .copied()
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_trace::{Timestamp, TracePoint};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace() -> Trace {
        // half the fixes at A, half at B (~5.6 km apart)
        let a = LatLon::new(39.90, 116.40).unwrap();
        let b = LatLon::new(39.95, 116.40).unwrap();
        Trace::from_points(
            (0..100)
                .map(|i| TracePoint::new(Timestamp::from_secs(i), if i < 50 { a } else { b }))
                .collect(),
        )
    }

    #[test]
    fn suppresses_only_zone_fixes() {
        let zone = SensitiveZone::new(LatLon::new(39.90, 116.40).unwrap(), Meters::new(200.0));
        let mut rng = StdRng::seed_from_u64(0);
        let out = ZoneSuppression::new(vec![zone]).apply(&trace(), &mut rng);
        assert_eq!(out.len(), 50);
        assert!(out.iter().all(|p| !zone.contains(p.pos, Metric::Equirectangular)));
    }

    #[test]
    fn no_zones_is_identity() {
        let mut rng = StdRng::seed_from_u64(0);
        let out = ZoneSuppression::new(Vec::new()).apply(&trace(), &mut rng);
        assert_eq!(out, trace());
    }

    #[test]
    fn overlapping_zones_compose() {
        let z1 = SensitiveZone::new(LatLon::new(39.90, 116.40).unwrap(), Meters::new(200.0));
        let z2 = SensitiveZone::new(LatLon::new(39.95, 116.40).unwrap(), Meters::new(200.0));
        let mut rng = StdRng::seed_from_u64(0);
        let out = ZoneSuppression::new(vec![z1, z2]).apply(&trace(), &mut rng);
        assert!(out.is_empty());
    }

    #[test]
    #[should_panic(expected = "zone radius")]
    fn non_positive_radius_panics() {
        let _ = SensitiveZone::new(LatLon::new(0.0, 0.0).unwrap(), Meters::ZERO);
    }
}
