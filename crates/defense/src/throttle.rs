//! Release throttling: cap how often a background app may receive
//! location updates.
//!
//! The paper's measurement shows the privacy damage is a function of the
//! update frequency (Figures 3–5), which makes an OS-enforced minimum
//! interval the most direct mitigation: keep foreground behavior intact
//! and slow the background stream below the PoI-extraction threshold.

use crate::Lppm;
use backwatch_geo::Seconds;
use backwatch_trace::{sampling, Trace};
use rand::RngCore;

/// Enforce a minimum interval between released fixes.
#[derive(Debug, Clone, Copy)]
pub struct ReleaseThrottle {
    min_interval: Seconds,
}

impl ReleaseThrottle {
    /// Creates the mechanism.
    ///
    /// # Panics
    ///
    /// Panics if `min_interval` is shorter than one second.
    #[must_use]
    pub fn new(min_interval: Seconds) -> Self {
        assert!(min_interval.get() >= 1, "interval must be at least 1 s");
        Self { min_interval }
    }

    /// The enforced minimum interval.
    #[must_use]
    pub fn min_interval(&self) -> Seconds {
        self.min_interval
    }
}

impl Lppm for ReleaseThrottle {
    fn name(&self) -> &str {
        "release-throttle"
    }

    fn apply(&self, trace: &Trace, _rng: &mut dyn RngCore) -> Trace {
        sampling::downsample(trace, self.min_interval)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::LatLon;
    use backwatch_trace::{Timestamp, TracePoint};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace() -> Trace {
        Trace::from_points(
            (0..600)
                .map(|i| TracePoint::new(Timestamp::from_secs(i), LatLon::new(39.9, 116.4).unwrap()))
                .collect(),
        )
    }

    #[test]
    fn spacing_respects_cap() {
        let mut rng = StdRng::seed_from_u64(0);
        let out = ReleaseThrottle::new(Seconds::new(60)).apply(&trace(), &mut rng);
        for w in out.points().windows(2) {
            assert!(w[1].time - w[0].time >= 60);
        }
        assert_eq!(out.len(), 10);
    }

    #[test]
    fn one_second_cap_is_identity_at_1hz() {
        let mut rng = StdRng::seed_from_u64(0);
        assert_eq!(ReleaseThrottle::new(Seconds::new(1)).apply(&trace(), &mut rng), trace());
    }

    #[test]
    #[should_panic(expected = "interval")]
    fn zero_interval_panics() {
        let _ = ReleaseThrottle::new(Seconds::new(0));
    }
}
