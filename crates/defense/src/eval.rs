//! Defense evaluation harness: score any [`Lppm`] against the paper's
//! privacy metrics and a utility cost.
//!
//! Privacy side (lower is better for the user's adversary):
//! - PoI recall/precision of the extraction run on the released trace;
//! - sensitive places recovered;
//! - His_bin detection (pattern 2) against the user's true profile;
//! - identification against a population profile store.
//!
//! Utility side (lower is better for the app):
//! - mean positional error of released fixes vs the true position at the
//!   same moment;
//! - fraction of fixes suppressed.

use crate::Lppm;
use backwatch_core::adversary::ProfileStore;
use backwatch_core::anonymity::Weighting;
use backwatch_core::hisbin::{detect_incremental, Matcher};
use backwatch_core::pattern::{PatternKind, Profile};
use backwatch_core::poi::{cluster_stays, match_against_truth, sensitive_counts, ExtractorParams, SpatioTemporalExtractor};
use backwatch_geo::Grid;
use backwatch_trace::synth::UserTrace;
use backwatch_trace::Trace;
use rand::RngCore;

/// The scorecard of one mechanism on one user.
#[derive(Debug, Clone, PartialEq)]
pub struct DefenseOutcome {
    /// Mechanism name.
    pub mechanism: String,
    /// Fixes released (vs the true trace's count).
    pub released_points: usize,
    /// Fraction of fixes suppressed.
    pub suppressed_fraction: f64,
    /// Mean positional error of released fixes, meters (utility cost).
    pub mean_error_m: f64,
    /// PoI recall of an adversary extracting from the released trace.
    pub poi_recall: f64,
    /// PoI precision of the same extraction.
    pub poi_precision: f64,
    /// Sensitive places recovered at thresholds `[≤1, ≤2, ≤3]`.
    pub sensitive_recovered: [usize; 3],
    /// Fraction of the released data His_bin (pattern 2) needed to match
    /// the user's true profile, if it ever did.
    pub detection_fraction: Option<f64>,
    /// Whether the population adversary still uniquely identified the
    /// user.
    pub identified: bool,
    /// Degree of anonymity after the inference attack (`None` when no
    /// profile matched).
    pub degree: Option<f64>,
}

/// Everything the evaluation needs besides the mechanism itself.
pub struct EvalContext<'a> {
    /// The user under attack (trace + ground truth).
    pub user: &'a UserTrace,
    /// Population profiles (pattern 2) the adversary holds.
    pub store: &'a ProfileStore,
    /// The user's own ground-truth pattern-2 profile.
    pub true_profile: &'a Profile,
    /// Shared region grid.
    pub grid: &'a Grid,
    /// Extraction parameters.
    pub params: ExtractorParams,
    /// His_bin matcher.
    pub matcher: Matcher,
}

/// True position of the user at second `t` (last recorded fix at or
/// before `t`, clamped at the ends).
fn true_position_at(trace: &Trace, t: i64) -> backwatch_geo::LatLon {
    let pts = trace.points();
    let idx = pts.partition_point(|p| p.time.as_secs() <= t);
    if idx == 0 {
        pts[0].pos
    } else {
        pts[idx - 1].pos
    }
}

/// Runs the full scorecard for `mechanism` on the context's user.
///
/// # Panics
///
/// Panics if the user's trace is empty.
#[must_use]
pub fn evaluate(mechanism: &dyn Lppm, ctx: &EvalContext<'_>, rng: &mut dyn RngCore) -> DefenseOutcome {
    let true_trace = &ctx.user.trace;
    assert!(!true_trace.is_empty(), "cannot evaluate on an empty trace");
    let released = mechanism.apply(true_trace, rng);

    let mean_error_m = if released.is_empty() {
        0.0
    } else {
        released
            .iter()
            .map(|p| {
                ctx.params
                    .metric
                    .distance(p.pos, true_position_at(true_trace, p.time.as_secs()))
            })
            .sum::<f64>()
            / released.len() as f64
    };

    let extractor = SpatioTemporalExtractor::new(ctx.params);
    let stays = extractor.extract(&released);
    let match_radius = ctx.params.radius_m * 3.0;
    let recovery = match_against_truth(&stays, ctx.user, ctx.params.min_visit_secs, match_radius, ctx.params.metric);
    let places = cluster_stays(&stays, match_radius, ctx.params.metric);

    let detection = detect_incremental(
        &stays,
        released.len().max(1),
        ctx.grid,
        PatternKind::MovementPattern,
        &ctx.matcher,
        ctx.true_profile,
    );

    let observed = Profile::from_stays(PatternKind::MovementPattern, &stays, ctx.grid);
    let inference = ctx.store.infer(&observed, &ctx.matcher, Weighting::PaperChiSquare);

    DefenseOutcome {
        mechanism: mechanism.name().to_owned(),
        released_points: released.len(),
        suppressed_fraction: 1.0 - released.len() as f64 / true_trace.len() as f64,
        mean_error_m,
        poi_recall: recovery.recall(),
        poi_precision: recovery.precision(),
        sensitive_recovered: sensitive_counts(&places),
        detection_fraction: detection.map(|d| d.fraction_of_points),
        identified: inference.identified_user() == Some(ctx.user.user_id),
        degree: inference.degree(),
    }
}

/// Renders a suite of outcomes as an aligned text table.
#[must_use]
pub fn render_outcomes(outcomes: &[DefenseOutcome]) -> String {
    use std::fmt::Write as _;
    let mut s = String::new();
    let _ = writeln!(
        s,
        "{:<24} {:>8} {:>10} {:>8} {:>10} {:>12} {:>11} {:>6}",
        "mechanism", "released", "err_m", "recall", "sens<=3", "detect_at", "identified", "deg"
    );
    for o in outcomes {
        let _ = writeln!(
            s,
            "{:<24} {:>8} {:>10.1} {:>7.0}% {:>10} {:>12} {:>11} {:>6}",
            o.mechanism,
            o.released_points,
            o.mean_error_m,
            o.poi_recall * 100.0,
            o.sensitive_recovered[2],
            o.detection_fraction
                .map_or_else(|| "never".to_owned(), |f| format!("{:.0}%", f * 100.0)),
            if o.identified { "yes" } else { "no" },
            o.degree.map_or_else(|| "-".to_owned(), |d| format!("{d:.2}")),
        );
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cloaking::KAnonymousCloaking;
    use crate::decoy::FixedDecoy;
    use crate::perturbation::GaussianPerturbation;
    use crate::suppression::{SensitiveZone, ZoneSuppression};
    use crate::throttle::ReleaseThrottle;
    use crate::truncation::GridTruncation;
    use crate::NoDefense;
    use backwatch_geo::{Meters, Seconds};
    use backwatch_trace::synth::{generate_user, SynthConfig};
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    struct Fixture {
        users: Vec<UserTrace>,
        store: ProfileStore,
        profiles: Vec<Profile>,
        grid: Grid,
        params: ExtractorParams,
    }

    fn fixture() -> Fixture {
        let mut cfg = SynthConfig::small();
        cfg.n_users = 5;
        cfg.days = 6;
        let params = ExtractorParams::paper_set1();
        let grid = Grid::new(cfg.city_center, Meters::new(250.0));
        let extractor = SpatioTemporalExtractor::new(params);
        let users: Vec<UserTrace> = (0..cfg.n_users).map(|i| generate_user(&cfg, i)).collect();
        let mut store = ProfileStore::new(PatternKind::MovementPattern);
        let mut profiles = Vec::new();
        for u in &users {
            let stays = extractor.extract(&u.trace);
            let p = Profile::from_stays(PatternKind::MovementPattern, &stays, &grid);
            store.insert(u.user_id, p.clone());
            profiles.push(p);
        }
        Fixture {
            users,
            store,
            profiles,
            grid,
            params,
        }
    }

    fn eval_with(f: &Fixture, mech: &dyn Lppm) -> DefenseOutcome {
        let ctx = EvalContext {
            user: &f.users[0],
            store: &f.store,
            true_profile: &f.profiles[0],
            grid: &f.grid,
            params: f.params,
            matcher: Matcher::paper(),
        };
        evaluate(mech, &ctx, &mut StdRng::seed_from_u64(7))
    }

    #[test]
    fn baseline_leaks_everything() {
        let f = fixture();
        let o = eval_with(&f, &NoDefense);
        assert!(o.poi_recall > 0.8);
        assert!(o.identified, "no defense: the adversary wins");
        assert!(o.detection_fraction.is_some());
        assert!(o.mean_error_m < 1.0);
        assert_eq!(o.suppressed_fraction, 0.0);
    }

    #[test]
    fn coarse_truncation_blocks_identification() {
        let f = fixture();
        let mech = GridTruncation::new(Grid::new(f.grid.origin(), Meters::new(2000.0)));
        let o = eval_with(&f, &mech);
        assert!(o.poi_recall < 0.3, "recall {}", o.poi_recall);
        assert!(!o.identified);
        // utility cost is bounded by the cell diagonal
        assert!(o.mean_error_m < 1500.0);
    }

    #[test]
    fn fixed_decoy_reveals_nothing_but_destroys_utility() {
        let f = fixture();
        let mech = FixedDecoy::new(backwatch_geo::LatLon::new(40.2, 116.9).unwrap());
        let o = eval_with(&f, &mech);
        assert_eq!(o.poi_recall, 0.0);
        assert!(!o.identified);
        assert!(o.detection_fraction.is_none());
        assert!(o.mean_error_m > 10_000.0, "decoy error {}", o.mean_error_m);
    }

    #[test]
    fn mild_perturbation_preserves_pois() {
        let f = fixture();
        let o = eval_with(&f, &GaussianPerturbation::new(Meters::new(10.0)));
        assert!(o.poi_recall > 0.7, "10 m noise should not hide 50 m-radius PoIs");
    }

    #[test]
    fn heavy_perturbation_degrades_recall() {
        let f = fixture();
        let mild = eval_with(&f, &GaussianPerturbation::new(Meters::new(10.0)));
        let heavy = eval_with(&f, &GaussianPerturbation::new(Meters::new(400.0)));
        assert!(heavy.poi_recall < mild.poi_recall);
        assert!(heavy.mean_error_m > mild.mean_error_m);
    }

    #[test]
    fn throttling_beyond_dwell_scale_kills_detection() {
        let f = fixture();
        let o = eval_with(&f, &ReleaseThrottle::new(Seconds::new(3600)));
        assert!(o.poi_recall < 0.5);
        assert!(o.suppressed_fraction > 0.99);
    }

    #[test]
    fn zone_suppression_hides_the_zone_only() {
        let f = fixture();
        // suppress around the user's home
        let home = f.users[0].places[0].pos;
        let mech = ZoneSuppression::new(vec![SensitiveZone::new(home, Meters::new(300.0))]);
        let o = eval_with(&f, &mech);
        assert!(o.suppressed_fraction > 0.05, "home fixes should vanish");
        assert!(o.poi_recall < 1.0);
        // fixes that are released are exact
        assert!(o.mean_error_m < 1.0);
    }

    #[test]
    fn cloaking_outcome_is_between_none_and_decoy() {
        let f = fixture();
        let anchors: Vec<_> = f.users.iter().map(|u| u.places[0].pos).collect();
        let mech = KAnonymousCloaking::new(f.grid.origin(), Meters::new(250.0), 7, 3, anchors);
        let o = eval_with(&f, &mech);
        let baseline = eval_with(&f, &NoDefense);
        assert!(o.poi_recall <= baseline.poi_recall + 1e-9);
        assert!(o.mean_error_m >= baseline.mean_error_m);
    }

    #[test]
    fn render_lists_every_mechanism() {
        let f = fixture();
        let outcomes = vec![
            eval_with(&f, &NoDefense),
            eval_with(&f, &ReleaseThrottle::new(Seconds::new(600))),
        ];
        let text = render_outcomes(&outcomes);
        assert!(text.contains("none"));
        assert!(text.contains("release-throttle"));
    }
}
