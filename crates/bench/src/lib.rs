//! Shared fixtures for the backwatch benchmarks.
//!
//! The benches live under `benches/`; this library provides the inputs
//! they share so fixture construction is not measured repeatedly.

use backwatch_core::poi::{ExtractorParams, SpatioTemporalExtractor, Stay};
use backwatch_trace::synth::{generate_user, SynthConfig, UserTrace};
use backwatch_trace::Trace;

/// A small deterministic user for microbenches: 3 days of routine.
#[must_use]
pub fn bench_user() -> UserTrace {
    let mut cfg = SynthConfig::small();
    cfg.days = 3;
    cfg.n_users = 1;
    generate_user(&cfg, 0)
}

/// A longer user for pipeline benches: 10 days.
#[must_use]
pub fn bench_user_long() -> UserTrace {
    let mut cfg = SynthConfig::small();
    cfg.days = 10;
    cfg.n_users = 1;
    generate_user(&cfg, 0)
}

/// The stays of [`bench_user_long`] under the paper's parameters.
#[must_use]
pub fn bench_stays() -> (Trace, Vec<Stay>) {
    let user = bench_user_long();
    let stays = SpatioTemporalExtractor::new(ExtractorParams::paper_set1()).extract(&user.trace);
    (user.trace, stays)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixtures_are_nonempty() {
        assert!(!bench_user().trace.is_empty());
        let (trace, stays) = bench_stays();
        assert!(!trace.is_empty());
        assert!(!stays.is_empty());
    }
}
