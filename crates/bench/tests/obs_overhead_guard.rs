//! Guard test for the telemetry overhead budget: extraction with counters
//! live must stay within a few percent of the same extraction with the
//! runtime switch off.
//!
//! The design budget is < 3 % (see `benches/obs_overhead.rs` for the
//! precise criterion numbers); this test asserts a slacked bound so a
//! noisy CI box doesn't flake, while still catching a regression that
//! puts shared atomics or allocation back into the point loop. Best-of-N
//! timing is used on both sides for the same reason.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_bench::bench_user_long;
use backwatch_core::poi::{ExtractorParams, SpatioTemporalExtractor};
use backwatch_trace::ProjectedTrace;
use std::hint::black_box;
use std::time::{Duration, Instant};

fn best_of(rounds: usize, iters: usize, f: &dyn Fn()) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..rounds {
        let t0 = Instant::now();
        for _ in 0..iters {
            f();
        }
        best = best.min(t0.elapsed());
    }
    best
}

#[test]
fn telemetry_overhead_stays_small_on_the_hot_path() {
    let user = bench_user_long();
    let e = SpatioTemporalExtractor::new(ExtractorParams::paper_set1());
    let projected = ProjectedTrace::project(&user.trace);
    let extract = || {
        black_box(e.extract_projected(black_box(&projected)));
    };

    // Warm up caches and the lazy metric registration.
    extract();

    backwatch_obs::set_enabled(false);
    let disabled = best_of(7, 4, &extract);
    backwatch_obs::set_enabled(true);
    let enabled = best_of(7, 4, &extract);

    let ratio = enabled.as_secs_f64() / disabled.as_secs_f64().max(1e-9);
    // budget 3%, slack to 10% for scheduler noise on shared runners
    assert!(
        ratio < 1.10,
        "telemetry overhead ratio {ratio:.3} (enabled {enabled:?} vs disabled {disabled:?}) exceeds the budget"
    );
}
