//! PoI-extraction benchmarks, including the ablation DESIGN.md calls out:
//! the paper's three-buffer Spatio-Temporal algorithm vs the naive
//! anchor-based dwell detector, across sampling rates and parameters.

use backwatch_bench::{bench_user, bench_user_long};
use backwatch_core::poi::{cluster_stays, ExtractorParams, NaiveDwellExtractor, SpatioTemporalExtractor};
use backwatch_trace::sampling;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn extractors_ablation(c: &mut Criterion) {
    let user = bench_user();
    let params = ExtractorParams::paper_set1();
    let mut g = c.benchmark_group("poi/ablation");
    g.throughput(Throughput::Elements(user.trace.len() as u64));
    g.bench_function("three_buffer", |b| {
        let e = SpatioTemporalExtractor::new(params);
        b.iter(|| e.extract(black_box(&user.trace)));
    });
    g.bench_function("naive_anchor", |b| {
        let e = NaiveDwellExtractor::new(params);
        b.iter(|| e.extract(black_box(&user.trace)));
    });
    g.finish();
}

fn extraction_vs_sampling_rate(c: &mut Criterion) {
    let user = bench_user_long();
    let params = ExtractorParams::paper_set1();
    let e = SpatioTemporalExtractor::new(params);
    let mut g = c.benchmark_group("poi/by_interval");
    for interval in [1i64, 60, 600] {
        let trace = sampling::downsample(&user.trace, interval);
        g.throughput(Throughput::Elements(trace.len() as u64));
        g.bench_function(format!("interval_{interval}s"), |b| {
            b.iter(|| e.extract(black_box(&trace)));
        });
    }
    g.finish();
}

fn table3_parameter_sets(c: &mut Criterion) {
    let user = bench_user();
    let mut g = c.benchmark_group("poi/table3_params");
    for (i, params) in ExtractorParams::table3_sets().into_iter().enumerate() {
        g.bench_function(format!("set{}", i + 1), |b| {
            let e = SpatioTemporalExtractor::new(params);
            b.iter(|| e.extract(black_box(&user.trace)));
        });
    }
    g.finish();
}

fn clustering(c: &mut Criterion) {
    let user = bench_user_long();
    let params = ExtractorParams::paper_set1();
    let stays = SpatioTemporalExtractor::new(params).extract(&user.trace);
    c.bench_function("poi/cluster_stays", |b| {
        b.iter(|| cluster_stays(black_box(&stays), 150.0, params.metric));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = extractors_ablation, extraction_vs_sampling_rate, table3_parameter_sets, clustering
}
criterion_main!(benches);
