//! PoI-extraction benchmarks, including the ablation DESIGN.md calls out:
//! the paper's three-buffer Spatio-Temporal algorithm vs the naive
//! anchor-based dwell detector, across sampling rates and parameters.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_bench::{bench_user, bench_user_long};
use backwatch_core::poi::{cluster_stays, ExtractorParams, NaiveDwellExtractor, SpatioTemporalExtractor};
use backwatch_geo::{Meters, Seconds};
use backwatch_trace::{sampling, ProjectedTrace};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn extractors_ablation(c: &mut Criterion) {
    let user = bench_user();
    let params = ExtractorParams::paper_set1();
    let projected = ProjectedTrace::project(&user.trace);
    let mut g = c.benchmark_group("poi/ablation");
    g.throughput(Throughput::Elements(user.trace.len() as u64));
    // The pipeline projects each user once and runs every extraction on the
    // planar view, so `three_buffer` measures what production pays per pass.
    g.bench_function("three_buffer", |b| {
        let e = SpatioTemporalExtractor::new(params);
        b.iter(|| e.extract_projected(black_box(&projected)));
    });
    g.bench_function("naive_anchor", |b| {
        let e = NaiveDwellExtractor::new(params);
        b.iter(|| e.extract(black_box(&user.trace)));
    });
    g.finish();
}

/// The lat/lon path vs the certified planar fast path on the same input —
/// the direct speedup measurement for the one-shot-projection refactor.
/// `planar_with_projection` pays the projection inside the loop; the real
/// pipeline amortizes it over every interval of the sweep.
fn fast_path(c: &mut Criterion) {
    let user = bench_user_long();
    let params = ExtractorParams::paper_set1();
    let e = SpatioTemporalExtractor::new(params);
    let projected = ProjectedTrace::project(&user.trace);
    let mut g = c.benchmark_group("poi/fast_path");
    g.throughput(Throughput::Elements(user.trace.len() as u64));
    g.bench_function("latlon", |b| {
        b.iter(|| e.extract(black_box(&user.trace)));
    });
    g.bench_function("planar", |b| {
        b.iter(|| e.extract_projected(black_box(&projected)));
    });
    g.bench_function("planar_with_projection", |b| {
        b.iter(|| {
            let p = ProjectedTrace::project(black_box(&user.trace));
            e.extract_projected(&p)
        });
    });
    g.finish();
}

fn extraction_vs_sampling_rate(c: &mut Criterion) {
    let user = bench_user_long();
    let params = ExtractorParams::paper_set1();
    let e = SpatioTemporalExtractor::new(params);
    let projected = ProjectedTrace::project(&user.trace);
    let mut g = c.benchmark_group("poi/by_interval");
    for interval in [1i64, 60, 600] {
        let indices = sampling::downsample_indices(&user.trace, Seconds::new(interval));
        g.throughput(Throughput::Elements(indices.len() as u64));
        g.bench_function(format!("interval_{interval}s"), |b| {
            b.iter(|| e.extract_sampled(black_box(&projected), black_box(&indices)));
        });
    }
    g.finish();
}

/// Owned downsampling (allocate a new trace, then extract) vs the borrowed
/// index view the pipeline now uses — isolates the zero-copy win.
fn sampling_owned_vs_views(c: &mut Criterion) {
    let user = bench_user_long();
    let params = ExtractorParams::paper_set1();
    let e = SpatioTemporalExtractor::new(params);
    let projected = ProjectedTrace::project(&user.trace);
    let mut g = c.benchmark_group("poi/sampling");
    for interval in [60i64, 600] {
        g.bench_function(format!("owned_{interval}s"), |b| {
            b.iter(|| {
                let t = sampling::downsample(black_box(&user.trace), Seconds::new(interval));
                e.extract(&t)
            });
        });
        g.bench_function(format!("view_{interval}s"), |b| {
            b.iter(|| {
                let ix = sampling::downsample_indices(black_box(&user.trace), Seconds::new(interval));
                e.extract_sampled(&projected, &ix)
            });
        });
    }
    g.finish();
}

fn table3_parameter_sets(c: &mut Criterion) {
    let user = bench_user();
    let mut g = c.benchmark_group("poi/table3_params");
    for (i, params) in ExtractorParams::table3_sets().into_iter().enumerate() {
        g.bench_function(format!("set{}", i + 1), |b| {
            let e = SpatioTemporalExtractor::new(params);
            b.iter(|| e.extract(black_box(&user.trace)));
        });
    }
    g.finish();
}

fn clustering(c: &mut Criterion) {
    let user = bench_user_long();
    let params = ExtractorParams::paper_set1();
    let stays = SpatioTemporalExtractor::new(params).extract(&user.trace);
    c.bench_function("poi/cluster_stays", |b| {
        b.iter(|| cluster_stays(black_box(&stays), Meters::new(150.0), params.metric));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = extractors_ablation, fast_path, extraction_vs_sampling_rate, sampling_owned_vs_views, table3_parameter_sets, clustering
}
criterion_main!(benches);
