//! SoA hot-path benchmarks: the chunked column-layout spread kernel vs the
//! scalar AoS planar path it must match bit-for-bit. Throughput is in
//! fixes/s over the same 10-day trace the streaming benches use, so the
//! numbers are directly comparable with `BENCH_poi.json`'s streaming
//! section; the `soa` section records this group's results.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_bench::bench_user_long;
use backwatch_core::poi::{ExtractorParams, PlanarCtx, SoaStreamingExtractor, SpatioTemporalExtractor};
use backwatch_geo::Seconds;
use backwatch_trace::{sampling, ProjectedTrace, SoaProjectedTrace};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

/// Full-rate batch extraction, scalar AoS vs chunked SoA.
fn batch(c: &mut Criterion) {
    let user = bench_user_long();
    let params = ExtractorParams::paper_set1();
    let extractor = SpatioTemporalExtractor::new(params);
    let projected = ProjectedTrace::project(&user.trace);
    let soa = SoaProjectedTrace::project(&user.trace);
    let mut g = c.benchmark_group("soa/batch");
    g.throughput(Throughput::Elements(user.trace.len() as u64));
    g.bench_function("scalar", |b| b.iter(|| extractor.extract_projected(black_box(&projected))));
    g.bench_function("chunked", |b| b.iter(|| extractor.extract_soa(black_box(&soa))));
    g.finish();
}

/// Downsampled extraction at the paper's coarser access intervals, where
/// windows stay long and the kernel does proportionally more lane work.
fn sampled(c: &mut Criterion) {
    let user = bench_user_long();
    let params = ExtractorParams::paper_set1();
    let extractor = SpatioTemporalExtractor::new(params);
    let projected = ProjectedTrace::project(&user.trace);
    let soa = SoaProjectedTrace::project(&user.trace);
    for interval_s in [10_i64, 60] {
        let indices = sampling::downsample_indices(&user.trace, Seconds::new(interval_s));
        let mut g = c.benchmark_group(format!("soa/sampled_{interval_s}s"));
        g.throughput(Throughput::Elements(indices.len() as u64));
        g.bench_function("scalar", |b| {
            b.iter(|| extractor.extract_sampled(black_box(&projected), black_box(&indices)));
        });
        g.bench_function("chunked", |b| {
            b.iter(|| extractor.extract_sampled_soa(black_box(&soa), black_box(&indices)));
        });
        g.finish();
    }
}

/// Push-at-a-time streaming engines over both window layouts; the SoA
/// engine is the deployment shape behind the `>3x` throughput target.
fn stream(c: &mut Criterion) {
    let user = bench_user_long();
    let params = ExtractorParams::paper_set1();
    let projected = ProjectedTrace::project(&user.trace);
    let soa = SoaProjectedTrace::project(&user.trace);
    let mut g = c.benchmark_group("soa/stream");
    g.throughput(Throughput::Elements(user.trace.len() as u64));
    g.bench_function("scalar", |b| {
        b.iter(|| {
            let ctx = PlanarCtx::new(&projected, params.metric);
            let mut engine: backwatch_core::poi::StreamingExtractor<backwatch_trace::ProjectedPoint> =
                backwatch_core::poi::StreamingExtractor::new(params);
            let mut stays = Vec::new();
            for p in black_box(&projected).points() {
                stays.extend(engine.push_with(*p, &ctx));
            }
            stays.extend(engine.finish());
            stays
        });
    });
    g.bench_function("chunked", |b| {
        b.iter(|| {
            let ctx = PlanarCtx::for_soa(&soa, params.metric);
            let mut engine = SoaStreamingExtractor::new(params);
            let mut stays = Vec::new();
            for p in black_box(&soa).iter() {
                stays.extend(engine.push_with(p, &ctx));
            }
            stays.extend(engine.finish());
            stays
        });
    });
    g.finish();
}

criterion_group!(benches, batch, sampled, stream);
criterion_main!(benches);
