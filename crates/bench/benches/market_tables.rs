//! Benchmarks regenerating the paper's §III artifacts: the headline
//! statistics, Table I, and Figure 1, plus the pipeline stages behind
//! them.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_market::corpus::{self, CorpusConfig};
use backwatch_market::{dynamic_analysis, run_study, static_analysis, stats};
use criterion::{criterion_group, criterion_main, BatchSize, Criterion};
use std::hint::black_box;

fn corpus_generation(c: &mut Criterion) {
    let mut g = c.benchmark_group("market/corpus");
    for per_cat in [10usize, 100] {
        g.bench_function(format!("generate_28x{per_cat}"), |b| {
            let cfg = CorpusConfig::scaled(per_cat);
            b.iter(|| corpus::generate(black_box(&cfg)));
        });
    }
    g.finish();
}

fn pipeline_stages(c: &mut Criterion) {
    let cfg = CorpusConfig::scaled(10);
    let apps = corpus::generate(&cfg);
    let mut g = c.benchmark_group("market/stages");
    g.bench_function("static_analysis_280", |b| {
        b.iter(|| static_analysis::analyze(black_box(&apps)));
    });
    g.bench_function("dynamic_analysis_declaring", |b| {
        b.iter(|| dynamic_analysis::analyze_corpus(black_box(&apps)));
    });
    let statics = static_analysis::analyze(&apps);
    let obs = dynamic_analysis::analyze_corpus(&apps);
    g.bench_function("headline_aggregation", |b| {
        b.iter(|| stats::headline(black_box(&apps), black_box(&statics), black_box(&obs)));
    });
    g.finish();
}

fn table1_bench(c: &mut Criterion) {
    let cfg = CorpusConfig::scaled(10);
    let apps = corpus::generate(&cfg);
    let obs = dynamic_analysis::analyze_corpus(&apps);
    c.bench_function("table1/provider_table", |b| {
        b.iter(|| stats::provider_table(black_box(&apps), black_box(&obs)));
    });
}

fn fig1_bench(c: &mut Criterion) {
    let cfg = CorpusConfig::scaled(10);
    let apps = corpus::generate(&cfg);
    let obs = dynamic_analysis::analyze_corpus(&apps);
    c.bench_function("fig1/interval_cdf", |b| {
        b.iter_batched(
            || obs.clone(),
            |obs| stats::interval_cdf(black_box(&obs)),
            BatchSize::SmallInput,
        );
    });
}

fn full_study(c: &mut Criterion) {
    c.bench_function("market/full_study_28x10", |b| {
        let cfg = CorpusConfig::scaled(10);
        b.iter(|| run_study(black_box(&cfg)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = corpus_generation, pipeline_stages, table1_bench, fig1_bench, full_study
}
criterion_main!(benches);
