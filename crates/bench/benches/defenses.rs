//! Benchmarks of the LPPM mechanisms and their evaluation harness.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_bench::bench_user;
use backwatch_core::adversary::ProfileStore;
use backwatch_core::hisbin::Matcher;
use backwatch_core::pattern::{PatternKind, Profile};
use backwatch_core::poi::{ExtractorParams, SpatioTemporalExtractor};
use backwatch_defense::cloaking::KAnonymousCloaking;
use backwatch_defense::decoy::SyntheticDecoy;
use backwatch_defense::eval::{evaluate, EvalContext};
use backwatch_defense::perturbation::GaussianPerturbation;
use backwatch_defense::throttle::ReleaseThrottle;
use backwatch_defense::truncation::GridTruncation;
use backwatch_defense::{Lppm, NoDefense};
use backwatch_geo::{Grid, LatLon};
use backwatch_geo::{Meters, Seconds};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use rand::rngs::StdRng;
use rand::SeedableRng;
use std::hint::black_box;

fn origin() -> LatLon {
    LatLon::new(39.9042, 116.4074).unwrap()
}

fn mechanisms(c: &mut Criterion) {
    let user = bench_user();
    let anchors = vec![
        origin(),
        LatLon::new(39.95, 116.45).unwrap(),
        LatLon::new(39.85, 116.35).unwrap(),
    ];
    let mechs: Vec<(&str, Box<dyn Lppm>)> = vec![
        (
            "truncation",
            Box::new(GridTruncation::new(Grid::new(origin(), Meters::new(1000.0)))),
        ),
        ("perturbation", Box::new(GaussianPerturbation::new(Meters::new(100.0)))),
        (
            "cloaking",
            Box::new(KAnonymousCloaking::new(origin(), Meters::new(250.0), 7, 2, anchors)),
        ),
        ("throttle", Box::new(ReleaseThrottle::new(Seconds::new(600)))),
        (
            "decoy",
            Box::new(SyntheticDecoy::new(origin(), Meters::new(20.0), Meters::new(500.0))),
        ),
    ];
    let mut g = c.benchmark_group("defense/apply");
    g.throughput(Throughput::Elements(user.trace.len() as u64));
    for (name, mech) in &mechs {
        g.bench_function(*name, |b| {
            b.iter(|| {
                let mut rng = StdRng::seed_from_u64(5);
                mech.apply(black_box(&user.trace), &mut rng)
            });
        });
    }
    g.finish();
}

fn evaluation_harness(c: &mut Criterion) {
    let user = bench_user();
    let params = ExtractorParams::paper_set1();
    let grid = Grid::new(origin(), Meters::new(250.0));
    let stays = SpatioTemporalExtractor::new(params).extract(&user.trace);
    let profile = Profile::from_stays(PatternKind::MovementPattern, &stays, &grid);
    let mut store = ProfileStore::new(PatternKind::MovementPattern);
    store.insert(user.user_id, profile.clone());
    let ctx = EvalContext {
        user: &user,
        store: &store,
        true_profile: &profile,
        grid: &grid,
        params,
        matcher: Matcher::paper(),
    };
    c.bench_function("defense/evaluate_throttle", |b| {
        let mech = ReleaseThrottle::new(Seconds::new(300));
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            evaluate(black_box(&mech), &ctx, &mut rng)
        });
    });
    c.bench_function("defense/evaluate_baseline", |b| {
        b.iter(|| {
            let mut rng = StdRng::seed_from_u64(5);
            evaluate(black_box(&NoDefense), &ctx, &mut rng)
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = mechanisms, evaluation_harness
}
criterion_main!(benches);
