//! Streaming-extraction benchmarks: the push-at-a-time engine vs the batch
//! path it now underlies, the chunked driver with checkpoint round-trips,
//! and the checkpoint codec itself. Throughput is reported in fixes/s;
//! `peak_buffered × sizeof(TracePoint)` (printed by `ext_streaming` and
//! recorded in `BENCH_poi.json`) is the peak-RSS proxy for the engine.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_bench::bench_user_long;
use backwatch_core::poi::{Checkpoint, ExtractorParams, SpatioTemporalExtractor, StreamingExtractor};
use backwatch_trace::chunks::ChunkCursor;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;
use std::num::NonZeroUsize;

/// Batch vs a plain streaming push loop on the same 10-day trace: the
/// price of incremental emission with bounded memory.
fn engine(c: &mut Criterion) {
    let user = bench_user_long();
    let params = ExtractorParams::paper_set1();
    let mut g = c.benchmark_group("streaming/engine");
    g.throughput(Throughput::Elements(user.trace.len() as u64));
    g.bench_function("batch", |b| {
        let e = SpatioTemporalExtractor::new(params);
        b.iter(|| e.extract(black_box(&user.trace)));
    });
    g.bench_function("push_loop", |b| {
        b.iter(|| {
            let mut engine: StreamingExtractor = StreamingExtractor::new(params);
            let mut stays = Vec::new();
            for p in black_box(&user.trace).points() {
                stays.extend(engine.push(*p));
            }
            stays.extend(engine.finish());
            stays
        });
    });
    g.finish();
}

/// The full online driver: fixed-size chunk windows with a checkpoint →
/// bytes → resume round-trip at every boundary, as a storage-backed
/// deployment would run it.
fn chunked(c: &mut Criterion) {
    let user = bench_user_long();
    let params = ExtractorParams::paper_set1();
    let mut g = c.benchmark_group("streaming/chunked");
    g.throughput(Throughput::Elements(user.trace.len() as u64));
    for window in [1_024_usize, 16_384] {
        let name = format!("window_{window}");
        let window = NonZeroUsize::new(window).unwrap();
        g.bench_function(&name, |b| {
            b.iter(|| {
                let mut engine: StreamingExtractor = StreamingExtractor::new(params);
                let mut stays = Vec::new();
                let mut cursor = ChunkCursor::new(black_box(&user.trace), window);
                while let Some(chunk) = cursor.next_window() {
                    for p in chunk {
                        stays.extend(engine.push(*p));
                    }
                    let bytes = engine.checkpoint().to_bytes();
                    engine = StreamingExtractor::resume(&Checkpoint::from_bytes(&bytes).unwrap()).unwrap();
                }
                stays.extend(engine.finish());
                stays
            });
        });
    }
    g.finish();
}

/// The checkpoint codec alone: serialize a mid-visit engine (a populated
/// exit window is the worst case), parse it back, resume.
fn checkpoint_codec(c: &mut Criterion) {
    let user = bench_user_long();
    let params = ExtractorParams::paper_set1();
    let mut engine: StreamingExtractor = StreamingExtractor::new(params);
    for p in &user.trace.points()[..user.trace.len() / 2] {
        engine.push(*p);
    }
    let mut g = c.benchmark_group("streaming/checkpoint");
    g.bench_function("roundtrip", |b| {
        b.iter(|| {
            let bytes = black_box(&engine).checkpoint().to_bytes();
            let resumed: StreamingExtractor = StreamingExtractor::resume(&Checkpoint::from_bytes(&bytes).unwrap()).unwrap();
            black_box(resumed.stream_position())
        });
    });
    g.finish();
}

criterion_group!(benches, engine, chunked, checkpoint_codec);
criterion_main!(benches);
