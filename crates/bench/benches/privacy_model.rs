//! Benchmarks of the privacy model: profile building, His_bin matching
//! (both patterns — the paper's central comparison), incremental
//! detection, and the adversary's inference attack.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_bench::bench_stays;
use backwatch_core::adversary::ProfileStore;
use backwatch_core::anonymity::Weighting;
use backwatch_core::hisbin::{detect_incremental, Matcher};
use backwatch_core::pattern::{PatternKind, Profile};
use backwatch_core::poi::{ExtractorParams, SpatioTemporalExtractor};
use backwatch_geo::Meters;
use backwatch_geo::{Grid, LatLon};
use backwatch_trace::synth::{generate_user, SynthConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn grid() -> Grid {
    Grid::new(LatLon::new(39.9042, 116.4074).unwrap(), Meters::new(250.0))
}

fn profile_building(c: &mut Criterion) {
    let (_, stays) = bench_stays();
    let g = grid();
    let mut group = c.benchmark_group("privacy/profile");
    for kind in [
        PatternKind::RegionVisits,
        PatternKind::RegionVisitCounts,
        PatternKind::MovementPattern,
    ] {
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| Profile::from_stays(black_box(kind), black_box(&stays), &g));
        });
    }
    group.finish();
}

fn hisbin_compare(c: &mut Criterion) {
    let (_, stays) = bench_stays();
    let g = grid();
    let matcher = Matcher::paper();
    let mut group = c.benchmark_group("privacy/hisbin_compare");
    for kind in [PatternKind::RegionVisits, PatternKind::MovementPattern] {
        let profile = Profile::from_stays(kind, &stays, &g);
        let half = Profile::from_stays(kind, &stays[..stays.len() / 2], &g);
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| matcher.compare(black_box(&half), black_box(&profile)));
        });
    }
    group.finish();
}

fn incremental_detection(c: &mut Criterion) {
    let (trace, stays) = bench_stays();
    let g = grid();
    let matcher = Matcher::paper();
    let mut group = c.benchmark_group("privacy/detection");
    for kind in [PatternKind::RegionVisits, PatternKind::MovementPattern] {
        let profile = Profile::from_stays(kind, &stays, &g);
        group.bench_function(format!("{kind:?}"), |b| {
            b.iter(|| detect_incremental(black_box(&stays), trace.len(), &g, kind, &matcher, &profile));
        });
    }
    group.finish();
}

fn adversary_inference(c: &mut Criterion) {
    let mut cfg = SynthConfig::small();
    cfg.n_users = 8;
    cfg.days = 5;
    let g = grid();
    let params = ExtractorParams::paper_set1();
    let extractor = SpatioTemporalExtractor::new(params);
    let mut store = ProfileStore::new(PatternKind::MovementPattern);
    let mut observed = None;
    for i in 0..cfg.n_users {
        let u = generate_user(&cfg, i);
        let stays = extractor.extract(&u.trace);
        let p = Profile::from_stays(PatternKind::MovementPattern, &stays, &g);
        if i == 3 {
            observed = Some(p.clone());
        }
        store.insert(i, p);
    }
    let observed = observed.expect("user 3 generated");
    let matcher = Matcher::paper();
    c.bench_function("privacy/adversary_infer_8_profiles", |b| {
        b.iter(|| store.infer(black_box(&observed), &matcher, Weighting::PaperChiSquare));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = profile_building, hisbin_compare, incremental_detection, adversary_inference
}
criterion_main!(benches);
