//! Substrate microbenches: distance ablation (haversine vs
//! equirectangular), downsampling, mobility synthesis, chi-square, and
//! the simulated device's tick loop.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_android::app::{AppBuilder, LocationBehavior};
use backwatch_android::permission::Permission;
use backwatch_android::provider::ProviderKind;
use backwatch_android::system::{Device, PositionSource};
use backwatch_bench::bench_user;
use backwatch_geo::Seconds;
use backwatch_geo::{distance, LatLon};
use backwatch_stats::chi2;
use backwatch_trace::{sampling, synth};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn distance_ablation(c: &mut Criterion) {
    let a = LatLon::new(39.9042, 116.4074).unwrap();
    let b_pt = LatLon::new(39.95, 116.48).unwrap();
    let mut g = c.benchmark_group("geo/distance");
    g.bench_function("haversine", |b| {
        b.iter(|| distance::haversine(black_box(a), black_box(b_pt)));
    });
    g.bench_function("equirectangular", |b| {
        b.iter(|| distance::equirectangular(black_box(a), black_box(b_pt)));
    });
    g.finish();
}

fn synthesis(c: &mut Criterion) {
    let cfg = synth::SynthConfig::small();
    c.bench_function("trace/synthesize_user_3days", |b| {
        b.iter(|| synth::generate_user(black_box(&cfg), 0));
    });
}

fn downsampling(c: &mut Criterion) {
    let user = bench_user();
    let mut g = c.benchmark_group("trace/downsample");
    g.throughput(Throughput::Elements(user.trace.len() as u64));
    for interval in [10i64, 600] {
        g.bench_function(format!("interval_{interval}s"), |b| {
            b.iter(|| sampling::downsample(black_box(&user.trace), Seconds::new(interval)));
        });
    }
    g.finish();
}

fn chi_square(c: &mut Criterion) {
    let observed: Vec<f64> = (1..=40).map(f64::from).collect();
    let expected: Vec<f64> = (1..=40).map(|i| f64::from(i) * 1.05).collect();
    let mut g = c.benchmark_group("stats/chi2");
    g.bench_function("gof_40_categories", |b| {
        b.iter(|| chi2::chi_square_gof(black_box(&observed), black_box(&expected)));
    });
    g.bench_function("inverse_cdf", |b| {
        b.iter(|| chi2::inverse_cdf(black_box(0.95), black_box(39.0)));
    });
    g.finish();
}

fn device_ticks(c: &mut Criterion) {
    let user = bench_user();
    c.bench_function("android/device_3days_bg_app", |b| {
        let horizon = user.trace.last().unwrap().time.as_secs();
        b.iter(|| {
            let mut device = Device::with_position(PositionSource::Trace(user.trace.clone()));
            let app = AppBuilder::new("com.bench.app")
                .permission(Permission::AccessFineLocation)
                .behavior(
                    LocationBehavior::requester([ProviderKind::Gps], 5)
                        .auto_start(true)
                        .background_interval(60),
                )
                .build();
            let id = device.install(app);
            device.launch(id).expect("launch succeeds");
            device.move_to_background(id).expect("background succeeds");
            device.advance(black_box(horizon));
            device.access_log().len()
        });
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20);
    targets = distance_ablation, synthesis, downsampling, chi_square, device_ticks
}
criterion_main!(benches);
