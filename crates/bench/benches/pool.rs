//! Worker-pool benchmarks: `map_users` fan-out cost at different thread
//! counts over a CPU-bound per-user closure. BENCH_experiments.json's
//! `prepare_users` section records the end-to-end numbers; this group
//! isolates the pool's own overhead so a scheduling regression (the
//! 1-thread-faster-than-4 pathology the batched-claim rewrite removed)
//! shows up without the extraction pipeline in the way.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_experiments::pool::map_users;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

const USERS: u32 = 256;

/// Deterministic CPU-bound work, heavy enough that the pool's claim and
/// scatter costs are visible only if they regress.
fn busy_work(seed: u32) -> u64 {
    let mut x = u64::from(seed) ^ 0x9E37_79B9_7F4A_7C15;
    for _ in 0..20_000 {
        x = x.wrapping_mul(0xBF58_476D_1CE4_E5B9).rotate_left(31) ^ 0x94D0_49BB_1331_11EB;
    }
    x
}

fn fan_out(c: &mut Criterion) {
    let mut g = c.benchmark_group("pool/map_users");
    g.throughput(Throughput::Elements(u64::from(USERS)));
    for threads in [1_usize, 4] {
        g.bench_function(format!("threads_{threads}"), |b| {
            b.iter(|| map_users(USERS, threads, |i| black_box(busy_work(i))));
        });
    }
    g.finish();
}

criterion_group!(benches, fan_out);
criterion_main!(benches);
