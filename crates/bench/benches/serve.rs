//! Ingestion-service benchmarks: sharded multi-tenant ingest throughput
//! and the whole-service snapshot/restore codec. Sustained fixes/s and
//! the p99 per-fix latency recorded in `BENCH_serve.json` come from
//! `ext_serve` (which times every push); these groups isolate the
//! service overhead (routing + map lookup) over the bare engine and the
//! cost of the snapshot path an operator pays per checkpoint.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_core::poi::ExtractorParams;
use backwatch_geo::Seconds;
use backwatch_serve::{loadgen, IngestService};
use backwatch_trace::synth::SynthConfig;
use backwatch_trace::TracePoint;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn small_load() -> Vec<(u64, TracePoint)> {
    let cfg = SynthConfig {
        n_users: 8,
        days: 2,
        ..SynthConfig::small()
    };
    loadgen::interleaved_fixes(&cfg, Seconds::new(30)).collect()
}

/// Interleaved multi-tenant ingest at 1 vs 4 shards: the service's cost
/// per fix, routing and per-user lookup included.
fn ingest(c: &mut Criterion) {
    let fixes = small_load();
    let params = ExtractorParams::paper_set1();
    let mut g = c.benchmark_group("serve/ingest");
    g.throughput(Throughput::Elements(fixes.len() as u64));
    for n_shards in [1usize, 4] {
        g.bench_function(format!("shards_{n_shards}"), |b| {
            b.iter(|| {
                let mut svc = IngestService::new(n_shards, params);
                let mut stays = Vec::new();
                for &(uid, fix) in black_box(&fixes) {
                    stays.extend(svc.ingest(uid, fix).map(|s| (uid, s)));
                }
                stays.extend(svc.finish());
                stays
            });
        });
    }
    g.finish();
}

/// Snapshot and restore of a warm service: the per-checkpoint price of
/// the crash-recovery guarantee.
fn snapshot(c: &mut Criterion) {
    let fixes = small_load();
    let params = ExtractorParams::paper_set1();
    let mut warm = IngestService::new(4, params);
    for &(uid, fix) in &fixes {
        warm.ingest(uid, fix);
    }
    let bytes = warm.snapshot_bytes();
    let mut g = c.benchmark_group("serve/snapshot");
    g.throughput(Throughput::Bytes(bytes.len() as u64));
    g.bench_function("snapshot", |b| b.iter(|| black_box(&mut warm).snapshot_bytes()));
    g.bench_function("restore", |b| {
        b.iter(|| IngestService::restore(params, black_box(&bytes)).expect("warm snapshot restores"));
    });
    g.finish();
}

criterion_group!(benches, ingest, snapshot);
criterion_main!(benches);
