//! Benchmarks of the static-reachability scale path: the uncached
//! oracle sweep, the cold and warm cached sweeps, and the incremental
//! re-sweep — the four regimes BENCH_reach.json pins at corpus scale.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_market::corpus::{generate, CorpusConfig};
use backwatch_market::reach;
use backwatch_market::summary::SummaryCache;
use backwatch_market::sweep::{sweep, sweep_incremental};
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn bench_cfg() -> CorpusConfig {
    CorpusConfig::scaled(8).with_sdk_share(90)
}

fn sweeps(c: &mut Criterion) {
    let cfg = bench_cfg();
    let apps = cfg.total() as u64;
    let mut group = c.benchmark_group("reach_sweep");
    group.throughput(Throughput::Elements(apps));

    group.bench_function("oracle_uncached", |b| {
        let corpus = generate(&cfg);
        b.iter(|| black_box(reach::analyze(black_box(&corpus))));
    });

    group.bench_function("cached_cold", |b| {
        // a fresh cache per iteration: every class summary is computed
        b.iter(|| black_box(sweep(black_box(&cfg), 1, &SummaryCache::new())));
    });

    group.bench_function("cached_warm", |b| {
        // one shared cache: after the first iteration every lookup hits
        let cache = SummaryCache::new();
        let _ = sweep(&cfg, 1, &cache);
        b.iter(|| black_box(sweep(black_box(&cfg), 1, &cache)));
    });

    group.bench_function("incremental", |b| {
        let cache = SummaryCache::new();
        let cold = sweep(&cfg, 1, &cache);
        let next = cfg.at_snapshot(1);
        b.iter(|| black_box(sweep_incremental(black_box(&next), &cold, 1, &cache)));
    });

    group.finish();
}

criterion_group!(benches, sweeps);
criterion_main!(benches);
