//! Benchmarks regenerating the paper's §IV figures (Table III / Figure 2,
//! Figure 3, Figure 4, Figure 5) at test scale.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_experiments::{fig2, fig3, fig4, fig5, prepare, ExperimentConfig};
use criterion::{criterion_group, criterion_main, Criterion};
use std::hint::black_box;

fn fig2_bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::small();
    c.bench_function("fig2/table3_sweep", |b| {
        b.iter(|| fig2::run(black_box(&cfg)));
    });
}

fn prepare_bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::small();
    c.bench_function("prepare/users", |b| {
        b.iter(|| prepare::prepare_users(black_box(&cfg)));
    });
}

fn fig3_bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::small();
    let users = prepare::prepare_users(&cfg);
    c.bench_function("fig3/frequency_sweep", |b| {
        b.iter(|| fig3::run(black_box(&cfg), black_box(&users)));
    });
}

fn fig4_bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::small();
    let users = prepare::prepare_users(&cfg);
    c.bench_function("fig4/detection", |b| {
        b.iter(|| fig4::run(black_box(&cfg), black_box(&users)));
    });
}

fn fig5_bench(c: &mut Criterion) {
    let cfg = ExperimentConfig::small();
    let users = prepare::prepare_users(&cfg);
    c.bench_function("fig5/entropy", |b| {
        b.iter(|| fig5::run(black_box(&cfg), black_box(&users)));
    });
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10);
    targets = fig2_bench, prepare_bench, fig3_bench, fig4_bench, fig5_bench
}
criterion_main!(benches);
