//! Telemetry overhead on the extraction hot path.
//!
//! The obs design budget is < 3 % on instrumented hot paths
//! (`LocalCounter` cells flushed once per pass, no shared atomics inside
//! the point loop). This bench measures the same planar extraction with
//! telemetry enabled and with the runtime switch off; the companion test
//! in `tests/obs_overhead_guard.rs` asserts the budget with slack.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_bench::bench_user_long;
use backwatch_core::poi::{ExtractorParams, SpatioTemporalExtractor};
use backwatch_trace::ProjectedTrace;
use criterion::{criterion_group, criterion_main, Criterion, Throughput};
use std::hint::black_box;

fn obs_overhead(c: &mut Criterion) {
    let user = bench_user_long();
    let e = SpatioTemporalExtractor::new(ExtractorParams::paper_set1());
    let projected = ProjectedTrace::project(&user.trace);
    let mut g = c.benchmark_group("obs/extract_projected");
    g.throughput(Throughput::Elements(user.trace.len() as u64));
    backwatch_obs::set_enabled(true);
    g.bench_function("enabled", |b| {
        b.iter(|| e.extract_projected(black_box(&projected)));
    });
    backwatch_obs::set_enabled(false);
    g.bench_function("runtime_disabled", |b| {
        b.iter(|| e.extract_projected(black_box(&projected)));
    });
    backwatch_obs::set_enabled(true);
    g.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(30);
    targets = obs_overhead
}
criterion_main!(benches);
