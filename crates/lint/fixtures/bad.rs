//! Deliberately-bad fixture for backwatch-lint's self-test. This file is
//! never compiled (it lives outside any `src/` tree); it exists so the
//! test suite and `./ci` can prove the lint actually fires on each rule.

// US001 x2: raw scalars with unit-implying names in a public signature.
pub fn cloak(radius_m: f64, interval: i64, n: usize) -> f64 {
    radius_m + interval as f64 + n as f64
}

// PF001 + PF004 on one line, then PF002 and PF003.
pub fn head(xs: &[f64]) -> f64 {
    xs.iter().next().unwrap() + xs[0]
}

pub fn must(o: Option<f64>) -> f64 {
    o.expect("the caller always sets it")
}

pub fn boom() {
    panic!("unreachable by construction");
}

// A comment mentioning .unwrap() and a string with panic!( must NOT fire.
pub fn decoy() -> &'static str {
    "contains panic!( and xs[0] and .unwrap() in a literal"
}

pub fn register() {
    // TM001: not crate.subsystem.name
    backwatch_obs::register_counter("badname", "help", &C);
    // TM002: counter must end _total
    backwatch_obs::register_counter("fixture.pool.latency_seconds", "help", &C);
    // fine
    backwatch_obs::register_gauge("fixture.pool.workers_current", "help", &G);
    // TM003: duplicate registration
    backwatch_obs::register_gauge("fixture.pool.workers_current", "help", &G);
    // TM004: non-literal name
    backwatch_obs::register_histogram(dynamic_name, "help", &H);
}

#[cfg(test)]
mod tests {
    // None of these may fire: test code is out of scope.
    #[test]
    fn test_code_is_exempt() {
        let xs = vec![1.0f64];
        let _ = xs[0];
        let _: f64 = Some(1.0).unwrap();
        let _: f64 = Some(1.0).expect("fine in tests");
    }
}
