//! Source preprocessing: comment/string blanking and `#[cfg(test)]`
//! region detection.
//!
//! The rules in [`crate::rules`] are substring scanners; running them on
//! raw Rust text would trip on doc comments ("call `.unwrap()` here"),
//! string literals, and test modules. This module produces a *sanitized*
//! view of each file — the same length in characters, with comment and
//! string-literal interiors blanked to spaces — plus a per-line flag for
//! lines inside `#[cfg(test)]` items. Offsets in the sanitized text map
//! one-to-one onto the raw text, so a rule can locate a match in the
//! sanitized view and read the original characters (e.g. a metric-name
//! literal) back out of the raw view.

/// A preprocessed source file ready for rule scanning.
#[derive(Debug)]
pub struct SourceFile {
    /// Path relative to the workspace root, forward slashes.
    pub rel_path: String,
    /// Raw file contents as characters (aligned with `clean`).
    pub raw: Vec<char>,
    /// Sanitized contents: comments and string interiors blanked.
    pub clean: Vec<char>,
    /// Char offset of the start of each line (into `raw`/`clean`).
    pub line_starts: Vec<usize>,
    /// `true` for lines inside a `#[cfg(test)]` item.
    pub test_line: Vec<bool>,
    /// Whether the file is a binary target (`src/bin/` or `main.rs`):
    /// panic-freedom does not apply there.
    pub is_bin: bool,
}

impl SourceFile {
    /// Preprocesses `text` under the given workspace-relative path.
    #[must_use]
    pub fn new(rel_path: &str, text: &str) -> Self {
        let raw: Vec<char> = text.chars().collect();
        let clean = sanitize(&raw);
        let line_starts = line_starts(&raw);
        let test_line = test_lines(&clean, &line_starts);
        let is_bin = rel_path.contains("/bin/") || rel_path.ends_with("main.rs");
        Self {
            rel_path: rel_path.to_owned(),
            raw,
            clean,
            line_starts,
            test_line,
            is_bin,
        }
    }

    /// 1-based line number of char offset `pos`.
    #[must_use]
    pub fn line_of(&self, pos: usize) -> usize {
        self.line_starts.partition_point(|&s| s <= pos)
    }

    /// The raw text of 1-based line `line`, without the trailing newline.
    #[must_use]
    pub fn raw_line(&self, line: usize) -> String {
        let start = match self.line_starts.get(line.wrapping_sub(1)) {
            Some(&s) => s,
            None => return String::new(),
        };
        let end = self.line_starts.get(line).copied().unwrap_or(self.raw.len());
        self.raw[start..end].iter().filter(|&&c| c != '\n').collect()
    }

    /// Whether the 1-based line is inside a `#[cfg(test)]` item.
    #[must_use]
    pub fn is_test_line(&self, line: usize) -> bool {
        self.test_line.get(line.wrapping_sub(1)).copied().unwrap_or(false)
    }
}

fn line_starts(raw: &[char]) -> Vec<usize> {
    let mut starts = vec![0];
    for (i, &c) in raw.iter().enumerate() {
        if c == '\n' {
            starts.push(i + 1);
        }
    }
    starts
}

/// Blanks comments and string-literal interiors to spaces, preserving
/// length, newlines, and the quote characters themselves. Handles line
/// and nested block comments, plain/byte/raw string literals, and char
/// literals (without confusing lifetimes for them).
#[must_use]
pub fn sanitize(raw: &[char]) -> Vec<char> {
    let mut out: Vec<char> = Vec::with_capacity(raw.len());
    let mut i = 0;
    let at = |j: usize| raw.get(j).copied().unwrap_or('\0');
    while i < raw.len() {
        let c = at(i);
        let prev = if i == 0 { '\0' } else { at(i - 1) };
        if c == '/' && at(i + 1) == '/' {
            while i < raw.len() && at(i) != '\n' {
                out.push(' ');
                i += 1;
            }
        } else if c == '/' && at(i + 1) == '*' {
            let mut depth = 0usize;
            while i < raw.len() {
                if at(i) == '/' && at(i + 1) == '*' {
                    depth += 1;
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                } else if at(i) == '*' && at(i + 1) == '/' {
                    depth = depth.saturating_sub(1);
                    out.push(' ');
                    out.push(' ');
                    i += 2;
                    if depth == 0 {
                        break;
                    }
                } else {
                    out.push(if at(i) == '\n' { '\n' } else { ' ' });
                    i += 1;
                }
            }
        } else if (c == 'r' || c == 'b') && !is_ident(prev) && is_raw_string_start(raw, i) {
            // r"..."  r#"..."#  br"..."  (keep delimiters, blank interior)
            let mut j = i;
            while at(j) == 'r' || at(j) == 'b' {
                out.push(at(j));
                j += 1;
            }
            let mut hashes = 0usize;
            while at(j) == '#' {
                out.push('#');
                hashes += 1;
                j += 1;
            }
            out.push('"'); // opening quote
            j += 1;
            loop {
                if j >= raw.len() {
                    break;
                }
                if at(j) == '"' && (0..hashes).all(|h| at(j + 1 + h) == '#') {
                    out.push('"');
                    j += 1;
                    out.extend(std::iter::repeat_n('#', hashes));
                    j += hashes;
                    break;
                }
                out.push(if at(j) == '\n' { '\n' } else { ' ' });
                j += 1;
            }
            i = j;
        } else if c == '"' || (c == 'b' && at(i + 1) == '"' && !is_ident(prev)) {
            if c == 'b' {
                out.push('b');
                i += 1;
            }
            out.push('"');
            i += 1;
            while i < raw.len() {
                match at(i) {
                    '\\' => {
                        out.push(' ');
                        out.push(' ');
                        i += 2;
                    }
                    '"' => {
                        out.push('"');
                        i += 1;
                        break;
                    }
                    '\n' => {
                        out.push('\n');
                        i += 1;
                    }
                    _ => {
                        out.push(' ');
                        i += 1;
                    }
                }
            }
        } else if c == '\'' {
            // char literal vs lifetime: 'x' or '\..' is a literal
            if at(i + 1) == '\\' {
                out.push('\'');
                out.push(' '); // backslash
                out.push(' '); // escaped char (covers '\'' and opens '\u{..}')
                i += 3;
                while i < raw.len() && at(i) != '\'' {
                    out.push(' ');
                    i += 1;
                }
                if i < raw.len() {
                    out.push('\'');
                    i += 1;
                }
            } else if at(i + 2) == '\'' && at(i + 1) != '\'' {
                out.push('\'');
                out.push(' ');
                out.push('\'');
                i += 3;
            } else {
                out.push('\''); // lifetime tick
                i += 1;
            }
        } else {
            out.push(c);
            i += 1;
        }
    }
    // Pad in case a truncated escape at EOF over-advanced the cursor.
    out.truncate(raw.len());
    while out.len() < raw.len() {
        out.push(' ');
    }
    out
}

fn is_ident(c: char) -> bool {
    c.is_ascii_alphanumeric() || c == '_'
}

fn is_raw_string_start(raw: &[char], i: usize) -> bool {
    // at raw[i] == 'r' or 'b': accept r", r#", br", br#"
    let at = |j: usize| raw.get(j).copied().unwrap_or('\0');
    let mut j = i;
    if at(j) == 'b' {
        j += 1;
    }
    if at(j) != 'r' {
        return false;
    }
    j += 1;
    while at(j) == '#' {
        j += 1;
    }
    at(j) == '"'
}

/// Per-line flags for `#[cfg(test)]` items, computed by char-accurate
/// brace tracking over the sanitized text.
fn test_lines(clean: &[char], line_starts: &[usize]) -> Vec<bool> {
    let n_lines = line_starts.len();
    let mut flags = vec![false; n_lines];
    let marker: Vec<char> = "#[cfg(test)]".chars().collect();
    // char offsets where a #[cfg(test)] attribute starts
    let mut attr_at = vec![false; clean.len()];
    let mut i = 0;
    while i + marker.len() <= clean.len() {
        if clean[i..i + marker.len()] == marker[..] {
            if let Some(slot) = attr_at.get_mut(i) {
                *slot = true;
            }
        }
        i += 1;
    }

    let mut depth: i64 = 0;
    let mut pending = false; // saw #[cfg(test)], waiting for the item's `{`
    let mut test_until: Option<i64> = None; // close depth of the test item
    let mut line = 0usize;
    for (pos, &c) in clean.iter().enumerate() {
        if line + 1 < n_lines && line_starts.get(line + 1).is_some_and(|&s| pos >= s) {
            line += 1;
        }
        if attr_at.get(pos).copied().unwrap_or(false) && test_until.is_none() {
            pending = true;
        }
        let in_test = test_until.is_some() || pending;
        match c {
            '{' => {
                if pending && test_until.is_none() {
                    test_until = Some(depth);
                    pending = false;
                }
                depth += 1;
            }
            '}' => {
                depth -= 1;
                if test_until.is_some_and(|d| depth <= d) {
                    test_until = None;
                }
            }
            // `#[cfg(test)] use ...;` — attribute on a braceless item
            ';' if pending && test_until.is_none() => pending = false,
            _ => {}
        }
        if (in_test || test_until.is_some()) && line < n_lines {
            if let Some(f) = flags.get_mut(line) {
                *f = true;
            }
        }
    }
    flags
}

#[cfg(test)]
mod tests {
    use super::*;

    fn clean_str(s: &str) -> String {
        sanitize(&s.chars().collect::<Vec<_>>()).iter().collect()
    }

    #[test]
    fn sanitize_preserves_length_and_newlines() {
        let s = "let a = 1; // call .unwrap() here\nlet b = \"panic!(\"; /* x[0] */\n";
        let c = clean_str(s);
        assert_eq!(c.chars().count(), s.chars().count());
        assert_eq!(c.matches('\n').count(), s.matches('\n').count());
        assert!(!c.contains(".unwrap()"));
        assert!(!c.contains("panic!("));
        assert!(!c.contains("x[0]"));
    }

    #[test]
    fn sanitize_keeps_code_outside_comments_and_strings() {
        let s = "let v = xs.first().unwrap(); // ok\n";
        assert!(clean_str(s).contains(".unwrap()"));
    }

    #[test]
    fn sanitize_handles_nested_block_comments_and_raw_strings() {
        let s = "/* outer /* inner */ still comment */ code(); let r = r#\"un\"wrap\"#;";
        let c = clean_str(s);
        assert!(c.contains("code();"));
        assert!(!c.contains("still"));
        assert!(!c.contains("wrap"));
    }

    #[test]
    fn sanitize_distinguishes_lifetimes_from_char_literals() {
        let s = "fn f<'a>(x: &'a str) -> char { 'x' }";
        let c = clean_str(s);
        assert!(c.contains("&'a str"));
        assert!(!c.contains("'x'") || c.contains("' '"));
    }

    #[test]
    fn test_region_detection_covers_nested_braces() {
        let s = "fn lib() {}\n#[cfg(test)]\nmod tests {\n    fn t() { if x { y[0]; } }\n}\nfn lib2() {}\n";
        let f = SourceFile::new("crates/x/src/lib.rs", s);
        assert!(!f.is_test_line(1));
        assert!(f.is_test_line(2));
        assert!(f.is_test_line(4));
        assert!(f.is_test_line(5));
        assert!(!f.is_test_line(6));
    }

    #[test]
    fn bin_paths_are_classified() {
        assert!(SourceFile::new("crates/x/src/bin/tool.rs", "").is_bin);
        assert!(SourceFile::new("src/main.rs", "").is_bin);
        assert!(!SourceFile::new("crates/x/src/lib.rs", "").is_bin);
    }
}
