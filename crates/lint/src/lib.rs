//! backwatch-lint: the workspace's own static-analysis pass.
//!
//! Three rule families guard invariants that `rustc` and clippy cannot
//! see (DESIGN.md §"Workspace lint"):
//!
//! - **unit-safety** (`US001`): public functions of the geometry-bearing
//!   crates must not take raw `f64`/`i64` for unit-named parameters —
//!   they take the `backwatch-geo` `Meters`/`Seconds`/`Degrees` newtypes.
//! - **panic-freedom** (`PF001`–`PF004`): no `.unwrap()`, `.expect(...)`,
//!   `panic!`, or constant-index slicing in non-test library code.
//! - **telemetry-naming** (`TM001`–`TM004`): metric names registered with
//!   `backwatch-obs` are literals shaped `crate.subsystem.name` with a
//!   kind-matching suffix, unique workspace-wide.
//!
//! Violations are suppressed only through `lint-allow.toml`, where every
//! entry carries a mandatory justification; the entry count is pinned in
//! this crate's tests so the list can only shrink.

pub mod allowlist;
pub mod rules;
pub mod source;

use allowlist::Allowlist;
use source::SourceFile;
use std::fmt;
use std::fs;
use std::io;
use std::path::{Path, PathBuf};

/// The rule family a violation belongs to (and an allowlist `rule` key).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Family {
    /// Raw scalars where unit newtypes are required.
    UnitSafety,
    /// Panicking constructs in library code.
    PanicFreedom,
    /// Malformed or colliding telemetry metric names.
    TelemetryNaming,
}

impl Family {
    /// The allowlist / diagnostic name of the family.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            Family::UnitSafety => "unit-safety",
            Family::PanicFreedom => "panic-freedom",
            Family::TelemetryNaming => "telemetry-naming",
        }
    }
}

/// One diagnostic: where, which rule, what, and what to do instead.
#[derive(Debug, Clone)]
pub struct Violation {
    /// Workspace-relative path, forward slashes.
    pub file: String,
    /// 1-based line.
    pub line: usize,
    /// Rule family.
    pub family: Family,
    /// Stable rule id (`US001`, `PF002`, ...).
    pub id: &'static str,
    /// What is wrong.
    pub message: String,
    /// How to fix it.
    pub suggestion: &'static str,
    /// The raw source line, for allowlist matching and display.
    pub source: String,
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(
            f,
            "{}:{} [{}/{}] {}",
            self.file,
            self.line,
            self.family.as_str(),
            self.id,
            self.message
        )?;
        writeln!(f, "    | {}", self.source.trim())?;
        write!(f, "    = suggestion: {}", self.suggestion)
    }
}

/// Outcome of a lint pass.
#[derive(Debug, Default)]
pub struct Report {
    /// Violations that survived the allowlist.
    pub violations: Vec<Violation>,
    /// Violations suppressed by allowlist entries.
    pub suppressed: usize,
    /// Allowlist entries that matched nothing (stale suppressions).
    pub unused_entries: Vec<allowlist::AllowEntry>,
    /// Files scanned.
    pub files_scanned: usize,
}

/// Collects the workspace's library sources: `crates/*/src/**/*.rs` plus
/// the root crate's `src/**/*.rs`, sorted for deterministic output.
pub fn workspace_files(root: &Path) -> io::Result<Vec<PathBuf>> {
    let mut out = Vec::new();
    let crates_dir = root.join("crates");
    if crates_dir.is_dir() {
        let mut crate_dirs: Vec<PathBuf> = fs::read_dir(&crates_dir)?
            .filter_map(Result::ok)
            .map(|e| e.path())
            .filter(|p| p.is_dir())
            .collect();
        crate_dirs.sort();
        for dir in crate_dirs {
            collect_rs(&dir.join("src"), &mut out)?;
        }
    }
    collect_rs(&root.join("src"), &mut out)?;
    out.sort();
    Ok(out)
}

fn collect_rs(dir: &Path, out: &mut Vec<PathBuf>) -> io::Result<()> {
    if !dir.is_dir() {
        return Ok(());
    }
    let mut entries: Vec<PathBuf> = fs::read_dir(dir)?.filter_map(Result::ok).map(|e| e.path()).collect();
    entries.sort();
    for p in entries {
        if p.is_dir() {
            collect_rs(&p, out)?;
        } else if p.extension().is_some_and(|e| e == "rs") {
            out.push(p);
        }
    }
    Ok(())
}

/// Runs all rules over `files` (paths under `root`), applying
/// `allowlist` if given. `force_all_rules` treats every file as
/// unit-API library code — used for fixtures and ad-hoc file arguments.
pub fn run(root: &Path, files: &[PathBuf], allowlist: Option<&Allowlist>, force_all_rules: bool) -> Result<Report, String> {
    let mut violations = Vec::new();
    let mut telemetry = rules::TelemetryState::default();
    for path in files {
        let rel = rel_path(root, path);
        let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
        let mut sf = SourceFile::new(&rel, &text);
        if force_all_rules {
            sf.is_bin = false;
        }
        violations.extend(rules::unit_safety(&sf, force_all_rules));
        violations.extend(rules::panic_freedom(&sf));
        violations.extend(rules::telemetry_naming(&sf, &mut telemetry));
    }
    violations.sort_by(|a, b| (&a.file, a.line, a.id).cmp(&(&b.file, b.line, b.id)));
    let mut report = Report {
        files_scanned: files.len(),
        ..Report::default()
    };
    match allowlist {
        Some(list) => {
            let (remaining, suppressed, unused) = list.apply(violations);
            report.violations = remaining;
            report.suppressed = suppressed;
            report.unused_entries = unused.iter().filter_map(|&i| list.entries.get(i).cloned()).collect();
        }
        None => report.violations = violations,
    }
    Ok(report)
}

/// `path` relative to `root` with forward slashes (falls back to the
/// path as given when it is not under `root`).
#[must_use]
pub fn rel_path(root: &Path, path: &Path) -> String {
    let p = path.strip_prefix(root).unwrap_or(path);
    p.to_string_lossy().replace('\\', "/")
}

/// Loads `lint-allow.toml` from `path`.
pub fn load_allowlist(path: &Path) -> Result<Allowlist, String> {
    let text = fs::read_to_string(path).map_err(|e| format!("{}: {e}", path.display()))?;
    Allowlist::parse(&text)
}
