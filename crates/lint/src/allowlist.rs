//! The `lint-allow.toml` suppression file.
//!
//! A deliberately tiny TOML subset: `[[allow]]` tables of string
//! key/value pairs. Every entry must name its rule family and carry a
//! justification of at least three words — a suppression without a reason
//! is a load error, not a style nit. Entries match a violation by
//! `(rule, file, contains)` where `contains` is a substring of the
//! offending source line, so entries survive line-number drift.

use crate::Violation;

/// One suppression: `(rule, file, contains)` plus the mandatory reason.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AllowEntry {
    /// Rule family name (`unit-safety` | `panic-freedom` | `telemetry-naming`).
    pub rule: String,
    /// Workspace-relative path the suppression applies to.
    pub file: String,
    /// Substring of the offending raw source line.
    pub contains: String,
    /// Why the violation is acceptable (at least three words).
    pub justification: String,
    /// 1-based line of the `[[allow]]` header in the allowlist file.
    pub line: usize,
}

/// A parsed allowlist.
#[derive(Debug, Default)]
pub struct Allowlist {
    /// Entries in file order.
    pub entries: Vec<AllowEntry>,
}

const FAMILIES: [&str; 3] = ["unit-safety", "panic-freedom", "telemetry-naming"];

#[derive(Debug, Default, Clone, Copy)]
struct SeenKeys {
    rule: bool,
    file: bool,
    contains: bool,
    justification: bool,
}

impl Allowlist {
    /// Parses allowlist `text`; returns a description of the first
    /// problem on malformed input.
    pub fn parse(text: &str) -> Result<Self, String> {
        let mut entries: Vec<AllowEntry> = Vec::new();
        let mut current: Option<(AllowEntry, SeenKeys)> = None;
        for (idx, raw_line) in text.lines().enumerate() {
            let line_no = idx + 1;
            let line = raw_line.trim();
            if line.is_empty() || line.starts_with('#') {
                continue;
            }
            if line == "[[allow]]" {
                if let Some((e, seen)) = current.take() {
                    finish_entry(e, seen, &mut entries)?;
                }
                current = Some((
                    AllowEntry {
                        rule: String::new(),
                        file: String::new(),
                        contains: String::new(),
                        justification: String::new(),
                        line: line_no,
                    },
                    SeenKeys::default(),
                ));
                continue;
            }
            let Some((key, value)) = parse_kv(line) else {
                return Err(format!(
                    "lint-allow.toml:{line_no}: expected `key = \"value\"` or `[[allow]]`"
                ));
            };
            let Some((entry, seen)) = current.as_mut() else {
                return Err(format!("lint-allow.toml:{line_no}: `{key}` outside an [[allow]] table"));
            };
            match key.as_str() {
                "rule" => {
                    entry.rule = value;
                    seen.rule = true;
                }
                "file" => {
                    entry.file = value;
                    seen.file = true;
                }
                "contains" => {
                    entry.contains = value;
                    seen.contains = true;
                }
                "justification" => {
                    entry.justification = value;
                    seen.justification = true;
                }
                other => {
                    return Err(format!("lint-allow.toml:{line_no}: unknown key `{other}`"));
                }
            }
        }
        if let Some((e, seen)) = current.take() {
            finish_entry(e, seen, &mut entries)?;
        }
        Ok(Self { entries })
    }

    /// Splits `violations` into (unsuppressed, suppressed-count) and
    /// reports which entries went unused (their indices).
    #[must_use]
    pub fn apply(&self, violations: Vec<Violation>) -> (Vec<Violation>, usize, Vec<usize>) {
        let mut used = vec![false; self.entries.len()];
        let mut remaining = Vec::new();
        let mut suppressed = 0usize;
        for v in violations {
            let hit = self
                .entries
                .iter()
                .enumerate()
                .find(|(_, e)| e.rule == v.family.as_str() && e.file == v.file && v.source.contains(&e.contains));
            match hit {
                Some((i, _)) => {
                    if let Some(u) = used.get_mut(i) {
                        *u = true;
                    }
                    suppressed += 1;
                }
                None => remaining.push(v),
            }
        }
        let unused = used
            .iter()
            .enumerate()
            .filter_map(|(i, &u)| if u { None } else { Some(i) })
            .collect();
        (remaining, suppressed, unused)
    }
}

fn finish_entry(e: AllowEntry, seen: SeenKeys, entries: &mut Vec<AllowEntry>) -> Result<(), String> {
    let missing = [
        (seen.rule, "rule"),
        (seen.file, "file"),
        (seen.contains, "contains"),
        (seen.justification, "justification"),
    ];
    for (present, key) in missing {
        if !present {
            return Err(format!("lint-allow.toml:{}: entry is missing `{key}`", e.line));
        }
    }
    if !FAMILIES.contains(&e.rule.as_str()) {
        return Err(format!(
            "lint-allow.toml:{}: unknown rule `{}` (expected one of {FAMILIES:?})",
            e.line, e.rule
        ));
    }
    if e.contains.is_empty() {
        return Err(format!("lint-allow.toml:{}: `contains` must be non-empty", e.line));
    }
    if e.justification.split_whitespace().count() < 3 {
        return Err(format!(
            "lint-allow.toml:{}: justification must explain why (at least three words)",
            e.line
        ));
    }
    entries.push(e);
    Ok(())
}

/// `key = "value"` with `\"` and `\\` escapes; trailing `#` comments are
/// not supported inside entries (keep lines simple).
fn parse_kv(line: &str) -> Option<(String, String)> {
    let eq = line.find('=')?;
    let key = line.get(..eq)?.trim().to_owned();
    if key.is_empty() || !key.chars().all(|c| c.is_ascii_lowercase() || c == '_') {
        return None;
    }
    let rest = line.get(eq + 1..)?.trim();
    let mut chars = rest.chars();
    if chars.next() != Some('"') {
        return None;
    }
    let mut value = String::new();
    let mut escaped = false;
    let mut closed = false;
    for c in chars {
        if escaped {
            value.push(c);
            escaped = false;
        } else if c == '\\' {
            escaped = true;
        } else if c == '"' {
            closed = true;
            break;
        } else {
            value.push(c);
        }
    }
    if closed {
        Some((key, value))
    } else {
        None
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Family;

    const GOOD: &str = r#"
# comment
[[allow]]
rule = "panic-freedom"
file = "crates/obs/src/registry.rs"
contains = "expect(\"metric registry never poisoned\")"
justification = "lock poisoning is unreachable: no panic while held"
"#;

    #[test]
    fn parses_entries_with_escapes() {
        let a = Allowlist::parse(GOOD).map_err(|e| e.to_string());
        let a = a.as_ref().map(|x| &x.entries);
        assert_eq!(a.map(Vec::len), Ok(1), "{a:?}");
        let e = a.ok().and_then(|v| v.first());
        assert_eq!(
            e.map(|x| x.contains.as_str()),
            Some("expect(\"metric registry never poisoned\")")
        );
    }

    #[test]
    fn rejects_missing_or_thin_justifications() {
        let missing = GOOD.replace("justification = \"lock poisoning is unreachable: no panic while held\"\n", "");
        assert!(Allowlist::parse(&missing).is_err());
        let thin = GOOD.replace("lock poisoning is unreachable: no panic while held", "because");
        assert!(Allowlist::parse(&thin).is_err());
    }

    #[test]
    fn rejects_unknown_rules_and_keys() {
        assert!(Allowlist::parse(&GOOD.replace("panic-freedom", "vibes")).is_err());
        assert!(Allowlist::parse(&GOOD.replace("file =", "path =")).is_err());
    }

    #[test]
    fn apply_matches_on_rule_file_and_substring() {
        let a = Allowlist::parse(GOOD).unwrap_or_default();
        let v = |file: &str, source: &str| Violation {
            file: file.to_owned(),
            line: 1,
            family: Family::PanicFreedom,
            id: "PF002",
            message: String::new(),
            suggestion: "",
            source: source.to_owned(),
        };
        let hit = v(
            "crates/obs/src/registry.rs",
            "let g = REGISTRY.lock().expect(\"metric registry never poisoned\");",
        );
        let miss_file = v("crates/obs/src/lib.rs", "x.expect(\"metric registry never poisoned\")");
        let miss_text = v("crates/obs/src/registry.rs", "x.expect(\"other\")");
        let (remaining, suppressed, unused) = a.apply(vec![hit, miss_file, miss_text]);
        assert_eq!((remaining.len(), suppressed), (2, 1));
        assert!(unused.is_empty());
    }

    #[test]
    fn unused_entries_are_reported() {
        let a = Allowlist::parse(GOOD).unwrap_or_default();
        let (_, _, unused) = a.apply(Vec::new());
        assert_eq!(unused, vec![0]);
    }
}
