//! The three rule families: unit-safety, panic-freedom, and
//! telemetry-naming.
//!
//! Every rule is a scanner over the sanitized view of a file (see
//! [`crate::source`]); none of them parse Rust properly, and they do not
//! need to — the invariants they enforce are lexically visible once
//! comments, strings, and test regions are masked out.

use crate::source::SourceFile;
use crate::{Family, Violation};
use std::collections::HashMap;

/// Crates whose public APIs must use the `backwatch-geo` unit newtypes.
pub const UNIT_API_CRATES: [&str; 4] = ["crates/geo/", "crates/trace/", "crates/core/", "crates/defense/"];

/// Parameter-name suffixes that imply a physical unit.
const UNIT_SUFFIXES: [&str; 6] = ["_m", "_deg", "_lat", "_lon", "_secs", "_s"];
/// Bare parameter names that imply a physical unit.
const UNIT_NAMES: [&str; 2] = ["radius", "interval"];

/// US001: raw `f64`/`i64` parameters with unit-implying names in public
/// functions of the unit-API crates.
#[must_use]
pub fn unit_safety(file: &SourceFile, force: bool) -> Vec<Violation> {
    if !force && !UNIT_API_CRATES.iter().any(|c| file.rel_path.starts_with(c)) {
        return Vec::new();
    }
    let mut out = Vec::new();
    for start in find_all(&file.clean, "pub fn ") {
        let line = file.line_of(start);
        if file.is_test_line(line) {
            continue;
        }
        for (name, ty, pos) in signature_params(&file.clean, start) {
            let ty_norm: String = ty.split_whitespace().collect::<Vec<_>>().join(" ");
            if (ty_norm == "f64" || ty_norm == "i64") && unit_named(&name) {
                let vline = file.line_of(pos);
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line: vline,
                    family: Family::UnitSafety,
                    id: "US001",
                    message: format!("public fn takes raw `{ty_norm}` for unit-named parameter `{name}`"),
                    suggestion: "take a backwatch_geo newtype (Meters/Seconds/Degrees) and unwrap with `.get()` at the boundary",
                    source: file.raw_line(vline),
                });
            }
        }
    }
    out
}

fn unit_named(name: &str) -> bool {
    UNIT_SUFFIXES.iter().any(|s| name.ends_with(s)) || UNIT_NAMES.contains(&name)
}

/// PF001–PF004: `.unwrap()`, `.expect(...)`, `panic!`, and
/// constant-literal slice indexing in non-test library code.
///
/// `assert!`/`debug_assert!` are deliberately *not* flagged: an assertion
/// is a stated invariant, whereas an unwrap is an unstated one. Variable
/// indices (`xs[i]`) are also out of scope — they are usually loop-bound;
/// the rule targets the `xs[0]`-style head/tail accesses that empty inputs
/// turn into panics.
#[must_use]
pub fn panic_freedom(file: &SourceFile) -> Vec<Violation> {
    let mut out = Vec::new();
    if file.is_bin {
        return out;
    }
    let n_lines = file.line_starts.len();
    for line_no in 1..=n_lines {
        if file.is_test_line(line_no) {
            continue;
        }
        let start = match file.line_starts.get(line_no - 1) {
            Some(&s) => s,
            None => continue,
        };
        let end = file.line_starts.get(line_no).copied().unwrap_or(file.clean.len());
        let clean_line: String = file.clean[start..end].iter().collect();
        let mut push = |id: &'static str, message: String, suggestion: &'static str| {
            out.push(Violation {
                file: file.rel_path.clone(),
                line: line_no,
                family: Family::PanicFreedom,
                id,
                message,
                suggestion,
                source: file.raw_line(line_no),
            });
        };
        if clean_line.contains(".unwrap()") {
            push(
                "PF001",
                "`.unwrap()` in non-test library code".to_owned(),
                "return Option/Result, use `unwrap_or`/`let Some(..)`, or allowlist with a justification",
            );
        }
        if clean_line.contains(".expect(") {
            push(
                "PF002",
                "`.expect(...)` in non-test library code".to_owned(),
                "restructure to avoid the panic path, or allowlist with the invariant as justification",
            );
        }
        if has_bare_macro(&clean_line, "panic!") {
            push(
                "PF003",
                "`panic!` in non-test library code".to_owned(),
                "return an error instead, or allowlist with a justification",
            );
        }
        if has_literal_index(&clean_line) {
            push(
                "PF004",
                "constant-index slice access in non-test library code".to_owned(),
                "use `.first()`/`.get(n)` (or prove the bound and allowlist with a justification)",
            );
        }
    }
    out
}

fn has_bare_macro(line: &str, mac: &str) -> bool {
    let chars: Vec<char> = line.chars().collect();
    let pat: Vec<char> = mac.chars().collect();
    let mut i = 0;
    while i + pat.len() <= chars.len() {
        if chars[i..i + pat.len()] == pat[..] {
            let prev = if i == 0 { '\0' } else { chars[i - 1] };
            if !(prev.is_ascii_alphanumeric() || prev == '_') {
                return true;
            }
        }
        i += 1;
    }
    false
}

/// `ident[0]`-style indexing: an identifier (or `)`/`]`) followed by a
/// bracketed integer literal.
fn has_literal_index(line: &str) -> bool {
    let chars: Vec<char> = line.chars().collect();
    for (i, &c) in chars.iter().enumerate() {
        if c != '[' || i == 0 {
            continue;
        }
        let prev = chars.get(i - 1).copied().unwrap_or('\0');
        if !(prev.is_ascii_alphanumeric() || prev == '_' || prev == ')' || prev == ']') {
            continue;
        }
        let mut j = i + 1;
        let digits_start = j;
        while chars.get(j).is_some_and(char::is_ascii_digit) {
            j += 1;
        }
        if j > digits_start && chars.get(j) == Some(&']') {
            return true;
        }
    }
    false
}

/// Cross-file state for telemetry-name uniqueness (TM003).
#[derive(Debug, Default)]
pub struct TelemetryState {
    /// metric name -> first registration site (`file:line`).
    seen: HashMap<String, String>,
}

/// TM001–TM004: telemetry names registered with `backwatch-obs` must be
/// string literals shaped `crate.subsystem.name` with a kind-matching
/// suffix (`_total` for counters, `_current` for gauges, `_seconds` for
/// histograms) and must be unique workspace-wide.
#[must_use]
pub fn telemetry_naming(file: &SourceFile, state: &mut TelemetryState) -> Vec<Violation> {
    let mut out = Vec::new();
    let kinds: [(&str, &str); 3] = [
        ("register_counter(", "_total"),
        ("register_gauge(", "_current"),
        ("register_histogram(", "_seconds"),
    ];
    for (call, suffix) in kinds {
        for start in find_all(&file.clean, call) {
            let line = file.line_of(start);
            if file.is_test_line(line) || is_fn_definition(&file.clean, start) {
                continue;
            }
            let open = start + call.len() - 1; // the '('
            let mut push = |line: usize, id: &'static str, message: String, suggestion: &'static str| {
                out.push(Violation {
                    file: file.rel_path.clone(),
                    line,
                    family: Family::TelemetryNaming,
                    id,
                    message,
                    suggestion,
                    source: file.raw_line(line),
                });
            };
            let Some((name, name_pos)) = literal_after(file, open) else {
                push(
                    line,
                    "TM004",
                    "metric name at a registration site must be a string literal".to_owned(),
                    "pass the name as a literal so the lint (and grep) can see it",
                );
                continue;
            };
            let name_line = file.line_of(name_pos);
            if !well_formed_metric(&name) {
                push(
                    name_line,
                    "TM001",
                    format!("metric name `{name}` is not `crate.subsystem.name` (3 lowercase dot-segments)"),
                    "rename to `<crate>.<subsystem>.<name>` using [a-z0-9_] segments",
                );
            } else if !name.ends_with(suffix) {
                push(
                    name_line,
                    "TM002",
                    format!("metric `{name}` must end with `{suffix}` for this instrument kind"),
                    "suffix counters `_total`, gauges `_current`, histograms `_seconds` (or allowlist with a justification)",
                );
            }
            let site = format!("{}:{name_line}", file.rel_path);
            if let Some(first) = state.seen.get(&name) {
                push(
                    name_line,
                    "TM003",
                    format!("metric `{name}` already registered at {first}"),
                    "metric names must be unique workspace-wide; rename one of the two",
                );
            } else {
                state.seen.insert(name, site);
            }
        }
    }
    out
}

fn well_formed_metric(name: &str) -> bool {
    let segs: Vec<&str> = name.split('.').collect();
    segs.len() == 3
        && segs.iter().all(|s| {
            !s.is_empty()
                && s.chars().next().is_some_and(|c| c.is_ascii_lowercase())
                && s.chars().all(|c| c.is_ascii_lowercase() || c.is_ascii_digit() || c == '_')
        })
}

/// Whether the match at `start` is the `fn register_*` definition itself
/// rather than a call site.
fn is_fn_definition(clean: &[char], start: usize) -> bool {
    let lead: String = clean[start.saturating_sub(4)..start].iter().collect();
    lead.ends_with("fn ")
}

/// The first string literal after char offset `open`, if the next token is
/// one. Returns the literal's contents (from the raw view) and the offset
/// of its opening quote.
fn literal_after(file: &SourceFile, open: usize) -> Option<(String, usize)> {
    let mut i = open + 1;
    while file.clean.get(i).is_some_and(|c| c.is_whitespace()) {
        i += 1;
    }
    if file.clean.get(i) != Some(&'"') {
        return None;
    }
    let q1 = i;
    let mut j = q1 + 1;
    while file.clean.get(j).is_some_and(|&c| c != '"') {
        j += 1;
    }
    let name: String = file.raw.get(q1 + 1..j)?.iter().collect();
    Some((name, q1))
}

/// All char offsets where `pat` occurs in `hay`.
fn find_all(hay: &[char], pat: &str) -> Vec<usize> {
    let pat: Vec<char> = pat.chars().collect();
    let mut out = Vec::new();
    if pat.is_empty() || hay.len() < pat.len() {
        return out;
    }
    for i in 0..=hay.len() - pat.len() {
        if hay[i..i + pat.len()] == pat[..] {
            out.push(i);
        }
    }
    out
}

/// Parses the parameter list of the `pub fn` starting at `start`:
/// yields `(name, type_text, char_offset_of_name)` per parameter.
/// Handles generic sections before the parens (including `Fn(..) -> R`
/// bounds) and nested types inside the parens.
fn signature_params(clean: &[char], start: usize) -> Vec<(String, String, usize)> {
    let mut i = start;
    // find the param-list '(' — skip a generic section if present
    let mut angle: i64 = 0;
    let open = loop {
        match clean.get(i) {
            None => return Vec::new(),
            Some('<') => angle += 1,
            // `->` is a return arrow, not a generic close
            Some('>') if i > 0 && clean.get(i - 1) != Some(&'-') => angle -= 1,
            Some('>') => {}
            Some('(') if angle == 0 => break i,
            Some('{') | Some(';') => return Vec::new(), // no params found
            _ => {}
        }
        i += 1;
    };
    // find the matching ')'
    let mut depth = 0i64;
    let mut close = open;
    for (j, &c) in clean.iter().enumerate().skip(open) {
        match c {
            '(' => depth += 1,
            ')' => {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
            _ => {}
        }
    }
    if close == open {
        return Vec::new();
    }
    // split params at top-level commas
    let mut params = Vec::new();
    let mut seg_start = open + 1;
    let mut pdepth = 0i64;
    let mut adepth = 0i64;
    for j in open + 1..=close {
        let c = clean.get(j).copied().unwrap_or('\0');
        match c {
            '(' | '[' | '{' => pdepth += 1,
            ']' | '}' => pdepth -= 1,
            ')' if j < close => pdepth -= 1,
            '<' => adepth += 1,
            // `->` is a return arrow, not a generic close
            '>' if clean.get(j.wrapping_sub(1)) != Some(&'-') => adepth -= 1,
            _ => {}
        }
        if (c == ',' && pdepth == 0 && adepth == 0) || j == close {
            if let Some(p) = parse_param(clean, seg_start, j) {
                params.push(p);
            }
            seg_start = j + 1;
        }
    }
    params
}

/// One `name: Type` parameter within `clean[start..end]`; `None` for
/// `self`, patterns, or empty segments.
fn parse_param(clean: &[char], start: usize, end: usize) -> Option<(String, String, usize)> {
    // find the ':' at top level (':' of '::' does not occur at top level
    // before the type separator in a parameter name position)
    let mut depth = 0i64;
    let mut colon = None;
    for j in start..end {
        match clean.get(j).copied().unwrap_or('\0') {
            '(' | '[' | '{' | '<' => depth += 1,
            ')' | ']' | '}' | '>' => depth -= 1,
            ':' if depth == 0 => {
                colon = Some(j);
                break;
            }
            _ => {}
        }
    }
    let colon = colon?;
    let raw_name: String = clean.get(start..colon)?.iter().collect();
    let name = raw_name.trim().trim_start_matches("mut ").trim().to_owned();
    if name.is_empty() || !name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_') || name.ends_with("self") {
        return None;
    }
    let ty: String = clean.get(colon + 1..end)?.iter().collect();
    let ty = ty.trim().trim_end_matches(',').trim().to_owned();
    // offset of the name's first char, for line reporting
    let lead_ws = raw_name.len() - raw_name.trim_start().len();
    Some((name, ty, start + lead_ws))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn src(path: &str, text: &str) -> SourceFile {
        SourceFile::new(path, text)
    }

    #[test]
    fn unit_safety_flags_raw_unit_params_in_unit_crates() {
        let f = src(
            "crates/geo/src/x.rs",
            "pub fn cloak(radius_m: f64, n: usize, interval: i64) -> f64 { radius_m }\n",
        );
        let v = unit_safety(&f, false);
        assert_eq!(v.len(), 2, "{v:?}");
        assert!(v.iter().all(|x| x.id == "US001"));
        assert!(v.iter().any(|x| x.message.contains("radius_m")));
        assert!(v.iter().any(|x| x.message.contains("interval")));
    }

    #[test]
    fn unit_safety_skips_other_crates_newtypes_and_tests() {
        let other = src("crates/market/src/x.rs", "pub fn f(radius_m: f64) {}\n");
        assert!(unit_safety(&other, false).is_empty());
        let newtype = src("crates/geo/src/x.rs", "pub fn f(radius: Meters, dt: Seconds) {}\n");
        assert!(unit_safety(&newtype, false).is_empty());
        let test = src(
            "crates/geo/src/x.rs",
            "#[cfg(test)]\nmod tests {\n    pub fn f(radius_m: f64) {}\n}\n",
        );
        assert!(unit_safety(&test, false).is_empty());
    }

    #[test]
    fn unit_safety_handles_multiline_and_generic_signatures() {
        let f = src(
            "crates/core/src/x.rs",
            "pub fn sweep<F: Fn(u32) -> f64>(\n    user: &User,\n    interval_s: i64,\n    score: F,\n) {}\n",
        );
        let v = unit_safety(&f, false);
        assert_eq!(v.len(), 1, "{v:?}");
        assert_eq!(v.first().map(|x| x.line), Some(3));
    }

    #[test]
    fn panic_freedom_flags_each_pattern_outside_tests() {
        let f = src(
            "crates/core/src/x.rs",
            "fn a(xs: &[i32]) -> i32 { xs.iter().next().unwrap() + xs[0] }\nfn b(o: Option<i32>) -> i32 { o.expect(\"set\") }\nfn c() { panic!(\"no\"); }\n#[cfg(test)]\nmod tests {\n    fn t() { Some(1).unwrap(); }\n}\n",
        );
        let v = panic_freedom(&f);
        let ids: Vec<&str> = v.iter().map(|x| x.id).collect();
        assert_eq!(ids, vec!["PF001", "PF004", "PF002", "PF003"], "{v:?}");
    }

    #[test]
    fn panic_freedom_skips_bins_ranges_and_macro_lookalikes() {
        let bin = src("crates/x/src/bin/tool.rs", "fn m() { x.unwrap(); }\n");
        assert!(panic_freedom(&bin).is_empty());
        let f = src(
            "crates/x/src/lib.rs",
            "fn a(xs: &[i32]) { let _ = &xs[1..]; let _ = vec![0]; let _ = [0; 4]; }\n",
        );
        assert!(panic_freedom(&f).is_empty(), "{:?}", panic_freedom(&f));
    }

    #[test]
    fn telemetry_rules_cover_shape_suffix_duplicates_and_literals() {
        let mut st = TelemetryState::default();
        let f = src(
            "crates/x/src/obs.rs",
            concat!(
                "fn reg() {\n",
                "    backwatch_obs::register_counter(\"badname\", \"h\", &C);\n",
                "    backwatch_obs::register_counter(\"a.b.c_seconds\", \"h\", &C);\n",
                "    backwatch_obs::register_gauge(\"a.b.g_current\", \"h\", &G);\n",
                "    backwatch_obs::register_gauge(\"a.b.g_current\", \"h\", &G);\n",
                "    backwatch_obs::register_histogram(name, \"h\", &H);\n",
                "}\n",
            ),
        );
        let v = telemetry_naming(&f, &mut st);
        let ids: Vec<&str> = v.iter().map(|x| x.id).collect();
        assert_eq!(ids, vec!["TM001", "TM002", "TM003", "TM004"], "{v:?}");
    }

    #[test]
    fn telemetry_skips_the_definitions_and_good_names() {
        let mut st = TelemetryState::default();
        let f = src(
            "crates/obs/src/registry.rs",
            "pub fn register_counter(name: &'static str, help: &'static str, c: &'static Counter) {}\nfn reg() { register_counter(\"core.poi.passes_total\", \"h\", &C); }\n",
        );
        assert!(telemetry_naming(&f, &mut st).is_empty());
    }

    #[test]
    fn metric_shape_validation() {
        assert!(well_formed_metric("core.poi.passes_total"));
        assert!(!well_formed_metric("core.passes_total"));
        assert!(!well_formed_metric("core.poi.passes.total"));
        assert!(!well_formed_metric("Core.poi.passes_total"));
        assert!(!well_formed_metric("core..passes_total"));
    }
}
