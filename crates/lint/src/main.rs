//! CLI for the workspace lint. See `crate` docs (`backwatch_lint`) for
//! the rule families.
//!
//! ```text
//! backwatch-lint [--deny-all] [--root DIR] [--allowlist FILE] [--no-allowlist] [FILES...]
//! ```
//!
//! Without flags the pass is advisory: diagnostics print, exit code 0.
//! `--deny-all` exits non-zero on any surviving violation *or* stale
//! allowlist entry — the CI mode. Positional FILES restrict the scan to
//! those files with every rule forced on (used against fixtures).

use backwatch_lint::{load_allowlist, run, workspace_files, Report};
use std::path::PathBuf;
use std::process::ExitCode;
use std::time::Instant;

struct Args {
    deny_all: bool,
    root: PathBuf,
    allowlist: Option<PathBuf>,
    no_allowlist: bool,
    files: Vec<PathBuf>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        deny_all: false,
        root: PathBuf::from("."),
        allowlist: None,
        no_allowlist: false,
        files: Vec::new(),
    };
    let mut it = std::env::args().skip(1);
    while let Some(a) = it.next() {
        match a.as_str() {
            "--deny-all" => args.deny_all = true,
            "--no-allowlist" => args.no_allowlist = true,
            "--root" => args.root = PathBuf::from(it.next().ok_or("--root needs a directory")?),
            "--allowlist" => args.allowlist = Some(PathBuf::from(it.next().ok_or("--allowlist needs a file")?)),
            "--help" | "-h" => {
                return Err(
                    "usage: backwatch-lint [--deny-all] [--root DIR] [--allowlist FILE] [--no-allowlist] [FILES...]".to_owned(),
                )
            }
            other if other.starts_with('-') => return Err(format!("unknown flag `{other}` (try --help)")),
            other => args.files.push(PathBuf::from(other)),
        }
    }
    Ok(args)
}

fn main() -> ExitCode {
    let args = match parse_args() {
        Ok(a) => a,
        Err(msg) => {
            println!("{msg}");
            return ExitCode::from(2);
        }
    };
    let started = Instant::now();

    let allowlist = if args.no_allowlist {
        None
    } else {
        let path = args.allowlist.clone().unwrap_or_else(|| args.root.join("lint-allow.toml"));
        if path.is_file() {
            match load_allowlist(&path) {
                Ok(list) => Some(list),
                Err(msg) => {
                    println!("backwatch-lint: {msg}");
                    return ExitCode::from(2);
                }
            }
        } else {
            None
        }
    };

    let explicit_files = !args.files.is_empty();
    let files = if explicit_files {
        args.files.clone()
    } else {
        match workspace_files(&args.root) {
            Ok(f) => f,
            Err(e) => {
                println!("backwatch-lint: walking {}: {e}", args.root.display());
                return ExitCode::from(2);
            }
        }
    };

    let report = match run(&args.root, &files, allowlist.as_ref(), explicit_files) {
        Ok(r) => r,
        Err(msg) => {
            println!("backwatch-lint: {msg}");
            return ExitCode::from(2);
        }
    };

    print_report(&report, started.elapsed().as_millis());
    let fail = !report.violations.is_empty() || (args.deny_all && !report.unused_entries.is_empty());
    if args.deny_all && fail {
        ExitCode::from(1)
    } else {
        ExitCode::SUCCESS
    }
}

fn print_report(report: &Report, elapsed_ms: u128) {
    for v in &report.violations {
        println!("{v}");
    }
    for e in &report.unused_entries {
        println!(
            "lint-allow.toml:{} [stale] entry for {} ({}) matched nothing — delete it",
            e.line, e.file, e.rule
        );
    }
    println!(
        "backwatch-lint: {} violation(s), {} allowlisted, {} stale allowlist entr{} across {} files in {} ms",
        report.violations.len(),
        report.suppressed,
        report.unused_entries.len(),
        if report.unused_entries.len() == 1 { "y" } else { "ies" },
        report.files_scanned,
        elapsed_ms
    );
}
