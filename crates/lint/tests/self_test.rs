//! End-to-end self-tests: the lint fires on the bad fixture, the real
//! workspace is clean under the allowlist, and the allowlist can only
//! shrink.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_lint::{load_allowlist, run, workspace_files};
use std::path::{Path, PathBuf};

fn crate_dir() -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
}

fn workspace_root() -> PathBuf {
    crate_dir().join("../..").canonicalize().expect("workspace root exists")
}

/// The fixture trips every rule id at least once, and nothing fires from
/// its comments, string literals, or `#[cfg(test)]` module.
#[test]
fn fixture_trips_every_rule() {
    let fixture = crate_dir().join("fixtures/bad.rs");
    let report = run(&crate_dir(), &[fixture], None, true).expect("fixture scan runs");
    let ids: Vec<&str> = report.violations.iter().map(|v| v.id).collect();
    for id in [
        "US001", "PF001", "PF002", "PF003", "PF004", "TM001", "TM002", "TM003", "TM004",
    ] {
        assert!(ids.contains(&id), "fixture did not trip {id}: {ids:?}");
    }
    // exactly two unit-safety hits (radius_m, interval) — `n: usize` is fine
    assert_eq!(ids.iter().filter(|&&i| i == "US001").count(), 2, "{ids:?}");
    // the decoy comment/string/test lines must not fire: exactly one of
    // each panic-freedom id
    for id in ["PF001", "PF002", "PF003", "PF004"] {
        assert_eq!(
            ids.iter().filter(|&&i| i == id).count(),
            1,
            "{id} fired more than once: {ids:?}"
        );
    }
    // diagnostics carry a location and a suggestion
    for v in &report.violations {
        assert!(v.line > 0);
        assert!(!v.suggestion.is_empty());
        assert!(v.file.ends_with("fixtures/bad.rs"));
    }
}

/// The shipped workspace passes `--deny-all`: no violations survive the
/// allowlist and no allowlist entry is stale.
#[test]
fn workspace_is_clean_under_the_allowlist() {
    let root = workspace_root();
    let files = workspace_files(&root).expect("workspace walk");
    assert!(files.len() > 60, "workspace walk found only {} files", files.len());
    let allowlist = load_allowlist(&root.join("lint-allow.toml")).expect("allowlist parses");
    let report = run(&root, &files, Some(&allowlist), false).expect("workspace scan runs");
    let rendered: Vec<String> = report.violations.iter().map(ToString::to_string).collect();
    assert!(
        report.violations.is_empty(),
        "workspace has unallowlisted violations:\n{}",
        rendered.join("\n")
    );
    let stale: Vec<String> = report
        .unused_entries
        .iter()
        .map(|e| format!("lint-allow.toml:{} {} ({})", e.line, e.file, e.rule))
        .collect();
    assert!(stale.is_empty(), "stale allowlist entries:\n{}", stale.join("\n"));
}

/// The allowlist may only shrink. If you legitimately need a new entry,
/// lower this is not an option — fix the code instead, or make the case
/// in review and update the pin alongside the new justified entry.
#[test]
fn allowlist_count_is_pinned() {
    let root = workspace_root();
    let allowlist = load_allowlist(&root.join("lint-allow.toml")).expect("allowlist parses");
    const PINNED: usize = 31;
    assert!(
        allowlist.entries.len() <= PINNED,
        "lint-allow.toml grew to {} entries (pinned at {PINNED}); fix the code instead of suppressing",
        allowlist.entries.len()
    );
    // every entry names a file that still exists
    for e in &allowlist.entries {
        assert!(
            Path::new(&root).join(&e.file).is_file(),
            "lint-allow.toml:{} points at missing file {}",
            e.line,
            e.file
        );
    }
}

/// The newtype refactor holds: without any allowlist, the only raw
/// unit-named scalar left in a public API is `epsilon_per_m` (dimension
/// 1/m — there is no newtype for it, and wrapping it in `Meters` would
/// lie). Everything else takes `Meters`/`Seconds`/`Degrees`.
#[test]
fn unit_safety_violations_are_exactly_the_known_exception() {
    let root = workspace_root();
    let files = workspace_files(&root).expect("workspace walk");
    let report = run(&root, &files, None, false).expect("workspace scan runs");
    let unit: Vec<&backwatch_lint::Violation> = report.violations.iter().filter(|v| v.id == "US001").collect();
    for v in &unit {
        assert!(
            v.message.contains("epsilon_per_m"),
            "new raw unit-named scalar in a public API:\n{v}"
        );
    }
}

/// The lint stays fast enough to sit in the inner loop (`./ci` runs it
/// before the bench smokes; EXPERIMENTS.md records the budget).
#[test]
fn full_workspace_pass_stays_under_two_seconds() {
    let root = workspace_root();
    let started = std::time::Instant::now();
    let files = workspace_files(&root).expect("workspace walk");
    let _ = run(&root, &files, None, false).expect("workspace scan runs");
    let elapsed = started.elapsed();
    assert!(elapsed.as_secs_f64() < 2.0, "lint pass took {elapsed:?}, budget is 2 s");
}
