//! Downsampling a trace to an app's location-access frequency.
//!
//! An app that updates location every `k` seconds observes the subsequence
//! of the true trace obtained by keeping one fix per `k`-second window.
//! [`downsample`] models exactly that; [`prefix_points`] and
//! [`from_random_start`] provide the growing-prefix and random-start views
//! used by the paper's Figure 4(a)/(b).

use crate::point::TracePoint;
use crate::trajectory::Trace;
use backwatch_geo::Seconds;
use rand::Rng;

/// Returns the subsequence of `trace` an app polling every
/// `interval_secs` seconds would collect: the first fix, then each next fix
/// at least `interval_secs` after the previously kept one.
///
/// An interval of `1` (or anything at or below the recording period) keeps
/// every fix.
///
/// # Panics
///
/// Panics if `interval_secs <= 0`.
///
/// # Examples
///
/// ```
/// use backwatch_trace::{sampling, Trace, TracePoint, Timestamp};
/// use backwatch_geo::{LatLon, Seconds};
///
/// let pts: Vec<TracePoint> = (0..10)
///     .map(|i| TracePoint::new(Timestamp::from_secs(i), LatLon::new(39.9, 116.4).unwrap()))
///     .collect();
/// let trace = Trace::from_points(pts);
/// let sampled = sampling::downsample(&trace, Seconds::new(3));
/// let times: Vec<i64> = sampled.iter().map(|p| p.time.as_secs()).collect();
/// assert_eq!(times, vec![0, 3, 6, 9]);
/// ```
#[must_use]
pub fn downsample(trace: &Trace, interval_secs: Seconds) -> Trace {
    let indices = downsample_indices(trace, interval_secs);
    let pts = trace.points();
    Trace::from_points(indices.iter().map(|&i| pts[i as usize]).collect())
}

/// The *indices* of the fixes [`downsample`] would keep — a zero-copy view
/// for callers that sweep many intervals over the same (large) trace and
/// don't want an owned clone per interval.
///
/// `downsample(trace, k)` is exactly `trace.points()[i]` for each returned
/// index `i`, in order.
///
/// # Panics
///
/// Panics if `interval_secs <= 0` or the trace has more than `u32::MAX`
/// fixes.
#[must_use]
pub fn downsample_indices(trace: &Trace, interval_secs: Seconds) -> Vec<u32> {
    downsample_indices_from_times(trace.iter().map(|p| p.time.as_secs()), interval_secs)
}

/// [`downsample_indices`] over any strictly-increasing timestamp sequence.
///
/// # Panics
///
/// Panics if `interval_secs <= 0` or the sequence has more than `u32::MAX`
/// entries.
pub fn downsample_indices_from_times<I>(times: I, interval_secs: Seconds) -> Vec<u32>
where
    I: IntoIterator<Item = i64>,
{
    let interval_secs = interval_secs.get();
    assert!(interval_secs > 0, "interval must be positive, got {interval_secs}");
    let mut kept = Vec::new();
    let mut next_due: Option<i64> = None;
    for (i, t) in times.into_iter().enumerate() {
        let due = match next_due {
            None => true,
            Some(due) => t >= due,
        };
        if due {
            kept.push(u32::try_from(i).expect("trace exceeds u32::MAX fixes"));
            next_due = Some(t + interval_secs);
        }
    }
    crate::obs::register();
    crate::obs::DOWNSAMPLE_CALLS.inc();
    crate::obs::DOWNSAMPLE_KEPT.add(kept.len() as u64);
    kept
}

/// The first `n` fixes of `trace` as a new trace (all of it if `n` exceeds
/// the length).
#[must_use]
pub fn prefix_points(trace: &Trace, n: usize) -> Trace {
    Trace::from_points(trace.points()[..n.min(trace.len())].to_vec())
}

/// The suffix of `trace` starting at fix index `start` (empty if `start`
/// is past the end).
#[must_use]
pub fn suffix_from(trace: &Trace, start: usize) -> Trace {
    if start >= trace.len() {
        return Trace::new();
    }
    Trace::from_points(trace.points()[start..].to_vec())
}

/// The trace re-based at a uniformly random starting fix, wrapping around:
/// `[start..end] ++ [begin..start]` with the wrapped part's timestamps
/// shifted to continue after the end. This models an adversary that begins
/// collecting at an arbitrary moment of the user's life (Figure 4(b)) while
/// preserving the total amount of data.
///
/// Returns a clone of the input for traces with fewer than two fixes.
#[must_use]
pub fn from_random_start<R: Rng + ?Sized>(trace: &Trace, rng: &mut R) -> Trace {
    if trace.len() < 2 {
        return trace.clone();
    }
    rotate_to_start(trace, random_start_index(trace.len(), rng))
}

/// The random start index [`from_random_start`] rotates to: uniform over
/// `0..len`, or `0` (without consuming the RNG) for fewer than two fixes.
/// Exposed so borrowed rotation views (see
/// [`crate::ProjectedTrace::rotated_from`]) can reproduce the owned
/// function's draw exactly.
pub fn random_start_index<R: Rng + ?Sized>(len: usize, rng: &mut R) -> usize {
    if len < 2 {
        0
    } else {
        rng.gen_range(0..len)
    }
}

/// Deterministic core of [`from_random_start`]: rotates the trace so
/// collection begins at fix index `start`.
///
/// # Panics
///
/// Panics if `start >= trace.len()` and the trace is non-empty. An empty
/// trace with `start == 0` is not an error: it returns an empty clone, so
/// zero-point inputs flow through the rotation path without panicking
/// (mirroring [`crate::ProjectedTrace::rotated_from`]).
#[must_use]
pub fn rotate_to_start(trace: &Trace, start: usize) -> Trace {
    if start == 0 {
        return trace.clone();
    }
    assert!(start < trace.len(), "start {start} out of range for {} points", trace.len());
    let pts = trace.points();
    // The bounds assert above makes an empty slice unreachable here
    // (start > 0 and start < len); losing the rotation beats panicking.
    let Some(last) = pts.last() else {
        return trace.clone();
    };
    let mut out = Vec::with_capacity(pts.len());
    out.extend_from_slice(&pts[start..]);
    // Shift the wrapped head to continue after the tail, preserving its
    // internal spacing and leaving a one-recording-period seam.
    let last_t = last.time.as_secs();
    let head_base = pts[0].time.as_secs();
    let seam = 1;
    for p in &pts[..start] {
        let mut q = *p;
        q.time = crate::point::Timestamp::from_secs(last_t + seam + (p.time.as_secs() - head_base));
        out.push(q);
    }
    Trace::from_points(out)
}

/// Iterator over growing prefixes of a trace in steps of `step` fixes:
/// `step, 2*step, …, len`. The final prefix is always the whole trace.
pub fn growing_prefixes(trace: &Trace, step: usize) -> impl Iterator<Item = Trace> + '_ {
    assert!(step > 0, "step must be positive");
    let len = trace.len();
    let mut sizes: Vec<usize> = (1..).map(|k| k * step).take_while(|&n| n < len).collect();
    sizes.push(len);
    sizes.into_iter().map(move |n| prefix_points(trace, n))
}

/// Models *foreground* collection: the user interacts with the app `n`
/// times at wall-clock moments drawn uniformly over the trace's span, and
/// the app receives one fix per interaction (the device's position at
/// that moment — the last recorded fix at or before it).
///
/// The paper's §III distinction is exactly this: foreground apps see
/// "discrete locations which lack the connection between any two of
/// them", while background apps see the continuous stream that
/// [`downsample`] models.
///
/// Returns at most `n` fixes (interactions in the same second collapse).
pub fn foreground_sessions<R: Rng + ?Sized>(trace: &Trace, n: usize, rng: &mut R) -> Trace {
    if n == 0 {
        return Trace::new();
    }
    let pts = trace.points();
    let (Some(first), Some(last)) = (pts.first(), pts.last()) else {
        return Trace::new(); // empty trace: no positions to deliver
    };
    let t0 = first.time.as_secs();
    let t1 = last.time.as_secs();
    let picked: Vec<TracePoint> = (0..n)
        .map(|_| {
            let t = if t1 > t0 { rng.gen_range(t0..=t1) } else { t0 };
            let idx = pts.partition_point(|p| p.time.as_secs() <= t);
            let pos = if idx == 0 { pts[0].pos } else { pts[idx - 1].pos };
            TracePoint::new(crate::point::Timestamp::from_secs(t), pos)
        })
        .collect();
    Trace::from_points(picked)
}

/// Downsamples exactly like [`downsample`] *and* reports the fraction of
/// the original trace's fixes that were kept, in `[0, 1]` (`0.0` for an
/// empty trace) — convenience for completeness ratios.
#[must_use]
pub fn downsample_with_ratio(trace: &Trace, interval_secs: Seconds) -> (Trace, f64) {
    let sampled = downsample(trace, interval_secs);
    let ratio = if trace.is_empty() {
        0.0
    } else {
        sampled.len() as f64 / trace.len() as f64
    };
    (sampled, ratio)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Timestamp;
    use backwatch_geo::LatLon;

    fn pt(t: i64) -> TracePoint {
        TracePoint::new(Timestamp::from_secs(t), LatLon::new(39.9, 116.4).unwrap())
    }

    fn seq(times: &[i64]) -> Trace {
        Trace::from_points(times.iter().map(|&t| pt(t)).collect())
    }

    #[test]
    fn interval_one_keeps_everything() {
        let tr = seq(&[0, 1, 2, 3, 4]);
        assert_eq!(downsample(&tr, Seconds::new(1)).len(), 5);
    }

    #[test]
    fn interval_larger_than_span_keeps_first_only() {
        let tr = seq(&[0, 1, 2]);
        assert_eq!(downsample(&tr, Seconds::new(100)).len(), 1);
    }

    #[test]
    fn irregular_spacing_respects_interval() {
        let tr = seq(&[0, 5, 9, 10, 11, 30]);
        let times: Vec<i64> = downsample(&tr, Seconds::new(10)).iter().map(|p| p.time.as_secs()).collect();
        assert_eq!(times, vec![0, 10, 30]);
    }

    #[test]
    fn gaps_longer_than_interval_sample_immediately() {
        // recording gap of 7200s: the next recorded fix is kept
        let tr = seq(&[0, 1, 7200, 7201]);
        let times: Vec<i64> = downsample(&tr, Seconds::new(60)).iter().map(|p| p.time.as_secs()).collect();
        assert_eq!(times, vec![0, 7200]);
    }

    #[test]
    #[should_panic(expected = "interval must be positive")]
    fn zero_interval_panics() {
        let _ = downsample(&seq(&[0]), Seconds::ZERO);
    }

    #[test]
    fn prefix_and_suffix() {
        let tr = seq(&[0, 1, 2, 3]);
        assert_eq!(prefix_points(&tr, 2).len(), 2);
        assert_eq!(prefix_points(&tr, 99).len(), 4);
        assert_eq!(suffix_from(&tr, 3).len(), 1);
        assert!(suffix_from(&tr, 4).is_empty());
    }

    #[test]
    fn rotation_preserves_length_and_order() {
        let tr = seq(&[0, 10, 20, 30, 40]);
        let rot = rotate_to_start(&tr, 2);
        assert_eq!(rot.len(), 5);
        // starts at the old index-2 timestamp
        assert_eq!(rot.first().unwrap().time.as_secs(), 20);
        // strictly increasing throughout
        let times: Vec<i64> = rot.iter().map(|p| p.time.as_secs()).collect();
        assert!(times.windows(2).all(|w| w[0] < w[1]), "{times:?}");
    }

    #[test]
    fn rotation_at_zero_is_identity() {
        let tr = seq(&[0, 1, 2]);
        assert_eq!(rotate_to_start(&tr, 0), tr);
    }

    #[test]
    fn rotation_of_empty_trace_is_empty_not_panic() {
        assert!(rotate_to_start(&Trace::new(), 0).is_empty());
    }

    #[test]
    fn rotation_of_one_point_trace_is_identity() {
        let tr = seq(&[7]);
        assert_eq!(rotate_to_start(&tr, 0), tr);
    }

    #[test]
    fn random_start_on_empty_and_singleton_clones() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(5);
        assert!(from_random_start(&Trace::new(), &mut rng).is_empty());
        let one = seq(&[3]);
        assert_eq!(from_random_start(&one, &mut rng), one);
    }

    #[test]
    fn random_start_deterministic_with_seed() {
        use rand::{rngs::StdRng, SeedableRng};
        let tr = seq(&[0, 1, 2, 3, 4, 5, 6, 7]);
        let a = from_random_start(&tr, &mut StdRng::seed_from_u64(9));
        let b = from_random_start(&tr, &mut StdRng::seed_from_u64(9));
        assert_eq!(a, b);
        assert_eq!(a.len(), tr.len());
    }

    #[test]
    fn growing_prefixes_end_with_full_trace() {
        let tr = seq(&[0, 1, 2, 3, 4, 5, 6]);
        let prefixes: Vec<Trace> = growing_prefixes(&tr, 3).collect();
        let sizes: Vec<usize> = prefixes.iter().map(Trace::len).collect();
        assert_eq!(sizes, vec![3, 6, 7]);
    }

    #[test]
    fn foreground_sessions_use_recorded_positions() {
        use rand::{rngs::StdRng, SeedableRng};
        let tr = seq(&[0, 10, 20, 30, 40]);
        let mut rng = StdRng::seed_from_u64(1);
        let fg = foreground_sessions(&tr, 5, &mut rng);
        assert!(fg.len() <= 5);
        assert!(!fg.is_empty());
        // every delivered position is one the device actually recorded
        for p in fg.iter() {
            assert!(tr.iter().any(|q| q.pos == p.pos));
            let t = p.time.as_secs();
            assert!((0..=40).contains(&t));
        }
    }

    #[test]
    fn foreground_sessions_edge_cases() {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(2);
        assert!(foreground_sessions(&Trace::new(), 5, &mut rng).is_empty());
        assert!(foreground_sessions(&seq(&[0, 1]), 0, &mut rng).is_empty());
        // asking for more sessions than fixes caps at the trace length
        let fg = foreground_sessions(&seq(&[0, 1]), 100, &mut rng);
        assert!(fg.len() <= 2);
    }

    #[test]
    fn downsample_ratio() {
        let tr = seq(&[0, 1, 2, 3, 4, 5, 6, 7, 8, 9]);
        let (s, r) = downsample_with_ratio(&tr, Seconds::new(5));
        assert_eq!(s.len(), 2);
        assert!((r - 0.2).abs() < 1e-12);
    }
}
