//! Timestamps and timestamped location points.

use backwatch_geo::LatLon;
use std::fmt;
use std::ops::{Add, Sub};

/// A simulation timestamp in whole seconds.
///
/// The zero point is the start of the simulation (midnight of day 0); there
/// is no time-zone machinery. Negative values are permitted by the type but
/// never produced by the generators.
///
/// # Examples
///
/// ```
/// use backwatch_trace::Timestamp;
///
/// let t = Timestamp::from_day_time(2, 8, 30, 0);
/// assert_eq!(t.day(), 2);
/// assert_eq!(t.second_of_day(), 8 * 3600 + 30 * 60);
/// assert_eq!((t + 90).as_secs() - t.as_secs(), 90);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Timestamp(i64);

/// Seconds per day.
pub const SECS_PER_DAY: i64 = 86_400;

impl Timestamp {
    /// Creates a timestamp from raw seconds since simulation start.
    #[must_use]
    pub fn from_secs(secs: i64) -> Self {
        Self(secs)
    }

    /// Creates a timestamp from a day index and an hour/minute/second of
    /// that day.
    ///
    /// # Panics
    ///
    /// Panics if `hour >= 24`, `min >= 60`, or `sec >= 60`.
    #[must_use]
    pub fn from_day_time(day: i64, hour: i64, min: i64, sec: i64) -> Self {
        assert!((0..24).contains(&hour), "hour out of range: {hour}");
        assert!((0..60).contains(&min), "minute out of range: {min}");
        assert!((0..60).contains(&sec), "second out of range: {sec}");
        Self(day * SECS_PER_DAY + hour * 3600 + min * 60 + sec)
    }

    /// Raw seconds since simulation start.
    #[must_use]
    pub fn as_secs(&self) -> i64 {
        self.0
    }

    /// The day index this timestamp falls in.
    #[must_use]
    pub fn day(&self) -> i64 {
        self.0.div_euclid(SECS_PER_DAY)
    }

    /// Seconds elapsed since midnight of this timestamp's day.
    #[must_use]
    pub fn second_of_day(&self) -> i64 {
        self.0.rem_euclid(SECS_PER_DAY)
    }
}

impl Add<i64> for Timestamp {
    type Output = Timestamp;

    fn add(self, secs: i64) -> Timestamp {
        Timestamp(self.0 + secs)
    }
}

impl Sub<i64> for Timestamp {
    type Output = Timestamp;

    fn sub(self, secs: i64) -> Timestamp {
        Timestamp(self.0 - secs)
    }
}

impl Sub<Timestamp> for Timestamp {
    type Output = i64;

    fn sub(self, other: Timestamp) -> i64 {
        self.0 - other.0
    }
}

impl fmt::Display for Timestamp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = self.second_of_day();
        write!(f, "d{} {:02}:{:02}:{:02}", self.day(), s / 3600, (s % 3600) / 60, s % 60)
    }
}

/// A single recorded location fix: a coordinate and the moment it was
/// observed.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TracePoint {
    /// When the fix was recorded.
    pub time: Timestamp,
    /// Where the device was.
    pub pos: LatLon,
}

impl TracePoint {
    /// Creates a point.
    #[must_use]
    pub fn new(time: Timestamp, pos: LatLon) -> Self {
        Self { time, pos }
    }
}

impl fmt::Display for TracePoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} @ {}", self.pos, self.time)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn day_time_round_trip() {
        let t = Timestamp::from_day_time(3, 17, 45, 12);
        assert_eq!(t.day(), 3);
        assert_eq!(t.second_of_day(), 17 * 3600 + 45 * 60 + 12);
    }

    #[test]
    fn arithmetic() {
        let t = Timestamp::from_secs(100);
        assert_eq!((t + 50).as_secs(), 150);
        assert_eq!((t - 30).as_secs(), 70);
        assert_eq!(t + 50 - t, 50);
    }

    #[test]
    fn negative_seconds_day_is_floor() {
        let t = Timestamp::from_secs(-1);
        assert_eq!(t.day(), -1);
        assert_eq!(t.second_of_day(), SECS_PER_DAY - 1);
    }

    #[test]
    fn display_format() {
        let t = Timestamp::from_day_time(1, 9, 5, 3);
        assert_eq!(t.to_string(), "d1 09:05:03");
    }

    #[test]
    #[should_panic(expected = "hour out of range")]
    fn bad_hour_panics() {
        let _ = Timestamp::from_day_time(0, 24, 0, 0);
    }

    #[test]
    fn ordering_follows_seconds() {
        assert!(Timestamp::from_secs(5) < Timestamp::from_secs(6));
    }
}
