//! Trajectory simplification (Douglas–Peucker).
//!
//! Apps that upload traces rarely send every 1 Hz fix; they simplify the
//! polyline first. This module provides the standard Douglas–Peucker
//! algorithm with a metric tolerance, which also serves as another
//! "what does the backend actually receive" transformation to feed the
//! privacy pipeline: unlike [`crate::sampling::downsample`], it keeps
//! geometry and drops *redundancy*, so dwells collapse to few points while
//! turns survive.

use crate::point::TracePoint;
use crate::trajectory::Trace;
use backwatch_geo::enu::Frame;
use backwatch_geo::Meters;

/// Simplifies `trace` with tolerance `epsilon` meters: the result keeps
/// the first and last fix and every fix whose removal would displace the
/// polyline by more than `epsilon`.
///
/// # Panics
///
/// Panics if `epsilon` is negative or non-finite.
#[must_use]
pub fn douglas_peucker(trace: &Trace, epsilon: Meters) -> Trace {
    let epsilon_m = epsilon.get();
    assert!(
        epsilon_m.is_finite() && epsilon_m >= 0.0,
        "epsilon must be >= 0, got {epsilon_m}"
    );
    let pts = trace.points();
    if pts.len() <= 2 || epsilon_m == 0.0 {
        return trace.clone();
    }
    let frame = Frame::new(pts[0].pos);
    let planar: Vec<(f64, f64)> = pts.iter().map(|p| frame.to_enu(p.pos)).collect();

    let mut keep = vec![false; pts.len()];
    keep[0] = true;
    keep[pts.len() - 1] = true;
    // iterative stack of (start, end) index ranges
    let mut stack = vec![(0usize, pts.len() - 1)];
    while let Some((a, b)) = stack.pop() {
        if b <= a + 1 {
            continue;
        }
        let (mut max_d, mut max_i) = (0.0f64, a + 1);
        for (i, &p) in planar.iter().enumerate().take(b).skip(a + 1) {
            let d = perpendicular_distance(planar[a], planar[b], p);
            if d > max_d {
                max_d = d;
                max_i = i;
            }
        }
        if max_d > epsilon_m {
            keep[max_i] = true;
            stack.push((a, max_i));
            stack.push((max_i, b));
        }
    }
    let kept: Vec<TracePoint> = pts.iter().zip(&keep).filter(|&(_, &k)| k).map(|(p, _)| *p).collect();
    Trace::from_points(kept)
}

/// Distance from point `p` to the segment `a`–`b` in planar meters.
fn perpendicular_distance(a: (f64, f64), b: (f64, f64), p: (f64, f64)) -> f64 {
    let (ax, ay) = a;
    let (bx, by) = b;
    let (px, py) = p;
    let (dx, dy) = (bx - ax, by - ay);
    let len2 = dx * dx + dy * dy;
    if len2 == 0.0 {
        return ((px - ax).powi(2) + (py - ay).powi(2)).sqrt();
    }
    let t = (((px - ax) * dx + (py - ay) * dy) / len2).clamp(0.0, 1.0);
    let (cx, cy) = (ax + t * dx, ay + t * dy);
    ((px - cx).powi(2) + (py - cy).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Timestamp;
    use backwatch_geo::LatLon;

    fn pt(t: i64, lat: f64, lon: f64) -> TracePoint {
        TracePoint::new(Timestamp::from_secs(t), LatLon::new(lat, lon).unwrap())
    }

    #[test]
    fn straight_line_collapses_to_endpoints() {
        let pts: Vec<TracePoint> = (0..100).map(|i| pt(i, 39.9 + i as f64 * 1e-5, 116.4)).collect();
        let trace = Trace::from_points(pts);
        let simplified = douglas_peucker(&trace, Meters::new(5.0));
        assert_eq!(simplified.len(), 2);
        assert_eq!(simplified.first(), trace.first());
        assert_eq!(simplified.last(), trace.last());
    }

    #[test]
    fn corners_survive() {
        // an L-shaped route: east then north
        let mut pts: Vec<TracePoint> = (0..50).map(|i| pt(i, 39.9, 116.4 + i as f64 * 1e-4)).collect();
        pts.extend((0..50).map(|i| pt(50 + i, 39.9 + i as f64 * 1e-4, 116.4 + 49.0 * 1e-4)));
        let trace = Trace::from_points(pts);
        let simplified = douglas_peucker(&trace, Meters::new(10.0));
        assert!(simplified.len() >= 3, "the corner must survive: {}", simplified.len());
        assert!(simplified.len() < 10);
    }

    #[test]
    fn error_is_bounded_by_epsilon() {
        // a noisy wiggle around a line
        let pts: Vec<TracePoint> = (0..200)
            .map(|i| {
                let wiggle = ((i % 7) as f64 - 3.0) * 2e-6;
                pt(i, 39.9 + i as f64 * 1e-5 + wiggle, 116.4)
            })
            .collect();
        let trace = Trace::from_points(pts);
        let eps = 20.0;
        let simplified = douglas_peucker(&trace, Meters::new(eps));
        // DP guarantee: every dropped point lies within eps of the segment
        // between the surrounding kept points
        let frame = Frame::new(trace.first().unwrap().pos);
        let kept: Vec<(i64, (f64, f64))> = simplified.iter().map(|p| (p.time.as_secs(), frame.to_enu(p.pos))).collect();
        for p in trace.iter() {
            let t = p.time.as_secs();
            let seg_end = kept.partition_point(|&(kt, _)| kt < t).min(kept.len() - 1).max(1);
            let a = kept[seg_end - 1].1;
            let b = kept[seg_end].1;
            let d = perpendicular_distance(a, b, frame.to_enu(p.pos));
            assert!(d <= eps + 0.5, "dropped point {d} m from its segment");
        }
    }

    #[test]
    fn larger_epsilon_keeps_fewer_points() {
        let pts: Vec<TracePoint> = (0..300)
            .map(|i| pt(i, 39.9 + (f64::from(i as u32) * 0.07).sin() * 1e-3, 116.4 + i as f64 * 1e-5))
            .collect();
        let trace = Trace::from_points(pts);
        let fine = douglas_peucker(&trace, Meters::new(5.0));
        let coarse = douglas_peucker(&trace, Meters::new(100.0));
        assert!(coarse.len() <= fine.len());
        assert!(fine.len() < trace.len());
    }

    #[test]
    fn tiny_traces_pass_through() {
        let trace = Trace::from_points(vec![pt(0, 39.9, 116.4), pt(1, 39.91, 116.4)]);
        assert_eq!(douglas_peucker(&trace, Meters::new(50.0)), trace);
        assert_eq!(douglas_peucker(&Trace::new(), Meters::new(50.0)), Trace::new());
    }

    #[test]
    fn zero_epsilon_is_identity() {
        let pts: Vec<TracePoint> = (0..10).map(|i| pt(i, 39.9 + i as f64 * 1e-5, 116.4)).collect();
        let trace = Trace::from_points(pts);
        assert_eq!(douglas_peucker(&trace, Meters::ZERO), trace);
    }

    #[test]
    #[should_panic(expected = "epsilon")]
    fn negative_epsilon_panics() {
        let _ = douglas_peucker(&Trace::new(), Meters::new(-1.0));
    }
}
