//! Multi-user datasets and text (de)serialization.
//!
//! Traces round-trip through two text formats:
//!
//! - a Geolife-compatible **PLT** layout (six header lines, then
//!   `lat,lon,0,alt,exceldays,date,time` records) so real Geolife files can
//!   be loaded if the user has them;
//! - a simple **CSV** (`lat,lon,t_secs`) used by the examples.

use crate::point::{Timestamp, TracePoint};
use crate::synth::{generate_user, SynthConfig, UserTrace};
use crate::trajectory::Trace;
use backwatch_geo::LatLon;
use std::error::Error;
use std::fmt;
use std::io::{BufRead, Write};

/// A collection of user traces.
///
/// # Examples
///
/// ```
/// use backwatch_trace::{Dataset, synth::SynthConfig};
///
/// let ds = Dataset::synthesize(&SynthConfig::small());
/// assert_eq!(ds.users().len(), 4);
/// assert!(ds.total_points() > 0);
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
pub struct Dataset {
    users: Vec<UserTrace>,
}

impl Dataset {
    /// Creates an empty dataset.
    #[must_use]
    pub fn new() -> Self {
        Self { users: Vec::new() }
    }

    /// Generates the full population described by `cfg`.
    #[must_use]
    pub fn synthesize(cfg: &SynthConfig) -> Self {
        Self {
            users: (0..cfg.n_users).map(|i| generate_user(cfg, i)).collect(),
        }
    }

    /// Adds a user trace.
    pub fn push(&mut self, user: UserTrace) {
        self.users.push(user);
    }

    /// The user traces.
    #[must_use]
    pub fn users(&self) -> &[UserTrace] {
        &self.users
    }

    /// Total recorded fixes across all users.
    #[must_use]
    pub fn total_points(&self) -> usize {
        self.users.iter().map(|u| u.trace.len()).sum()
    }

    /// Total ground-truth visits across all users.
    #[must_use]
    pub fn total_visits(&self) -> usize {
        self.users.iter().map(|u| u.true_visits.len()).sum()
    }

    /// Total path length in kilometers across all users.
    #[must_use]
    pub fn total_distance_km(&self) -> f64 {
        self.users.iter().map(|u| u.trace.path_length_m()).sum::<f64>() / 1000.0
    }
}

impl FromIterator<UserTrace> for Dataset {
    fn from_iter<I: IntoIterator<Item = UserTrace>>(iter: I) -> Self {
        Self {
            users: iter.into_iter().collect(),
        }
    }
}

/// Error from parsing a trace text format.
#[derive(Debug)]
pub enum ParseTraceError {
    /// Underlying I/O failure.
    Io(std::io::Error),
    /// A malformed record, with its 1-based line number.
    Malformed {
        /// Line number of the bad record.
        line: usize,
        /// What was wrong.
        reason: String,
    },
}

impl fmt::Display for ParseTraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ParseTraceError::Io(e) => write!(f, "i/o error reading trace: {e}"),
            ParseTraceError::Malformed { line, reason } => write!(f, "malformed trace record at line {line}: {reason}"),
        }
    }
}

impl Error for ParseTraceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            ParseTraceError::Io(e) => Some(e),
            ParseTraceError::Malformed { .. } => None,
        }
    }
}

impl From<std::io::Error> for ParseTraceError {
    fn from(e: std::io::Error) -> Self {
        ParseTraceError::Io(e)
    }
}

/// Geolife's PLT epoch (1899-12-30) offset: our simulation second 0 maps to
/// Excel day 39448 (2008-01-01), matching the dataset's era.
const PLT_EPOCH_EXCEL_DAYS: f64 = 39_448.0;

/// Writes `trace` in Geolife PLT format.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_plt<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    writeln!(w, "Geolife trajectory")?;
    writeln!(w, "WGS 84")?;
    writeln!(w, "Altitude is in Feet")?;
    writeln!(w, "Reserved 3")?;
    writeln!(w, "0,2,255,My Track,0,0,2,8421376")?;
    writeln!(w, "0")?;
    for p in trace.iter() {
        let days = PLT_EPOCH_EXCEL_DAYS + p.time.as_secs() as f64 / 86_400.0;
        let sod = p.time.second_of_day();
        writeln!(
            w,
            "{:.6},{:.6},0,180,{:.9},2008-01-01,{:02}:{:02}:{:02}",
            p.pos.lat(),
            p.pos.lon(),
            days,
            sod / 3600,
            (sod % 3600) / 60,
            sod % 60
        )?;
    }
    Ok(())
}

/// Reads a Geolife PLT stream back into a [`Trace`].
///
/// Timestamps are reconstructed from the Excel-days field, quantized to
/// whole seconds relative to the epoch used by [`write_plt`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] on I/O failure or malformed records.
pub fn read_plt<R: BufRead>(r: R) -> Result<Trace, ParseTraceError> {
    let mut pts = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        if i < 6 {
            continue; // header
        }
        if line.trim().is_empty() {
            continue;
        }
        let fields: Vec<&str> = line.split(',').collect();
        if fields.len() < 7 {
            return Err(ParseTraceError::Malformed {
                line: i + 1,
                reason: format!("expected 7 fields, got {}", fields.len()),
            });
        }
        let lat: f64 = fields[0].trim().parse().map_err(|e| ParseTraceError::Malformed {
            line: i + 1,
            reason: format!("bad latitude: {e}"),
        })?;
        let lon: f64 = fields[1].trim().parse().map_err(|e| ParseTraceError::Malformed {
            line: i + 1,
            reason: format!("bad longitude: {e}"),
        })?;
        let days: f64 = fields[4].trim().parse().map_err(|e| ParseTraceError::Malformed {
            line: i + 1,
            reason: format!("bad days field: {e}"),
        })?;
        let pos = LatLon::new(lat, lon).map_err(|e| ParseTraceError::Malformed {
            line: i + 1,
            reason: e.to_string(),
        })?;
        let secs = ((days - PLT_EPOCH_EXCEL_DAYS) * 86_400.0).round() as i64;
        pts.push(TracePoint::new(Timestamp::from_secs(secs), pos));
    }
    Ok(Trace::from_points(pts))
}

/// Reads every `.plt` file in a Geolife user's `Trajectory/` directory
/// (sorted by file name, which Geolife names chronologically) and merges
/// them into one trace.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on I/O failure or malformed records.
pub fn read_plt_dir(dir: &std::path::Path) -> Result<Trace, ParseTraceError> {
    let mut files: Vec<std::path::PathBuf> = std::fs::read_dir(dir)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|e| e == "plt"))
        .collect();
    files.sort();
    let mut points = Vec::new();
    for file in files {
        let reader = std::io::BufReader::new(std::fs::File::open(file)?);
        points.extend(read_plt(reader)?.into_points());
    }
    Ok(Trace::from_points(points))
}

/// Loads a Geolife-layout dataset: `root/<user-id>/Trajectory/*.plt`,
/// returning `(user-id, trace)` pairs sorted by user id. Users without a
/// `Trajectory` directory are skipped.
///
/// This is the hook for running the evaluation on the *real* Geolife data
/// if a copy is available locally; the synthetic generator covers the
/// repository's own tests and experiments.
///
/// # Errors
///
/// Returns [`ParseTraceError`] on I/O failure or malformed records.
pub fn load_geolife(root: &std::path::Path) -> Result<Vec<(String, Trace)>, ParseTraceError> {
    let mut users: Vec<(String, Trace)> = Vec::new();
    let mut entries: Vec<std::path::PathBuf> = std::fs::read_dir(root)?
        .collect::<Result<Vec<_>, _>>()?
        .into_iter()
        .map(|e| e.path())
        .filter(|p| p.is_dir())
        .collect();
    entries.sort();
    for user_dir in entries {
        let traj = user_dir.join("Trajectory");
        if !traj.is_dir() {
            continue;
        }
        let name = user_dir
            .file_name()
            .map(|n| n.to_string_lossy().into_owned())
            .unwrap_or_default();
        users.push((name, read_plt_dir(&traj)?));
    }
    Ok(users)
}

/// Writes `trace` as `lat,lon,t_secs` CSV with a header line.
///
/// # Errors
///
/// Propagates I/O errors from `w`.
pub fn write_csv<W: Write>(trace: &Trace, mut w: W) -> std::io::Result<()> {
    writeln!(w, "lat,lon,t_secs")?;
    for p in trace.iter() {
        writeln!(w, "{:.6},{:.6},{}", p.pos.lat(), p.pos.lon(), p.time.as_secs())?;
    }
    Ok(())
}

/// Reads `lat,lon,t_secs` CSV (header optional) into a [`Trace`].
///
/// # Errors
///
/// Returns [`ParseTraceError`] on I/O failure or malformed records.
pub fn read_csv<R: BufRead>(r: R) -> Result<Trace, ParseTraceError> {
    let mut pts = Vec::new();
    for (i, line) in r.lines().enumerate() {
        let line = line?;
        let trimmed = line.trim();
        if trimmed.is_empty() || (i == 0 && trimmed.starts_with("lat")) {
            continue;
        }
        let fields: Vec<&str> = trimmed.split(',').collect();
        if fields.len() != 3 {
            return Err(ParseTraceError::Malformed {
                line: i + 1,
                reason: format!("expected 3 fields, got {}", fields.len()),
            });
        }
        let lat: f64 = fields[0].parse().map_err(|e| ParseTraceError::Malformed {
            line: i + 1,
            reason: format!("bad latitude: {e}"),
        })?;
        let lon: f64 = fields[1].parse().map_err(|e| ParseTraceError::Malformed {
            line: i + 1,
            reason: format!("bad longitude: {e}"),
        })?;
        let t: i64 = fields[2].parse().map_err(|e| ParseTraceError::Malformed {
            line: i + 1,
            reason: format!("bad timestamp: {e}"),
        })?;
        let pos = LatLon::new(lat, lon).map_err(|e| ParseTraceError::Malformed {
            line: i + 1,
            reason: e.to_string(),
        })?;
        pts.push(TracePoint::new(Timestamp::from_secs(t), pos));
    }
    Ok(Trace::from_points(pts))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sample_trace() -> Trace {
        Trace::from_points(
            (0..20)
                .map(|i| {
                    TracePoint::new(
                        Timestamp::from_secs(i * 5),
                        LatLon::new(39.9 + i as f64 * 1e-4, 116.4 - i as f64 * 1e-4).unwrap(),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn plt_round_trip() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        write_plt(&tr, &mut buf).unwrap();
        let back = read_plt(&buf[..]).unwrap();
        assert_eq!(back.len(), tr.len());
        for (a, b) in tr.iter().zip(back.iter()) {
            assert_eq!(a.time, b.time);
            assert!((a.pos.lat() - b.pos.lat()).abs() < 1e-6);
            assert!((a.pos.lon() - b.pos.lon()).abs() < 1e-6);
        }
    }

    #[test]
    fn csv_round_trip() {
        let tr = sample_trace();
        let mut buf = Vec::new();
        write_csv(&tr, &mut buf).unwrap();
        let back = read_csv(&buf[..]).unwrap();
        assert_eq!(back.len(), tr.len());
        assert_eq!(back.first().unwrap().time, tr.first().unwrap().time);
    }

    #[test]
    fn plt_rejects_short_records() {
        let input = "h\nh\nh\nh\nh\nh\n1.0,2.0,0\n";
        let err = read_plt(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("line 7"));
    }

    #[test]
    fn csv_rejects_bad_latitude() {
        let input = "lat,lon,t_secs\nnope,116.4,0\n";
        let err = read_csv(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("bad latitude"));
    }

    #[test]
    fn csv_rejects_out_of_range() {
        let input = "95.0,116.4,0\n";
        let err = read_csv(input.as_bytes()).unwrap_err();
        assert!(err.to_string().contains("invalid coordinate"));
    }

    #[test]
    fn geolife_layout_round_trips() {
        // build root/007/Trajectory/{a,b}.plt and root/008/Trajectory/c.plt
        let root = std::env::temp_dir().join(format!("backwatch-geolife-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&root);
        let t1 = Trace::from_points(
            (0..10)
                .map(|i| TracePoint::new(Timestamp::from_secs(i), LatLon::new(39.9, 116.4).unwrap()))
                .collect(),
        );
        let t2 = Trace::from_points(
            (100..110)
                .map(|i| TracePoint::new(Timestamp::from_secs(i), LatLon::new(39.95, 116.45).unwrap()))
                .collect(),
        );
        for (user, parts) in [("007", vec![("a.plt", &t1), ("b.plt", &t2)]), ("008", vec![("c.plt", &t1)])] {
            let dir = root.join(user).join("Trajectory");
            std::fs::create_dir_all(&dir).unwrap();
            for (name, tr) in parts {
                let mut buf = Vec::new();
                write_plt(tr, &mut buf).unwrap();
                std::fs::write(dir.join(name), buf).unwrap();
            }
        }
        // a non-user directory to be skipped
        std::fs::create_dir_all(root.join("notes")).unwrap();

        let users = load_geolife(&root).unwrap();
        assert_eq!(users.len(), 2);
        assert_eq!(users[0].0, "007");
        assert_eq!(users[0].1.len(), 20, "two trajectories merged");
        assert_eq!(users[1].0, "008");
        assert_eq!(users[1].1.len(), 10);
        // merged trace is strictly ordered
        assert!(users[0].1.points().windows(2).all(|w| w[0].time < w[1].time));
        let _ = std::fs::remove_dir_all(&root);
    }

    #[test]
    fn read_plt_dir_missing_path_errors() {
        let missing = std::env::temp_dir().join("backwatch-definitely-missing-dir");
        assert!(read_plt_dir(&missing).is_err());
    }

    #[test]
    fn dataset_aggregates() {
        let ds = Dataset::synthesize(&SynthConfig::small());
        assert_eq!(ds.users().len(), 4);
        assert!(ds.total_points() > 1000);
        assert!(ds.total_visits() > 10);
        assert!(ds.total_distance_km() > 1.0);
    }

    #[test]
    fn dataset_from_iterator() {
        let cfg = SynthConfig::small();
        let ds: Dataset = (0..2).map(|i| crate::synth::generate_user(&cfg, i)).collect();
        assert_eq!(ds.users().len(), 2);
    }
}
