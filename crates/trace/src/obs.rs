//! Telemetry statics for the trace crate.
//!
//! Sampling and synthesis are pass-level operations, so the counters here
//! are bumped once per call (plus one `add` for the batch size), never per
//! fix — negligible against the work each call already does.

use backwatch_obs::Counter;
use std::sync::Once;

/// Downsampling passes run ([`crate::sampling::downsample`] and friends).
pub static DOWNSAMPLE_CALLS: Counter = Counter::new();
/// Fixes kept across all downsampling passes.
pub static DOWNSAMPLE_KEPT: Counter = Counter::new();
/// Chunk windows yielded by [`crate::chunks::ChunkCursor`].
pub static CHUNK_WINDOWS: Counter = Counter::new();
/// Fixes delivered inside chunk windows.
pub static CHUNK_POINTS: Counter = Counter::new();
/// Source streams handed to [`crate::interleave::Interleaver`] merges.
pub static INTERLEAVE_STREAMS: Counter = Counter::new();
/// Fixes entering interleaved merges (counted once at construction).
pub static INTERLEAVE_FIXES: Counter = Counter::new();
/// Synthetic users generated.
pub static SYNTH_USERS: Counter = Counter::new();
/// Fixes recorded across all synthetic users.
pub static SYNTH_POINTS: Counter = Counter::new();

static REGISTER: Once = Once::new();

/// Registers this crate's metrics with the global registry (idempotent).
pub fn register() {
    REGISTER.call_once(|| {
        backwatch_obs::register_counter(
            "trace.sampling.downsample_calls_total",
            "downsampling passes over a trace",
            &DOWNSAMPLE_CALLS,
        );
        backwatch_obs::register_counter(
            "trace.sampling.downsample_kept_total",
            "fixes kept by downsampling passes",
            &DOWNSAMPLE_KEPT,
        );
        backwatch_obs::register_counter(
            "trace.chunk.windows_total",
            "chunk windows yielded to streaming drivers",
            &CHUNK_WINDOWS,
        );
        backwatch_obs::register_counter(
            "trace.chunk.points_total",
            "fixes delivered inside chunk windows",
            &CHUNK_POINTS,
        );
        backwatch_obs::register_counter(
            "trace.interleave.streams_total",
            "source streams handed to interleaved merges",
            &INTERLEAVE_STREAMS,
        );
        backwatch_obs::register_counter(
            "trace.interleave.fixes_total",
            "fixes yielded by interleaved merges",
            &INTERLEAVE_FIXES,
        );
        backwatch_obs::register_counter("trace.synth.users_total", "synthetic users generated", &SYNTH_USERS);
        backwatch_obs::register_counter(
            "trace.synth.points_total",
            "fixes recorded for synthetic users",
            &SYNTH_POINTS,
        );
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn register_is_idempotent() {
        super::register();
        super::register();
        let snap = backwatch_obs::snapshot();
        if !snap.samples.is_empty() {
            assert!(snap.counter("trace.synth.users_total").is_some());
        }
    }
}
