//! A trace projected once into flat planar meters.
//!
//! The per-interval experiment sweep extracts PoIs from the same trace at
//! ten access frequencies, plus a rotated variant — and every extraction
//! used to re-derive geometry from raw lat/lon per distance. A
//! [`ProjectedTrace`] pays the trigonometry exactly once: each fix is
//! projected into (east, north) meters on a [`LocalProjection`] anchored at
//! the trace's first fix, and all downstream views (interval index views,
//! rotations) reuse those planar coordinates.
//!
//! Alongside the points, the projection records the trace's latitude band,
//! from which consumers obtain a *certified* bound on the planar-vs-
//! equirectangular distance error (see
//! [`LocalProjection::equirectangular_error_bound_m`]). Degenerate inputs —
//! an anchor within 1° of a pole, or a longitude extent that could straddle
//! the antimeridian — make [`ProjectedTrace::slack_per_east_meter`] return
//! `+inf`, which tells consumers to treat every planar decision as
//! ambiguous and fall back to exact spherical math.

use crate::point::{Timestamp, TracePoint};
use crate::trajectory::Trace;
use backwatch_geo::projection::LocalProjection;
use backwatch_geo::{Degrees, LatLon};

/// A fix with both its geographic position and its planar projection.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ProjectedPoint {
    /// When the fix was recorded.
    pub time: Timestamp,
    /// The geographic position (kept so exact-path computations and
    /// reported centroids stay bit-identical to the unprojected pipeline).
    pub pos: LatLon,
    /// East offset from the projection anchor, meters.
    pub x: f64,
    /// North offset from the projection anchor, meters.
    pub y: f64,
}

/// A trace plus its one-shot planar projection.
///
/// # Examples
///
/// ```
/// use backwatch_trace::{ProjectedTrace, Trace, TracePoint, Timestamp};
/// use backwatch_geo::LatLon;
///
/// let pts: Vec<TracePoint> = (0..60)
///     .map(|t| TracePoint::new(Timestamp::from_secs(t), LatLon::new(39.9, 116.4).unwrap()))
///     .collect();
/// let projected = ProjectedTrace::project(&Trace::from_points(pts));
/// assert_eq!(projected.len(), 60);
/// assert!(projected.points()[0].x.abs() < 1e-9); // anchored at the first fix
/// ```
#[derive(Debug, Clone)]
pub struct ProjectedTrace {
    projection: LocalProjection,
    points: Vec<ProjectedPoint>,
    slack_per_east_meter: f64,
}

/// The one-shot envelope analysis shared by [`ProjectedTrace::project`] and
/// [`crate::soa::SoaProjectedTrace::project`]: both layouts must make the
/// same degenerate-vs-planar call and carry bit-identical slack, so the
/// decision lives in one place.
pub(crate) enum Envelope {
    /// Inside the fast path's envelope: project on `projection` and certify
    /// with `slack_per_east_meter`.
    Planar {
        /// Tangent projection anchored at the trace's first fix.
        projection: LocalProjection,
        /// Certified |planar − equirectangular| error slope.
        slack_per_east_meter: f64,
    },
    /// Outside the envelope (polar anchor or antimeridian span): planar
    /// coordinates are all-zero and every decision must refine.
    Degenerate {
        /// Placeholder projection (polar anchors are clamped to the equator
        /// so the frame stays well-defined).
        projection: LocalProjection,
    },
}

/// Classifies `pts` against the fast path's envelope (see the module docs).
pub(crate) fn envelope(pts: &[TracePoint]) -> Envelope {
    let anchor = pts.first().map_or_else(|| LatLon::clamped(0.0, 0.0), |p| p.pos);

    // Near a pole the tangent frame degenerates; past 90° of longitude
    // from the anchor the unwrapped planar x no longer agrees with the
    // wrapped equirectangular distance. Both are far outside the
    // city-scale envelope this fast path serves, so mark the whole
    // trace ambiguous and let consumers take the exact spherical path.
    if anchor.lat().abs() >= 89.0 {
        return Envelope::Degenerate {
            projection: LocalProjection::new(LatLon::clamped(0.0, anchor.lon())),
        };
    }
    let mut lat_band_deg = 0.0f64;
    let mut lon_span_deg = 0.0f64;
    for p in pts {
        lat_band_deg = lat_band_deg.max((p.pos.lat() - anchor.lat()).abs());
        lon_span_deg = lon_span_deg.max((p.pos.lon() - anchor.lon()).abs());
    }
    if lon_span_deg > 90.0 {
        return Envelope::Degenerate {
            projection: LocalProjection::new(anchor),
        };
    }
    let projection = LocalProjection::new(anchor);
    Envelope::Planar {
        slack_per_east_meter: projection.error_per_east_meter(Degrees::new(lat_band_deg)),
        projection,
    }
}

impl ProjectedTrace {
    /// Projects `trace` onto a tangent plane anchored at its first fix.
    #[must_use]
    pub fn project(trace: &Trace) -> Self {
        let pts = trace.points();
        match envelope(pts) {
            Envelope::Planar {
                projection,
                slack_per_east_meter,
            } => {
                let points = pts
                    .iter()
                    .map(|p| {
                        let (x, y) = projection.project(p.pos);
                        ProjectedPoint {
                            time: p.time,
                            pos: p.pos,
                            x,
                            y,
                        }
                    })
                    .collect();
                Self {
                    projection,
                    slack_per_east_meter,
                    points,
                }
            }
            Envelope::Degenerate { projection } => Self {
                projection,
                points: pts
                    .iter()
                    .map(|p| ProjectedPoint {
                        time: p.time,
                        pos: p.pos,
                        x: 0.0,
                        y: 0.0,
                    })
                    .collect(),
                slack_per_east_meter: f64::INFINITY,
            },
        }
    }

    /// The projection the points were computed on.
    #[must_use]
    pub fn projection(&self) -> &LocalProjection {
        &self.projection
    }

    /// Certified planar-vs-equirectangular error per meter of planar east
    /// separation (`+inf` when the trace is outside the fast path's
    /// envelope; see the module docs).
    #[must_use]
    pub fn slack_per_east_meter(&self) -> f64 {
        self.slack_per_east_meter
    }

    /// The projected fixes, in trace order.
    #[must_use]
    pub fn points(&self) -> &[ProjectedPoint] {
        &self.points
    }

    /// Number of fixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// Borrowed view of the fixes selected by `indices` (as produced by
    /// [`crate::sampling::downsample_indices`]) — the zero-copy equivalent
    /// of extracting from a [`crate::sampling::downsample`]d trace.
    pub fn sampled<'a>(&'a self, indices: &'a [u32]) -> impl Iterator<Item = ProjectedPoint> + 'a {
        indices.iter().map(|&i| self.points[i as usize])
    }

    /// Borrowed view of the trace rotated to begin at fix `start`, with the
    /// wrapped head's timestamps shifted exactly as
    /// [`crate::sampling::rotate_to_start`] does. `start == 0` (including
    /// on an empty trace) yields the trace unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `start > 0` and `start >= len`.
    pub fn rotated_from(&self, start: usize) -> impl Iterator<Item = ProjectedPoint> + '_ {
        assert!(
            start == 0 || start < self.points.len(),
            "start {start} out of range for {} points",
            self.points.len()
        );
        let (last_t, head_base) = if start == 0 {
            (0, 0)
        } else {
            (
                self.points.last().expect("non-empty").time.as_secs(),
                self.points[0].time.as_secs(),
            )
        };
        let seam = 1;
        let tail = self.points[start..].iter().copied();
        let head = self.points[..start].iter().map(move |p| ProjectedPoint {
            time: Timestamp::from_secs(last_t + seam + (p.time.as_secs() - head_base)),
            ..*p
        });
        tail.chain(head)
    }

    /// Reconstructs the plain [`TracePoint`] at `index` (geographic
    /// position and timestamp only).
    #[must_use]
    pub fn trace_point(&self, index: usize) -> TracePoint {
        let p = self.points[index];
        TracePoint::new(p.time, p.pos)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling;
    use backwatch_geo::distance::equirectangular;

    fn pt(t: i64, lat: f64, lon: f64) -> TracePoint {
        TracePoint::new(Timestamp::from_secs(t), LatLon::new(lat, lon).unwrap())
    }

    fn city_trace() -> Trace {
        Trace::from_points(
            (0..200)
                .map(|t| pt(t * 7, 39.9 + (t as f64) * 1e-4, 116.4 - (t as f64) * 2e-4))
                .collect(),
        )
    }

    #[test]
    fn planar_pairwise_distances_track_equirectangular() {
        let tr = city_trace();
        let proj = ProjectedTrace::project(&tr);
        let slack = proj.slack_per_east_meter();
        assert!(slack.is_finite());
        let pts = proj.points();
        for w in pts.windows(17) {
            let (a, b) = (w[0], w[16]);
            let planar = ((a.x - b.x).powi(2) + (a.y - b.y).powi(2)).sqrt();
            let exact = equirectangular(a.pos, b.pos);
            let bound = (a.x - b.x).abs() * slack + 1e-6;
            assert!((planar - exact).abs() <= bound, "planar {planar} exact {exact}");
        }
    }

    #[test]
    fn empty_trace_projects_to_empty() {
        let proj = ProjectedTrace::project(&Trace::new());
        assert!(proj.is_empty());
        assert_eq!(proj.rotated_from(0).count(), 0);
    }

    #[test]
    fn sampled_view_matches_owned_downsample() {
        let tr = city_trace();
        let proj = ProjectedTrace::project(&tr);
        for interval in [1, 60, 7200] {
            let owned = sampling::downsample(&tr, backwatch_geo::Seconds::new(interval));
            let indices = sampling::downsample_indices(&tr, backwatch_geo::Seconds::new(interval));
            let view: Vec<TracePoint> = proj.sampled(&indices).map(|p| TracePoint::new(p.time, p.pos)).collect();
            assert_eq!(view, owned.points().to_vec(), "interval {interval}");
        }
    }

    #[test]
    fn rotated_view_matches_owned_rotation() {
        let tr = city_trace();
        let proj = ProjectedTrace::project(&tr);
        for start in [0, 1, 57, 199] {
            let owned = sampling::rotate_to_start(&tr, start);
            let view: Vec<TracePoint> = proj.rotated_from(start).map(|p| TracePoint::new(p.time, p.pos)).collect();
            assert_eq!(view, owned.points().to_vec(), "start {start}");
        }
    }

    #[test]
    fn polar_anchor_is_degenerate_not_panicking() {
        let tr = Trace::from_points(vec![pt(0, 89.5, 10.0), pt(1, 89.5, 11.0)]);
        let proj = ProjectedTrace::project(&tr);
        assert_eq!(proj.len(), 2);
        assert!(proj.slack_per_east_meter().is_infinite());
    }

    #[test]
    fn antimeridian_span_is_degenerate() {
        let tr = Trace::from_points(vec![pt(0, 0.0, -179.9), pt(1, 0.0, 179.9)]);
        let proj = ProjectedTrace::project(&tr);
        assert!(proj.slack_per_east_meter().is_infinite());
    }

    #[test]
    fn trace_point_round_trips() {
        let tr = city_trace();
        let proj = ProjectedTrace::project(&tr);
        for (i, p) in tr.iter().enumerate() {
            assert_eq!(proj.trace_point(i), *p);
        }
    }
}
