//! Trajectory substrate for the `backwatch` workspace.
//!
//! The paper's evaluation (§IV-C) runs on the Geolife GPS dataset: per-user
//! location traces sampled at roughly 1 Hz. That dataset cannot be
//! redistributed, so this crate provides both the trace *types* the
//! evaluation needs and a synthetic *generator* that produces Geolife-like
//! mobility with known ground truth:
//!
//! - [`TracePoint`] / [`Trace`] — timestamped location sequences with
//!   ordering invariants.
//! - [`sampling`] — interval downsampling, which models an app polling
//!   location every `k` seconds (the paper's "access frequency"), plus
//!   prefix and random-start windows used by Figure 4.
//! - [`projected`] — a trace projected once into flat planar meters, so
//!   the per-interval experiment sweep pays the spherical trigonometry a
//!   single time and every downsampled/rotated view reuses it.
//! - [`coarsen`] — grid snapping and Gaussian jitter, modelling coarse
//!   location providers and GPS noise.
//! - [`synth`] — the mobility model: each synthetic user has a home, an
//!   optional workplace, and Zipf-popular secondary places; days are
//!   simulated as dwell episodes connected by movement legs and recorded at
//!   1 Hz with GPS noise. Ground-truth visits are returned alongside the
//!   recorded trace so extractors can be *validated*, not just run.
//! - [`dataset`] — multi-user datasets and (de)serialization in a
//!   Geolife-compatible PLT text format and CSV.
//!
//! # Examples
//!
//! ```
//! use backwatch_trace::synth::{SynthConfig, generate_user};
//!
//! let cfg = SynthConfig::small();
//! let user = generate_user(&cfg, 0);
//! assert!(!user.trace.is_empty());
//! assert!(!user.true_visits.is_empty());
//! ```

pub mod chunks;
pub mod coarsen;
pub mod dataset;
pub mod interleave;
pub mod modes;
pub mod obs;
pub mod point;
pub mod projected;
pub mod sampling;
pub mod simplify;
pub mod soa;
pub mod stats;
pub mod synth;
pub mod trajectory;

pub use dataset::Dataset;
pub use point::{Timestamp, TracePoint};
pub use projected::{ProjectedPoint, ProjectedTrace};
pub use soa::SoaProjectedTrace;
pub use trajectory::{Trace, TraceError};
