//! Synthetic Geolife-like mobility generator.
//!
//! The paper evaluates on the Geolife dataset: 182 users, ~1 Hz GPS
//! recording of daily outdoor activity (commutes, shopping, dining, …).
//! Geolife cannot be redistributed, so this module generates a population
//! with the same statistical skeleton **and known ground truth**:
//!
//! - each user gets a **home**, usually a **workplace**, and a handful of
//!   Zipf-popular **secondary places** (restaurants, gyms, shops);
//! - each simulated day is a schedule of *visits* (dwell at a place)
//!   connected by *movement legs* (interpolated travel with GPS jitter);
//! - the device records at 1 Hz while the user is out, and for a capped
//!   window after arriving somewhere (people stop recording once settled —
//!   this matches Geolife's outdoor-activity bias); the fix at departure
//!   still anchors the full dwell interval, so long stays remain visible
//!   to low-frequency observers;
//! - every true visit (place, arrival, departure) is returned next to the
//!   recorded trace, so PoI extractors can be validated against ground
//!   truth instead of eyeballed.
//!
//! Generation is fully deterministic given `(seed, user index)`, which lets
//! the experiment harness stream users one at a time without holding the
//! whole population in memory.

use crate::point::{Timestamp, TracePoint, SECS_PER_DAY};
use crate::trajectory::Trace;
use backwatch_geo::{enu::Frame, LatLon, Meters, Seconds};
use backwatch_stats::sampling::{coin, normal, truncated_normal, weighted_index, Zipf};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// What role a place plays in a user's life.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum PlaceKind {
    /// Where the user sleeps; visited daily.
    Home,
    /// Where a worker spends weekdays.
    Work,
    /// Errand destinations with Zipf-distributed popularity.
    Secondary,
}

/// A place a synthetic user frequents.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Place {
    /// Index into the user's place list.
    pub id: usize,
    /// Role of the place.
    pub kind: PlaceKind,
    /// Location of the place.
    pub pos: LatLon,
}

/// A ground-truth visit: the user was at `place` from `arrive` to `depart`.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TrueVisit {
    /// Index of the visited place in [`UserTrace::places`].
    pub place: usize,
    /// Role of the visited place.
    pub kind: PlaceKind,
    /// Arrival time.
    pub arrive: Timestamp,
    /// Departure time.
    pub depart: Timestamp,
}

impl TrueVisit {
    /// Dwell duration in seconds.
    #[must_use]
    pub fn dwell_secs(&self) -> i64 {
        self.depart - self.arrive
    }
}

/// A generated user: their places, the recorded trace, and the ground-truth
/// visit log.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct UserTrace {
    /// Stable user identifier (the generation index).
    pub user_id: u32,
    /// The user's places; index 0 is always home.
    pub places: Vec<Place>,
    /// The recorded (1 Hz, jittered) location trace.
    pub trace: Trace,
    /// Ground-truth visits in chronological order.
    pub true_visits: Vec<TrueVisit>,
}

/// Configuration of the mobility generator.
///
/// [`SynthConfig::paper_scale`] reproduces the Geolife magnitudes used in
/// the paper's evaluation (182 users); [`SynthConfig::small`] is a
/// milliseconds-fast configuration for tests and examples.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct SynthConfig {
    /// Number of users to generate.
    pub n_users: u32,
    /// Number of simulated days per user.
    pub days: u32,
    /// Master seed; user `i` derives its own stream from `(seed, i)`.
    pub seed: u64,
    /// City anchor (defaults to Beijing, where most Geolife data lives).
    pub city_center: LatLon,
    /// Radius within which homes are placed.
    pub city_radius_m: Meters,
    /// Inclusive range of secondary places per user.
    pub secondary_places: (usize, usize),
    /// Zipf exponent for secondary-place popularity.
    pub zipf_exponent: f64,
    /// Fraction of users with a weekday workplace.
    pub worker_fraction: f64,
    /// Recording period of the device (Geolife: 1 s).
    pub sample_interval_s: Seconds,
    /// Per-axis GPS noise standard deviation.
    pub gps_noise_m: Meters,
    /// Recording stops this long after arriving at a place.
    pub max_recorded_dwell_s: Seconds,
    /// Size of the city-wide pool of shared errand destinations (malls,
    /// restaurants, parks). Users draw their secondary places from this
    /// pool, so different users visit the *same* spots — the spatial
    /// overlap that makes identification non-trivial (Geolife's users
    /// cluster around the same Beijing campus and malls).
    pub shared_place_pool: usize,
    /// Size of the shared workplace pool.
    pub workplace_pool: usize,
}

impl SynthConfig {
    /// Paper-scale population: 182 users, 28 days (Geolife's magnitude).
    #[must_use]
    pub fn paper_scale() -> Self {
        Self {
            n_users: 182,
            days: 28,
            ..Self::small()
        }
    }

    /// A tiny, fast configuration for tests and examples: 4 users, 3 days.
    #[must_use]
    pub fn small() -> Self {
        Self {
            n_users: 4,
            days: 3,
            seed: 0xBAC2_0175,
            city_center: LatLon::new(39.9042, 116.4074).expect("Beijing is a valid coordinate"),
            city_radius_m: Meters::new(10_000.0),
            secondary_places: (6, 12),
            // Visit frequency over a user's places is sharply skewed
            // (preferential return): the favourite one or two errand spots
            // absorb most trips, giving the habitual transitions that make
            // movement patterns identifying.
            zipf_exponent: 1.5,
            worker_fraction: 0.8,
            sample_interval_s: Seconds::new(1),
            gps_noise_m: Meters::new(4.0),
            max_recorded_dwell_s: Seconds::new(1_500),
            shared_place_pool: 240,
            workplace_pool: 40,
        }
    }

    /// Validates internal consistency.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message if any field is out of range.
    pub fn validate(&self) {
        assert!(self.n_users > 0, "need at least one user");
        assert!(self.days > 0, "need at least one day");
        assert!(self.city_radius_m.get() > 500.0, "city radius too small");
        assert!(self.secondary_places.0 >= 1 && self.secondary_places.0 <= self.secondary_places.1);
        assert!((0.0..=1.0).contains(&self.worker_fraction));
        assert!(self.sample_interval_s.get() >= 1);
        assert!(self.gps_noise_m.get() >= 0.0);
        assert!(self.max_recorded_dwell_s.get() >= 60, "recorded dwell window too small");
        assert!(
            self.shared_place_pool >= self.secondary_places.1,
            "shared pool must cover the largest per-user place count"
        );
        assert!(self.workplace_pool >= 1, "need at least one workplace");
    }
}

impl Default for SynthConfig {
    fn default() -> Self {
        Self::paper_scale()
    }
}

/// Generates user `user_idx` of the population described by `cfg`.
///
/// Deterministic: the same `(cfg.seed, user_idx)` always yields the same
/// user, independent of which other users are generated.
///
/// # Panics
///
/// Panics if `cfg` fails [`SynthConfig::validate`] or
/// `user_idx >= cfg.n_users`.
#[must_use]
pub fn generate_user(cfg: &SynthConfig, user_idx: u32) -> UserTrace {
    cfg.validate();
    assert!(user_idx < cfg.n_users, "user {user_idx} out of range ({} users)", cfg.n_users);
    let mut rng = StdRng::seed_from_u64(split_seed(cfg.seed, user_idx));
    let frame = Frame::new(cfg.city_center);

    let places = gen_places(cfg, &frame, &mut rng);
    let is_worker = coin(&mut rng, cfg.worker_fraction) && places.iter().any(|p| p.kind == PlaceKind::Work);
    let zipf = Zipf::new(
        places.iter().filter(|p| p.kind == PlaceKind::Secondary).count(),
        cfg.zipf_exponent,
    );

    let schedule = gen_schedule(cfg, &places, is_worker, &zipf, &mut rng);
    let (trace, true_visits) = record(cfg, &frame, &places, &schedule, &mut rng);

    crate::obs::register();
    crate::obs::SYNTH_USERS.inc();
    crate::obs::SYNTH_POINTS.add(trace.len() as u64);

    UserTrace {
        user_id: user_idx,
        places,
        trace,
        true_visits,
    }
}

/// Generates the whole population eagerly. Prefer iterating
/// [`generate_user`] for large configurations.
#[must_use]
pub fn generate_population(cfg: &SynthConfig) -> Vec<UserTrace> {
    (0..cfg.n_users).map(|i| generate_user(cfg, i)).collect()
}

/// SplitMix64 finalizer over (seed, stream) — decorrelates per-user RNGs.
fn split_seed(seed: u64, stream: u32) -> u64 {
    let mut z = seed ^ (u64::from(stream).wrapping_mul(0x9E37_79B9_7F4A_7C15));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

fn uniform_in_disk(rng: &mut StdRng, radius: f64) -> (f64, f64) {
    let r = radius * rng.gen::<f64>().sqrt();
    let theta = rng.gen::<f64>() * std::f64::consts::TAU;
    (r * theta.cos(), r * theta.sin())
}

const MIN_PLACE_SEPARATION_M: f64 = 400.0;

/// Generates positions with best-effort minimum separation inside a disk.
fn scatter(rng: &mut StdRng, n: usize, radius: f64) -> Vec<(f64, f64)> {
    let mut out: Vec<(f64, f64)> = Vec::with_capacity(n);
    for _ in 0..n {
        let mut cand = uniform_in_disk(rng, radius);
        for _ in 0..64 {
            let ok = out
                .iter()
                .all(|p| ((p.0 - cand.0).powi(2) + (p.1 - cand.1).powi(2)).sqrt() >= MIN_PLACE_SEPARATION_M);
            if ok {
                break;
            }
            cand = uniform_in_disk(rng, radius);
        }
        out.push(cand);
    }
    out
}

/// Planar positions in ENU meters around the city center.
type EnuPool = Vec<(f64, f64)>;

/// The city's shared destinations, deterministic from the master seed
/// alone so every user sees the same city: `(errand pool, workplace
/// pool)`, in ENU meters around the city center.
fn shared_pools(cfg: &SynthConfig) -> (EnuPool, EnuPool) {
    let mut rng = StdRng::seed_from_u64(split_seed(cfg.seed, u32::MAX));
    let errands = scatter(&mut rng, cfg.shared_place_pool, cfg.city_radius_m.get());
    let workplaces = scatter(&mut rng, cfg.workplace_pool, cfg.city_radius_m.get() * 0.7);
    (errands, workplaces)
}

fn gen_places(cfg: &SynthConfig, frame: &Frame, rng: &mut StdRng) -> Vec<Place> {
    let (errand_pool, work_pool) = shared_pools(cfg);
    // Home is private: uniform in the residential disk.
    let home = uniform_in_disk(rng, cfg.city_radius_m.get() * 0.8);
    // Work comes from the shared workplace pool, Zipf-popular (big
    // employers attract many of the synthetic users — the Geolife campus
    // effect).
    let work_zipf = Zipf::new(work_pool.len(), 0.8);
    let work = work_pool[work_zipf.sample(rng)];
    // Secondary places come from the shared errand pool, weighted by
    // global popularity and proximity to home: users frequent nearby spots
    // but everyone knows the famous ones.
    let n_secondary = rng.gen_range(cfg.secondary_places.0..=cfg.secondary_places.1);
    let weights: Vec<f64> = errand_pool
        .iter()
        .enumerate()
        .map(|(rank, p)| {
            let popularity = 1.0 / (rank as f64 + 1.0).powf(cfg.zipf_exponent);
            let d = ((p.0 - home.0).powi(2) + (p.1 - home.1).powi(2)).sqrt();
            popularity * (-d / 5_000.0).exp() + 1e-9
        })
        .collect();
    let mut chosen: Vec<usize> = Vec::with_capacity(n_secondary);
    while chosen.len() < n_secondary.min(errand_pool.len()) {
        let idx = weighted_index(rng, &weights);
        if !chosen.contains(&idx) {
            chosen.push(idx);
        }
    }

    let mut places = Vec::with_capacity(2 + n_secondary);
    places.push(Place {
        id: 0,
        kind: PlaceKind::Home,
        pos: frame.to_latlon(Meters::new(home.0), Meters::new(home.1)),
    });
    places.push(Place {
        id: 1,
        kind: PlaceKind::Work,
        pos: frame.to_latlon(Meters::new(work.0), Meters::new(work.1)),
    });
    for (i, &idx) in chosen.iter().enumerate() {
        let p = errand_pool[idx];
        places.push(Place {
            id: 2 + i,
            kind: PlaceKind::Secondary,
            pos: frame.to_latlon(Meters::new(p.0), Meters::new(p.1)),
        });
    }
    places
}

/// One scheduled dwell: which place, and the dwell interval in absolute
/// seconds.
#[derive(Debug, Clone, Copy)]
struct ScheduledVisit {
    place: usize,
    arrive: i64,
    depart: i64,
}

/// Travel speed for a leg of `dist` meters: walk short hops, ride medium,
/// drive long.
fn leg_speed(dist: f64, rng: &mut StdRng) -> f64 {
    let base = if dist < 1_200.0 {
        1.35
    } else if dist < 4_000.0 {
        4.5
    } else {
        10.5
    };
    base * truncated_normal(rng, 1.0, 0.15, 0.7, 1.4)
}

fn gen_schedule(cfg: &SynthConfig, places: &[Place], is_worker: bool, zipf: &Zipf, rng: &mut StdRng) -> Vec<ScheduledVisit> {
    let secondary_ids: Vec<usize> = places
        .iter()
        .filter(|p| p.kind == PlaceKind::Secondary)
        .map(|p| p.id)
        .collect();
    let frame = Frame::new(places[0].pos);
    let enu: Vec<(f64, f64)> = places.iter().map(|p| frame.to_enu(p.pos)).collect();
    let travel = |a: usize, b: usize, rng: &mut StdRng| -> i64 {
        let (ax, ay) = enu[a];
        let (bx, by) = enu[b];
        let d = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
        (d / leg_speed(d, rng)).ceil() as i64 + 30
    };

    let mut visits: Vec<ScheduledVisit> = Vec::new();
    // The user is home from t=0.
    let mut home_since = 0i64;
    let mut at = 0usize; // current place id (home)

    for day in 0..i64::from(cfg.days) {
        let day0 = day * SECS_PER_DAY;
        let weekday = day % 7 < 5;
        // Build the day's outing plan as a list of (place, dwell_secs).
        let mut plan: Vec<(usize, i64)> = Vec::new();
        let mut leave_home = if is_worker && weekday {
            day0 + truncated_normal(rng, 8.0 * 3600.0, 5400.0, 5.5 * 3600.0, 11.0 * 3600.0) as i64
        } else {
            day0 + truncated_normal(rng, 10.5 * 3600.0, 7200.0, 7.0 * 3600.0, 15.0 * 3600.0) as i64
        };
        if is_worker && weekday {
            // Office hours vary a lot day to day (meetings, overtime, early
            // departures) — Geolife-like irregularity that keeps the
            // dwell-weighted region histogram from converging in a day or
            // two.
            let work_dwell = truncated_normal(rng, 8.8 * 3600.0, 7200.0, 4.5 * 3600.0, 12.5 * 3600.0) as i64;
            plan.push((1, work_dwell));
        }
        let n_errands = if weekday {
            weighted_index(rng, &[0.35, 0.35, 0.20, 0.10])
        } else {
            weighted_index(rng, &[0.15, 0.30, 0.30, 0.15, 0.10])
        };
        for _ in 0..n_errands {
            if secondary_ids.is_empty() {
                break;
            }
            let place = secondary_ids[zipf.sample(rng)];
            // Dwell between 4 and 150 minutes — deliberately straddling the
            // paper's 10/20/30-minute visiting-time thresholds (Table III).
            let dwell = (truncated_normal(rng, 38.0, 30.0, 4.0, 150.0) * 60.0) as i64;
            plan.push((place, dwell));
        }
        if plan.is_empty() {
            // A stay-at-home day: the ongoing home visit just continues.
            continue;
        }
        // Some days the user never returns between stops; keep it simple and
        // chain stops in plan order.
        if leave_home <= home_since + 60 {
            leave_home = home_since + 60;
        }
        // Close the ongoing home visit.
        visits.push(ScheduledVisit {
            place: 0,
            arrive: home_since,
            depart: leave_home,
        });
        at = 0;
        let mut t = leave_home;
        for &(place, dwell) in &plan {
            t += travel(at, place, rng);
            let arrive = t;
            t += dwell.max(120);
            visits.push(ScheduledVisit {
                place,
                arrive,
                depart: t,
            });
            at = place;
        }
        // Return home.
        t += travel(at, 0, rng);
        home_since = t;
        at = 0;
    }
    let _ = at;
    // Final home visit runs to the end of the simulation.
    let end = i64::from(cfg.days) * SECS_PER_DAY;
    if home_since < end {
        visits.push(ScheduledVisit {
            place: 0,
            arrive: home_since,
            depart: end,
        });
    }
    visits
}

/// Renders the schedule into a recorded trace plus the ground-truth visit
/// log.
fn record(
    cfg: &SynthConfig,
    _frame: &Frame,
    places: &[Place],
    schedule: &[ScheduledVisit],
    rng: &mut StdRng,
) -> (Trace, Vec<TrueVisit>) {
    let local = Frame::new(places[0].pos);
    let enu: Vec<(f64, f64)> = places.iter().map(|p| local.to_enu(p.pos)).collect();
    let mut pts: Vec<TracePoint> = Vec::new();
    let mut visits: Vec<TrueVisit> = Vec::new();
    let noise = cfg.gps_noise_m.get();
    let step = cfg.sample_interval_s.get();

    let emit = |pts: &mut Vec<TracePoint>, t: i64, x: f64, y: f64, rng: &mut StdRng| {
        let pos = local.to_latlon(
            Meters::new(x + normal(rng, 0.0, noise)),
            Meters::new(y + normal(rng, 0.0, noise)),
        );
        pts.push(TracePoint::new(Timestamp::from_secs(t), pos));
    };

    for (i, v) in schedule.iter().enumerate() {
        let (px, py) = enu[v.place];
        visits.push(TrueVisit {
            place: v.place,
            kind: places[v.place].kind,
            arrive: Timestamp::from_secs(v.arrive),
            depart: Timestamp::from_secs(v.depart),
        });
        // Dwell recording: from arrival until the recording window closes
        // (or departure, whichever is earlier). The departure fix itself is
        // emitted as the first point of the outgoing leg below.
        let dwell_end = (v.arrive + cfg.max_recorded_dwell_s.get()).min(v.depart - 1);
        let mut t = v.arrive;
        while t <= dwell_end {
            emit(&mut pts, t, px, py, rng);
            t += step;
        }
        // Movement leg to the next visit.
        if let Some(next) = schedule.get(i + 1) {
            let (qx, qy) = enu[next.place];
            let t0 = v.depart;
            let t1 = next.arrive;
            debug_assert!(t1 > t0, "travel time must be positive");
            let span = (t1 - t0) as f64;
            let mut t = t0;
            while t < t1 {
                let frac = (t - t0) as f64 / span;
                emit(&mut pts, t, px + (qx - px) * frac, py + (qy - py) * frac, rng);
                t += step;
            }
        }
    }
    (Trace::from_points(pts), visits)
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::distance::haversine;

    fn cfg() -> SynthConfig {
        SynthConfig::small()
    }

    #[test]
    fn generation_is_deterministic() {
        let a = generate_user(&cfg(), 1);
        let b = generate_user(&cfg(), 1);
        assert_eq!(a, b);
    }

    #[test]
    fn users_differ() {
        let a = generate_user(&cfg(), 0);
        let b = generate_user(&cfg(), 1);
        assert_ne!(a.trace, b.trace);
        assert_ne!(a.places[0].pos, b.places[0].pos);
    }

    #[test]
    fn place_zero_is_home() {
        let u = generate_user(&cfg(), 2);
        assert_eq!(u.places[0].kind, PlaceKind::Home);
        assert_eq!(u.places[0].id, 0);
        assert!(u.places.len() >= 3);
    }

    #[test]
    fn visits_are_chronological_and_positive() {
        let u = generate_user(&cfg(), 0);
        for w in u.true_visits.windows(2) {
            assert!(w[1].arrive >= w[0].depart, "visits overlap: {:?} then {:?}", w[0], w[1]);
        }
        for v in &u.true_visits {
            assert!(v.dwell_secs() > 0);
        }
    }

    #[test]
    fn trace_is_strictly_ordered() {
        let u = generate_user(&cfg(), 3);
        let pts = u.trace.points();
        assert!(pts.windows(2).all(|w| w[0].time < w[1].time));
        assert!(!u.trace.is_empty());
    }

    #[test]
    fn home_is_visited_every_simulated_day() {
        let u = generate_user(&cfg(), 0);
        let home_visits: Vec<&TrueVisit> = u.true_visits.iter().filter(|v| v.kind == PlaceKind::Home).collect();
        assert!(!home_visits.is_empty());
        // home dwells dominate: overnight stays are many hours
        let max_home = home_visits.iter().map(|v| v.dwell_secs()).max().unwrap();
        assert!(max_home > 8 * 3600, "longest home stay {max_home}s");
    }

    #[test]
    fn recorded_points_near_place_during_dwell() {
        let u = generate_user(&cfg(), 1);
        let v = u.true_visits.iter().find(|v| v.dwell_secs() > 600).unwrap();
        let place = u.places[v.place];
        let during: Vec<_> = u
            .trace
            .iter()
            .filter(|p| p.time >= v.arrive && p.time < v.depart + 0)
            .collect();
        assert!(!during.is_empty());
        // All dwell-window fixes are within GPS noise of the place.
        for p in during.iter().take(200) {
            let d = haversine(p.pos, place.pos);
            assert!(d < 50.0, "dwell fix {d} m from place");
        }
    }

    #[test]
    fn trace_covers_city_scale_extent() {
        let u = generate_user(&cfg(), 0);
        let bb = u.trace.bounding_box().unwrap();
        let diag = haversine(
            LatLon::new(bb.min_lat(), bb.min_lon()).unwrap(),
            LatLon::new(bb.max_lat(), bb.max_lon()).unwrap(),
        );
        assert!(diag > 1_000.0, "user never left a 1 km box: {diag}");
        assert!(diag < 60_000.0, "user roamed beyond the city: {diag}");
    }

    #[test]
    fn secondary_places_get_varied_visit_counts() {
        // With Zipf popularity, across a few users some secondary place
        // should be visited more than once while another is visited rarely.
        let mut any_repeat = false;
        for idx in 0..cfg().n_users {
            let u = generate_user(&cfg(), idx);
            let mut counts = std::collections::HashMap::new();
            for v in u.true_visits.iter().filter(|v| v.kind == PlaceKind::Secondary) {
                *counts.entry(v.place).or_insert(0u32) += 1;
            }
            if counts.values().any(|&c| c >= 2) {
                any_repeat = true;
            }
        }
        assert!(any_repeat, "Zipf popularity should produce repeat visits");
    }

    #[test]
    fn users_share_city_destinations() {
        // Two users drawn from the same city must overlap in at least one
        // shared place across a few samples (work or errand pool).
        let c = cfg();
        let all_places: Vec<Vec<(i64, i64)>> = (0..c.n_users)
            .map(|i| {
                generate_user(&c, i)
                    .places
                    .iter()
                    .filter(|p| p.kind != PlaceKind::Home)
                    .map(|p| ((p.pos.lat() * 1e6) as i64, (p.pos.lon() * 1e6) as i64))
                    .collect()
            })
            .collect();
        let mut shared = false;
        for i in 0..all_places.len() {
            for j in (i + 1)..all_places.len() {
                if all_places[i].iter().any(|p| all_places[j].contains(p)) {
                    shared = true;
                }
            }
        }
        assert!(shared, "shared pools should make users overlap in destinations");
    }

    #[test]
    fn population_has_configured_size() {
        let pop = generate_population(&cfg());
        assert_eq!(pop.len(), cfg().n_users as usize);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn user_index_out_of_range_panics() {
        let _ = generate_user(&cfg(), cfg().n_users);
    }

    #[test]
    fn paper_scale_config_is_valid() {
        SynthConfig::paper_scale().validate();
        assert_eq!(SynthConfig::paper_scale().n_users, 182);
    }
}
