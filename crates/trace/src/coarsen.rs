//! Location coarsening and jitter.
//!
//! Two transformations on traces model the fidelity of what an app
//! receives:
//!
//! - [`snap_to_grid`] — the *coarse* location a network provider or a
//!   defensive OS returns: every fix is quantized to the center of a grid
//!   cell (the truncation defense of LP-Guardian / Micinski et al. that the
//!   paper discusses).
//! - [`jitter`] — zero-mean Gaussian noise applied per fix, modelling GPS
//!   measurement error on *fine* locations.

use crate::trajectory::Trace;
use backwatch_geo::{enu::Frame, Grid, LatLon, Meters};
use backwatch_stats::sampling::normal;
use rand::Rng;

/// Quantizes every fix of `trace` to the center of its cell in `grid`.
///
/// # Examples
///
/// ```
/// use backwatch_trace::{coarsen, Trace, TracePoint, Timestamp};
/// use backwatch_geo::{Grid, LatLon, Meters};
///
/// let origin = LatLon::new(39.9, 116.4)?;
/// let grid = Grid::new(origin, Meters::new(1000.0));
/// let trace = Trace::from_points(vec![
///     TracePoint::new(Timestamp::from_secs(0), LatLon::new(39.9001, 116.4001)?),
///     TracePoint::new(Timestamp::from_secs(1), LatLon::new(39.9002, 116.4003)?),
/// ]);
/// let coarse = coarsen::snap_to_grid(&trace, &grid);
/// // Both fixes land on the same cell center.
/// assert_eq!(coarse.points()[0].pos, coarse.points()[1].pos);
/// # Ok::<(), backwatch_geo::LatLonError>(())
/// ```
#[must_use]
pub fn snap_to_grid(trace: &Trace, grid: &Grid) -> Trace {
    let pts = trace
        .iter()
        .map(|p| {
            let mut q = *p;
            q.pos = grid.snap(p.pos);
            q
        })
        .collect();
    Trace::from_points(pts)
}

/// Adds independent zero-mean Gaussian noise of standard deviation
/// `sigma` meters (per axis) to every fix.
///
/// # Panics
///
/// Panics if `sigma` is negative or non-finite.
#[must_use]
pub fn jitter<R: Rng + ?Sized>(trace: &Trace, sigma: Meters, rng: &mut R) -> Trace {
    let sigma_m = sigma.get();
    assert!(sigma_m.is_finite() && sigma_m >= 0.0, "sigma must be >= 0, got {sigma_m}");
    let Some(first) = trace.first() else {
        return trace.clone(); // nothing to jitter
    };
    if sigma_m == 0.0 {
        return trace.clone();
    }
    let frame = Frame::new(first.pos);
    let pts = trace
        .iter()
        .map(|p| {
            let (e, n) = frame.to_enu(p.pos);
            let mut q = *p;
            q.pos = frame.to_latlon(
                Meters::new(e + normal(rng, 0.0, sigma_m)),
                Meters::new(n + normal(rng, 0.0, sigma_m)),
            );
            q
        })
        .collect();
    Trace::from_points(pts)
}

/// Jitters a single coordinate by Gaussian noise of `sigma` meters per
/// axis around itself.
#[must_use]
pub fn jitter_point<R: Rng + ?Sized>(pos: LatLon, sigma: Meters, rng: &mut R) -> LatLon {
    let sigma_m = sigma.get();
    let frame = Frame::new(pos);
    frame.to_latlon(Meters::new(normal(rng, 0.0, sigma_m)), Meters::new(normal(rng, 0.0, sigma_m)))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Timestamp, TracePoint};
    use backwatch_geo::distance::haversine;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn trace_of(n: i64) -> Trace {
        Trace::from_points(
            (0..n)
                .map(|i| TracePoint::new(Timestamp::from_secs(i), LatLon::new(39.9 + i as f64 * 1e-5, 116.4).unwrap()))
                .collect(),
        )
    }

    #[test]
    fn snap_preserves_times() {
        let tr = trace_of(5);
        let grid = Grid::new(LatLon::new(39.9, 116.4).unwrap(), Meters::new(500.0));
        let snapped = snap_to_grid(&tr, &grid);
        assert_eq!(snapped.len(), tr.len());
        for (a, b) in tr.iter().zip(snapped.iter()) {
            assert_eq!(a.time, b.time);
        }
    }

    #[test]
    fn snap_quantizes_nearby_points_together() {
        let tr = trace_of(5);
        let grid = Grid::new(LatLon::new(39.9, 116.4).unwrap(), Meters::new(1000.0));
        let snapped = snap_to_grid(&tr, &grid);
        let first = snapped.points()[0].pos;
        assert!(snapped.iter().all(|p| p.pos == first));
    }

    #[test]
    fn jitter_zero_sigma_is_identity() {
        let tr = trace_of(3);
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(jitter(&tr, Meters::ZERO, &mut rng), tr);
    }

    #[test]
    fn jitter_displacement_is_bounded_statistically() {
        let tr = trace_of(1000);
        let mut rng = StdRng::seed_from_u64(2);
        let noisy = jitter(&tr, Meters::new(5.0), &mut rng);
        let mean_disp: f64 = tr.iter().zip(noisy.iter()).map(|(a, b)| haversine(a.pos, b.pos)).sum::<f64>() / tr.len() as f64;
        // mean of Rayleigh(σ=5) is σ√(π/2) ≈ 6.27 m
        assert!((mean_disp - 6.27).abs() < 0.8, "mean displacement {mean_disp}");
    }

    #[test]
    fn jitter_point_stays_close() {
        let mut rng = StdRng::seed_from_u64(3);
        let p = LatLon::new(39.9, 116.4).unwrap();
        for _ in 0..100 {
            let q = jitter_point(p, Meters::new(3.0), &mut rng);
            assert!(haversine(p, q) < 30.0);
        }
    }

    #[test]
    #[should_panic(expected = "sigma")]
    fn negative_sigma_panics() {
        let mut rng = StdRng::seed_from_u64(4);
        let _ = jitter(&trace_of(1), Meters::new(-1.0), &mut rng);
    }
}
