//! Location traces: ordered sequences of timestamped fixes.

use crate::point::{Timestamp, TracePoint};
use backwatch_geo::{distance, BoundingBox, Seconds};
use std::error::Error;
use std::fmt;

/// An ordered location trace.
///
/// Invariant: points are sorted by time with *strictly* increasing
/// timestamps (one fix per second at most, matching the Geolife recording
/// model).
///
/// # Examples
///
/// ```
/// use backwatch_trace::{Trace, TracePoint, Timestamp};
/// use backwatch_geo::LatLon;
///
/// let mut trace = Trace::new();
/// trace.push(TracePoint::new(Timestamp::from_secs(0), LatLon::new(39.9, 116.4)?))?;
/// trace.push(TracePoint::new(Timestamp::from_secs(1), LatLon::new(39.9001, 116.4)?))?;
/// assert_eq!(trace.len(), 2);
/// assert_eq!(trace.duration_secs(), 1);
/// # Ok::<(), Box<dyn std::error::Error>>(())
/// ```
#[derive(Debug, Clone, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Trace {
    points: Vec<TracePoint>,
}

/// Error returned when a trace operation would violate the ordering
/// invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceError {
    previous: Timestamp,
    offered: Timestamp,
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "trace points must have strictly increasing timestamps: {} does not follow {}",
            self.offered, self.previous
        )
    }
}

impl Error for TraceError {}

impl Trace {
    /// Creates an empty trace.
    #[must_use]
    pub fn new() -> Self {
        Self { points: Vec::new() }
    }

    /// Creates an empty trace with room for `capacity` points.
    #[must_use]
    pub fn with_capacity(capacity: usize) -> Self {
        Self {
            points: Vec::with_capacity(capacity),
        }
    }

    /// Builds a trace from possibly-unsorted points, sorting by time and
    /// dropping all but the first fix for any duplicated timestamp.
    #[must_use]
    pub fn from_points(mut points: Vec<TracePoint>) -> Self {
        points.sort_by_key(|p| p.time);
        points.dedup_by_key(|p| p.time);
        Self { points }
    }

    /// Appends a point.
    ///
    /// # Errors
    ///
    /// Returns [`TraceError`] if `point.time` is not strictly after the last
    /// point's time.
    pub fn push(&mut self, point: TracePoint) -> Result<(), TraceError> {
        if let Some(last) = self.points.last() {
            if point.time <= last.time {
                return Err(TraceError {
                    previous: last.time,
                    offered: point.time,
                });
            }
        }
        self.points.push(point);
        Ok(())
    }

    /// Number of fixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.points.len()
    }

    /// Whether the trace holds no fixes.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.points.is_empty()
    }

    /// The fixes, in time order.
    #[must_use]
    pub fn points(&self) -> &[TracePoint] {
        &self.points
    }

    /// Iterates over the fixes in time order.
    pub fn iter(&self) -> std::slice::Iter<'_, TracePoint> {
        self.points.iter()
    }

    /// The first fix, if any.
    #[must_use]
    pub fn first(&self) -> Option<&TracePoint> {
        self.points.first()
    }

    /// The last fix, if any.
    #[must_use]
    pub fn last(&self) -> Option<&TracePoint> {
        self.points.last()
    }

    /// Elapsed seconds between first and last fix (zero for fewer than two
    /// fixes).
    #[must_use]
    pub fn duration_secs(&self) -> i64 {
        match (self.points.first(), self.points.last()) {
            (Some(a), Some(b)) => b.time - a.time,
            _ => 0,
        }
    }

    /// Total path length in meters (sum of consecutive great-circle hops).
    #[must_use]
    pub fn path_length_m(&self) -> f64 {
        self.points
            .iter()
            .zip(self.points.iter().skip(1))
            .map(|(a, b)| distance::haversine(a.pos, b.pos))
            .sum()
    }

    /// The smallest box containing every fix, or `None` if empty.
    #[must_use]
    pub fn bounding_box(&self) -> Option<BoundingBox> {
        BoundingBox::from_points(self.points.iter().map(|p| p.pos))
    }

    /// Splits the trace into trajectories at recording gaps longer than
    /// `max_gap` — the Geolife notion of separate trips.
    ///
    /// # Panics
    ///
    /// Panics if `max_gap` is not positive.
    #[must_use]
    pub fn split_by_gap(&self, max_gap: Seconds) -> Vec<Trace> {
        let max_gap_secs = max_gap.get();
        assert!(max_gap_secs > 0, "gap must be positive, got {max_gap_secs}");
        let mut out = Vec::new();
        let mut current: Vec<TracePoint> = Vec::new();
        for &p in &self.points {
            if let Some(last) = current.last() {
                if p.time - last.time > max_gap_secs {
                    out.push(Trace {
                        points: std::mem::take(&mut current),
                    });
                }
            }
            current.push(p);
        }
        if !current.is_empty() {
            out.push(Trace { points: current });
        }
        out
    }

    /// Consumes the trace and returns its points.
    #[must_use]
    pub fn into_points(self) -> Vec<TracePoint> {
        self.points
    }
}

impl<'a> IntoIterator for &'a Trace {
    type Item = &'a TracePoint;
    type IntoIter = std::slice::Iter<'a, TracePoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.iter()
    }
}

impl IntoIterator for Trace {
    type Item = TracePoint;
    type IntoIter = std::vec::IntoIter<TracePoint>;

    fn into_iter(self) -> Self::IntoIter {
        self.points.into_iter()
    }
}

impl FromIterator<TracePoint> for Trace {
    /// Collects points into a trace, sorting and deduplicating timestamps
    /// (see [`Trace::from_points`]).
    fn from_iter<I: IntoIterator<Item = TracePoint>>(iter: I) -> Self {
        Self::from_points(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::LatLon;

    fn pt(t: i64, lat: f64, lon: f64) -> TracePoint {
        TracePoint::new(Timestamp::from_secs(t), LatLon::new(lat, lon).unwrap())
    }

    #[test]
    fn push_enforces_order() {
        let mut tr = Trace::new();
        tr.push(pt(0, 39.9, 116.4)).unwrap();
        tr.push(pt(1, 39.9, 116.4)).unwrap();
        let err = tr.push(pt(1, 39.9, 116.4)).unwrap_err();
        assert!(err.to_string().contains("strictly increasing"));
        assert_eq!(tr.len(), 2);
    }

    #[test]
    fn from_points_sorts_and_dedups() {
        let tr = Trace::from_points(vec![pt(5, 1.0, 1.0), pt(1, 2.0, 2.0), pt(5, 3.0, 3.0)]);
        assert_eq!(tr.len(), 2);
        assert_eq!(tr.first().unwrap().time.as_secs(), 1);
        assert_eq!(tr.last().unwrap().time.as_secs(), 5);
        // first occurrence at t=5 wins after the sort (stable)
        assert_eq!(tr.last().unwrap().pos.lat(), 1.0);
    }

    #[test]
    fn duration_and_empty() {
        let tr = Trace::new();
        assert!(tr.is_empty());
        assert_eq!(tr.duration_secs(), 0);
        let tr = Trace::from_points(vec![pt(10, 0.0, 0.0), pt(70, 0.0, 0.0)]);
        assert_eq!(tr.duration_secs(), 60);
    }

    #[test]
    fn path_length_accumulates() {
        // ~111.2 km per degree of latitude
        let tr = Trace::from_points(vec![pt(0, 0.0, 0.0), pt(1, 1.0, 0.0), pt(2, 2.0, 0.0)]);
        let len = tr.path_length_m();
        assert!((len - 2.0 * 111_195.0).abs() < 200.0, "len={len}");
    }

    #[test]
    fn split_by_gap_partitions_all_points() {
        let tr = Trace::from_points(vec![pt(0, 0.0, 0.0), pt(10, 0.0, 0.0), pt(500, 0.0, 0.0), pt(505, 0.0, 0.0)]);
        let parts = tr.split_by_gap(Seconds::new(60));
        assert_eq!(parts.len(), 2);
        assert_eq!(parts[0].len(), 2);
        assert_eq!(parts[1].len(), 2);
        let total: usize = parts.iter().map(Trace::len).sum();
        assert_eq!(total, tr.len());
    }

    #[test]
    fn split_no_gaps_is_identity() {
        let tr = Trace::from_points(vec![pt(0, 0.0, 0.0), pt(1, 0.0, 0.0)]);
        let parts = tr.split_by_gap(Seconds::new(10));
        assert_eq!(parts.len(), 1);
        assert_eq!(parts[0], tr);
    }

    #[test]
    fn bounding_box_covers_points() {
        let tr = Trace::from_points(vec![pt(0, 1.0, 2.0), pt(1, -1.0, 4.0)]);
        let bb = tr.bounding_box().unwrap();
        assert_eq!(bb.min_lat(), -1.0);
        assert_eq!(bb.max_lon(), 4.0);
    }

    #[test]
    fn collect_from_iterator() {
        let tr: Trace = vec![pt(3, 0.0, 0.0), pt(1, 0.0, 0.0)].into_iter().collect();
        assert_eq!(tr.first().unwrap().time.as_secs(), 1);
    }
}
