//! Struct-of-arrays projected traces — the data-oriented twin of
//! [`ProjectedTrace`].
//!
//! The certified planar filter is, at paper scale, one f64 distance kernel
//! run hundreds of millions of times over coordinate streams. Feeding it
//! from an array-of-structs (`Vec<ProjectedPoint>`, 40 bytes per fix of
//! which the hot kernel reads 16) wastes more than half of every cache
//! line and denies the compiler any chance to vectorize. A
//! [`SoaProjectedTrace`] stores each field as its own column — `x`, `y`,
//! `timestamp`, plus a geographic position column the refine fallback and
//! reported centroids need — so batch geometric predicates stream over
//! dense `&[f64]` slices (see `backwatch-core`'s `poi::soa` kernels).
//! Positions stay as whole [`LatLon`] values (never split into raw
//! degrees and re-wrapped) so materialized points are bit-verbatim.
//!
//! The layout is the only thing that changes: columns hold bit-verbatim
//! the same values [`ProjectedTrace`] holds ([`SoaProjectedTrace::project`]
//! and [`ProjectedTrace::project`] share one envelope analysis), the same
//! degenerate handling applies (polar anchor / antimeridian span ⇒
//! `slack_per_east_meter() == +inf`, all-zero planar columns), and the
//! view iterators ([`sampled`](SoaProjectedTrace::sampled),
//! [`rotated_from`](SoaProjectedTrace::rotated_from)) reproduce the
//! AoS views element-for-element. The equivalence tests in this module and
//! the workspace-level `tests/planar_equivalence.rs` pin that.

use crate::point::{Timestamp, TracePoint};
use crate::projected::{envelope, Envelope, ProjectedPoint, ProjectedTrace};
use crate::trajectory::Trace;
use backwatch_geo::projection::LocalProjection;
use backwatch_geo::LatLon;

/// A trace projected once into flat planar meters, stored column-wise.
///
/// # Examples
///
/// ```
/// use backwatch_trace::{SoaProjectedTrace, Trace, TracePoint, Timestamp};
/// use backwatch_geo::LatLon;
///
/// let pts: Vec<TracePoint> = (0..60)
///     .map(|t| TracePoint::new(Timestamp::from_secs(t), LatLon::new(39.9, 116.4).unwrap()))
///     .collect();
/// let soa = SoaProjectedTrace::project(&Trace::from_points(pts));
/// assert_eq!(soa.len(), 60);
/// assert_eq!(soa.xs().len(), soa.ys().len()); // dense parallel columns
/// ```
#[derive(Debug, Clone)]
pub struct SoaProjectedTrace {
    projection: LocalProjection,
    slack_per_east_meter: f64,
    times: Vec<i64>,
    pos: Vec<LatLon>,
    xs: Vec<f64>,
    ys: Vec<f64>,
}

impl SoaProjectedTrace {
    /// Projects `trace` onto a tangent plane anchored at its first fix,
    /// directly into columns. Values are bit-identical to
    /// [`ProjectedTrace::project`] on the same trace.
    #[must_use]
    pub fn project(trace: &Trace) -> Self {
        let pts = trace.points();
        let n = pts.len();
        let mut out = match envelope(pts) {
            Envelope::Planar {
                projection,
                slack_per_east_meter,
            } => Self::empty(projection, slack_per_east_meter, n),
            Envelope::Degenerate { projection } => Self::empty(projection, f64::INFINITY, n),
        };
        let planar = out.slack_per_east_meter.is_finite();
        for p in pts {
            let (x, y) = if planar { out.projection.project(p.pos) } else { (0.0, 0.0) };
            out.times.push(p.time.as_secs());
            out.pos.push(p.pos);
            out.xs.push(x);
            out.ys.push(y);
        }
        out
    }

    /// Re-lays an already-projected trace out column-wise (bit-verbatim;
    /// no geometry is recomputed).
    #[must_use]
    pub fn from_projected(projected: &ProjectedTrace) -> Self {
        let mut out = Self::empty(*projected.projection(), projected.slack_per_east_meter(), projected.len());
        for p in projected.points() {
            out.times.push(p.time.as_secs());
            out.pos.push(p.pos);
            out.xs.push(p.x);
            out.ys.push(p.y);
        }
        out
    }

    fn empty(projection: LocalProjection, slack_per_east_meter: f64, capacity: usize) -> Self {
        Self {
            projection,
            slack_per_east_meter,
            times: Vec::with_capacity(capacity),
            pos: Vec::with_capacity(capacity),
            xs: Vec::with_capacity(capacity),
            ys: Vec::with_capacity(capacity),
        }
    }

    /// The projection the columns were computed on.
    #[must_use]
    pub fn projection(&self) -> &LocalProjection {
        &self.projection
    }

    /// Certified planar-vs-equirectangular error per meter of planar east
    /// separation (`+inf` outside the fast path's envelope; see
    /// [`ProjectedTrace::slack_per_east_meter`]).
    #[must_use]
    pub fn slack_per_east_meter(&self) -> f64 {
        self.slack_per_east_meter
    }

    /// East offsets from the anchor, meters, in trace order.
    #[must_use]
    pub fn xs(&self) -> &[f64] {
        &self.xs
    }

    /// North offsets from the anchor, meters, in trace order.
    #[must_use]
    pub fn ys(&self) -> &[f64] {
        &self.ys
    }

    /// Geographic positions in trace order (kept as whole [`LatLon`]
    /// values so the exact-metric refine path and reported centroids are
    /// bit-identical to the AoS pipeline).
    #[must_use]
    pub fn positions(&self) -> &[LatLon] {
        &self.pos
    }

    /// Timestamps (seconds) in trace order.
    #[must_use]
    pub fn times(&self) -> &[i64] {
        &self.times
    }

    /// Number of fixes.
    #[must_use]
    pub fn len(&self) -> usize {
        self.times.len()
    }

    /// Whether the trace is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.times.is_empty()
    }

    /// Materializes the fix at `index` (all five columns re-joined).
    ///
    /// # Panics
    ///
    /// Panics if `index >= len`.
    #[must_use]
    pub fn point(&self, index: usize) -> ProjectedPoint {
        ProjectedPoint {
            time: Timestamp::from_secs(self.times[index]),
            pos: self.pos[index],
            x: self.xs[index],
            y: self.ys[index],
        }
    }

    /// The fixes in trace order, materialized on the fly. Walks the four
    /// columns as zipped iterators rather than indexing [`point`] per fix,
    /// so the drive loop of a point-at-a-time consumer carries no bounds
    /// checks.
    ///
    /// [`point`]: SoaProjectedTrace::point
    pub fn iter(&self) -> impl Iterator<Item = ProjectedPoint> + '_ {
        self.times
            .iter()
            .zip(&self.pos)
            .zip(&self.xs)
            .zip(&self.ys)
            .map(|(((&t, &pos), &x), &y)| ProjectedPoint {
                time: Timestamp::from_secs(t),
                pos,
                x,
                y,
            })
    }

    /// Borrowed view of the fixes selected by `indices` (as produced by
    /// [`crate::sampling::downsample_indices`]) — element-for-element equal
    /// to [`ProjectedTrace::sampled`] on the AoS layout.
    pub fn sampled<'a>(&'a self, indices: &'a [u32]) -> impl Iterator<Item = ProjectedPoint> + 'a {
        indices.iter().map(|&i| self.point(i as usize))
    }

    /// Borrowed view of the trace rotated to begin at fix `start`, with the
    /// wrapped head's timestamps shifted exactly as
    /// [`ProjectedTrace::rotated_from`] does. `start == 0` (including on an
    /// empty trace) yields the trace unchanged.
    ///
    /// # Panics
    ///
    /// Panics if `start > 0` and `start >= len`.
    pub fn rotated_from(&self, start: usize) -> impl Iterator<Item = ProjectedPoint> + '_ {
        assert!(
            start == 0 || start < self.len(),
            "start {start} out of range for {} points",
            self.len()
        );
        let (last_t, head_base) = if start == 0 {
            (0, 0)
        } else {
            (
                self.times.last().copied().unwrap_or(0),
                self.times.first().copied().unwrap_or(0),
            )
        };
        let seam = 1;
        let tail = (start..self.len()).map(|i| self.point(i));
        let head = (0..start).map(move |i| {
            let p = self.point(i);
            ProjectedPoint {
                time: Timestamp::from_secs(last_t + seam + (p.time.as_secs() - head_base)),
                ..p
            }
        });
        tail.chain(head)
    }

    /// Reconstructs the plain [`TracePoint`] at `index` (geographic
    /// position and timestamp only).
    #[must_use]
    pub fn trace_point(&self, index: usize) -> TracePoint {
        TracePoint::new(Timestamp::from_secs(self.times[index]), self.pos[index])
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::sampling;
    use backwatch_geo::Seconds;

    fn pt(t: i64, lat: f64, lon: f64) -> TracePoint {
        TracePoint::new(Timestamp::from_secs(t), LatLon::new(lat, lon).unwrap())
    }

    fn city_trace() -> Trace {
        Trace::from_points(
            (0..200)
                .map(|t| pt(t * 7, 39.9 + (t as f64) * 1e-4, 116.4 - (t as f64) * 2e-4))
                .collect(),
        )
    }

    fn assert_points_bitwise_eq(a: ProjectedPoint, b: ProjectedPoint, what: &str) {
        assert_eq!(a.time, b.time, "{what}: time");
        assert_eq!(a.pos.lat().to_bits(), b.pos.lat().to_bits(), "{what}: lat");
        assert_eq!(a.pos.lon().to_bits(), b.pos.lon().to_bits(), "{what}: lon");
        assert_eq!(a.x.to_bits(), b.x.to_bits(), "{what}: x");
        assert_eq!(a.y.to_bits(), b.y.to_bits(), "{what}: y");
    }

    #[test]
    fn project_matches_aos_projection_bitwise() {
        let tr = city_trace();
        let aos = ProjectedTrace::project(&tr);
        let soa = SoaProjectedTrace::project(&tr);
        assert_eq!(aos.len(), soa.len());
        assert_eq!(
            aos.slack_per_east_meter().to_bits(),
            soa.slack_per_east_meter().to_bits(),
            "slack"
        );
        for (i, p) in aos.points().iter().enumerate() {
            assert_points_bitwise_eq(*p, soa.point(i), &format!("point {i}"));
        }
    }

    #[test]
    fn from_projected_matches_direct_projection() {
        let tr = city_trace();
        let aos = ProjectedTrace::project(&tr);
        let direct = SoaProjectedTrace::project(&tr);
        let converted = SoaProjectedTrace::from_projected(&aos);
        assert_eq!(direct.len(), converted.len());
        for i in 0..direct.len() {
            assert_points_bitwise_eq(direct.point(i), converted.point(i), &format!("point {i}"));
        }
    }

    #[test]
    fn empty_trace_projects_to_empty() {
        let soa = SoaProjectedTrace::project(&Trace::new());
        assert!(soa.is_empty());
        assert_eq!(soa.iter().count(), 0);
        assert_eq!(soa.rotated_from(0).count(), 0);
    }

    #[test]
    fn degenerate_traces_match_aos_handling() {
        let polar = Trace::from_points(vec![pt(0, 89.5, 10.0), pt(1, 89.5, 11.0)]);
        let antimeridian = Trace::from_points(vec![pt(0, 0.0, -179.9), pt(1, 0.0, 179.9)]);
        for tr in [polar, antimeridian] {
            let aos = ProjectedTrace::project(&tr);
            let soa = SoaProjectedTrace::project(&tr);
            assert!(soa.slack_per_east_meter().is_infinite());
            assert_eq!(
                aos.projection().anchor(),
                soa.projection().anchor(),
                "degenerate anchor must match"
            );
            for (i, p) in aos.points().iter().enumerate() {
                assert_points_bitwise_eq(*p, soa.point(i), &format!("point {i}"));
            }
        }
    }

    #[test]
    fn sampled_view_matches_aos_view() {
        let tr = city_trace();
        let aos = ProjectedTrace::project(&tr);
        let soa = SoaProjectedTrace::project(&tr);
        for interval in [1, 60, 7200] {
            let indices = sampling::downsample_indices(&tr, Seconds::new(interval));
            let a: Vec<ProjectedPoint> = aos.sampled(&indices).collect();
            let s: Vec<ProjectedPoint> = soa.sampled(&indices).collect();
            assert_eq!(a.len(), s.len());
            for (x, y) in a.into_iter().zip(s) {
                assert_points_bitwise_eq(x, y, &format!("interval {interval}"));
            }
        }
    }

    #[test]
    fn rotated_view_matches_aos_view() {
        let tr = city_trace();
        let aos = ProjectedTrace::project(&tr);
        let soa = SoaProjectedTrace::project(&tr);
        for start in [0, 1, 57, 199] {
            let a: Vec<ProjectedPoint> = aos.rotated_from(start).collect();
            let s: Vec<ProjectedPoint> = soa.rotated_from(start).collect();
            assert_eq!(a.len(), s.len());
            for (x, y) in a.into_iter().zip(s) {
                assert_points_bitwise_eq(x, y, &format!("start {start}"));
            }
        }
    }

    #[test]
    fn trace_point_round_trips() {
        let tr = city_trace();
        let soa = SoaProjectedTrace::project(&tr);
        for (i, p) in tr.iter().enumerate() {
            assert_eq!(soa.trace_point(i), *p);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rotated_from_rejects_out_of_range_start() {
        let soa = SoaProjectedTrace::project(&city_trace());
        let _ = soa.rotated_from(10_000);
    }
}
