//! Transportation-mode segmentation (after Zheng et al., *Understanding
//! transportation modes based on GPS data*, cited by the paper as \[36\]).
//!
//! Speed-based classification of a trace into still/walk/bike/vehicle
//! segments. The thresholds follow the Geolife line of work; speeds are
//! smoothed over a rolling time window before classification so single
//! noisy hops do not fragment segments.

use crate::point::Timestamp;
use crate::trajectory::Trace;
use backwatch_geo::distance::Metric;
use backwatch_geo::Seconds;
use std::fmt;

/// A coarse transportation mode.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum TransportMode {
    /// Not moving (dwell).
    Still,
    /// Walking pace.
    Walk,
    /// Cycling pace.
    Bike,
    /// Motorized transport.
    Vehicle,
}

impl TransportMode {
    /// Classifies a smoothed speed in m/s.
    #[must_use]
    pub fn from_speed(speed_mps: f64) -> Self {
        if speed_mps < 0.4 {
            TransportMode::Still
        } else if speed_mps < 2.2 {
            TransportMode::Walk
        } else if speed_mps < 6.5 {
            TransportMode::Bike
        } else {
            TransportMode::Vehicle
        }
    }
}

impl fmt::Display for TransportMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            TransportMode::Still => "still",
            TransportMode::Walk => "walk",
            TransportMode::Bike => "bike",
            TransportMode::Vehicle => "vehicle",
        })
    }
}

/// A maximal run of consecutive fixes classified as one mode.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ModeSegment {
    /// The segment's mode.
    pub mode: TransportMode,
    /// First fix time.
    pub start: Timestamp,
    /// Last fix time.
    pub end: Timestamp,
    /// Fixes in the segment.
    pub n_points: usize,
    /// Mean smoothed speed over the segment, m/s.
    pub mean_speed_mps: f64,
}

impl ModeSegment {
    /// Segment duration in seconds.
    #[must_use]
    pub fn duration_secs(&self) -> i64 {
        self.end - self.start
    }
}

/// Segments a trace into transport modes.
///
/// Per-hop speeds are averaged over a trailing `smooth` window; each
/// fix is classified from the smoothed speed and consecutive fixes of the
/// same mode merge into segments. Traces with fewer than two fixes yield
/// no segments.
///
/// # Panics
///
/// Panics if `smooth` is shorter than one second.
#[must_use]
pub fn segment_modes(trace: &Trace, smooth: Seconds) -> Vec<ModeSegment> {
    let smooth_secs = smooth.get();
    assert!(smooth_secs >= 1, "smoothing window must be at least 1 s");
    let pts = trace.points();
    if pts.len() < 2 {
        return Vec::new();
    }
    let metric = Metric::Equirectangular;
    // distance and elapsed time of each hop i -> i+1
    let hops: Vec<(f64, i64)> = pts
        .windows(2)
        .map(|w| (metric.distance(w[0].pos, w[1].pos), w[1].time - w[0].time))
        .collect();

    // trailing-window smoothed speed for the fix *ending* each hop
    let mut smoothed: Vec<f64> = Vec::with_capacity(hops.len());
    let mut window_start = 0usize;
    let mut dist_acc = 0.0;
    let mut time_acc = 0i64;
    for (i, &(d, dt)) in hops.iter().enumerate() {
        dist_acc += d;
        time_acc += dt;
        while time_acc > smooth_secs && window_start < i {
            dist_acc -= hops[window_start].0;
            time_acc -= hops[window_start].1;
            window_start += 1;
        }
        smoothed.push(if time_acc > 0 { dist_acc / time_acc as f64 } else { 0.0 });
    }

    // merge consecutive fixes of equal mode
    let mut segments: Vec<ModeSegment> = Vec::new();
    for (i, &speed) in smoothed.iter().enumerate() {
        let mode = TransportMode::from_speed(speed);
        let t = pts[i + 1].time;
        match segments.last_mut() {
            Some(seg) if seg.mode == mode => {
                seg.end = t;
                seg.n_points += 1;
                seg.mean_speed_mps += (speed - seg.mean_speed_mps) / seg.n_points as f64;
            }
            _ => segments.push(ModeSegment {
                mode,
                start: pts[i].time,
                end: t,
                n_points: 2,
                mean_speed_mps: speed,
            }),
        }
    }
    segments
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::TracePoint;
    use backwatch_geo::LatLon;

    /// Build a 1 Hz trace moving north at `speed` m/s for `secs`.
    fn moving(t0: i64, secs: i64, lat0: f64, speed: f64) -> Vec<TracePoint> {
        let deg_per_m = 1.0 / 111_195.0;
        (0..secs)
            .map(|i| {
                TracePoint::new(
                    Timestamp::from_secs(t0 + i),
                    LatLon::new(lat0 + i as f64 * speed * deg_per_m, 116.4).unwrap(),
                )
            })
            .collect()
    }

    #[test]
    fn classification_thresholds() {
        assert_eq!(TransportMode::from_speed(0.0), TransportMode::Still);
        assert_eq!(TransportMode::from_speed(1.4), TransportMode::Walk);
        assert_eq!(TransportMode::from_speed(4.0), TransportMode::Bike);
        assert_eq!(TransportMode::from_speed(15.0), TransportMode::Vehicle);
    }

    #[test]
    fn pure_walk_is_one_segment() {
        let trace = Trace::from_points(moving(0, 300, 39.9, 1.4));
        let segs = segment_modes(&trace, Seconds::new(30));
        assert_eq!(segs.len(), 1);
        assert_eq!(segs[0].mode, TransportMode::Walk);
        assert_eq!(segs[0].duration_secs(), 299);
        assert!((segs[0].mean_speed_mps - 1.4).abs() < 0.1);
    }

    #[test]
    fn dwell_then_drive_yields_two_segments() {
        let mut pts = moving(0, 300, 39.9, 0.0);
        pts.extend(moving(300, 300, 39.9, 12.0));
        let segs = segment_modes(&Trace::from_points(pts), Seconds::new(30));
        let modes: Vec<TransportMode> = segs.iter().map(|s| s.mode).collect();
        assert!(modes.starts_with(&[TransportMode::Still]));
        assert_eq!(*modes.last().unwrap(), TransportMode::Vehicle);
        // transition may include a brief walk/bike ramp from smoothing
        assert!(segs.len() <= 4, "{segs:?}");
    }

    #[test]
    fn smoothing_suppresses_threshold_jitter() {
        // hop speeds alternating around the walk/bike threshold: without
        // smoothing the classifier flip-flops; a 30 s window sees the
        // stable mean (1.85 m/s = walk)
        let deg_per_m = 1.0 / 111_195.0;
        let mut lat = 39.9;
        let pts: Vec<TracePoint> = (0..200)
            .map(|i| {
                let speed = if i % 2 == 0 { 1.2 } else { 2.5 };
                lat += speed * deg_per_m;
                TracePoint::new(Timestamp::from_secs(i), LatLon::new(lat, 116.4).unwrap())
            })
            .collect();
        let trace = Trace::from_points(pts);
        let rough = segment_modes(&trace, Seconds::new(1));
        let smooth = segment_modes(&trace, Seconds::new(30));
        assert!(rough.len() > 20, "unsmoothed flip-flops: {} segments", rough.len());
        assert!(smooth.len() <= 2, "smoothed: {smooth:?}");
        assert_eq!(smooth.last().unwrap().mode, TransportMode::Walk);
    }

    #[test]
    fn segments_partition_the_trace_in_time() {
        let mut pts = moving(0, 200, 39.9, 1.0);
        pts.extend(moving(200, 200, 39.9 + 0.0018, 5.0));
        pts.extend(moving(400, 200, 39.9 + 0.0108, 0.0));
        let trace = Trace::from_points(pts);
        let segs = segment_modes(&trace, Seconds::new(20));
        assert_eq!(segs.first().unwrap().start, trace.first().unwrap().time);
        assert_eq!(segs.last().unwrap().end, trace.last().unwrap().time);
        for w in segs.windows(2) {
            assert_eq!(w[0].end, w[1].start, "segments must be contiguous");
        }
    }

    #[test]
    fn tiny_traces_have_no_segments() {
        assert!(segment_modes(&Trace::new(), Seconds::new(30)).is_empty());
        let one = Trace::from_points(moving(0, 1, 39.9, 1.0));
        assert!(segment_modes(&one, Seconds::new(30)).is_empty());
    }
}
