//! Interleaving per-user traces into one global ingest stream.
//!
//! An ingestion service does not see one user's trace at a time: fixes
//! from the whole population arrive interleaved in wall-clock order, and
//! the service must route each one to its user's engine. [`Interleaver`]
//! is the feeding side of that workload — a deterministic k-way merge of
//! per-user traces into a single `(user_id, fix)` stream ordered by
//! timestamp, with ties broken by user id so the stream is reproducible
//! whatever the input order.
//!
//! Each trace is already strictly increasing in time, so the merge is a
//! binary heap over the current head of every stream: `O(log k)` per fix
//! for `k` concurrent users, independent of trace lengths.

use crate::point::TracePoint;
use crate::trajectory::Trace;
use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// One source stream's cursor inside the merge heap.
///
/// Ordered so the `BinaryHeap` (a max-heap) surfaces the *earliest*
/// `(time, user_id)` pair first — the comparison is reversed.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
struct Head {
    time_secs: i64,
    user_id: u64,
    stream: usize,
}

impl Ord for Head {
    fn cmp(&self, other: &Self) -> Ordering {
        // Reverse: the heap pops the smallest (time, user, stream) triple.
        (other.time_secs, other.user_id, other.stream).cmp(&(self.time_secs, self.user_id, self.stream))
    }
}

impl PartialOrd for Head {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

/// A deterministic k-way merge of per-user traces into one global
/// `(user_id, fix)` stream in `(time, user_id)` order.
///
/// # Examples
///
/// ```
/// use backwatch_trace::interleave::Interleaver;
/// use backwatch_trace::{Trace, TracePoint, Timestamp};
/// use backwatch_geo::LatLon;
///
/// let user = |t0: i64| {
///     Trace::from_points(
///         (0..3)
///             .map(|i| TracePoint::new(Timestamp::from_secs(t0 + 2 * i), LatLon::new(39.9, 116.4).unwrap()))
///             .collect(),
///     )
/// };
/// let merged: Vec<(u64, i64)> = Interleaver::new(vec![(7, user(0)), (3, user(1))])
///     .map(|(id, p)| (id, p.time.as_secs()))
///     .collect();
/// assert_eq!(merged, [(7, 0), (3, 1), (7, 2), (3, 3), (7, 4), (3, 5)]);
/// ```
#[derive(Debug, Clone)]
pub struct Interleaver {
    streams: Vec<(u64, Trace)>,
    /// Per-stream index of the next fix to yield.
    cursors: Vec<usize>,
    heap: BinaryHeap<Head>,
    remaining: usize,
}

impl Interleaver {
    /// Builds the merge over `streams` of `(user_id, trace)`. Empty traces
    /// are fine (they simply contribute nothing); duplicate user ids are
    /// merged like any other pair of streams, with the stream index as the
    /// final tie-break.
    #[must_use]
    pub fn new(streams: Vec<(u64, Trace)>) -> Self {
        crate::obs::register();
        crate::obs::INTERLEAVE_STREAMS.add(streams.len() as u64);
        let mut heap = BinaryHeap::with_capacity(streams.len());
        let mut remaining = 0;
        for (stream, (user_id, trace)) in streams.iter().enumerate() {
            remaining += trace.len();
            if let Some(first) = trace.points().first() {
                heap.push(Head {
                    time_secs: first.time.as_secs(),
                    user_id: *user_id,
                    stream,
                });
            }
        }
        // Pass-level accounting (one add per merge, never per fix).
        crate::obs::INTERLEAVE_FIXES.add(remaining as u64);
        let cursors = vec![0; streams.len()];
        Self {
            streams,
            cursors,
            heap,
            remaining,
        }
    }

    /// Total fixes left to yield.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.remaining
    }
}

impl Iterator for Interleaver {
    type Item = (u64, TracePoint);

    fn next(&mut self) -> Option<(u64, TracePoint)> {
        let head = self.heap.pop()?;
        let (user_id, trace) = self.streams.get(head.stream)?;
        let idx = *self.cursors.get(head.stream)?;
        let point = *trace.points().get(idx)?;
        if let Some(cursor) = self.cursors.get_mut(head.stream) {
            *cursor = idx + 1;
            if let Some(next) = trace.points().get(idx + 1) {
                self.heap.push(Head {
                    time_secs: next.time.as_secs(),
                    user_id: *user_id,
                    stream: head.stream,
                });
            }
        }
        self.remaining = self.remaining.saturating_sub(1);
        Some((*user_id, point))
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        (self.remaining, Some(self.remaining))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Timestamp;
    use backwatch_geo::LatLon;

    fn trace_at(times: &[i64]) -> Trace {
        Trace::from_points(
            times
                .iter()
                .map(|&t| TracePoint::new(Timestamp::from_secs(t), LatLon::new(39.9, 116.4).unwrap()))
                .collect(),
        )
    }

    #[test]
    fn merges_in_time_order() {
        let merged: Vec<(u64, i64)> = Interleaver::new(vec![(1, trace_at(&[0, 10, 20])), (2, trace_at(&[5, 15, 25]))])
            .map(|(id, p)| (id, p.time.as_secs()))
            .collect();
        assert_eq!(merged, [(1, 0), (2, 5), (1, 10), (2, 15), (1, 20), (2, 25)]);
    }

    #[test]
    fn ties_break_by_user_id_not_input_order() {
        let a = Interleaver::new(vec![(9, trace_at(&[0])), (4, trace_at(&[0]))]);
        let b = Interleaver::new(vec![(4, trace_at(&[0])), (9, trace_at(&[0]))]);
        let ids = |it: Interleaver| it.map(|(id, _)| id).collect::<Vec<_>>();
        assert_eq!(ids(a), [4, 9]);
        assert_eq!(ids(b), [4, 9]);
    }

    #[test]
    fn empty_streams_contribute_nothing() {
        let merged: Vec<(u64, TracePoint)> =
            Interleaver::new(vec![(1, Trace::new()), (2, trace_at(&[3])), (3, Trace::new())]).collect();
        assert_eq!(merged.len(), 1);
        assert_eq!(merged[0].0, 2);
    }

    #[test]
    fn no_streams_is_an_empty_merge() {
        assert_eq!(Interleaver::new(Vec::new()).count(), 0);
    }

    #[test]
    fn yields_every_fix_exactly_once() {
        let streams = vec![
            (0, trace_at(&(0..50).map(|i| i * 3).collect::<Vec<_>>())),
            (1, trace_at(&(0..80).map(|i| 1 + i * 2).collect::<Vec<_>>())),
            (2, trace_at(&(0..10).map(|i| 2 + i * 17).collect::<Vec<_>>())),
        ];
        let total: usize = streams.iter().map(|(_, t)| t.len()).sum();
        let it = Interleaver::new(streams);
        assert_eq!(it.remaining(), total);
        let merged: Vec<(u64, TracePoint)> = it.collect();
        assert_eq!(merged.len(), total);
        // non-decreasing in time, with user-id tie-break
        for w in merged.windows(2) {
            let (a_id, a) = (w[0].0, w[0].1.time.as_secs());
            let (b_id, b) = (w[1].0, w[1].1.time.as_secs());
            assert!(a < b || (a == b && a_id <= b_id), "disorder: ({a_id},{a}) then ({b_id},{b})");
        }
    }

    #[test]
    fn size_hint_is_exact() {
        let mut it = Interleaver::new(vec![(1, trace_at(&[0, 1, 2]))]);
        assert_eq!(it.size_hint(), (3, Some(3)));
        let _ = it.next();
        assert_eq!(it.size_hint(), (2, Some(2)));
    }
}
