//! Fixed-size windows over a trace — the feeding side of streaming PoI
//! extraction.
//!
//! A streaming engine consumes fixes one at a time, but storage and
//! transport move them in blocks. [`ChunkCursor`] walks a trace in
//! fixed-size windows and is *resumable*: [`ChunkCursor::position`] pairs
//! with a streaming checkpoint's `points_consumed()` so a driver can
//! suspend after any window and [`ChunkCursor::seek`] back to the exact
//! fix where the engine left off. The cursor borrows the trace and yields
//! subslices, so chunking adds no copies.

use crate::point::TracePoint;
use crate::trajectory::Trace;
use std::num::NonZeroUsize;

/// A resumable fixed-window reader over a trace's fixes.
///
/// # Examples
///
/// ```
/// use backwatch_trace::chunks::ChunkCursor;
/// use backwatch_trace::{Trace, TracePoint, Timestamp};
/// use backwatch_geo::LatLon;
/// use std::num::NonZeroUsize;
///
/// let pts: Vec<TracePoint> = (0..10)
///     .map(|t| TracePoint::new(Timestamp::from_secs(t), LatLon::new(39.9, 116.4).unwrap()))
///     .collect();
/// let trace = Trace::from_points(pts);
/// let mut cursor = ChunkCursor::new(&trace, NonZeroUsize::new(4).unwrap());
/// let sizes: Vec<usize> = cursor.by_ref().map(<[TracePoint]>::len).collect();
/// assert_eq!(sizes, [4, 4, 2]); // the last window is the remainder
/// assert!(cursor.is_done());
/// ```
#[derive(Debug, Clone)]
pub struct ChunkCursor<'a> {
    points: &'a [TracePoint],
    window: NonZeroUsize,
    pos: usize,
}

impl<'a> ChunkCursor<'a> {
    /// Creates a cursor over `trace` yielding windows of up to `window`
    /// fixes (the final window carries the remainder).
    #[must_use]
    pub fn new(trace: &'a Trace, window: NonZeroUsize) -> Self {
        crate::obs::register();
        Self {
            points: trace.points(),
            window,
            pos: 0,
        }
    }

    /// Index of the next fix to be yielded — feed this to a checkpoint
    /// store, or restore it with [`seek`](Self::seek).
    #[must_use]
    pub fn position(&self) -> usize {
        self.pos
    }

    /// Moves the cursor so the next window starts at fix `pos` (clamped to
    /// the end of the trace). Pairs with a streaming checkpoint's
    /// `points_consumed()` when resuming a suspended extraction.
    pub fn seek(&mut self, pos: usize) {
        self.pos = pos.min(self.points.len());
    }

    /// Fixes not yet yielded.
    #[must_use]
    pub fn remaining(&self) -> usize {
        self.points.len() - self.pos
    }

    /// Whether every fix has been yielded.
    #[must_use]
    pub fn is_done(&self) -> bool {
        self.pos >= self.points.len()
    }

    /// Windows still to come, counting the final partial one.
    #[must_use]
    pub fn windows_remaining(&self) -> usize {
        self.remaining().div_ceil(self.window.get())
    }

    /// Yields the next window of fixes, advancing the cursor; `None` once
    /// the trace is exhausted.
    pub fn next_window(&mut self) -> Option<&'a [TracePoint]> {
        if self.pos >= self.points.len() {
            return None;
        }
        let end = self.pos.saturating_add(self.window.get()).min(self.points.len());
        let out = self.points.get(self.pos..end)?;
        self.pos = end;
        if backwatch_obs::enabled() {
            crate::obs::CHUNK_WINDOWS.inc();
            crate::obs::CHUNK_POINTS.add(out.len() as u64);
        }
        Some(out)
    }
}

impl<'a> Iterator for ChunkCursor<'a> {
    type Item = &'a [TracePoint];

    fn next(&mut self) -> Option<Self::Item> {
        self.next_window()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let n = self.windows_remaining();
        (n, Some(n))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::Timestamp;
    use backwatch_geo::LatLon;

    fn trace_of(n: i64) -> Trace {
        Trace::from_points(
            (0..n)
                .map(|t| TracePoint::new(Timestamp::from_secs(t), LatLon::new(39.9, 116.4).unwrap()))
                .collect(),
        )
    }

    fn w(n: usize) -> NonZeroUsize {
        NonZeroUsize::new(n).unwrap()
    }

    #[test]
    fn windows_partition_the_trace_exactly() {
        let trace = trace_of(103);
        let cursor = ChunkCursor::new(&trace, w(10));
        let windows: Vec<_> = cursor.collect();
        assert_eq!(windows.len(), 11);
        let total: usize = windows.iter().map(|c| c.len()).sum();
        assert_eq!(total, 103);
        let rejoined: Vec<TracePoint> = windows.into_iter().flatten().copied().collect();
        assert_eq!(rejoined, trace.points());
    }

    #[test]
    fn window_larger_than_trace_yields_one_chunk() {
        let trace = trace_of(5);
        let mut cursor = ChunkCursor::new(&trace, w(1000));
        assert_eq!(cursor.windows_remaining(), 1);
        assert_eq!(cursor.next_window().map(<[TracePoint]>::len), Some(5));
        assert!(cursor.next_window().is_none());
    }

    #[test]
    fn empty_trace_yields_no_windows() {
        let trace = trace_of(0);
        let mut cursor = ChunkCursor::new(&trace, w(8));
        assert!(cursor.is_done());
        assert_eq!(cursor.windows_remaining(), 0);
        assert!(cursor.next_window().is_none());
    }

    #[test]
    fn seek_resumes_at_the_exact_fix() {
        let trace = trace_of(50);
        let mut cursor = ChunkCursor::new(&trace, w(7));
        let first = cursor.next_window().unwrap();
        assert_eq!(cursor.position(), 7);
        let mut resumed = ChunkCursor::new(&trace, w(7));
        resumed.seek(cursor.position());
        let continued: Vec<TracePoint> = resumed.flatten().copied().collect();
        let mut all = first.to_vec();
        all.extend(continued);
        assert_eq!(all, trace.points());
    }

    #[test]
    fn seek_past_the_end_clamps() {
        let trace = trace_of(10);
        let mut cursor = ChunkCursor::new(&trace, w(4));
        cursor.seek(999);
        assert!(cursor.is_done());
        assert_eq!(cursor.remaining(), 0);
    }

    #[test]
    fn size_hint_is_exact() {
        let trace = trace_of(23);
        let cursor = ChunkCursor::new(&trace, w(5));
        assert_eq!(cursor.size_hint(), (5, Some(5)));
        assert_eq!(cursor.count(), 5);
    }
}
