//! Classic mobility statistics over a trace.
//!
//! The measures the human-mobility literature uses to characterize users
//! (and that privacy work uses to argue identifiability): the radius of
//! gyration, the entropy of the location distribution over grid cells,
//! and simple coverage counts. Montjoye et al.'s "Unique in the Crowd" —
//! cited by the paper — frames exactly these quantities.

use crate::trajectory::Trace;
use backwatch_geo::enu::Frame;
use backwatch_geo::Grid;
use std::collections::HashMap;

/// Summary mobility statistics of one trace.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct MobilityStats {
    /// Number of fixes.
    pub fixes: usize,
    /// Radius of gyration in meters: RMS distance of fixes from their
    /// center of mass.
    pub radius_of_gyration_m: f64,
    /// Distinct grid cells visited.
    pub distinct_cells: usize,
    /// Shannon entropy (bits) of the distribution of fixes over cells —
    /// the "random entropy" of the mobility literature.
    pub location_entropy_bits: f64,
    /// Fraction of fixes in the most-visited cell (home, usually).
    pub top_cell_share: f64,
}

/// Computes [`MobilityStats`] for `trace` with locations quantized on
/// `grid`.
///
/// Returns `None` for an empty trace.
#[must_use]
pub fn mobility_stats(trace: &Trace, grid: &Grid) -> Option<MobilityStats> {
    let pts = trace.points();
    let first = pts.first()?;
    let frame = Frame::new(first.pos);

    // center of mass in the local plane
    let planar: Vec<(f64, f64)> = pts.iter().map(|p| frame.to_enu(p.pos)).collect();
    let n = planar.len() as f64;
    let (cx, cy) = planar.iter().fold((0.0, 0.0), |(sx, sy), &(x, y)| (sx + x, sy + y));
    let (cx, cy) = (cx / n, cy / n);
    let rog = (planar.iter().map(|&(x, y)| (x - cx).powi(2) + (y - cy).powi(2)).sum::<f64>() / n).sqrt();

    let mut cells: HashMap<backwatch_geo::CellId, usize> = HashMap::new();
    for p in pts {
        *cells.entry(grid.cell_of(p.pos)).or_insert(0) += 1;
    }
    let mut entropy = 0.0;
    let mut top = 0usize;
    for &c in cells.values() {
        let p = c as f64 / n;
        entropy -= p * p.log2();
        top = top.max(c);
    }

    Some(MobilityStats {
        fixes: pts.len(),
        radius_of_gyration_m: rog,
        distinct_cells: cells.len(),
        location_entropy_bits: entropy.max(0.0),
        top_cell_share: top as f64 / n,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::point::{Timestamp, TracePoint};
    use backwatch_geo::LatLon;

    fn grid() -> Grid {
        Grid::new(LatLon::new(39.9, 116.4).unwrap(), backwatch_geo::Meters::new(250.0))
    }

    fn pt(t: i64, lat: f64, lon: f64) -> TracePoint {
        TracePoint::new(Timestamp::from_secs(t), LatLon::new(lat, lon).unwrap())
    }

    #[test]
    fn stationary_trace_has_zero_gyration_and_entropy() {
        let trace = Trace::from_points((0..100).map(|i| pt(i, 39.9, 116.4)).collect());
        let s = mobility_stats(&trace, &grid()).unwrap();
        assert!(s.radius_of_gyration_m < 0.01);
        assert_eq!(s.distinct_cells, 1);
        assert_eq!(s.location_entropy_bits, 0.0);
        assert_eq!(s.top_cell_share, 1.0);
    }

    #[test]
    fn two_equal_poles_give_one_bit() {
        // half the fixes at A, half at B ~5.5 km away
        let mut pts: Vec<TracePoint> = (0..50).map(|i| pt(i, 39.90, 116.40)).collect();
        pts.extend((50..100).map(|i| pt(i, 39.95, 116.40)));
        let s = mobility_stats(&Trace::from_points(pts), &grid()).unwrap();
        assert_eq!(s.distinct_cells, 2);
        assert!((s.location_entropy_bits - 1.0).abs() < 1e-9);
        assert!((s.top_cell_share - 0.5).abs() < 1e-9);
        // RoG of two equal poles is half the separation (~2.78 km)
        assert!((s.radius_of_gyration_m - 2_780.0).abs() < 50.0, "{}", s.radius_of_gyration_m);
    }

    #[test]
    fn wider_roaming_increases_gyration() {
        let near: Vec<TracePoint> = (0..100).map(|i| pt(i, 39.9 + (i % 10) as f64 * 1e-4, 116.4)).collect();
        let far: Vec<TracePoint> = (0..100).map(|i| pt(i, 39.9 + (i % 10) as f64 * 1e-2, 116.4)).collect();
        let g = grid();
        let s_near = mobility_stats(&Trace::from_points(near), &g).unwrap();
        let s_far = mobility_stats(&Trace::from_points(far), &g).unwrap();
        assert!(s_far.radius_of_gyration_m > s_near.radius_of_gyration_m * 10.0);
        assert!(s_far.distinct_cells >= s_near.distinct_cells);
    }

    #[test]
    fn empty_trace_yields_none() {
        assert!(mobility_stats(&Trace::new(), &grid()).is_none());
    }

    #[test]
    fn synthetic_user_stats_are_plausible() {
        use crate::synth::{generate_user, SynthConfig};
        let user = generate_user(&SynthConfig::small(), 0);
        let s = mobility_stats(&user.trace, &grid()).unwrap();
        // a city dweller: kilometers of gyration, home-dominated
        assert!(s.radius_of_gyration_m > 300.0, "{}", s.radius_of_gyration_m);
        assert!(s.radius_of_gyration_m < 30_000.0);
        assert!(s.top_cell_share > 0.1, "{}", s.top_cell_share);
        assert!(s.location_entropy_bits > 1.0);
    }
}
