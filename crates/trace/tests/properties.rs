//! Property-based tests for the trajectory substrate.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_geo::{LatLon, Seconds};
use backwatch_trace::{sampling, synth, ProjectedTrace, Timestamp, Trace, TracePoint};
use proptest::prelude::*;

fn arb_trace() -> impl Strategy<Value = Trace> {
    // Random strictly-increasing gaps and small coordinate walks.
    prop::collection::vec((1i64..400, -5i32..5, -5i32..5), 0..120).prop_map(|steps| {
        let mut t = 0i64;
        let (mut lat, mut lon) = (39.9f64, 116.4f64);
        let mut pts = Vec::new();
        for (dt, dlat, dlon) in steps {
            t += dt;
            lat += f64::from(dlat) * 1e-4;
            lon += f64::from(dlon) * 1e-4;
            pts.push(TracePoint::new(Timestamp::from_secs(t), LatLon::new(lat, lon).unwrap()));
        }
        Trace::from_points(pts)
    })
}

proptest! {
    #[test]
    fn downsample_never_grows(trace in arb_trace(), interval in 1i64..5000) {
        let s = sampling::downsample(&trace, Seconds::new(interval));
        prop_assert!(s.len() <= trace.len());
    }

    #[test]
    fn downsample_is_subsequence(trace in arb_trace(), interval in 1i64..5000) {
        let s = sampling::downsample(&trace, Seconds::new(interval));
        let mut orig = trace.iter();
        for p in s.iter() {
            prop_assert!(orig.any(|q| q == p), "sampled point not in original order");
        }
    }

    #[test]
    fn downsample_spacing_respects_interval(trace in arb_trace(), interval in 1i64..5000) {
        let s = sampling::downsample(&trace, Seconds::new(interval));
        for w in s.points().windows(2) {
            prop_assert!(w[1].time - w[0].time >= interval);
        }
    }

    #[test]
    fn downsample_keeps_first_point(trace in arb_trace(), interval in 1i64..5000) {
        let s = sampling::downsample(&trace, Seconds::new(interval));
        prop_assert_eq!(s.first(), trace.first());
    }

    #[test]
    fn downsample_idempotent(trace in arb_trace(), interval in 1i64..5000) {
        let once = sampling::downsample(&trace, Seconds::new(interval));
        let twice = sampling::downsample(&once, Seconds::new(interval));
        prop_assert_eq!(once, twice);
    }

    #[test]
    fn coarser_interval_keeps_fewer(trace in arb_trace(), a in 1i64..1000, b in 1i64..1000) {
        let (small, large) = (a.min(b), a.max(b));
        let fine = sampling::downsample(&trace, Seconds::new(small));
        let coarse = sampling::downsample(&trace, Seconds::new(large));
        prop_assert!(coarse.len() <= fine.len());
    }

    #[test]
    fn rotation_preserves_multiset_of_positions(trace in arb_trace(), start_frac in 0.0f64..1.0) {
        if trace.len() >= 2 {
            let start = ((trace.len() - 1) as f64 * start_frac) as usize;
            let rot = sampling::rotate_to_start(&trace, start);
            prop_assert_eq!(rot.len(), trace.len());
            let mut a: Vec<u64> = trace.iter().map(|p| p.pos.lat().to_bits() ^ p.pos.lon().to_bits()).collect();
            let mut b: Vec<u64> = rot.iter().map(|p| p.pos.lat().to_bits() ^ p.pos.lon().to_bits()).collect();
            a.sort_unstable();
            b.sort_unstable();
            prop_assert_eq!(a, b);
        }
    }

    #[test]
    fn split_by_gap_is_partition(trace in arb_trace(), gap in 1i64..600) {
        let parts = trace.split_by_gap(Seconds::new(gap));
        let total: usize = parts.iter().map(Trace::len).sum();
        prop_assert_eq!(total, trace.len());
        for part in &parts {
            for w in part.points().windows(2) {
                prop_assert!(w[1].time - w[0].time <= gap);
            }
        }
    }

    #[test]
    fn downsample_indices_select_the_owned_downsample(trace in arb_trace(), interval in 1i64..5000) {
        let owned = sampling::downsample(&trace, Seconds::new(interval));
        let indices = sampling::downsample_indices(&trace, Seconds::new(interval));
        prop_assert_eq!(owned.len(), indices.len());
        for (p, &i) in owned.iter().zip(&indices) {
            prop_assert_eq!(*p, trace.points()[i as usize]);
        }
    }

    #[test]
    fn borrowed_sampled_view_equals_owned_downsample(trace in arb_trace(), pick in 0usize..3) {
        // The paper's interval sweep endpoints plus the identity interval:
        // a borrowed index view over the projection must walk exactly the
        // points the owned downsample materializes (empty and single-point
        // traces included — arb_trace generates 0..120 points).
        let interval = [1i64, 60, 7200][pick];
        let owned = sampling::downsample(&trace, Seconds::new(interval));
        let projected = ProjectedTrace::project(&trace);
        let indices = sampling::downsample_indices(&trace, Seconds::new(interval));
        let view: Vec<_> = projected.sampled(&indices).collect();
        prop_assert_eq!(view.len(), owned.len());
        for (v, p) in view.iter().zip(owned.iter()) {
            prop_assert_eq!(v.time, p.time);
            prop_assert_eq!(v.pos, p.pos);
        }
    }

    #[test]
    fn rotated_view_equals_owned_rotation(trace in arb_trace(), start_frac in 0.0f64..1.0) {
        let start = if trace.len() < 2 { 0 } else { ((trace.len() - 1) as f64 * start_frac) as usize };
        let owned = sampling::rotate_to_start(&trace, start);
        let projected = ProjectedTrace::project(&trace);
        let view: Vec<_> = projected.rotated_from(start).collect();
        prop_assert_eq!(view.len(), owned.len());
        for (v, p) in view.iter().zip(owned.iter()) {
            prop_assert_eq!(v.time, p.time);
            prop_assert_eq!(v.pos, p.pos);
        }
    }

    #[test]
    fn synth_user_invariants(seed in 0u64..1000, user in 0u32..3) {
        let mut cfg = synth::SynthConfig::small();
        cfg.seed = seed;
        cfg.n_users = 3;
        cfg.days = 2;
        let u = synth::generate_user(&cfg, user);
        // strictly ordered trace
        prop_assert!(u.trace.points().windows(2).all(|w| w[0].time < w[1].time));
        // chronological non-overlapping visits
        prop_assert!(u.true_visits.windows(2).all(|w| w[1].arrive >= w[0].depart));
        // all visits reference valid places
        prop_assert!(u.true_visits.iter().all(|v| v.place < u.places.len()));
        // home bookends: first and last visit are home
        prop_assert_eq!(u.true_visits.first().unwrap().place, 0);
        prop_assert_eq!(u.true_visits.last().unwrap().place, 0);
    }
}
