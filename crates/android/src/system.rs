//! The simulated device: app lifecycle, the `LocationManager`, and the
//! access log.

use crate::app::App;
use crate::energy::EnergyModel;
use crate::lifecycle::{apply, AppState, Transition};
use crate::provider::{Granularity, ProviderKind};
use backwatch_geo::{Grid, LatLon, Meters};
use backwatch_trace::{Timestamp, Trace, TracePoint};
use std::error::Error;
use std::fmt;

/// Handle to an installed app.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AppId(pub(crate) usize);

impl fmt::Display for AppId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "app#{}", self.0)
    }
}

/// One location delivery, as recorded by the device's access log —
/// the information `dumpsys` exposes and the paper's study harvests.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct AccessRecord {
    /// When the fix was delivered.
    pub time: Timestamp,
    /// Which app received it.
    pub app: AppId,
    /// Which provider produced it.
    pub provider: ProviderKind,
    /// Granularity of the delivered fix.
    pub granularity: Granularity,
    /// Whether the app was in the background at delivery time.
    pub background: bool,
    /// The delivered coordinate (already coarsened if applicable).
    pub pos: LatLon,
}

/// Where the simulated device physically is over time.
#[derive(Debug, Clone, PartialEq)]
pub enum PositionSource {
    /// The device sits still (the bench setup of the paper's lab study).
    Fixed(LatLon),
    /// The device follows a recorded trace: its position at time `t` is
    /// the last fix at or before `t` (clamped to the trace's ends).
    Trace(Trace),
}

impl PositionSource {
    /// The device position at simulation second `t`.
    ///
    /// # Panics
    ///
    /// Panics if the source is an empty trace.
    #[must_use]
    pub fn position_at(&self, t: i64) -> LatLon {
        match self {
            PositionSource::Fixed(p) => *p,
            PositionSource::Trace(trace) => {
                let pts = trace.points();
                assert!(!pts.is_empty(), "position trace must not be empty");
                let idx = pts.partition_point(|p| p.time.as_secs() <= t);
                if idx == 0 {
                    pts[0].pos
                } else {
                    pts[idx - 1].pos
                }
            }
        }
    }
}

/// Errors surfaced by [`Device`] operations.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum DeviceError {
    /// The app handle does not refer to an installed app.
    UnknownApp(AppId),
    /// An illegal lifecycle transition was requested.
    Lifecycle(crate::lifecycle::TransitionError),
    /// The app tried to register a provider its permissions do not allow —
    /// the simulation's `SecurityException`.
    PermissionDenied {
        /// The offending app.
        app: AppId,
        /// The provider it tried to register.
        provider: ProviderKind,
    },
    /// A user interaction was directed at an app that is not on screen.
    NotInForeground(AppId),
}

impl fmt::Display for DeviceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DeviceError::UnknownApp(id) => write!(f, "no installed app with handle {id}"),
            DeviceError::Lifecycle(e) => write!(f, "lifecycle violation: {e}"),
            DeviceError::PermissionDenied { app, provider } => {
                write!(f, "security exception: {app} lacks the permission for provider {provider}")
            }
            DeviceError::NotInForeground(id) => write!(f, "{id} is not in the foreground"),
        }
    }
}

impl Error for DeviceError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            DeviceError::Lifecycle(e) => Some(e),
            _ => None,
        }
    }
}

impl From<crate::lifecycle::TransitionError> for DeviceError {
    fn from(e: crate::lifecycle::TransitionError) -> Self {
        DeviceError::Lifecycle(e)
    }
}

/// A per-app delivery policy — the MockDroid/TISSA idea: the OS decides,
/// per app, whether to hand out real, degraded, fake, or no location
/// data, without the app being able to tell the difference.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LocationPolicy {
    /// Deliver real fixes (default Android behavior).
    #[default]
    Allow,
    /// Degrade every delivery to coarse granularity regardless of the
    /// provider (LP-Guardian's treatment of background requesters).
    Coarsen,
    /// Deliver a fixed fake position (MockDroid's "fake data" choice).
    Fake(LatLon),
    /// Silently deliver nothing; the registration stays alive so the app
    /// cannot detect the block.
    Block,
}

#[derive(Debug, Clone)]
struct InstalledApp {
    app: App,
    state: AppState,
    /// Whether the app has registered its location listeners (auto-start
    /// apps do this at launch; others after a user interaction).
    listeners_armed: bool,
    policy: LocationPolicy,
}

#[derive(Debug, Clone)]
struct Registration {
    app: AppId,
    provider: ProviderKind,
    interval_s: i64,
    next_due: i64,
    /// Sequence number of the last cache entry delivered (passive only).
    last_cache_seq: u64,
}

#[derive(Debug, Clone, Copy)]
struct CachedFix {
    pos: LatLon,
    granularity: Granularity,
    time: i64,
    seq: u64,
}

/// Cell size used to degrade fine positions into coarse fixes, matching the
/// few-hundred-meter precision of cell/wifi positioning.
const COARSE_CELL_M: Meters = Meters::new(300.0);

/// The simulated Android device.
///
/// See the [crate docs](crate) for a walkthrough. All time is integer
/// seconds from an arbitrary zero; [`Device::advance`] moves the clock.
#[derive(Debug, Clone)]
pub struct Device {
    apps: Vec<InstalledApp>,
    registrations: Vec<Registration>,
    clock: i64,
    position: PositionSource,
    cache: Option<CachedFix>,
    log: Vec<AccessRecord>,
    coarse_grid: Grid,
    foreground: Option<AppId>,
    energy_model: EnergyModel,
    energy: Vec<f64>,
    indicator_fg_secs: i64,
    indicator_bg_secs: i64,
}

impl Default for Device {
    fn default() -> Self {
        Self::new()
    }
}

impl Device {
    /// A stationary device parked at the paper's lab (college of W&M,
    /// Williamsburg VA).
    #[must_use]
    pub fn new() -> Self {
        Self::with_position(PositionSource::Fixed(
            LatLon::new(37.2707, -76.7075).expect("campus is a valid coordinate"),
        ))
    }

    /// A device that follows the given position source.
    #[must_use]
    pub fn with_position(position: PositionSource) -> Self {
        let anchor = position.position_at(0);
        Self {
            apps: Vec::new(),
            registrations: Vec::new(),
            clock: 0,
            position,
            cache: None,
            log: Vec::new(),
            coarse_grid: Grid::new(anchor, COARSE_CELL_M),
            foreground: None,
            energy_model: EnergyModel::default(),
            energy: Vec::new(),
            indicator_fg_secs: 0,
            indicator_bg_secs: 0,
        }
    }

    /// Replaces the per-fix energy model.
    ///
    /// # Panics
    ///
    /// Panics if the model fails [`EnergyModel::validate`].
    pub fn set_energy_model(&mut self, model: EnergyModel) {
        model.validate();
        self.energy_model = model;
    }

    /// Energy charged to an app so far, in the model's units.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownApp`] for stale handles.
    pub fn energy_used(&self, id: AppId) -> Result<f64, DeviceError> {
        self.energy.get(id.0).copied().ok_or(DeviceError::UnknownApp(id))
    }

    /// Total energy spent on location across all apps.
    #[must_use]
    pub fn total_energy(&self) -> f64 {
        self.energy.iter().sum()
    }

    /// Seconds the status-bar location indicator has been lit, split into
    /// `(attributable to the foreground app, background-only)`.
    ///
    /// The paper's observation that "users may mistake that the location
    /// access from a background app is from the foreground app" is
    /// exactly the first bucket absorbing the second: whenever a
    /// foreground app also uses location, the user has no way to tell a
    /// background listener is live too.
    #[must_use]
    pub fn indicator_seconds(&self) -> (i64, i64) {
        (self.indicator_fg_secs, self.indicator_bg_secs)
    }

    /// The current simulation time in seconds.
    #[must_use]
    pub fn now(&self) -> i64 {
        self.clock
    }

    /// Sets the clock without ticking (useful to align the device with a
    /// trace that starts late).
    ///
    /// # Panics
    ///
    /// Panics if `t` is before the current clock.
    pub fn set_clock(&mut self, t: i64) {
        assert!(t >= self.clock, "clock cannot move backwards ({t} < {})", self.clock);
        self.clock = t;
    }

    /// Installs an app, returning its handle.
    pub fn install(&mut self, app: App) -> AppId {
        self.apps.push(InstalledApp {
            app,
            state: AppState::Stopped,
            listeners_armed: false,
            policy: LocationPolicy::Allow,
        });
        self.energy.push(0.0);
        AppId(self.apps.len() - 1)
    }

    /// Sets the delivery policy for one app (user-side defense à la
    /// MockDroid/TISSA). Takes effect from the next delivery.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownApp`] for stale handles.
    pub fn set_location_policy(&mut self, id: AppId, policy: LocationPolicy) -> Result<(), DeviceError> {
        let installed = self.apps.get_mut(id.0).ok_or(DeviceError::UnknownApp(id))?;
        installed.policy = policy;
        Ok(())
    }

    /// The delivery policy currently applied to an app.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownApp`] for stale handles.
    pub fn location_policy(&self, id: AppId) -> Result<LocationPolicy, DeviceError> {
        self.apps.get(id.0).map(|ia| ia.policy).ok_or(DeviceError::UnknownApp(id))
    }

    /// Number of installed apps.
    #[must_use]
    pub fn installed_count(&self) -> usize {
        self.apps.len()
    }

    /// The app behind a handle.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownApp`] for stale handles.
    pub fn app(&self, id: AppId) -> Result<&App, DeviceError> {
        self.apps.get(id.0).map(|ia| &ia.app).ok_or(DeviceError::UnknownApp(id))
    }

    /// The lifecycle state of an app.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownApp`] for stale handles.
    pub fn state(&self, id: AppId) -> Result<AppState, DeviceError> {
        self.apps.get(id.0).map(|ia| ia.state).ok_or(DeviceError::UnknownApp(id))
    }

    /// Launches an app to the foreground. Any app currently in the
    /// foreground is moved to the background first (only one activity is
    /// on top of the screen).
    ///
    /// Auto-start apps register their location listeners immediately; this
    /// is where permission enforcement bites.
    ///
    /// # Errors
    ///
    /// - [`DeviceError::UnknownApp`] for stale handles.
    /// - [`DeviceError::Lifecycle`] if the app is already running.
    /// - [`DeviceError::PermissionDenied`] if an auto-start app registers a
    ///   provider its permissions do not allow; the app is left stopped
    ///   (the real app would have crashed on its `SecurityException`).
    pub fn launch(&mut self, id: AppId) -> Result<(), DeviceError> {
        let state = self.state(id)?;
        let new_state = apply(state, Transition::Launch)?;
        if let Some(fg) = self.foreground {
            if fg != id {
                self.demote_to_background(fg);
            }
        }
        self.apps[id.0].state = new_state;
        self.foreground = Some(id);
        let auto = self.apps[id.0].app.behavior().is_auto_start();
        if auto {
            if let Err(e) = self.arm_listeners(id) {
                // the app crashes: back to stopped, nothing registered
                self.apps[id.0].state = AppState::Stopped;
                self.foreground = None;
                return Err(e);
            }
        }
        Ok(())
    }

    /// Simulates the user interacting with the foreground app in a way
    /// that makes it request location (tapping "find me", etc.). This is
    /// how the paper's authors triggered the 135 apps that do not
    /// auto-start.
    ///
    /// # Errors
    ///
    /// - [`DeviceError::UnknownApp`] for stale handles.
    /// - [`DeviceError::NotInForeground`] if the app is not on screen.
    /// - [`DeviceError::PermissionDenied`] on a disallowed registration.
    pub fn trigger_location_use(&mut self, id: AppId) -> Result<(), DeviceError> {
        if self.state(id)? != AppState::Foreground {
            return Err(DeviceError::NotInForeground(id));
        }
        self.arm_listeners(id)
    }

    /// Sends an app to the background (home button). If the app does not
    /// poll location in the background its listeners are unregistered, as
    /// foreground-only apps stop receiving updates off screen; otherwise
    /// the listeners are rescheduled at the app's background interval.
    ///
    /// # Errors
    ///
    /// - [`DeviceError::UnknownApp`] for stale handles.
    /// - [`DeviceError::Lifecycle`] if the app is not in the foreground.
    pub fn move_to_background(&mut self, id: AppId) -> Result<(), DeviceError> {
        let state = self.state(id)?;
        let new_state = apply(state, Transition::ToBackground)?;
        self.apps[id.0].state = new_state;
        if self.foreground == Some(id) {
            self.foreground = None;
        }
        let behavior = self.apps[id.0].app.behavior().clone();
        if let Some(bg_interval) = behavior.background_interval_s() {
            for reg in self.registrations.iter_mut().filter(|r| r.app == id) {
                reg.interval_s = bg_interval;
                reg.next_due = reg.next_due.min(self.clock + bg_interval);
            }
        } else {
            self.registrations.retain(|r| r.app != id);
        }
        Ok(())
    }

    /// Brings a background app back on screen, restoring its foreground
    /// update interval.
    ///
    /// # Errors
    ///
    /// - [`DeviceError::UnknownApp`] for stale handles.
    /// - [`DeviceError::Lifecycle`] if the app is not in the background.
    pub fn bring_to_foreground(&mut self, id: AppId) -> Result<(), DeviceError> {
        let state = self.state(id)?;
        let new_state = apply(state, Transition::ToForeground)?;
        if let Some(fg) = self.foreground {
            if fg != id {
                self.demote_to_background(fg);
            }
        }
        self.apps[id.0].state = new_state;
        self.foreground = Some(id);
        let fg_interval = self.apps[id.0].app.behavior().foreground_interval_s();
        if fg_interval > 0 {
            for reg in self.registrations.iter_mut().filter(|r| r.app == id) {
                reg.interval_s = fg_interval;
            }
        }
        // a previously foreground-only app that lost its listeners when
        // backgrounded re-arms them on return
        if self.apps[id.0].listeners_armed && !self.registrations.iter().any(|r| r.app == id) {
            self.apps[id.0].listeners_armed = false;
            self.arm_listeners(id)?;
        }
        Ok(())
    }

    /// Stops (kills) an app, removing all its registrations.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownApp`] for stale handles.
    pub fn stop(&mut self, id: AppId) -> Result<(), DeviceError> {
        let state = self.state(id)?;
        let new_state = apply(state, Transition::Stop).expect("stop is always legal");
        self.apps[id.0].state = new_state;
        self.apps[id.0].listeners_armed = false;
        if self.foreground == Some(id) {
            self.foreground = None;
        }
        self.registrations.retain(|r| r.app != id);
        Ok(())
    }

    fn demote_to_background(&mut self, id: AppId) {
        // Internal helper: the checked path is move_to_background; this is
        // invoked when another launch displaces the foreground app.
        let _ = self.move_to_background(id);
    }

    fn arm_listeners(&mut self, id: AppId) -> Result<(), DeviceError> {
        let installed = &self.apps[id.0];
        if installed.listeners_armed {
            return Ok(());
        }
        let behavior = installed.app.behavior().clone();
        if !behavior.requests_location() {
            return Ok(());
        }
        let claim = installed.app.manifest().location_claim();
        // Validate first so registration is atomic.
        for &p in behavior.providers() {
            if !p.permitted_for(claim) {
                return Err(DeviceError::PermissionDenied { app: id, provider: p });
            }
        }
        let interval = behavior.foreground_interval_s().max(1);
        for &p in behavior.providers() {
            self.registrations.push(Registration {
                app: id,
                provider: p,
                interval_s: interval,
                next_due: self.clock,
                last_cache_seq: 0,
            });
        }
        self.apps[id.0].listeners_armed = true;
        Ok(())
    }

    /// Advances simulated time by `secs`, delivering due location updates.
    ///
    /// # Panics
    ///
    /// Panics if `secs` is negative.
    pub fn advance(&mut self, secs: i64) {
        assert!(secs >= 0, "cannot advance by negative time");
        let end = self.clock + secs;
        while self.clock < end {
            self.clock += 1;
            self.tick();
        }
    }

    fn tick(&mut self) {
        let t = self.clock;
        let true_pos = self.position.position_at(t);
        // Status-bar indicator accounting: the icon is lit while any
        // running app holds an active-provider registration. If the
        // foreground app is among the holders, the user attributes the
        // icon to it — even when background listeners are live too.
        let mut fg_holds = false;
        let mut bg_holds = false;
        for reg in &self.registrations {
            if !reg.provider.is_active() {
                continue;
            }
            match self.apps[reg.app.0].state {
                AppState::Foreground => fg_holds = true,
                AppState::Background => bg_holds = true,
                AppState::Stopped => {}
            }
        }
        if fg_holds {
            self.indicator_fg_secs += 1;
        } else if bg_holds {
            self.indicator_bg_secs += 1;
        }
        // Active providers produce fixes and refresh the cache.
        let mut produced: Vec<(usize, LatLon, Granularity, ProviderKind)> = Vec::new();
        for (i, reg) in self.registrations.iter().enumerate() {
            if !reg.provider.is_active() || t < reg.next_due {
                continue;
            }
            if !self.apps[reg.app.0].state.is_running() {
                continue;
            }
            let claim = self.apps[reg.app.0].app.manifest().location_claim();
            let gran = reg
                .provider
                .fix_granularity(claim)
                .expect("active providers have inherent granularity");
            let pos = match gran {
                Granularity::Fine => true_pos,
                Granularity::Coarse => self.coarse_grid.snap(true_pos),
            };
            produced.push((i, pos, gran, reg.provider));
        }
        for (i, pos, gran, provider) in produced {
            let reg = &mut self.registrations[i];
            reg.next_due = t + reg.interval_s;
            let app = reg.app;
            self.energy[app.0] += self.energy_model.cost_of(provider);
            // The platform computed a real fix: the cache always holds it
            // (other apps piggyback reality even when this app is fed
            // fakes).
            let seq = self.cache.map_or(0, |c| c.seq) + 1;
            self.cache = Some(CachedFix {
                pos,
                granularity: gran,
                time: t,
                seq,
            });
            // The per-app delivery policy decides what the app sees.
            let Some((pos, gran)) = self.apply_policy(app, pos, gran) else {
                continue;
            };
            let background = self.apps[app.0].state == AppState::Background;
            self.log.push(AccessRecord {
                time: Timestamp::from_secs(t),
                app,
                provider,
                granularity: gran,
                background,
                pos,
            });
        }
        // Passive listeners piggyback on fresh cache entries.
        if let Some(cache) = self.cache {
            let mut deliveries: Vec<(usize, AccessRecord)> = Vec::new();
            for (i, reg) in self.registrations.iter().enumerate() {
                if reg.provider != ProviderKind::Passive || t < reg.next_due || cache.seq <= reg.last_cache_seq {
                    continue;
                }
                if !self.apps[reg.app.0].state.is_running() {
                    continue;
                }
                let claim = self.apps[reg.app.0].app.manifest().location_claim();
                // Coarse-only apps receive a degraded copy of a fine cache.
                let (pos, gran) = if cache.granularity == Granularity::Fine && !claim.allows_fine() {
                    (self.coarse_grid.snap(cache.pos), Granularity::Coarse)
                } else {
                    (cache.pos, cache.granularity)
                };
                let background = self.apps[reg.app.0].state == AppState::Background;
                deliveries.push((
                    i,
                    AccessRecord {
                        time: Timestamp::from_secs(t),
                        app: reg.app,
                        provider: ProviderKind::Passive,
                        granularity: gran,
                        background,
                        pos,
                    },
                ));
            }
            for (i, mut record) in deliveries {
                let reg = &mut self.registrations[i];
                reg.next_due = t + reg.interval_s;
                reg.last_cache_seq = cache.seq;
                self.energy[record.app.0] += self.energy_model.cost_of(ProviderKind::Passive);
                let Some((pos, gran)) = self.apply_policy(record.app, record.pos, record.granularity) else {
                    continue;
                };
                record.pos = pos;
                record.granularity = gran;
                self.log.push(record);
            }
        }
    }

    /// Applies the app's delivery policy to a fix; `None` means nothing
    /// is delivered.
    fn apply_policy(&self, app: AppId, pos: LatLon, gran: Granularity) -> Option<(LatLon, Granularity)> {
        match self.apps[app.0].policy {
            LocationPolicy::Allow => Some((pos, gran)),
            LocationPolicy::Coarsen => Some((self.coarse_grid.snap(pos), Granularity::Coarse)),
            LocationPolicy::Fake(fake) => Some((fake, gran)),
            LocationPolicy::Block => None,
        }
    }

    /// Every location delivery so far, in time order.
    #[must_use]
    pub fn access_log(&self) -> &[AccessRecord] {
        &self.log
    }

    /// Drops the access log (the registrations stay).
    pub fn clear_access_log(&mut self) {
        self.log.clear();
    }

    /// The trace of fixes delivered to one app — what that app's backend
    /// has learned about the user.
    ///
    /// # Errors
    ///
    /// Returns [`DeviceError::UnknownApp`] for stale handles.
    pub fn collected_trace(&self, id: AppId) -> Result<Trace, DeviceError> {
        if id.0 >= self.apps.len() {
            return Err(DeviceError::UnknownApp(id));
        }
        Ok(self
            .log
            .iter()
            .filter(|r| r.app == id)
            .map(|r| TracePoint::new(r.time, r.pos))
            .collect())
    }

    /// Snapshot of the live listener registrations, for `dumpsys`.
    #[must_use]
    pub(crate) fn registrations_snapshot(&self) -> Vec<(String, ProviderKind, i64, AppState)> {
        self.registrations
            .iter()
            .map(|r| {
                (
                    self.apps[r.app.0].app.manifest().package().to_owned(),
                    r.provider,
                    r.interval_s,
                    self.apps[r.app.0].state,
                )
            })
            .collect()
    }

    /// The last cached fix, if any: `(position, granularity, age_secs)`.
    #[must_use]
    pub fn last_known_location(&self) -> Option<(LatLon, Granularity, i64)> {
        self.cache.map(|c| (c.pos, c.granularity, self.clock - c.time))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, LocationBehavior};
    use crate::permission::{LocationClaim, Permission};

    fn gps_app(package: &str, fg: i64, bg: Option<i64>) -> App {
        let mut b = LocationBehavior::requester([ProviderKind::Gps], fg).auto_start(true);
        if let Some(i) = bg {
            b = b.background_interval(i);
        }
        AppBuilder::new(package)
            .permission(Permission::AccessFineLocation)
            .behavior(b)
            .build()
    }

    #[test]
    fn foreground_app_receives_updates_at_interval() {
        let mut d = Device::new();
        let id = d.install(gps_app("com.a", 5, None));
        d.launch(id).unwrap();
        d.advance(20);
        let n = d.access_log().iter().filter(|r| r.app == id).count();
        assert_eq!(n, 4, "expected fixes at t=1,6,11,16");
        assert!(d.access_log().iter().all(|r| !r.background));
    }

    #[test]
    fn foreground_only_app_goes_silent_in_background() {
        let mut d = Device::new();
        let id = d.install(gps_app("com.a", 5, None));
        d.launch(id).unwrap();
        d.advance(10);
        let before = d.access_log().len();
        d.move_to_background(id).unwrap();
        d.advance(60);
        assert_eq!(d.access_log().len(), before, "no updates after backgrounding");
    }

    #[test]
    fn background_app_keeps_polling_at_bg_interval() {
        let mut d = Device::new();
        let id = d.install(gps_app("com.a", 1, Some(10)));
        d.launch(id).unwrap();
        d.move_to_background(id).unwrap();
        d.advance(100);
        let bg: Vec<_> = d.access_log().iter().filter(|r| r.background).collect();
        assert!((9..=11).contains(&bg.len()), "got {} bg fixes", bg.len());
        // spacing respects the background interval
        for w in bg.windows(2) {
            assert!(w[1].time - w[0].time >= 10);
        }
    }

    #[test]
    fn permission_denied_for_gps_without_fine() {
        let mut d = Device::new();
        let app = AppBuilder::new("com.bad")
            .permission(Permission::AccessCoarseLocation)
            .behavior(LocationBehavior::requester([ProviderKind::Gps], 5).auto_start(true))
            .build();
        let id = d.install(app);
        let err = d.launch(id).unwrap_err();
        assert!(matches!(
            err,
            DeviceError::PermissionDenied {
                provider: ProviderKind::Gps,
                ..
            }
        ));
        assert_eq!(d.state(id).unwrap(), AppState::Stopped);
        d.advance(30);
        assert!(d.access_log().is_empty());
    }

    #[test]
    fn network_provider_delivers_coarse_fixes() {
        let mut d = Device::new();
        let app = AppBuilder::new("com.coarse")
            .location_claim(LocationClaim::CoarseOnly)
            .behavior(LocationBehavior::requester([ProviderKind::Network], 5).auto_start(true))
            .build();
        let id = d.install(app);
        d.launch(id).unwrap();
        d.advance(10);
        assert!(!d.access_log().is_empty());
        assert!(d.access_log().iter().all(|r| r.granularity == Granularity::Coarse));
    }

    #[test]
    fn passive_app_piggybacks_on_active_app() {
        let mut d = Device::new();
        let active = d.install(gps_app("com.active", 5, Some(5)));
        let passive_app = AppBuilder::new("com.passive")
            .location_claim(LocationClaim::FineAndCoarse)
            .behavior(
                LocationBehavior::requester([ProviderKind::Passive], 1)
                    .auto_start(true)
                    .background_interval(1),
            )
            .build();
        let passive = d.install(passive_app);
        d.launch(passive).unwrap();
        d.advance(30);
        // nothing active yet: passive alone receives nothing
        assert!(d.collected_trace(passive).unwrap().is_empty());
        d.launch(active).unwrap(); // passive app is displaced to background
        d.advance(30);
        let got = d.collected_trace(passive).unwrap();
        assert!(!got.is_empty(), "passive app should piggyback on gps fixes");
        // and the deliveries happened in background
        assert!(d
            .access_log()
            .iter()
            .filter(|r| r.app == passive && r.time.as_secs() > 30)
            .all(|r| r.background));
    }

    #[test]
    fn passive_fix_degraded_for_coarse_only_app() {
        let mut d = Device::new();
        // active app keeps polling gps in background
        let active = d.install(gps_app("com.active", 5, Some(5)));
        let passive_app = AppBuilder::new("com.passive")
            .location_claim(LocationClaim::CoarseOnly)
            .behavior(LocationBehavior::requester([ProviderKind::Passive], 1).auto_start(true))
            .build();
        let passive = d.install(passive_app);
        d.launch(active).unwrap();
        d.advance(3);
        // passive app comes to the foreground; active is displaced to
        // background but keeps producing fine fixes for the cache
        d.launch(passive).unwrap();
        d.advance(20);
        let deliveries: Vec<_> = d.access_log().iter().filter(|r| r.app == passive).collect();
        assert!(!deliveries.is_empty());
        assert!(deliveries.iter().all(|r| r.granularity == Granularity::Coarse));
    }

    #[test]
    fn launching_second_app_backgrounds_first() {
        let mut d = Device::new();
        let a = d.install(gps_app("com.a", 5, Some(10)));
        let b = d.install(gps_app("com.b", 5, None));
        d.launch(a).unwrap();
        d.launch(b).unwrap();
        assert_eq!(d.state(a).unwrap(), AppState::Background);
        assert_eq!(d.state(b).unwrap(), AppState::Foreground);
    }

    #[test]
    fn trigger_requires_foreground() {
        let mut d = Device::new();
        let app = AppBuilder::new("com.manual")
            .location_claim(LocationClaim::FineAndCoarse)
            .behavior(LocationBehavior::requester([ProviderKind::Gps], 5))
            .build();
        let id = d.install(app);
        assert!(matches!(d.trigger_location_use(id), Err(DeviceError::NotInForeground(_))));
        d.launch(id).unwrap();
        d.advance(10);
        assert!(d.access_log().is_empty(), "non-auto-start app is silent until triggered");
        d.trigger_location_use(id).unwrap();
        d.advance(10);
        assert!(!d.access_log().is_empty());
    }

    #[test]
    fn stop_removes_registrations() {
        let mut d = Device::new();
        let id = d.install(gps_app("com.a", 1, Some(1)));
        d.launch(id).unwrap();
        d.move_to_background(id).unwrap();
        d.advance(5);
        let n = d.access_log().len();
        assert!(n > 0);
        d.stop(id).unwrap();
        d.advance(20);
        assert_eq!(d.access_log().len(), n);
    }

    #[test]
    fn collected_trace_follows_device_movement() {
        use backwatch_trace::sampling;
        // Device rides a straight-line trace; the bg app's collected trace
        // is the downsampled version of it.
        let pts: Vec<TracePoint> = (0..200)
            .map(|i| {
                TracePoint::new(
                    Timestamp::from_secs(i),
                    LatLon::new(39.9 + f64::from(i as u32) * 1e-5, 116.4).unwrap(),
                )
            })
            .collect();
        let route = Trace::from_points(pts);
        let mut d = Device::with_position(PositionSource::Trace(route.clone()));
        let id = d.install(gps_app("com.stalker", 1, Some(20)));
        d.launch(id).unwrap();
        d.move_to_background(id).unwrap();
        d.advance(200);
        let got = d.collected_trace(id).unwrap();
        assert!(got.len() >= 9, "expected ~10 fixes, got {}", got.len());
        // every collected fix sits on the route (no coarsening for gps)
        let sampled = sampling::downsample(&route, backwatch_geo::Seconds::new(20));
        assert!(got.len() <= sampled.len() + 1);
    }

    #[test]
    fn unknown_app_handle_errors() {
        let d = Device::new();
        assert!(matches!(d.app(AppId(3)), Err(DeviceError::UnknownApp(_))));
        assert!(d.collected_trace(AppId(0)).is_err());
    }

    #[test]
    fn fake_policy_feeds_the_decoy_position() {
        let mut d = Device::new();
        let id = d.install(gps_app("com.spy", 1, Some(5)));
        let decoy = LatLon::new(40.0, 117.0).unwrap();
        d.set_location_policy(id, LocationPolicy::Fake(decoy)).unwrap();
        assert_eq!(d.location_policy(id).unwrap(), LocationPolicy::Fake(decoy));
        d.launch(id).unwrap();
        d.move_to_background(id).unwrap();
        d.advance(30);
        let collected = d.collected_trace(id).unwrap();
        assert!(!collected.is_empty());
        assert!(collected.iter().all(|p| p.pos == decoy));
        // the system cache still holds the real position for other apps
        let (real, _, _) = d.last_known_location().unwrap();
        assert_ne!(real, decoy);
    }

    #[test]
    fn coarsen_policy_degrades_gps_fixes() {
        let mut d = Device::new();
        let id = d.install(gps_app("com.spy", 1, None));
        d.set_location_policy(id, LocationPolicy::Coarsen).unwrap();
        d.launch(id).unwrap();
        d.advance(10);
        assert!(!d.access_log().is_empty());
        assert!(d
            .access_log()
            .iter()
            .filter(|r| r.app == id)
            .all(|r| r.granularity == Granularity::Coarse));
    }

    #[test]
    fn block_policy_delivers_nothing_but_keeps_the_listener() {
        let mut d = Device::new();
        let id = d.install(gps_app("com.spy", 1, Some(1)));
        d.set_location_policy(id, LocationPolicy::Block).unwrap();
        d.launch(id).unwrap();
        d.move_to_background(id).unwrap();
        d.advance(30);
        assert!(d.collected_trace(id).unwrap().is_empty());
        // the registration survives: dumpsys still shows the listener, so
        // the app cannot detect the block
        let report = crate::dumpsys::render(&d);
        assert!(report.contains("com.spy"));
        // and the policy can be lifted at runtime
        d.set_location_policy(id, LocationPolicy::Allow).unwrap();
        d.advance(10);
        assert!(!d.collected_trace(id).unwrap().is_empty());
    }

    #[test]
    fn policy_on_unknown_app_errors() {
        let mut d = Device::new();
        assert!(d.set_location_policy(AppId(9), LocationPolicy::Block).is_err());
        assert!(d.location_policy(AppId(9)).is_err());
    }

    #[test]
    fn energy_is_charged_per_fix() {
        let mut d = Device::new();
        let id = d.install(gps_app("com.a", 5, None));
        d.launch(id).unwrap();
        d.advance(20); // 4 gps fixes at default cost 1.0
        assert!((d.energy_used(id).unwrap() - 4.0).abs() < 1e-9);
        assert_eq!(d.total_energy(), d.energy_used(id).unwrap());
    }

    #[test]
    fn gps_costs_more_than_network() {
        let mut d = Device::new();
        let gps = d.install(gps_app("com.gps", 5, None));
        let net = d.install(
            AppBuilder::new("com.net")
                .location_claim(LocationClaim::FineAndCoarse)
                .behavior(
                    LocationBehavior::requester([ProviderKind::Network], 5)
                        .auto_start(true)
                        .background_interval(5),
                )
                .build(),
        );
        d.launch(net).unwrap();
        d.launch(gps).unwrap(); // net goes to background, keeps polling
        d.advance(60);
        let e_gps = d.energy_used(gps).unwrap();
        let e_net = d.energy_used(net).unwrap();
        assert!(e_gps > e_net, "gps {e_gps} vs network {e_net}");
        assert!(e_net > 0.0);
    }

    #[test]
    fn passive_deliveries_are_free_by_default() {
        let mut d = Device::new();
        let active = d.install(gps_app("com.active", 5, Some(5)));
        let passive = d.install(
            AppBuilder::new("com.passive")
                .location_claim(LocationClaim::FineAndCoarse)
                .behavior(
                    LocationBehavior::requester([ProviderKind::Passive], 1)
                        .auto_start(true)
                        .background_interval(1),
                )
                .build(),
        );
        d.launch(passive).unwrap();
        d.launch(active).unwrap();
        d.advance(60);
        assert!(!d.collected_trace(passive).unwrap().is_empty());
        assert_eq!(d.energy_used(passive).unwrap(), 0.0);
    }

    #[test]
    fn indicator_attributes_background_access_to_foreground_app() {
        let mut d = Device::new();
        // a background poller
        let bg = d.install(gps_app("com.bg", 1, Some(10)));
        d.launch(bg).unwrap();
        d.move_to_background(bg).unwrap();
        d.advance(50);
        let (fg1, bg1) = d.indicator_seconds();
        assert_eq!(fg1, 0);
        assert_eq!(bg1, 50, "bg-only access lights the icon in the bg bucket");
        // now a foreground app also uses location: the user will blame it
        let fg_app = d.install(gps_app("com.fg", 1, None));
        d.launch(fg_app).unwrap();
        d.advance(50);
        let (fg2, bg2) = d.indicator_seconds();
        assert_eq!(fg2, 50, "icon now reads as the foreground app's");
        assert_eq!(bg2, bg1, "the background poller hides behind it");
    }

    #[test]
    fn custom_energy_model_is_honored() {
        use crate::energy::EnergyModel;
        let mut d = Device::new();
        d.set_energy_model(EnergyModel {
            gps: 10.0,
            ..EnergyModel::default()
        });
        let id = d.install(gps_app("com.a", 5, None));
        d.launch(id).unwrap();
        d.advance(10); // 2 fixes
        assert!((d.energy_used(id).unwrap() - 20.0).abs() < 1e-9);
    }

    #[test]
    fn last_known_location_tracks_cache() {
        let mut d = Device::new();
        assert!(d.last_known_location().is_none());
        let id = d.install(gps_app("com.a", 5, None));
        d.launch(id).unwrap();
        d.advance(6);
        let (_, gran, age) = d.last_known_location().unwrap();
        assert_eq!(gran, Granularity::Fine);
        assert!(age <= 5);
    }
}
