//! Apps: static manifests and runtime location behavior.

use crate::permission::{LocationClaim, Permission};
use crate::provider::ProviderKind;
use std::collections::BTreeSet;
use std::fmt;

/// The intent action a receiver must filter on to run at boot.
pub const ACTION_BOOT_COMPLETED: &str = "android.intent.action.BOOT_COMPLETED";

/// The launcher entry action of a main activity.
pub const ACTION_MAIN: &str = "android.intent.action.MAIN";

/// The kind of an application component declared in the manifest.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ComponentKind {
    /// `<activity>` — a foreground UI entry point.
    Activity,
    /// `<service>` — a long-running background entry point.
    Service,
    /// `<receiver>` — a broadcast entry point (e.g. `BOOT_COMPLETED`).
    Receiver,
}

impl ComponentKind {
    /// The manifest element name (`activity` / `service` / `receiver`).
    #[must_use]
    pub fn element(&self) -> &'static str {
        match self {
            ComponentKind::Activity => "activity",
            ComponentKind::Service => "service",
            ComponentKind::Receiver => "receiver",
        }
    }
}

/// One `<activity>`/`<service>`/`<receiver>` declaration, with the intent
/// actions its `<intent-filter>` registers for.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Component {
    /// The element kind.
    pub kind: ComponentKind,
    /// The `android:name` value — `.Relative` or fully qualified.
    pub name: String,
    /// Actions declared in the component's intent filter, in order.
    pub intent_actions: Vec<String>,
}

impl Component {
    /// A component with no intent filter.
    #[must_use]
    pub fn new(kind: ComponentKind, name: impl Into<String>) -> Self {
        Self {
            kind,
            name: name.into(),
            intent_actions: Vec::new(),
        }
    }

    /// Adds an intent-filter action.
    #[must_use]
    pub fn with_action(mut self, action: impl Into<String>) -> Self {
        self.intent_actions.push(action.into());
        self
    }

    /// Whether the component's filter includes `BOOT_COMPLETED`.
    #[must_use]
    pub fn is_boot_receiver(&self) -> bool {
        self.kind == ComponentKind::Receiver && self.intent_actions.iter().any(|a| a == ACTION_BOOT_COMPLETED)
    }

    /// Resolves the `android:name` to an IR class path: `.Relative` names
    /// are prefixed with the package, dots become slashes
    /// (`.MainActivity` under `com.x` → `com/x/MainActivity`).
    #[must_use]
    pub fn class_path(&self, package: &str) -> String {
        if let Some(rel) = self.name.strip_prefix('.') {
            format!("{}/{}", package.replace('.', "/"), rel.replace('.', "/"))
        } else {
            self.name.replace('.', "/")
        }
    }
}

/// The static view of an app — what Apktool extracts from the APK.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct Manifest {
    package: String,
    permissions: BTreeSet<Permission>,
    components: Vec<Component>,
}

impl Manifest {
    /// The app's package name (e.g. `com.example.maps`).
    #[must_use]
    pub fn package(&self) -> &str {
        &self.package
    }

    /// The declared permissions.
    #[must_use]
    pub fn permissions(&self) -> &BTreeSet<Permission> {
        &self.permissions
    }

    /// The location-permission posture of this manifest.
    #[must_use]
    pub fn location_claim(&self) -> LocationClaim {
        LocationClaim::from_permissions(&self.permissions)
    }

    /// The declared components, in declaration order.
    #[must_use]
    pub fn components(&self) -> &[Component] {
        &self.components
    }

    /// Whether the manifest declares a long-running service component
    /// (needed to keep updating location after being killed from recents;
    /// background listeners alone survive ordinary backgrounding).
    #[must_use]
    pub fn has_location_service(&self) -> bool {
        self.components
            .iter()
            .any(|c| c.kind == ComponentKind::Service && c.name.contains("LocationService"))
    }

    /// Whether the manifest declares a `BOOT_COMPLETED` receiver (and the
    /// matching permission, which real Android also requires).
    #[must_use]
    pub fn has_boot_receiver(&self) -> bool {
        self.permissions.contains(&Permission::ReceiveBootCompleted) && self.components.iter().any(Component::is_boot_receiver)
    }
}

/// Builds a bare [`Manifest`] without behavior — used by the manifest-XML
/// parser and by tests that only care about the static view.
///
/// # Examples
///
/// ```
/// use backwatch_android::app::ManifestBuilder;
/// use backwatch_android::permission::Permission;
///
/// let mut b = ManifestBuilder::new("com.example.app");
/// b.add_permission(Permission::AccessCoarseLocation);
/// let manifest = b.build();
/// assert!(manifest.location_claim().declares_location());
/// ```
#[derive(Debug, Clone)]
pub struct ManifestBuilder {
    package: String,
    permissions: BTreeSet<Permission>,
    components: Vec<Component>,
}

impl ManifestBuilder {
    /// Starts a manifest for `package`.
    ///
    /// # Panics
    ///
    /// Panics if `package` is empty or contains whitespace.
    #[must_use]
    pub fn new(package: impl Into<String>) -> Self {
        let package = package.into();
        assert!(
            !package.is_empty() && !package.contains(char::is_whitespace),
            "package name must be non-empty and free of whitespace: {package:?}"
        );
        Self {
            package,
            permissions: BTreeSet::new(),
            components: Vec::new(),
        }
    }

    /// Declares a permission.
    pub fn add_permission(&mut self, p: Permission) {
        self.permissions.insert(p);
    }

    /// Declares a component.
    pub fn add_component(&mut self, c: Component) {
        self.components.push(c);
    }

    /// Marks the manifest as declaring a location service component
    /// (adds or removes the conventional `.LocationService` declaration).
    pub fn set_location_service(&mut self, yes: bool) {
        let is_loc = |c: &Component| c.kind == ComponentKind::Service && c.name.contains("LocationService");
        if yes {
            if !self.components.iter().any(is_loc) {
                self.components
                    .push(Component::new(ComponentKind::Service, ".LocationService"));
            }
        } else {
            self.components.retain(|c| !is_loc(c));
        }
    }

    /// Finishes the manifest.
    #[must_use]
    pub fn build(self) -> Manifest {
        Manifest {
            package: self.package,
            permissions: self.permissions,
            components: self.components,
        }
    }
}

/// What an app does with the fixes it collects — the exfiltration ground
/// truth the taint pass recovers statically.
///
/// `via_sdk` routes the upload through the embedded ad-SDK's tracker
/// (`ir::SDK_GEO_CLASS`) instead of an app-owned connection; the flow
/// then crosses the app→SDK fragment boundary before reaching the
/// network.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Exfiltration {
    /// Fixes never leave the device.
    None,
    /// Coordinates are truncated to `decimals` digits before upload.
    Sanitized {
        /// Decimal digits kept on the wire (0..=`ir::MAX_SANITIZER_DEGREE`).
        decimals: u8,
        /// Upload through the shared ad SDK rather than directly.
        via_sdk: bool,
    },
    /// Full-precision coordinates are uploaded.
    Raw {
        /// Upload through the shared ad SDK rather than directly.
        via_sdk: bool,
    },
}

impl Exfiltration {
    /// Whether any fix leaves the device.
    #[must_use]
    pub fn exfiltrates(&self) -> bool {
        !matches!(self, Exfiltration::None)
    }

    /// The sanitizer degree applied on the upload path, if sanitized.
    #[must_use]
    pub fn decimals(&self) -> Option<u8> {
        match self {
            Exfiltration::Sanitized { decimals, .. } => Some(*decimals),
            _ => None,
        }
    }

    /// Whether the upload is routed through the shared ad SDK.
    #[must_use]
    pub fn via_sdk(&self) -> bool {
        match self {
            Exfiltration::None => false,
            Exfiltration::Sanitized { via_sdk, .. } | Exfiltration::Raw { via_sdk } => *via_sdk,
        }
    }
}

/// What the app actually does with location at run time — the ground truth
/// that dynamic analysis recovers.
///
/// Constructed via the provided combinators:
///
/// ```
/// use backwatch_android::app::LocationBehavior;
/// use backwatch_android::provider::ProviderKind;
///
/// let b = LocationBehavior::requester([ProviderKind::Gps, ProviderKind::Network], 5)
///     .auto_start(true)
///     .background_interval(30);
/// assert!(b.accesses_in_background());
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct LocationBehavior {
    providers: Vec<ProviderKind>,
    foreground_interval_s: i64,
    background_interval_s: Option<i64>,
    auto_start: bool,
    exfiltration: Exfiltration,
}

impl LocationBehavior {
    /// An app that never requests location (the over-privileged case: it
    /// may still *declare* permissions in its manifest).
    #[must_use]
    pub fn inert() -> Self {
        Self {
            providers: Vec::new(),
            foreground_interval_s: 0,
            background_interval_s: None,
            auto_start: false,
            exfiltration: Exfiltration::None,
        }
    }

    /// An app that requests location from `providers` every
    /// `interval_s` seconds while in the foreground.
    ///
    /// # Panics
    ///
    /// Panics if `providers` is empty or `interval_s < 1`.
    #[must_use]
    pub fn requester<I: IntoIterator<Item = ProviderKind>>(providers: I, interval_s: i64) -> Self {
        let providers: Vec<ProviderKind> = providers.into_iter().collect();
        assert!(!providers.is_empty(), "a requester needs at least one provider");
        assert!(interval_s >= 1, "interval must be at least 1 s, got {interval_s}");
        Self {
            providers,
            foreground_interval_s: interval_s,
            background_interval_s: None,
            auto_start: false,
            exfiltration: Exfiltration::None,
        }
    }

    /// Sets whether the app registers its listeners immediately on launch
    /// (385 of the paper's 528 functional apps do) or only after a user
    /// interaction.
    #[must_use]
    pub fn auto_start(mut self, yes: bool) -> Self {
        self.auto_start = yes;
        self
    }

    /// Makes the app keep updating location in the background, every
    /// `interval_s` seconds.
    ///
    /// # Panics
    ///
    /// Panics if `interval_s < 1` or the behavior is inert.
    #[must_use]
    pub fn background_interval(mut self, interval_s: i64) -> Self {
        assert!(interval_s >= 1, "interval must be at least 1 s, got {interval_s}");
        assert!(self.requests_location(), "an inert app cannot poll in background");
        self.background_interval_s = Some(interval_s);
        self
    }

    /// Sets what the app does with collected fixes.
    ///
    /// # Panics
    ///
    /// Panics if the behavior is inert (an app that never obtains a fix
    /// has nothing to exfiltrate) or a sanitized degree exceeds
    /// `ir::MAX_SANITIZER_DEGREE`.
    #[must_use]
    pub fn exfiltrate(mut self, exfiltration: Exfiltration) -> Self {
        if exfiltration.exfiltrates() {
            assert!(self.requests_location(), "an inert app cannot exfiltrate location");
        }
        if let Some(d) = exfiltration.decimals() {
            assert!(
                d <= crate::ir::MAX_SANITIZER_DEGREE,
                "sanitizer degree {d} exceeds the recognized maximum"
            );
        }
        self.exfiltration = exfiltration;
        self
    }

    /// What the app does with the fixes it collects.
    #[must_use]
    pub fn exfiltration(&self) -> Exfiltration {
        self.exfiltration
    }

    /// Whether the app functionally requests location at all.
    #[must_use]
    pub fn requests_location(&self) -> bool {
        !self.providers.is_empty()
    }

    /// Whether the app keeps accessing location in the background.
    #[must_use]
    pub fn accesses_in_background(&self) -> bool {
        self.background_interval_s.is_some()
    }

    /// Whether registration happens on launch without user action.
    #[must_use]
    pub fn is_auto_start(&self) -> bool {
        self.auto_start
    }

    /// The providers the app registers.
    #[must_use]
    pub fn providers(&self) -> &[ProviderKind] {
        &self.providers
    }

    /// Foreground update interval, seconds.
    #[must_use]
    pub fn foreground_interval_s(&self) -> i64 {
        self.foreground_interval_s
    }

    /// Background update interval, seconds, if the app polls in background.
    #[must_use]
    pub fn background_interval_s(&self) -> Option<i64> {
        self.background_interval_s
    }
}

/// A complete app: manifest plus runtime behavior.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct App {
    manifest: Manifest,
    behavior: LocationBehavior,
}

impl App {
    /// The static manifest.
    #[must_use]
    pub fn manifest(&self) -> &Manifest {
        &self.manifest
    }

    /// The runtime behavior.
    #[must_use]
    pub fn behavior(&self) -> &LocationBehavior {
        &self.behavior
    }
}

impl fmt::Display for App {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} [{}]", self.manifest.package, self.manifest.location_claim())
    }
}

/// Builder for [`App`].
///
/// # Examples
///
/// ```
/// use backwatch_android::app::{AppBuilder, LocationBehavior};
/// use backwatch_android::permission::Permission;
/// use backwatch_android::provider::ProviderKind;
///
/// let app = AppBuilder::new("com.example.weather")
///     .permission(Permission::AccessCoarseLocation)
///     .permission(Permission::Internet)
///     .behavior(LocationBehavior::requester([ProviderKind::Network], 60))
///     .build();
/// assert!(app.manifest().location_claim().declares_location());
/// ```
#[derive(Debug, Clone)]
pub struct AppBuilder {
    manifest: ManifestBuilder,
    behavior: LocationBehavior,
}

impl AppBuilder {
    /// Starts building an app with the given package name.
    ///
    /// # Panics
    ///
    /// Panics if `package` is empty or contains whitespace.
    #[must_use]
    pub fn new(package: impl Into<String>) -> Self {
        Self {
            manifest: ManifestBuilder::new(package),
            behavior: LocationBehavior::inert(),
        }
    }

    /// Declares a permission.
    #[must_use]
    pub fn permission(mut self, p: Permission) -> Self {
        self.manifest.add_permission(p);
        self
    }

    /// Declares the permissions of a [`LocationClaim`] wholesale.
    #[must_use]
    pub fn location_claim(mut self, claim: LocationClaim) -> Self {
        for p in claim.to_permissions() {
            self.manifest.add_permission(p);
        }
        self
    }

    /// Declares a component.
    #[must_use]
    pub fn component(mut self, c: Component) -> Self {
        self.manifest.add_component(c);
        self
    }

    /// Declares a long-running location service component.
    #[must_use]
    pub fn location_service(mut self, yes: bool) -> Self {
        self.manifest.set_location_service(yes);
        self
    }

    /// Sets the runtime behavior.
    #[must_use]
    pub fn behavior(mut self, behavior: LocationBehavior) -> Self {
        self.behavior = behavior;
        self
    }

    /// Finishes the app.
    #[must_use]
    pub fn build(self) -> App {
        App {
            manifest: self.manifest.build(),
            behavior: self.behavior,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_assembles_manifest() {
        let app = AppBuilder::new("com.x.y")
            .permission(Permission::AccessFineLocation)
            .permission(Permission::Internet)
            .location_service(true)
            .build();
        assert_eq!(app.manifest().package(), "com.x.y");
        assert_eq!(app.manifest().location_claim(), LocationClaim::FineOnly);
        assert!(app.manifest().has_location_service());
        assert!(!app.behavior().requests_location());
    }

    #[test]
    fn claim_bulk_declaration() {
        let app = AppBuilder::new("a.b").location_claim(LocationClaim::FineAndCoarse).build();
        assert_eq!(app.manifest().location_claim(), LocationClaim::FineAndCoarse);
    }

    #[test]
    fn behavior_flags() {
        let b = LocationBehavior::requester([ProviderKind::Passive], 10);
        assert!(b.requests_location());
        assert!(!b.accesses_in_background());
        let b = b.background_interval(600);
        assert!(b.accesses_in_background());
        assert_eq!(b.background_interval_s(), Some(600));
    }

    #[test]
    #[should_panic(expected = "at least one provider")]
    fn requester_needs_providers() {
        let _ = LocationBehavior::requester([], 10);
    }

    #[test]
    #[should_panic(expected = "inert app")]
    fn inert_cannot_go_background() {
        let _ = LocationBehavior::inert().background_interval(10);
    }

    #[test]
    fn exfiltration_flags() {
        let b = LocationBehavior::requester([ProviderKind::Gps], 10);
        assert_eq!(b.exfiltration(), Exfiltration::None);
        assert!(!b.exfiltration().exfiltrates());
        let b = b.exfiltrate(Exfiltration::Sanitized {
            decimals: 3,
            via_sdk: true,
        });
        assert!(b.exfiltration().exfiltrates());
        assert_eq!(b.exfiltration().decimals(), Some(3));
        assert!(b.exfiltration().via_sdk());
        let raw = Exfiltration::Raw { via_sdk: false };
        assert_eq!(raw.decimals(), None);
        assert!(!raw.via_sdk());
    }

    #[test]
    #[should_panic(expected = "inert app cannot exfiltrate")]
    fn inert_cannot_exfiltrate() {
        let _ = LocationBehavior::inert().exfiltrate(Exfiltration::Raw { via_sdk: false });
    }

    #[test]
    #[should_panic(expected = "exceeds the recognized maximum")]
    fn oversharp_sanitizer_degree_panics() {
        let _ = LocationBehavior::requester([ProviderKind::Gps], 10).exfiltrate(Exfiltration::Sanitized {
            decimals: 5,
            via_sdk: false,
        });
    }

    #[test]
    #[should_panic(expected = "package name")]
    fn empty_package_panics() {
        let _ = AppBuilder::new("");
    }

    #[test]
    fn components_round_trip_through_builders() {
        let app = AppBuilder::new("com.x.y")
            .component(Component::new(ComponentKind::Activity, ".MainActivity").with_action(ACTION_MAIN))
            .component(Component::new(ComponentKind::Receiver, ".BootReceiver").with_action(ACTION_BOOT_COMPLETED))
            .permission(Permission::ReceiveBootCompleted)
            .location_service(true)
            .build();
        assert_eq!(app.manifest().components().len(), 3);
        assert!(app.manifest().has_location_service());
        assert!(app.manifest().has_boot_receiver());
    }

    #[test]
    fn boot_receiver_requires_both_filter_and_permission() {
        let only_component = AppBuilder::new("a.b")
            .component(Component::new(ComponentKind::Receiver, ".BootReceiver").with_action(ACTION_BOOT_COMPLETED))
            .build();
        assert!(!only_component.manifest().has_boot_receiver());
        let only_permission = AppBuilder::new("a.b").permission(Permission::ReceiveBootCompleted).build();
        assert!(!only_permission.manifest().has_boot_receiver());
    }

    #[test]
    fn location_service_toggle_is_idempotent() {
        let mut b = ManifestBuilder::new("a.b");
        b.set_location_service(true);
        b.set_location_service(true);
        let m = b.build();
        assert_eq!(m.components().len(), 1);
        let mut b = ManifestBuilder::new("a.b");
        b.set_location_service(true);
        b.set_location_service(false);
        assert!(!b.build().has_location_service());
    }

    #[test]
    fn class_path_resolves_relative_and_qualified_names() {
        let rel = Component::new(ComponentKind::Activity, ".ui.MainActivity");
        assert_eq!(rel.class_path("com.example.nav"), "com/example/nav/ui/MainActivity");
        let full = Component::new(ComponentKind::Service, "com.vendor.sdk.TrackService");
        assert_eq!(full.class_path("com.example.nav"), "com/vendor/sdk/TrackService");
    }

    #[test]
    fn display_shows_claim() {
        let app = AppBuilder::new("p.q").location_claim(LocationClaim::CoarseOnly).build();
        assert_eq!(app.to_string(), "p.q [coarse]");
    }
}
