//! A `dumpsys location`-style diagnostic report and its parser.
//!
//! The paper's dynamic analysis never reads app internals: it runs the app
//! and inspects the textual output of `adb shell dumpsys location`, which
//! lists each live listener registration with its provider and requested
//! interval. We reproduce that information channel faithfully — the market
//! crate *renders* the device state to text and *parses* it back, so the
//! measurement pipeline inherits the same observability limits the authors
//! had.

use crate::lifecycle::AppState;
use crate::provider::ProviderKind;
use crate::system::Device;
use std::error::Error;
use std::fmt;
use std::str::FromStr;

/// One parsed listener line from a report.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct ListenerEntry {
    /// Package name of the registered app.
    pub package: String,
    /// Provider the listener is bound to.
    pub provider: ProviderKind,
    /// Requested update interval in seconds.
    pub interval_s: i64,
    /// Whether the app was in the background when the report was taken.
    pub background: bool,
}

/// Renders the device's location-manager state in a `dumpsys`-like layout.
///
/// # Examples
///
/// ```
/// use backwatch_android::{app::{AppBuilder, LocationBehavior}, dumpsys, system::Device};
/// use backwatch_android::permission::Permission;
/// use backwatch_android::provider::ProviderKind;
///
/// let mut d = Device::new();
/// let id = d.install(
///     AppBuilder::new("com.example.nav")
///         .permission(Permission::AccessFineLocation)
///         .behavior(LocationBehavior::requester([ProviderKind::Gps], 5).auto_start(true))
///         .build(),
/// );
/// d.launch(id)?;
/// let report = dumpsys::render(&d);
/// assert!(report.contains("com.example.nav"));
/// assert!(report.contains("Request[gps interval=5s]"));
/// # Ok::<(), backwatch_android::system::DeviceError>(())
/// ```
#[must_use]
pub fn render(device: &Device) -> String {
    crate::obs::register();
    crate::obs::DUMPSYS_RENDERS.inc();
    let mut out = String::new();
    out.push_str("Current Location Manager state:\n");
    out.push_str(&format!("  time={}s\n", device.now()));
    out.push_str("  Location Listeners:\n");
    let mut lines: u64 = 0;
    for (package, provider, interval, state) in device.registrations_snapshot() {
        let tag = match state {
            AppState::Background => " (background)",
            AppState::Foreground => " (foreground)",
            AppState::Stopped => " (stopped)",
        };
        out.push_str(&format!(
            "    Receiver[{package} Request[{provider} interval={interval}s]]{tag}\n"
        ));
        lines += 1;
    }
    crate::obs::DUMPSYS_LINES_RENDERED.add(lines);
    out.push_str("  Last Known Locations:\n");
    if let Some((pos, gran, age)) = device.last_known_location() {
        out.push_str(&format!(
            "    {:.6},{:.6} granularity={gran} age={age}s\n",
            pos.lat(),
            pos.lon()
        ));
    } else {
        out.push_str("    (none)\n");
    }
    out
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDumpsysError {
    line: usize,
    reason: String,
}

impl fmt::Display for ParseDumpsysError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed dumpsys report at line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseDumpsysError {}

/// Parses the listener entries out of a report produced by [`render`].
///
/// The app-state tag is parsed *strictly*: only `(background)`,
/// `(foreground)`, and `(stopped)` — exactly as [`render`] writes them —
/// are accepted, and only the first maps to `background = true`. Anything
/// else is a parse error, not a silent foreground: a study built on this
/// channel must not misfile listeners it cannot classify.
///
/// # Errors
///
/// Returns [`ParseDumpsysError`] if a `Receiver[...]` line does not match
/// the expected grammar, including an unknown or missing app-state tag.
/// Unknown lines outside the listener section are ignored, mirroring how
/// the study's scripts grepped real `dumpsys` output.
pub fn parse(report: &str) -> Result<Vec<ListenerEntry>, ParseDumpsysError> {
    crate::obs::register();
    let res = parse_inner(report);
    match &res {
        Ok(entries) => crate::obs::DUMPSYS_ENTRIES_PARSED.add(entries.len() as u64),
        Err(_) => crate::obs::DUMPSYS_PARSE_ERRORS.inc(),
    }
    res
}

fn parse_inner(report: &str) -> Result<Vec<ListenerEntry>, ParseDumpsysError> {
    let mut out = Vec::new();
    for (i, line) in report.lines().enumerate() {
        let trimmed = line.trim();
        let Some(rest) = trimmed.strip_prefix("Receiver[") else {
            continue;
        };
        let err = |reason: &str| ParseDumpsysError {
            line: i + 1,
            reason: reason.to_owned(),
        };
        // grammar: Receiver[<pkg> Request[<provider> interval=<n>s]] (<state>)
        let (package, rest) = rest.split_once(' ').ok_or_else(|| err("missing package separator"))?;
        let rest = rest.strip_prefix("Request[").ok_or_else(|| err("missing Request["))?;
        let (provider_str, rest) = rest.split_once(' ').ok_or_else(|| err("missing provider separator"))?;
        let provider = ProviderKind::from_str(provider_str).map_err(|e| err(&e.to_string()))?;
        let rest = rest.strip_prefix("interval=").ok_or_else(|| err("missing interval"))?;
        let (interval_str, rest) = rest.split_once("s]]").ok_or_else(|| err("missing interval unit/closing"))?;
        let interval_s: i64 = interval_str.parse().map_err(|_| err("interval is not an integer"))?;
        if interval_s < 1 {
            return Err(err("interval must be at least 1 second"));
        }
        let background = match rest.trim() {
            "(background)" => true,
            "(foreground)" | "(stopped)" => false,
            other => {
                crate::obs::DUMPSYS_BAD_STATE.inc();
                let reason = if other.is_empty() {
                    "missing app-state tag".to_owned()
                } else {
                    format!("unknown app-state tag {other:?}")
                };
                return Err(err(&reason));
            }
        };
        out.push(ListenerEntry {
            package: package.to_owned(),
            provider,
            interval_s,
            background,
        });
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, LocationBehavior};
    use crate::permission::LocationClaim;

    fn device_with_bg_app() -> Device {
        let mut d = Device::new();
        let id = d.install(
            AppBuilder::new("com.example.bg")
                .location_claim(LocationClaim::FineAndCoarse)
                .behavior(
                    LocationBehavior::requester([ProviderKind::Gps, ProviderKind::Network], 5)
                        .auto_start(true)
                        .background_interval(30),
                )
                .build(),
        );
        d.launch(id).unwrap();
        d.move_to_background(id).unwrap();
        d.advance(10);
        d
    }

    #[test]
    fn render_parse_round_trip() {
        let d = device_with_bg_app();
        let report = render(&d);
        let entries = parse(&report).unwrap();
        assert_eq!(entries.len(), 2);
        assert!(entries.iter().all(|e| e.package == "com.example.bg"));
        assert!(entries.iter().all(|e| e.background));
        assert!(entries.iter().all(|e| e.interval_s == 30));
        let providers: Vec<ProviderKind> = entries.iter().map(|e| e.provider).collect();
        assert!(providers.contains(&ProviderKind::Gps));
        assert!(providers.contains(&ProviderKind::Network));
    }

    #[test]
    fn report_includes_last_known_location() {
        let d = device_with_bg_app();
        let report = render(&d);
        assert!(report.contains("Last Known Locations"));
        // gps and network both fired; whichever wrote the cache last, a
        // granularity is reported
        assert!(report.contains("granularity="));
        assert!(!report.contains("(none)"));
    }

    #[test]
    fn empty_device_renders_and_parses_empty() {
        let d = Device::new();
        let report = render(&d);
        assert!(report.contains("(none)"));
        assert!(parse(&report).unwrap().is_empty());
    }

    #[test]
    fn unknown_lines_are_ignored() {
        let report = "garbage\n  more garbage\n";
        assert!(parse(report).unwrap().is_empty());
    }

    #[test]
    fn malformed_receiver_line_errors() {
        let report = "    Receiver[com.x Request[warp interval=5s]] (background)\n";
        let err = parse(report).unwrap_err();
        assert!(err.to_string().contains("unknown location provider"));
    }

    #[test]
    fn bad_interval_errors() {
        let report = "    Receiver[com.x Request[gps interval=zzz s]] (background)\n";
        assert!(parse(report).is_err());
        let report = "    Receiver[com.x Request[gps interval=0s]] (background)\n";
        assert!(parse(report).is_err());
    }

    #[test]
    fn stopped_entries_parse_as_not_background() {
        let report = "    Receiver[com.x Request[gps interval=5s]] (stopped)\n";
        let entries = parse(report).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].background);
    }

    #[test]
    fn unknown_state_tag_errors_instead_of_parsing_as_foreground() {
        for bad in ["(paused)", "(Background)", "(BACKGROUND)", "(background) extra", "background"] {
            let report = format!("    Receiver[com.x Request[gps interval=5s]] {bad}\n");
            let e = parse(&report).unwrap_err();
            assert!(e.to_string().contains("app-state"), "{bad}: {e}");
        }
    }

    #[test]
    fn missing_state_tag_errors() {
        let report = "    Receiver[com.x Request[gps interval=5s]]\n";
        let e = parse(report).unwrap_err();
        assert!(e.to_string().contains("missing app-state"), "{e}");
    }

    #[test]
    fn bad_state_lines_are_counted() {
        crate::obs::register();
        let before = crate::obs::DUMPSYS_BAD_STATE.get();
        let _ = parse("    Receiver[com.x Request[gps interval=5s]] (weird)\n");
        let after = crate::obs::DUMPSYS_BAD_STATE.get();
        // at least our own bump (other tests may add more concurrently);
        // with obs built `disabled` the registry is empty and counters stay 0
        if !backwatch_obs::snapshot().samples.is_empty() {
            assert!(after > before, "bad-state counter did not move");
        }
    }

    #[test]
    fn foreground_entries_not_marked_background() {
        let mut d = Device::new();
        let id = d.install(
            AppBuilder::new("com.fg")
                .location_claim(LocationClaim::FineAndCoarse)
                .behavior(LocationBehavior::requester([ProviderKind::Fused], 10).auto_start(true))
                .build(),
        );
        d.launch(id).unwrap();
        let entries = parse(&render(&d)).unwrap();
        assert_eq!(entries.len(), 1);
        assert!(!entries[0].background);
        assert_eq!(entries[0].provider, ProviderKind::Fused);
    }
}
