//! Simulated Android location stack.
//!
//! The paper's market study (§III) runs 2,800 real apps on a Nexus 4 and
//! watches `dumpsys location` to see which apps keep requesting location
//! from the background. This crate provides the pieces of Android that the
//! study observes, as a discrete-time simulation:
//!
//! - [`permission`] — the location permissions and what they allow.
//! - [`provider`] — the four location providers (GPS, network, passive,
//!   fused) and the granularity of the fixes they deliver.
//! - [`app`] — an app's [`app::Manifest`] (the static view Apktool
//!   extracts) and its [`app::LocationBehavior`] (what it actually does at
//!   run time — the ground truth the dynamic analysis tries to recover).
//! - [`lifecycle`] — foreground/background/stopped states.
//! - [`system`] — the [`system::Device`]: install/launch/trigger/background
//!   apps, drive a position source, advance the clock; the embedded
//!   `LocationManager` enforces permissions, schedules listener updates,
//!   feeds the passive provider from the fix cache, and logs every access.
//! - [`dumpsys`] — renders the device state as a `dumpsys location`-style
//!   text report and parses it back; the market crate deliberately
//!   round-trips through this text, as the paper's methodology did.
//!
//! # Examples
//!
//! ```
//! use backwatch_android::app::{AppBuilder, LocationBehavior};
//! use backwatch_android::permission::Permission;
//! use backwatch_android::provider::ProviderKind;
//! use backwatch_android::system::Device;
//!
//! let app = AppBuilder::new("com.example.tracker")
//!     .permission(Permission::AccessFineLocation)
//!     .behavior(
//!         LocationBehavior::requester([ProviderKind::Gps], 5)
//!             .auto_start(true)
//!             .background_interval(10),
//!     )
//!     .build();
//! let mut device = Device::new();
//! let id = device.install(app);
//! device.launch(id)?;
//! device.move_to_background(id)?;
//! device.advance(60);
//! // The app kept polling GPS from the background.
//! assert!(device.access_log().iter().any(|r| r.app == id && r.background));
//! # Ok::<(), backwatch_android::system::DeviceError>(())
//! ```

pub mod app;
pub mod dumpsys;
pub mod energy;
pub mod ir;
pub mod lifecycle;
pub mod manifest_xml;
pub mod obs;
pub mod permission;
pub mod provider;
pub mod system;

pub use app::{App, AppBuilder};
pub use system::{AppId, Device};
