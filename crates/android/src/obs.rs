//! Telemetry statics for the android crate.
//!
//! The dumpsys text channel is the one place the pipeline serializes state
//! to prose and parses it back, so every line is accounted for: the
//! round-trip invariant `lines_rendered == entries_parsed` (with zero
//! parse errors) is asserted by the experiments crate's telemetry tests.

use backwatch_obs::Counter;
use std::sync::Once;

/// Dumpsys reports rendered.
pub static DUMPSYS_RENDERS: Counter = Counter::new();
/// Listener lines written into rendered reports.
pub static DUMPSYS_LINES_RENDERED: Counter = Counter::new();
/// Listener entries successfully parsed back out of reports.
pub static DUMPSYS_ENTRIES_PARSED: Counter = Counter::new();
/// Reports rejected by the parser (any grammar violation).
pub static DUMPSYS_PARSE_ERRORS: Counter = Counter::new();
/// Listener lines whose app-state tag was not one of the three known
/// states — the silent-foreground bug this counter was added to expose.
pub static DUMPSYS_BAD_STATE: Counter = Counter::new();
/// IR programs rendered to text.
pub static IR_RENDERS: Counter = Counter::new();
/// IR programs successfully parsed from text.
pub static IR_PROGRAMS_PARSED: Counter = Counter::new();
/// IR texts rejected by the parser (any grammar violation).
pub static IR_PARSE_ERRORS: Counter = Counter::new();
/// Apps lowered to IR (the simulated Apktool decompilations).
pub static IR_APPS_LOWERED: Counter = Counter::new();

static REGISTER: Once = Once::new();

/// Registers this crate's metrics with the global registry (idempotent).
pub fn register() {
    REGISTER.call_once(|| {
        backwatch_obs::register_counter("android.dumpsys.renders_total", "dumpsys reports rendered", &DUMPSYS_RENDERS);
        backwatch_obs::register_counter(
            "android.dumpsys.lines_rendered_total",
            "listener lines rendered into reports",
            &DUMPSYS_LINES_RENDERED,
        );
        backwatch_obs::register_counter(
            "android.dumpsys.entries_parsed_total",
            "listener entries parsed from reports",
            &DUMPSYS_ENTRIES_PARSED,
        );
        backwatch_obs::register_counter(
            "android.dumpsys.parse_errors_total",
            "reports rejected by the dumpsys parser",
            &DUMPSYS_PARSE_ERRORS,
        );
        backwatch_obs::register_counter(
            "android.dumpsys.bad_state_total",
            "listener lines with an unrecognized app-state tag",
            &DUMPSYS_BAD_STATE,
        );
        backwatch_obs::register_counter("android.ir.renders_total", "IR programs rendered to text", &IR_RENDERS);
        backwatch_obs::register_counter(
            "android.ir.programs_parsed_total",
            "IR programs parsed from text",
            &IR_PROGRAMS_PARSED,
        );
        backwatch_obs::register_counter(
            "android.ir.parse_errors_total",
            "IR texts rejected by the parser",
            &IR_PARSE_ERRORS,
        );
        backwatch_obs::register_counter("android.ir.apps_lowered_total", "apps lowered to IR", &IR_APPS_LOWERED);
    });
}

#[cfg(test)]
mod tests {
    #[test]
    fn register_is_idempotent() {
        super::register();
        super::register();
        let snap = backwatch_obs::snapshot();
        if !snap.samples.is_empty() {
            assert!(snap.counter("android.dumpsys.renders_total").is_some());
        }
    }
}
