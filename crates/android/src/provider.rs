//! Location providers and fix granularity.

use crate::permission::LocationClaim;
use std::fmt;
use std::str::FromStr;

/// Granularity of a location fix.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Granularity {
    /// Network-cell / wifi precision (hundreds of meters).
    Coarse,
    /// GPS precision (meters).
    Fine,
}

impl fmt::Display for Granularity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            Granularity::Coarse => "coarse",
            Granularity::Fine => "fine",
        })
    }
}

/// The four Android location providers the paper's Table I tracks.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum ProviderKind {
    /// The GPS provider: fine fixes, requires `ACCESS_FINE_LOCATION`.
    Gps,
    /// The network provider: coarse fixes, requires any location
    /// permission.
    Network,
    /// The passive provider: piggybacks on fixes other requests produce;
    /// induces no extra positioning work.
    Passive,
    /// The fused provider (Google Play services): best available fix for
    /// the app's permission level.
    Fused,
}

/// All providers, in Table I's column order.
pub const ALL_PROVIDERS: [ProviderKind; 4] = [
    ProviderKind::Gps,
    ProviderKind::Network,
    ProviderKind::Passive,
    ProviderKind::Fused,
];

impl ProviderKind {
    /// The provider's name as it appears in `dumpsys location`.
    #[must_use]
    pub fn name(&self) -> &'static str {
        match self {
            ProviderKind::Gps => "gps",
            ProviderKind::Network => "network",
            ProviderKind::Passive => "passive",
            ProviderKind::Fused => "fused",
        }
    }

    /// Whether an app with the given permission claim may register this
    /// provider.
    ///
    /// GPS needs fine permission; the others need any location permission.
    #[must_use]
    pub fn permitted_for(&self, claim: LocationClaim) -> bool {
        match self {
            ProviderKind::Gps => claim.allows_fine(),
            ProviderKind::Network | ProviderKind::Passive | ProviderKind::Fused => claim.declares_location(),
        }
    }

    /// Granularity of fixes this provider delivers to an app with the
    /// given claim, assuming the registration was permitted.
    ///
    /// Passive has no inherent granularity (it forwards whatever was
    /// cached, capped by the app's permission); `None` signals "depends on
    /// the cache".
    #[must_use]
    pub fn fix_granularity(&self, claim: LocationClaim) -> Option<Granularity> {
        match self {
            ProviderKind::Gps => Some(Granularity::Fine),
            ProviderKind::Network => Some(Granularity::Coarse),
            ProviderKind::Passive => None,
            ProviderKind::Fused => Some(if claim.allows_fine() {
                Granularity::Fine
            } else {
                Granularity::Coarse
            }),
        }
    }

    /// Whether this provider actively computes fixes (drains battery) as
    /// opposed to passively reusing cached ones.
    #[must_use]
    pub fn is_active(&self) -> bool {
        !matches!(self, ProviderKind::Passive)
    }
}

impl fmt::Display for ProviderKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.name())
    }
}

/// Error parsing a provider name.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseProviderError(String);

impl fmt::Display for ParseProviderError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unknown location provider {:?}", self.0)
    }
}

impl std::error::Error for ParseProviderError {}

impl FromStr for ProviderKind {
    type Err = ParseProviderError;

    fn from_str(s: &str) -> Result<Self, Self::Err> {
        match s {
            "gps" => Ok(ProviderKind::Gps),
            "network" => Ok(ProviderKind::Network),
            "passive" => Ok(ProviderKind::Passive),
            "fused" => Ok(ProviderKind::Fused),
            other => Err(ParseProviderError(other.to_owned())),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gps_requires_fine() {
        assert!(ProviderKind::Gps.permitted_for(LocationClaim::FineOnly));
        assert!(ProviderKind::Gps.permitted_for(LocationClaim::FineAndCoarse));
        assert!(!ProviderKind::Gps.permitted_for(LocationClaim::CoarseOnly));
        assert!(!ProviderKind::Gps.permitted_for(LocationClaim::None));
    }

    #[test]
    fn network_and_passive_allow_coarse_only() {
        for p in [ProviderKind::Network, ProviderKind::Passive, ProviderKind::Fused] {
            assert!(p.permitted_for(LocationClaim::CoarseOnly), "{p}");
            assert!(!p.permitted_for(LocationClaim::None), "{p}");
        }
    }

    #[test]
    fn fused_granularity_tracks_permission() {
        assert_eq!(
            ProviderKind::Fused.fix_granularity(LocationClaim::FineAndCoarse),
            Some(Granularity::Fine)
        );
        assert_eq!(
            ProviderKind::Fused.fix_granularity(LocationClaim::CoarseOnly),
            Some(Granularity::Coarse)
        );
    }

    #[test]
    fn passive_has_no_inherent_granularity() {
        assert_eq!(ProviderKind::Passive.fix_granularity(LocationClaim::FineAndCoarse), None);
        assert!(!ProviderKind::Passive.is_active());
        assert!(ProviderKind::Gps.is_active());
    }

    #[test]
    fn names_round_trip() {
        for p in ALL_PROVIDERS {
            assert_eq!(p.name().parse::<ProviderKind>().unwrap(), p);
        }
        assert!("wifi".parse::<ProviderKind>().is_err());
    }

    #[test]
    fn granularity_orders_coarse_below_fine() {
        assert!(Granularity::Coarse < Granularity::Fine);
    }
}
