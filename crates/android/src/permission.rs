//! Android permissions relevant to location access.

use std::collections::BTreeSet;
use std::fmt;

/// The manifest permissions the measurement cares about.
///
/// Only the two location permissions affect the simulation; the others
/// exist so synthetic manifests look like real ones (every real app
/// declares a pile of unrelated permissions).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum Permission {
    /// `android.permission.ACCESS_FINE_LOCATION` — GPS-precision fixes.
    AccessFineLocation,
    /// `android.permission.ACCESS_COARSE_LOCATION` — network-precision
    /// fixes.
    AccessCoarseLocation,
    /// `android.permission.INTERNET`.
    Internet,
    /// `android.permission.ACCESS_NETWORK_STATE`.
    AccessNetworkState,
    /// `android.permission.WAKE_LOCK` — lets services keep running; common
    /// among apps that poll location persistently.
    WakeLock,
    /// `android.permission.RECEIVE_BOOT_COMPLETED`.
    ReceiveBootCompleted,
}

impl Permission {
    /// The fully qualified Android permission string.
    #[must_use]
    pub fn qualified_name(&self) -> &'static str {
        match self {
            Permission::AccessFineLocation => "android.permission.ACCESS_FINE_LOCATION",
            Permission::AccessCoarseLocation => "android.permission.ACCESS_COARSE_LOCATION",
            Permission::Internet => "android.permission.INTERNET",
            Permission::AccessNetworkState => "android.permission.ACCESS_NETWORK_STATE",
            Permission::WakeLock => "android.permission.WAKE_LOCK",
            Permission::ReceiveBootCompleted => "android.permission.RECEIVE_BOOT_COMPLETED",
        }
    }

    /// Whether this is one of the two location permissions.
    #[must_use]
    pub fn is_location(&self) -> bool {
        matches!(self, Permission::AccessFineLocation | Permission::AccessCoarseLocation)
    }
}

impl fmt::Display for Permission {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.qualified_name())
    }
}

/// The location-permission posture an app declares — the paper's
/// three-way split (17 % fine only / 16 % coarse only / 67 % both among
/// declaring apps).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum LocationClaim {
    /// Declares neither location permission.
    None,
    /// Declares only `ACCESS_FINE_LOCATION`.
    FineOnly,
    /// Declares only `ACCESS_COARSE_LOCATION`.
    CoarseOnly,
    /// Declares both.
    FineAndCoarse,
}

impl LocationClaim {
    /// Derives the claim from a set of declared permissions.
    #[must_use]
    pub fn from_permissions(perms: &BTreeSet<Permission>) -> Self {
        let fine = perms.contains(&Permission::AccessFineLocation);
        let coarse = perms.contains(&Permission::AccessCoarseLocation);
        match (fine, coarse) {
            (false, false) => LocationClaim::None,
            (true, false) => LocationClaim::FineOnly,
            (false, true) => LocationClaim::CoarseOnly,
            (true, true) => LocationClaim::FineAndCoarse,
        }
    }

    /// Whether any location permission is declared.
    #[must_use]
    pub fn declares_location(&self) -> bool {
        *self != LocationClaim::None
    }

    /// Whether fine-granularity fixes may be requested under this claim.
    #[must_use]
    pub fn allows_fine(&self) -> bool {
        matches!(self, LocationClaim::FineOnly | LocationClaim::FineAndCoarse)
    }

    /// Whether coarse fixes may be requested. On Android, holding
    /// `ACCESS_FINE_LOCATION` implies coarse access as well.
    #[must_use]
    pub fn allows_coarse(&self) -> bool {
        self.declares_location()
    }

    /// The permissions this claim corresponds to.
    #[must_use]
    pub fn to_permissions(self) -> BTreeSet<Permission> {
        let mut s = BTreeSet::new();
        match self {
            LocationClaim::None => {}
            LocationClaim::FineOnly => {
                s.insert(Permission::AccessFineLocation);
            }
            LocationClaim::CoarseOnly => {
                s.insert(Permission::AccessCoarseLocation);
            }
            LocationClaim::FineAndCoarse => {
                s.insert(Permission::AccessFineLocation);
                s.insert(Permission::AccessCoarseLocation);
            }
        }
        s
    }
}

impl fmt::Display for LocationClaim {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            LocationClaim::None => "none",
            LocationClaim::FineOnly => "fine",
            LocationClaim::CoarseOnly => "coarse",
            LocationClaim::FineAndCoarse => "fine & coarse",
        };
        f.write_str(s)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn claim_from_permissions() {
        let mut p = BTreeSet::new();
        assert_eq!(LocationClaim::from_permissions(&p), LocationClaim::None);
        p.insert(Permission::AccessFineLocation);
        assert_eq!(LocationClaim::from_permissions(&p), LocationClaim::FineOnly);
        p.insert(Permission::AccessCoarseLocation);
        assert_eq!(LocationClaim::from_permissions(&p), LocationClaim::FineAndCoarse);
        p.remove(&Permission::AccessFineLocation);
        assert_eq!(LocationClaim::from_permissions(&p), LocationClaim::CoarseOnly);
    }

    #[test]
    fn claim_round_trips_through_permissions() {
        for claim in [
            LocationClaim::None,
            LocationClaim::FineOnly,
            LocationClaim::CoarseOnly,
            LocationClaim::FineAndCoarse,
        ] {
            assert_eq!(LocationClaim::from_permissions(&claim.to_permissions()), claim);
        }
    }

    #[test]
    fn fine_implies_coarse() {
        assert!(LocationClaim::FineOnly.allows_coarse());
        assert!(LocationClaim::FineOnly.allows_fine());
        assert!(LocationClaim::CoarseOnly.allows_coarse());
        assert!(!LocationClaim::CoarseOnly.allows_fine());
        assert!(!LocationClaim::None.allows_coarse());
    }

    #[test]
    fn is_location_flags_only_location_permissions() {
        assert!(Permission::AccessFineLocation.is_location());
        assert!(Permission::AccessCoarseLocation.is_location());
        assert!(!Permission::Internet.is_location());
        assert!(!Permission::WakeLock.is_location());
    }

    #[test]
    fn qualified_names_are_android_style() {
        assert_eq!(
            Permission::AccessFineLocation.to_string(),
            "android.permission.ACCESS_FINE_LOCATION"
        );
    }
}
