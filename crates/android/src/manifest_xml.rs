//! AndroidManifest rendering and parsing.
//!
//! The paper's static step runs Apktool and reads the decoded
//! `AndroidManifest.xml`. We reproduce that channel: a [`crate::app::Manifest`]
//! renders to the XML subset the study cares about and parses back, so
//! the market crate's static analysis can consume text exactly like the
//! authors' scripts did (and inherits the same parsing failure modes).
//!
//! Only the elements the measurement reads are modelled:
//! `<manifest package>`, `<uses-permission android:name>`, and the
//! `<application>` component declarations (`<activity>` / `<service>` /
//! `<receiver>`, each with an optional `<intent-filter>` listing
//! `<action>` elements) that drive the static analyzer's entry-point
//! discovery.

use crate::app::{Component, ComponentKind, Manifest, ManifestBuilder};
use crate::permission::Permission;
use std::error::Error;
use std::fmt;

/// Renders the manifest as decoded-`AndroidManifest.xml`-style text.
#[must_use]
pub fn render(manifest: &Manifest) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"utf-8\"?>\n");
    out.push_str(&format!("<manifest package=\"{}\">\n", manifest.package()));
    for p in manifest.permissions() {
        out.push_str(&format!("    <uses-permission android:name=\"{}\"/>\n", p.qualified_name()));
    }
    out.push_str("    <application>\n");
    for c in manifest.components() {
        let el = c.kind.element();
        if c.intent_actions.is_empty() {
            out.push_str(&format!("        <{el} android:name=\"{}\"/>\n", c.name));
        } else {
            out.push_str(&format!("        <{el} android:name=\"{}\">\n", c.name));
            out.push_str("            <intent-filter>\n");
            for a in &c.intent_actions {
                out.push_str(&format!("                <action android:name=\"{a}\"/>\n"));
            }
            out.push_str("            </intent-filter>\n");
            out.push_str(&format!("        </{el}>\n"));
        }
    }
    out.push_str("    </application>\n");
    out.push_str("</manifest>\n");
    out
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseManifestError {
    line: usize,
    reason: String,
}

impl fmt::Display for ParseManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed manifest at line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseManifestError {}

/// Extracts the value of `attr="..."` from a tag line.
fn attr_value<'a>(line: &'a str, attr: &str) -> Option<&'a str> {
    let needle = format!("{attr}=\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Parses manifest text produced by [`render`] (or hand-written in the
/// same subset) back into a [`Manifest`].
///
/// Unknown permissions are ignored — real manifests declare dozens of
/// permissions the study does not track, and the authors' scripts grepped
/// only for the location ones. Unknown elements are skipped.
///
/// # Errors
///
/// Returns [`ParseManifestError`] if no `<manifest package="...">` root
/// is present or an interesting tag is malformed.
pub fn parse(text: &str) -> Result<Manifest, ParseManifestError> {
    let mut package: Option<String> = None;
    let mut builder: Option<ManifestBuilder> = None;
    let mut open: Option<Component> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |reason: &str| ParseManifestError {
            line: i + 1,
            reason: reason.to_owned(),
        };
        if line.starts_with("<manifest") {
            let pkg = attr_value(line, "package").ok_or_else(|| err("<manifest> lacks a package attribute"))?;
            if pkg.is_empty() || pkg.contains(char::is_whitespace) {
                return Err(err("package attribute is not a valid package name"));
            }
            package = Some(pkg.to_owned());
            builder = Some(ManifestBuilder::new(pkg));
        } else if line.starts_with("<uses-permission") {
            let b = builder.as_mut().ok_or_else(|| err("<uses-permission> before <manifest>"))?;
            let name = attr_value(line, "android:name").ok_or_else(|| err("<uses-permission> lacks android:name"))?;
            if let Some(p) = permission_from_name(name) {
                b.add_permission(p);
            }
        } else if let Some(kind) = component_kind_of(line) {
            let b = builder.as_mut().ok_or_else(|| err("component declared before <manifest>"))?;
            if open.is_some() {
                return Err(err("nested component declaration"));
            }
            let name = attr_value(line, "android:name")
                .ok_or_else(|| err("component lacks android:name"))?
                .to_owned();
            if name.is_empty() {
                return Err(err("component android:name is empty"));
            }
            let c = Component::new(kind, name);
            if line.ends_with("/>") {
                b.add_component(c);
            } else {
                open = Some(c);
            }
        } else if line.starts_with("<action") {
            let c = open.as_mut().ok_or_else(|| err("<action> outside a component"))?;
            let action = attr_value(line, "android:name").ok_or_else(|| err("<action> lacks android:name"))?;
            c.intent_actions.push(action.to_owned());
        } else if line.starts_with("</activity") || line.starts_with("</service") || line.starts_with("</receiver") {
            let b = builder.as_mut().ok_or_else(|| err("component close before <manifest>"))?;
            let c = open
                .take()
                .ok_or_else(|| err("component close without a matching open tag"))?;
            b.add_component(c);
        }
    }
    if open.is_some() {
        return Err(ParseManifestError {
            line: text.lines().count(),
            reason: "unclosed component declaration".to_owned(),
        });
    }
    let _ = package;
    builder.map(ManifestBuilder::build).ok_or(ParseManifestError {
        line: 0,
        reason: "no <manifest> element found".to_owned(),
    })
}

/// Maps a component opening tag to its kind; `None` for any other line.
fn component_kind_of(line: &str) -> Option<ComponentKind> {
    if line.starts_with("<activity") {
        Some(ComponentKind::Activity)
    } else if line.starts_with("<service") {
        Some(ComponentKind::Service)
    } else if line.starts_with("<receiver") {
        Some(ComponentKind::Receiver)
    } else {
        None
    }
}

fn permission_from_name(name: &str) -> Option<Permission> {
    [
        Permission::AccessFineLocation,
        Permission::AccessCoarseLocation,
        Permission::Internet,
        Permission::AccessNetworkState,
        Permission::WakeLock,
        Permission::ReceiveBootCompleted,
    ]
    .into_iter()
    .find(|p| p.qualified_name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permission::LocationClaim;

    fn sample() -> Manifest {
        let mut b = ManifestBuilder::new("com.example.nav");
        b.add_permission(Permission::AccessFineLocation);
        b.add_permission(Permission::Internet);
        b.set_location_service(true);
        b.build()
    }

    #[test]
    fn render_parse_round_trip() {
        let m = sample();
        let xml = render(&m);
        let back = parse(&xml).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn render_contains_qualified_permission_names() {
        let xml = render(&sample());
        assert!(xml.contains("android.permission.ACCESS_FINE_LOCATION"));
        assert!(xml.contains("package=\"com.example.nav\""));
        assert!(xml.contains("LocationService"));
    }

    #[test]
    fn unknown_permissions_are_ignored() {
        let xml = "<manifest package=\"a.b\">\n<uses-permission android:name=\"android.permission.CAMERA\"/>\n<uses-permission android:name=\"android.permission.ACCESS_COARSE_LOCATION\"/>\n</manifest>";
        let m = parse(xml).unwrap();
        assert_eq!(m.location_claim(), LocationClaim::CoarseOnly);
        assert_eq!(m.permissions().len(), 1);
    }

    #[test]
    fn missing_manifest_root_errors() {
        let err = parse("<uses-permission android:name=\"x\"/>").unwrap_err();
        assert!(err.to_string().contains("before <manifest>"));
        let err = parse("").unwrap_err();
        assert!(err.to_string().contains("no <manifest>"));
    }

    #[test]
    fn malformed_package_errors() {
        assert!(parse("<manifest package=\"\">").is_err());
        assert!(parse("<manifest>").is_err());
    }

    #[test]
    fn unrelated_services_do_not_mark_location_service() {
        let xml = "<manifest package=\"a.b\">\n<service android:name=\".SyncService\"/>\n</manifest>";
        let m = parse(xml).unwrap();
        assert!(!m.has_location_service());
        assert_eq!(m.components().len(), 1);
    }

    #[test]
    fn components_with_intent_filters_round_trip() {
        let mut b = ManifestBuilder::new("com.example.track");
        b.add_permission(Permission::AccessFineLocation);
        b.add_permission(Permission::ReceiveBootCompleted);
        b.add_component(Component::new(ComponentKind::Activity, ".MainActivity").with_action(crate::app::ACTION_MAIN));
        b.add_component(Component::new(ComponentKind::Service, ".LocationService"));
        b.add_component(Component::new(ComponentKind::Receiver, ".BootReceiver").with_action(crate::app::ACTION_BOOT_COMPLETED));
        let m = b.build();
        let xml = render(&m);
        assert!(xml.contains("<receiver android:name=\".BootReceiver\">"));
        assert!(xml.contains("<action android:name=\"android.intent.action.BOOT_COMPLETED\"/>"));
        let back = parse(&xml).unwrap();
        assert_eq!(back, m);
        assert!(back.has_boot_receiver());
        assert!(back.has_location_service());
    }

    #[test]
    fn malformed_components_error() {
        // a component tag without android:name
        assert!(parse("<manifest package=\"a.b\">\n<receiver/>\n</manifest>").is_err());
        // an action outside any component
        assert!(parse("<manifest package=\"a.b\">\n<action android:name=\"x\"/>\n</manifest>").is_err());
        // an unclosed component
        assert!(parse("<manifest package=\"a.b\">\n<activity android:name=\".A\">\n</manifest>").is_err());
        // a close without an open
        assert!(parse("<manifest package=\"a.b\">\n</activity>\n</manifest>").is_err());
        // a component before the root
        assert!(parse("<service android:name=\".S\"/>\n<manifest package=\"a.b\">\n</manifest>").is_err());
    }
}
