//! AndroidManifest rendering and parsing.
//!
//! The paper's static step runs Apktool and reads the decoded
//! `AndroidManifest.xml`. We reproduce that channel: a [`crate::app::Manifest`]
//! renders to the XML subset the study cares about and parses back, so
//! the market crate's static analysis can consume text exactly like the
//! authors' scripts did (and inherits the same parsing failure modes).
//!
//! Only the elements the measurement reads are modelled:
//! `<manifest package>`, `<uses-permission android:name>`, and a
//! `<service>` with the study's location-service marker.

use crate::app::{Manifest, ManifestBuilder};
use crate::permission::Permission;
use std::error::Error;
use std::fmt;

/// Renders the manifest as decoded-`AndroidManifest.xml`-style text.
#[must_use]
pub fn render(manifest: &Manifest) -> String {
    let mut out = String::new();
    out.push_str("<?xml version=\"1.0\" encoding=\"utf-8\"?>\n");
    out.push_str(&format!("<manifest package=\"{}\">\n", manifest.package()));
    for p in manifest.permissions() {
        out.push_str(&format!("    <uses-permission android:name=\"{}\"/>\n", p.qualified_name()));
    }
    out.push_str("    <application>\n");
    if manifest.has_location_service() {
        out.push_str("        <service android:name=\".LocationService\" android:exported=\"false\"/>\n");
    }
    out.push_str("    </application>\n");
    out.push_str("</manifest>\n");
    out
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseManifestError {
    line: usize,
    reason: String,
}

impl fmt::Display for ParseManifestError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed manifest at line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseManifestError {}

/// Extracts the value of `attr="..."` from a tag line.
fn attr_value<'a>(line: &'a str, attr: &str) -> Option<&'a str> {
    let needle = format!("{attr}=\"");
    let start = line.find(&needle)? + needle.len();
    let rest = &line[start..];
    let end = rest.find('"')?;
    Some(&rest[..end])
}

/// Parses manifest text produced by [`render`] (or hand-written in the
/// same subset) back into a [`Manifest`].
///
/// Unknown permissions are ignored — real manifests declare dozens of
/// permissions the study does not track, and the authors' scripts grepped
/// only for the location ones. Unknown elements are skipped.
///
/// # Errors
///
/// Returns [`ParseManifestError`] if no `<manifest package="...">` root
/// is present or an interesting tag is malformed.
pub fn parse(text: &str) -> Result<Manifest, ParseManifestError> {
    let mut package: Option<String> = None;
    let mut builder: Option<ManifestBuilder> = None;
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |reason: &str| ParseManifestError {
            line: i + 1,
            reason: reason.to_owned(),
        };
        if line.starts_with("<manifest") {
            let pkg = attr_value(line, "package").ok_or_else(|| err("<manifest> lacks a package attribute"))?;
            if pkg.is_empty() || pkg.contains(char::is_whitespace) {
                return Err(err("package attribute is not a valid package name"));
            }
            package = Some(pkg.to_owned());
            builder = Some(ManifestBuilder::new(pkg));
        } else if line.starts_with("<uses-permission") {
            let b = builder.as_mut().ok_or_else(|| err("<uses-permission> before <manifest>"))?;
            let name = attr_value(line, "android:name").ok_or_else(|| err("<uses-permission> lacks android:name"))?;
            if let Some(p) = permission_from_name(name) {
                b.add_permission(p);
            }
        } else if line.starts_with("<service") {
            let b = builder.as_mut().ok_or_else(|| err("<service> before <manifest>"))?;
            if attr_value(line, "android:name").is_some_and(|n| n.contains("LocationService")) {
                b.set_location_service(true);
            }
        }
    }
    let _ = package;
    builder.map(ManifestBuilder::build).ok_or(ParseManifestError {
        line: 0,
        reason: "no <manifest> element found".to_owned(),
    })
}

fn permission_from_name(name: &str) -> Option<Permission> {
    [
        Permission::AccessFineLocation,
        Permission::AccessCoarseLocation,
        Permission::Internet,
        Permission::AccessNetworkState,
        Permission::WakeLock,
        Permission::ReceiveBootCompleted,
    ]
    .into_iter()
    .find(|p| p.qualified_name() == name)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::permission::LocationClaim;

    fn sample() -> Manifest {
        let mut b = ManifestBuilder::new("com.example.nav");
        b.add_permission(Permission::AccessFineLocation);
        b.add_permission(Permission::Internet);
        b.set_location_service(true);
        b.build()
    }

    #[test]
    fn render_parse_round_trip() {
        let m = sample();
        let xml = render(&m);
        let back = parse(&xml).unwrap();
        assert_eq!(back, m);
    }

    #[test]
    fn render_contains_qualified_permission_names() {
        let xml = render(&sample());
        assert!(xml.contains("android.permission.ACCESS_FINE_LOCATION"));
        assert!(xml.contains("package=\"com.example.nav\""));
        assert!(xml.contains("LocationService"));
    }

    #[test]
    fn unknown_permissions_are_ignored() {
        let xml = "<manifest package=\"a.b\">\n<uses-permission android:name=\"android.permission.CAMERA\"/>\n<uses-permission android:name=\"android.permission.ACCESS_COARSE_LOCATION\"/>\n</manifest>";
        let m = parse(xml).unwrap();
        assert_eq!(m.location_claim(), LocationClaim::CoarseOnly);
        assert_eq!(m.permissions().len(), 1);
    }

    #[test]
    fn missing_manifest_root_errors() {
        let err = parse("<uses-permission android:name=\"x\"/>").unwrap_err();
        assert!(err.to_string().contains("before <manifest>"));
        let err = parse("").unwrap_err();
        assert!(err.to_string().contains("no <manifest>"));
    }

    #[test]
    fn malformed_package_errors() {
        assert!(parse("<manifest package=\"\">").is_err());
        assert!(parse("<manifest>").is_err());
    }

    #[test]
    fn unrelated_services_do_not_mark_location_service() {
        let xml = "<manifest package=\"a.b\">\n<service android:name=\".SyncService\"/>\n</manifest>";
        let m = parse(xml).unwrap();
        assert!(!m.has_location_service());
    }
}
