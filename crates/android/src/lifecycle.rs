//! App lifecycle states on the simulated device.

use std::fmt;

/// Where an installed app currently lives.
///
/// Only one app is in the foreground at a time (Android runs one activity
/// on top of the screen); the device enforces that invariant.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum AppState {
    /// Installed but not running.
    #[default]
    Stopped,
    /// Running with its activity on top of the screen.
    Foreground,
    /// Moved off-screen but still cached and able to run listeners and
    /// services.
    Background,
}

impl AppState {
    /// Whether the app's process is alive (listeners can fire).
    #[must_use]
    pub fn is_running(&self) -> bool {
        !matches!(self, AppState::Stopped)
    }
}

impl fmt::Display for AppState {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(match self {
            AppState::Stopped => "stopped",
            AppState::Foreground => "foreground",
            AppState::Background => "background",
        })
    }
}

/// A lifecycle transition request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum Transition {
    /// Start the app and bring it to the foreground.
    Launch,
    /// Send the app to the background (home button / app switch).
    ToBackground,
    /// Bring a background app back on screen.
    ToForeground,
    /// Kill the app.
    Stop,
}

/// Error for an invalid lifecycle transition.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TransitionError {
    /// The state the app was in.
    pub from: AppState,
    /// The transition that was requested.
    pub requested: Transition,
}

impl fmt::Display for TransitionError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "cannot apply {:?} to an app in state {}", self.requested, self.from)
    }
}

impl std::error::Error for TransitionError {}

/// Applies a transition, returning the new state.
///
/// # Errors
///
/// Returns [`TransitionError`] for transitions that make no sense from the
/// current state (launching a running app, backgrounding a stopped one,
/// and so on). Stopping is always allowed.
pub fn apply(state: AppState, transition: Transition) -> Result<AppState, TransitionError> {
    use AppState::{Background, Foreground, Stopped};
    use Transition::{Launch, Stop, ToBackground, ToForeground};
    match (state, transition) {
        (Stopped, Launch) => Ok(Foreground),
        (Foreground, ToBackground) => Ok(Background),
        (Background, ToForeground) => Ok(Foreground),
        (_, Stop) => Ok(Stopped),
        (from, requested) => Err(TransitionError { from, requested }),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn happy_path_cycle() {
        let s = apply(AppState::Stopped, Transition::Launch).unwrap();
        assert_eq!(s, AppState::Foreground);
        let s = apply(s, Transition::ToBackground).unwrap();
        assert_eq!(s, AppState::Background);
        let s = apply(s, Transition::ToForeground).unwrap();
        assert_eq!(s, AppState::Foreground);
        let s = apply(s, Transition::Stop).unwrap();
        assert_eq!(s, AppState::Stopped);
    }

    #[test]
    fn stop_is_always_legal() {
        for s in [AppState::Stopped, AppState::Foreground, AppState::Background] {
            assert_eq!(apply(s, Transition::Stop).unwrap(), AppState::Stopped);
        }
    }

    #[test]
    fn invalid_transitions_error() {
        assert!(apply(AppState::Foreground, Transition::Launch).is_err());
        assert!(apply(AppState::Stopped, Transition::ToBackground).is_err());
        assert!(apply(AppState::Stopped, Transition::ToForeground).is_err());
        assert!(apply(AppState::Background, Transition::ToBackground).is_err());
    }

    #[test]
    fn running_covers_fg_and_bg() {
        assert!(AppState::Foreground.is_running());
        assert!(AppState::Background.is_running());
        assert!(!AppState::Stopped.is_running());
    }

    #[test]
    fn error_message_is_descriptive() {
        let e = apply(AppState::Stopped, Transition::ToBackground).unwrap_err();
        assert!(e.to_string().contains("stopped"));
    }
}
