//! A smali-like app IR: classes, methods, and the instruction kinds the
//! static analyzers read — string constants and invokes for the
//! reachability pass, plus the minimal dataflow instructions
//! (`move-result`, `return-value`, `sput`/`sget` statics) the
//! interprocedural taint pass needs to follow a location fix from a
//! source call to a network sink.
//!
//! The paper's §III static stage decompiles APKs with Apktool and walks
//! the smali output for location-API call sites. We reproduce that
//! channel with a deliberately tiny IR: enough structure to carry call
//! edges, provider string constants, and value flow, with a
//! deterministic text format so fixture apps can be checked in as
//! corpora (like the dumpsys corpus) and so `parse ∘ render` is the
//! identity.
//!
//! The text format, one directive or instruction per line:
//!
//! ```text
//! .class com/example/nav/MainActivity
//!     .method onCreate
//!         const-string "gps"
//!         invoke android/location/LocationManager getLastKnownLocation
//!         move-result
//!         sput com/example/nav/MainActivity lastFix
//!         invoke com/example/nav/AppController start
//!     .end method
//! .end class
//! ```
//!
//! Blank lines and `#`-prefixed lines are ignored, so corpus fixtures can
//! carry `#expect:` directives in-band. Anything else is a parse error:
//! the format is a serialization, not a tolerant scraper, and silent
//! acceptance of junk would let a truncated fixture pass as a smaller
//! program.

use crate::app::{App, ComponentKind};
use crate::provider::ProviderKind;
use std::collections::BTreeSet;
use std::error::Error;
use std::fmt;

/// The framework class hosting the classic location sinks.
pub const LOCATION_MANAGER_CLASS: &str = "android/location/LocationManager";

/// The Play-services fused provider client class.
pub const FUSED_CLIENT_CLASS: &str = "com/google/android/gms/location/FusedLocationProviderClient";

/// The location-API sink signatures the reachability pass looks for,
/// as `(class, method)` pairs — the paper's §III call-site targets.
pub const SINKS: [(&str, &str); 4] = [
    (LOCATION_MANAGER_CLASS, "requestLocationUpdates"),
    (LOCATION_MANAGER_CLASS, "getLastKnownLocation"),
    (FUSED_CLIENT_CLASS, "requestLocationUpdates"),
    (FUSED_CLIENT_CLASS, "getLastLocation"),
];

/// Whether `(class, method)` is one of the tracked location sinks.
///
/// A sink is a *signature*, not a name: an app-defined method that merely
/// shares a sink's name (`requestLocationUpdates` on an app class) is not
/// a sink, and the adversarial fixture corpus pins that distinction.
#[must_use]
pub fn is_sink(class: &str, method: &str) -> bool {
    SINKS.iter().any(|&(c, m)| c == class && m == method)
}

/// The location *source* signatures of the taint pass: calls whose
/// result value carries a raw coordinate. Both are also reachability
/// [`SINKS`] — an app cannot obtain a fix without touching a tracked
/// location API, which is what makes "taint-positive ⊆
/// reachability-positive" structural rather than coincidental.
pub const SOURCES: [(&str, &str); 2] = [
    (LOCATION_MANAGER_CLASS, "getLastKnownLocation"),
    (FUSED_CLIENT_CLASS, "getLastLocation"),
];

/// The listener-callback method name the framework invokes with a fresh
/// fix. The taint pass seeds app-defined methods of this name with raw
/// taint — but only when some reachable context actually registered a
/// listener (`requestLocationUpdates`), mirroring how the framework only
/// delivers fixes to registered listeners.
pub const LISTENER_CALLBACK: &str = "onLocationChanged";

/// Whether `(class, method)` is a location source (signature match, like
/// [`is_sink`]).
#[must_use]
pub fn is_source(class: &str, method: &str) -> bool {
    SOURCES.iter().any(|&(c, m)| c == class && m == method)
}

/// `java/net/URL` — network sink host class.
pub const URL_CLASS: &str = "java/net/URL";
/// `java/net/HttpURLConnection` — network sink host class.
pub const HTTP_URL_CONNECTION_CLASS: &str = "java/net/HttpURLConnection";
/// `java/net/Socket` — network sink host class.
pub const SOCKET_CLASS: &str = "java/net/Socket";
/// The ad framework's request class: `setLocation` hands coordinates to
/// the ad network, the signature the ad-SDK aggregation literature keys
/// on (arXiv 1903.09916).
pub const AD_REQUEST_CLASS: &str = "com/google/ads/AdRequest";

/// The *network sink* signatures of the taint pass: calls whose argument
/// value leaves the device. An app whose taint reaches one of these
/// exfiltrates; the degree of the weakest sanitizer on the path decides
/// at what precision.
pub const NET_SINKS: [(&str, &str); 4] = [
    (URL_CLASS, "openConnection"),
    (HTTP_URL_CONNECTION_CLASS, "getOutputStream"),
    (SOCKET_CLASS, "getOutputStream"),
    (AD_REQUEST_CLASS, "setLocation"),
];

/// Whether `(class, method)` is a network sink (signature match).
#[must_use]
pub fn is_net_sink(class: &str, method: &str) -> bool {
    NET_SINKS.iter().any(|&(c, m)| c == class && m == method)
}

/// The coordinate-truncation helper class whose methods are the
/// recognized sanitizers.
pub const SANITIZER_CLASS: &str = "com/locutil/CoordTrim";

/// The largest sanitizer degree — `truncate4` keeps 4 decimal digits,
/// matching `core::leakage::MAX_DECIMALS`: anything finer is
/// indistinguishable from raw for the containment adversary, so the
/// static lattice stops where the dynamic channel model does.
pub const MAX_SANITIZER_DEGREE: u8 = 4;

/// The *sanitizer* signatures: coordinate-truncation helpers, each
/// carrying the static precision degree `d` (decimal digits kept) its
/// result is degraded to. `truncate0` keeps whole degrees (coarsest),
/// `truncate4` is the finest recognized degradation.
pub const SANITIZERS: [(&str, &str, u8); 5] = [
    (SANITIZER_CLASS, "truncate0", 0),
    (SANITIZER_CLASS, "truncate1", 1),
    (SANITIZER_CLASS, "truncate2", 2),
    (SANITIZER_CLASS, "truncate3", 3),
    (SANITIZER_CLASS, "truncate4", 4),
];

/// The static degree of `(class, method)` if it is a recognized
/// sanitizer, `None` otherwise (signature match).
#[must_use]
pub fn sanitizer_degree(class: &str, method: &str) -> Option<u8> {
    SANITIZERS
        .iter()
        .find(|&&(c, m, _)| c == class && m == method)
        .map(|&(_, _, d)| d)
}

/// The shared ad-SDK's geo-tracking forwarder: apps hand coordinates to
/// this embedded-library entry point, which forwards them to the ad
/// framework's [`AD_REQUEST_CLASS`]`.setLocation` network sink. It is
/// deliberately *not* a signature sink itself — a taint pass only sees
/// the leak by following the call into the SDK fragment, which is what
/// makes the cached per-fragment taint facts load-bearing.
pub const SDK_GEO_CLASS: &str = "com/adnet/track/Geo";

/// The method name on [`SDK_GEO_CLASS`] apps call to report a fix.
pub const SDK_GEO_METHOD: &str = "report";

/// One IR instruction — only the kinds the analyzers consume.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub enum IrInstr {
    /// `const-string "..."` — a string constant (provider names end up
    /// here, exactly where smali puts them). To the taint pass this is a
    /// strong update: the working value becomes a constant, killing any
    /// taint it carried.
    ConstString(String),
    /// `invoke <class> <method>` — a call edge. Virtual dispatch,
    /// reflection, and ICC are all collapsed into this one edge kind;
    /// DESIGN.md §10 records the soundness caveats. The call consumes
    /// the working value as its argument and leaves its result pending
    /// until a `move-result`.
    Invoke {
        /// Target class path (slash-separated).
        class: String,
        /// Target method name.
        method: String,
    },
    /// `move-result` — binds the pending result of the most recent
    /// `invoke` as the working value (smali's `move-result-object`).
    MoveResult,
    /// `return-value` — returns the working value to the caller.
    ReturnValue,
    /// `sput <class> <field>` — stores the working value into a static
    /// field.
    Sput {
        /// Declaring class path of the static field.
        class: String,
        /// Field name.
        field: String,
    },
    /// `sget <class> <field>` — loads a static field as the working
    /// value.
    Sget {
        /// Declaring class path of the static field.
        class: String,
        /// Field name.
        field: String,
    },
}

/// A method: a name and a straight-line body (control flow inside a
/// method is irrelevant to reachability, so the IR has none).
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IrMethod {
    /// Method name, unique within its class.
    pub name: String,
    /// Body instructions, in order.
    pub instrs: Vec<IrInstr>,
}

impl IrMethod {
    /// A method with the given body.
    #[must_use]
    pub fn new(name: impl Into<String>, instrs: Vec<IrInstr>) -> Self {
        Self {
            name: name.into(),
            instrs,
        }
    }
}

/// A class: a slash-separated path and its methods.
#[derive(Debug, Clone, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IrClass {
    /// Class path, unique within its program (e.g. `com/x/MainActivity`).
    pub name: String,
    /// Methods, in declaration order.
    pub methods: Vec<IrMethod>,
}

impl IrClass {
    /// A class with the given methods.
    #[must_use]
    pub fn new(name: impl Into<String>, methods: Vec<IrMethod>) -> Self {
        Self {
            name: name.into(),
            methods,
        }
    }

    /// Looks up a method by name.
    #[must_use]
    pub fn method(&self, name: &str) -> Option<&IrMethod> {
        self.methods.iter().find(|m| m.name == name)
    }
}

/// A whole app's IR — what "decompiling" one APK yields.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct IrProgram {
    /// Classes, in declaration order.
    pub classes: Vec<IrClass>,
}

impl IrProgram {
    /// Looks up a class by path.
    #[must_use]
    pub fn class(&self, name: &str) -> Option<&IrClass> {
        self.classes.iter().find(|c| c.name == name)
    }

    /// Total method count across all classes.
    #[must_use]
    pub fn method_count(&self) -> usize {
        self.classes.iter().map(|c| c.methods.len()).sum()
    }
}

/// Renders a program in the deterministic text format.
#[must_use]
pub fn render(program: &IrProgram) -> String {
    crate::obs::IR_RENDERS.inc();
    let mut out = String::new();
    for class in &program.classes {
        out.push_str(&format!(".class {}\n", class.name));
        for method in &class.methods {
            out.push_str(&format!("    .method {}\n", method.name));
            for instr in &method.instrs {
                match instr {
                    IrInstr::ConstString(s) => out.push_str(&format!("        const-string \"{s}\"\n")),
                    IrInstr::Invoke { class, method } => out.push_str(&format!("        invoke {class} {method}\n")),
                    IrInstr::MoveResult => out.push_str("        move-result\n"),
                    IrInstr::ReturnValue => out.push_str("        return-value\n"),
                    IrInstr::Sput { class, field } => out.push_str(&format!("        sput {class} {field}\n")),
                    IrInstr::Sget { class, field } => out.push_str(&format!("        sget {class} {field}\n")),
                }
            }
            out.push_str("    .end method\n");
        }
        out.push_str(".end class\n");
    }
    out
}

/// Error from [`parse`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseIrError {
    line: usize,
    reason: String,
}

impl ParseIrError {
    /// The 1-based line the error was detected on (0 for end-of-input).
    #[must_use]
    pub fn line(&self) -> usize {
        self.line
    }
}

impl fmt::Display for ParseIrError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "malformed IR at line {}: {}", self.line, self.reason)
    }
}

impl Error for ParseIrError {}

/// Checks a class path / method name token: non-empty, no whitespace.
fn valid_token(tok: &str) -> bool {
    !tok.is_empty() && !tok.contains(char::is_whitespace)
}

/// Parses IR text produced by [`render`] (or hand-written fixtures in the
/// same format) back into an [`IrProgram`].
///
/// # Errors
///
/// Returns [`ParseIrError`] on any grammar violation: unmatched
/// `.class`/`.method` blocks, instructions outside a method, malformed
/// operands, duplicate class or method names, or an unrecognized line.
/// Every rejection also bumps the `android.ir.parse_errors_total` counter
/// so corpus sweeps can count failures instead of panicking.
pub fn parse(text: &str) -> Result<IrProgram, ParseIrError> {
    let result = parse_inner(text);
    match &result {
        Ok(_) => crate::obs::IR_PROGRAMS_PARSED.inc(),
        Err(_) => crate::obs::IR_PARSE_ERRORS.inc(),
    }
    result
}

fn parse_inner(text: &str) -> Result<IrProgram, ParseIrError> {
    let mut program = IrProgram::default();
    let mut class: Option<IrClass> = None;
    let mut method: Option<IrMethod> = None;
    let mut seen_classes: BTreeSet<String> = BTreeSet::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        let err = |reason: String| ParseIrError { line: i + 1, reason };
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        if let Some(rest) = line.strip_prefix(".class ") {
            let name = rest.trim();
            if class.is_some() {
                return Err(err("nested .class (missing .end class?)".to_owned()));
            }
            if !valid_token(name) {
                return Err(err(format!("invalid class name {name:?}")));
            }
            if !seen_classes.insert(name.to_owned()) {
                return Err(err(format!("duplicate class {name}")));
            }
            class = Some(IrClass::new(name, Vec::new()));
        } else if let Some(rest) = line.strip_prefix(".method ") {
            let name = rest.trim();
            let Some(ref c) = class else {
                return Err(err(".method outside a class".to_owned()));
            };
            if method.is_some() {
                return Err(err("nested .method (missing .end method?)".to_owned()));
            }
            if !valid_token(name) {
                return Err(err(format!("invalid method name {name:?}")));
            }
            if c.method(name).is_some() {
                return Err(err(format!("duplicate method {name} in class {}", c.name)));
            }
            method = Some(IrMethod::new(name, Vec::new()));
        } else if line == ".end method" {
            let m = method.take().ok_or_else(|| err(".end method without .method".to_owned()))?;
            match class.as_mut() {
                Some(c) => c.methods.push(m),
                None => return Err(err(".end method outside a class".to_owned())),
            }
        } else if line == ".end class" {
            if method.is_some() {
                return Err(err(".end class inside a method".to_owned()));
            }
            let c = class.take().ok_or_else(|| err(".end class without .class".to_owned()))?;
            program.classes.push(c);
        } else if let Some(rest) = line.strip_prefix("const-string ") {
            let m = method
                .as_mut()
                .ok_or_else(|| err("const-string outside a method".to_owned()))?;
            let operand = rest.trim();
            let inner = operand
                .strip_prefix('"')
                .and_then(|s| s.strip_suffix('"'))
                .ok_or_else(|| err(format!("const-string operand must be double-quoted, got {operand:?}")))?;
            if inner.contains('"') || inner.contains('\n') {
                return Err(err("const-string operand contains a quote".to_owned()));
            }
            m.instrs.push(IrInstr::ConstString(inner.to_owned()));
        } else if let Some(rest) = line.strip_prefix("invoke ") {
            let m = method.as_mut().ok_or_else(|| err("invoke outside a method".to_owned()))?;
            let mut parts = rest.split_whitespace();
            let (target_class, target_method) = match (parts.next(), parts.next(), parts.next()) {
                (Some(c), Some(mm), None) => (c, mm),
                _ => return Err(err(format!("invoke expects <class> <method>, got {rest:?}"))),
            };
            m.instrs.push(IrInstr::Invoke {
                class: target_class.to_owned(),
                method: target_method.to_owned(),
            });
        } else if line == "move-result" {
            method
                .as_mut()
                .ok_or_else(|| err("move-result outside a method".to_owned()))?
                .instrs
                .push(IrInstr::MoveResult);
        } else if line == "return-value" {
            method
                .as_mut()
                .ok_or_else(|| err("return-value outside a method".to_owned()))?
                .instrs
                .push(IrInstr::ReturnValue);
        } else if let Some(rest) = line.strip_prefix("sput ").or_else(|| line.strip_prefix("sget ")) {
            let is_put = line.starts_with("sput ");
            let op = if is_put { "sput" } else { "sget" };
            let m = method.as_mut().ok_or_else(|| err(format!("{op} outside a method")))?;
            let mut parts = rest.split_whitespace();
            let (target_class, target_field) = match (parts.next(), parts.next(), parts.next()) {
                (Some(c), Some(f), None) => (c, f),
                _ => return Err(err(format!("{op} expects <class> <field>, got {rest:?}"))),
            };
            let class = target_class.to_owned();
            let field = target_field.to_owned();
            m.instrs.push(if is_put {
                IrInstr::Sput { class, field }
            } else {
                IrInstr::Sget { class, field }
            });
        } else {
            return Err(err(format!("unrecognized line {line:?}")));
        }
    }
    if method.is_some() {
        return Err(ParseIrError {
            line: 0,
            reason: "unterminated .method at end of input".to_owned(),
        });
    }
    if class.is_some() {
        return Err(ParseIrError {
            line: 0,
            reason: "unterminated .class at end of input".to_owned(),
        });
    }
    Ok(program)
}

// FNV-1a, the workspace's standard content hash (same constants as the
// serve crate's shard router). Good dispersion on short structured byte
// streams, trivially stable across platforms, and cheap enough to run on
// every class of a million-app sweep. It is *not* cryptographic: DESIGN.md
// §13 records the collision caveat for digest-keyed caches.
const FNV_OFFSET: u64 = 0xcbf2_9ce4_8422_2325;
const FNV_PRIME: u64 = 0x0000_0100_0000_01b3;

fn fnv1a_step(mut hash: u64, bytes: &[u8]) -> u64 {
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(FNV_PRIME);
    }
    hash
}

// Domain-separation tags for the digest byte stream. Every token is
// followed by a 0x00 terminator (class/method names and string operands
// cannot contain NUL — `valid_token` bans whitespace and the text format
// bans raw control characters in practice), so `("ab","c")` and
// `("a","bc")` hash differently.
const TAG_CLASS: u8 = 0x01;
const TAG_METHOD: u8 = 0x02;
const TAG_CONST_STRING: u8 = 0x03;
const TAG_INVOKE: u8 = 0x04;
const TAG_MOVE_RESULT: u8 = 0x05;
const TAG_RETURN_VALUE: u8 = 0x06;
const TAG_SPUT: u8 = 0x07;
const TAG_SGET: u8 = 0x08;

fn digest_token(hash: u64, tag: u8, parts: &[&str]) -> u64 {
    let mut h = fnv1a_step(hash, &[tag]);
    for p in parts {
        h = fnv1a_step(h, p.as_bytes());
        h = fnv1a_step(h, &[0x00]);
    }
    h
}

fn digest_class_into(mut hash: u64, class: &IrClass) -> u64 {
    hash = digest_token(hash, TAG_CLASS, &[&class.name]);
    for method in &class.methods {
        hash = digest_token(hash, TAG_METHOD, &[&method.name]);
        for instr in &method.instrs {
            hash = match instr {
                IrInstr::ConstString(s) => digest_token(hash, TAG_CONST_STRING, &[s]),
                IrInstr::Invoke { class, method } => digest_token(hash, TAG_INVOKE, &[class, method]),
                IrInstr::MoveResult => digest_token(hash, TAG_MOVE_RESULT, &[]),
                IrInstr::ReturnValue => digest_token(hash, TAG_RETURN_VALUE, &[]),
                IrInstr::Sput { class, field } => digest_token(hash, TAG_SPUT, &[class, field]),
                IrInstr::Sget { class, field } => digest_token(hash, TAG_SGET, &[class, field]),
            };
        }
    }
    hash
}

/// Stable FNV-1a content digest of one class: its name, its methods in
/// declaration order, and every instruction operand. Two classes digest
/// equal iff they are structurally equal, so the digest can key per-class
/// analysis summaries across apps (modulo the FNV collision caveat in
/// DESIGN.md §13). Because [`parse`] ∘ [`render`] is the identity, the
/// digest is invariant under the text round-trip — and under anything the
/// text format drops (comments, blank lines, indentation).
#[must_use]
pub fn digest_class(class: &IrClass) -> u64 {
    digest_class_into(FNV_OFFSET, class)
}

/// Stable FNV-1a content digest of a whole program: its classes in
/// declaration order, chained through the same byte stream as
/// [`digest_class`]. Order-sensitive by design — the IR treats class
/// order as part of the serialized artifact.
#[must_use]
pub fn digest_program(program: &IrProgram) -> u64 {
    let mut hash = FNV_OFFSET;
    for class in &program.classes {
        hash = digest_class_into(hash, class);
    }
    hash
}

/// FNV-1a over an arbitrary byte string, starting from the standard
/// offset basis. Exposed so sibling crates digest non-IR artifacts
/// (manifests, churn keys) with the same constants instead of re-deriving
/// them.
#[must_use]
pub fn fnv1a(bytes: &[u8]) -> u64 {
    fnv1a_step(FNV_OFFSET, bytes)
}

/// Entry methods the Android framework calls on each component kind —
/// the roots of the reachability pass.
#[must_use]
pub fn entry_methods(kind: ComponentKind) -> &'static [&'static str] {
    match kind {
        ComponentKind::Activity => &["onCreate", "onStart", "onResume", "onClick"],
        ComponentKind::Service => &["onCreate", "onStartCommand"],
        ComponentKind::Receiver => &["onReceive"],
    }
}

/// Lowers an [`App`] to its IR — the simulation's stand-in for
/// Apktool decompilation.
///
/// The lowering is deterministic and behavior-faithful: the emitted code
/// actually *does* (reaches) exactly what [`crate::app::LocationBehavior`]
/// says the app does at run time, so a correct reachability analysis must
/// agree with dynamic observation on every lowered app. Crucially it also
/// plants hazards for unsound shortcuts:
///
/// - inert apps carry a *dead* sink call (`DeadCode.unusedFetch`) that a
///   naive "does the APK mention the API" scan would flag;
/// - functional apps carry a `fetch ↔ retry` call cycle that a worklist
///   without a visited set would spin on;
/// - background reachability flows only through the declared service
///   component, and boot reachability only through the declared
///   `BOOT_COMPLETED` receiver, mirroring the manifest-gated paths real
///   apps use.
#[must_use]
pub fn lower(app: &App) -> IrProgram {
    crate::obs::IR_APPS_LOWERED.inc();
    let manifest = app.manifest();
    let behavior = app.behavior();
    let pkg_path = manifest.package().replace('.', "/");
    let controller = format!("{pkg_path}/AppController");
    let helper = format!("{pkg_path}/LocationHelper");
    let functional = behavior.requests_location();
    let background = functional && behavior.accesses_in_background();
    let service_class = manifest
        .components()
        .iter()
        .find(|c| c.kind == ComponentKind::Service && c.name.contains("LocationService"))
        .map(|c| c.class_path(manifest.package()));

    let mut classes: Vec<IrClass> = Vec::new();
    for component in manifest.components() {
        let mut methods: Vec<IrMethod> = Vec::new();
        match component.kind {
            ComponentKind::Activity => {
                // auto-start apps register in onCreate; the rest wait for a tap
                let hook = if behavior.is_auto_start() { "onCreate" } else { "onClick" };
                for entry in entry_methods(ComponentKind::Activity) {
                    let instrs = if functional && *entry == hook {
                        vec![IrInstr::Invoke {
                            class: controller.clone(),
                            method: "start".to_owned(),
                        }]
                    } else {
                        Vec::new()
                    };
                    methods.push(IrMethod::new(*entry, instrs));
                }
            }
            ComponentKind::Service => {
                methods.push(IrMethod::new("onCreate", Vec::new()));
                let instrs = if background && component.name.contains("LocationService") {
                    vec![IrInstr::Invoke {
                        class: controller.clone(),
                        method: "start".to_owned(),
                    }]
                } else {
                    Vec::new()
                };
                methods.push(IrMethod::new("onStartCommand", instrs));
            }
            ComponentKind::Receiver => {
                let mut instrs = Vec::new();
                if component.is_boot_receiver() && background && behavior.is_auto_start() {
                    if let Some(svc) = &service_class {
                        instrs.push(IrInstr::Invoke {
                            class: svc.clone(),
                            method: "onStartCommand".to_owned(),
                        });
                    }
                }
                methods.push(IrMethod::new("onReceive", instrs));
            }
        }
        classes.push(IrClass::new(component.class_path(manifest.package()), methods));
    }

    if functional {
        classes.push(IrClass::new(
            controller,
            vec![IrMethod::new(
                "start",
                vec![IrInstr::Invoke {
                    class: helper.clone(),
                    method: "fetch".to_owned(),
                }],
            )],
        ));
        let mut fetch: Vec<IrInstr> = Vec::new();
        let manager_providers: Vec<ProviderKind> = behavior
            .providers()
            .iter()
            .copied()
            .filter(|p| *p != ProviderKind::Fused)
            .collect();
        for p in &manager_providers {
            fetch.push(IrInstr::ConstString(p.name().to_owned()));
        }
        if !manager_providers.is_empty() {
            fetch.push(IrInstr::Invoke {
                class: LOCATION_MANAGER_CLASS.to_owned(),
                method: "requestLocationUpdates".to_owned(),
            });
            fetch.push(IrInstr::Invoke {
                class: LOCATION_MANAGER_CLASS.to_owned(),
                method: "getLastKnownLocation".to_owned(),
            });
        }
        if behavior.providers().contains(&ProviderKind::Fused) {
            fetch.push(IrInstr::Invoke {
                class: FUSED_CLIENT_CLASS.to_owned(),
                method: "requestLocationUpdates".to_owned(),
            });
            fetch.push(IrInstr::Invoke {
                class: FUSED_CLIENT_CLASS.to_owned(),
                method: "getLastLocation".to_owned(),
            });
        }
        // exfiltration tail: bind a fresh fix (`move-result`), optionally
        // push it through the declared truncation helper, stash it in the
        // static the uploader snapshots, then hand off to the uploader.
        // This is the dataflow the taint pass must follow end to end:
        // source → move-result → (sanitize) → sput → sget → return-value
        // → network sink, across three methods and a static field.
        let exfil = behavior.exfiltration();
        let uploader = format!("{pkg_path}/Uploader");
        if exfil.exfiltrates() {
            let (src_class, src_method) = if behavior.providers().contains(&ProviderKind::Fused) {
                (FUSED_CLIENT_CLASS, "getLastLocation")
            } else {
                (LOCATION_MANAGER_CLASS, "getLastKnownLocation")
            };
            fetch.push(IrInstr::Invoke {
                class: src_class.to_owned(),
                method: src_method.to_owned(),
            });
            fetch.push(IrInstr::MoveResult);
            if let Some(d) = exfil.decimals() {
                fetch.push(IrInstr::Invoke {
                    class: SANITIZER_CLASS.to_owned(),
                    method: format!("truncate{d}"),
                });
                fetch.push(IrInstr::MoveResult);
            }
            fetch.push(IrInstr::Sput {
                class: helper.clone(),
                field: "lastFix".to_owned(),
            });
            fetch.push(IrInstr::Invoke {
                class: uploader.clone(),
                method: "send".to_owned(),
            });
        }
        // retry loop: fetch ↔ retry is a deliberate call-graph cycle
        fetch.push(IrInstr::Invoke {
            class: helper.clone(),
            method: "retry".to_owned(),
        });
        let retry = vec![IrInstr::Invoke {
            class: helper.clone(),
            method: "fetch".to_owned(),
        }];
        let mut helper_methods = vec![IrMethod::new("fetch", fetch), IrMethod::new("retry", retry)];
        if exfil.exfiltrates() {
            helper_methods.push(IrMethod::new(
                "snapshot",
                vec![
                    IrInstr::Sget {
                        class: helper.clone(),
                        field: "lastFix".to_owned(),
                    },
                    IrInstr::ReturnValue,
                ],
            ));
        }
        classes.push(IrClass::new(helper.clone(), helper_methods));
        if exfil.exfiltrates() {
            // SDK-routed apps hand the fix to the embedded tracker, which
            // forwards it to the ad network inside the fragment; direct
            // uploaders open their own connection.
            let (net_class, net_method) = if exfil.via_sdk() {
                (SDK_GEO_CLASS, SDK_GEO_METHOD)
            } else {
                (HTTP_URL_CONNECTION_CLASS, "getOutputStream")
            };
            classes.push(IrClass::new(
                uploader,
                vec![IrMethod::new(
                    "send",
                    vec![
                        IrInstr::Invoke {
                            class: helper,
                            method: "snapshot".to_owned(),
                        },
                        IrInstr::MoveResult,
                        IrInstr::Invoke {
                            class: net_class.to_owned(),
                            method: net_method.to_owned(),
                        },
                    ],
                )],
            ));
        }
    } else {
        // decoy: the sink is *present* but unreachable from any entry point
        classes.push(IrClass::new(
            format!("{pkg_path}/DeadCode"),
            vec![IrMethod::new(
                "unusedFetch",
                vec![
                    IrInstr::ConstString("gps".to_owned()),
                    IrInstr::Invoke {
                        class: LOCATION_MANAGER_CLASS.to_owned(),
                        method: "requestLocationUpdates".to_owned(),
                    },
                ],
            )],
        ));
    }
    IrProgram { classes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::app::{AppBuilder, Component, LocationBehavior, ACTION_BOOT_COMPLETED, ACTION_MAIN};
    use crate::permission::{LocationClaim, Permission};

    fn sample_program() -> IrProgram {
        IrProgram {
            classes: vec![
                IrClass::new(
                    "com/x/Main",
                    vec![
                        IrMethod::new(
                            "onCreate",
                            vec![
                                IrInstr::ConstString("gps".to_owned()),
                                IrInstr::Invoke {
                                    class: "com/x/Helper".to_owned(),
                                    method: "go".to_owned(),
                                },
                            ],
                        ),
                        IrMethod::new("onStop", Vec::new()),
                    ],
                ),
                IrClass::new("com/x/Helper", vec![IrMethod::new("go", Vec::new())]),
            ],
        }
    }

    #[test]
    fn render_parse_round_trip() {
        let p = sample_program();
        let text = render(&p);
        let back = parse(&text).unwrap();
        assert_eq!(back, p);
        // and render is stable
        assert_eq!(render(&back), text);
    }

    #[test]
    fn comments_and_blank_lines_are_ignored() {
        let text = "#expect: ok 1\n\n.class a/B\n\n    # inline note\n    .method m\n    .end method\n.end class\n";
        let p = parse(text).unwrap();
        assert_eq!(p.classes.len(), 1);
        assert_eq!(p.method_count(), 1);
    }

    #[test]
    fn grammar_violations_error() {
        for bad in [
            "const-string \"x\"\n",                             // instr outside method
            ".method m\n.end method\n",                         // method outside class
            ".class a/B\n.class a/C\n",                         // nested class
            ".class a/B\n.end class\n.class a/B\n.end class\n", // duplicate class
            ".class a/B\n.method m\n.method n\n",               // nested method
            ".class a/B\n.method m\n.end method\n.method m\n",  // duplicate method
            ".class a/B\n.method m\nconst-string gps\n",        // unquoted operand
            ".class a/B\n.method m\ninvoke onlyone\n",          // invoke arity
            ".class a/B\n.method m\ninvoke a b c\n",            // invoke arity (too many)
            ".class a/B\n.method m\nmov r0 r1\n",               // unknown instruction
            ".class a/B\n.method m\nsput onlyone\n",            // sput arity
            ".class a/B\n.method m\nsget a b c\n",              // sget arity (too many)
            "move-result\n",                                    // dataflow instr outside method
            ".class a/B\nreturn-value\n.end class\n",           // dataflow instr outside method
            ".class a/B\n",                                     // unterminated class
            ".class a/B\n.method m\n",                          // unterminated method
            ".end class\n",                                     // close without open
            ".class  \n",                                       // blank class name
        ] {
            assert!(parse(bad).is_err(), "expected parse error for {bad:?}");
        }
    }

    #[test]
    fn sink_table_matches_signatures_not_names() {
        assert!(is_sink(LOCATION_MANAGER_CLASS, "requestLocationUpdates"));
        assert!(is_sink(FUSED_CLIENT_CLASS, "getLastLocation"));
        assert!(!is_sink("com/x/MyManager", "requestLocationUpdates"));
        assert!(!is_sink(LOCATION_MANAGER_CLASS, "addGpsStatusListener"));
    }

    #[test]
    fn taint_tables_match_signatures_not_names() {
        // every source is also a reachability sink: taint ⊆ reach holds
        // structurally because obtaining a fix touches a tracked API
        for &(c, m) in &SOURCES {
            assert!(is_sink(c, m), "{c}.{m} must be a reach sink");
            assert!(is_source(c, m));
        }
        assert!(!is_source(LOCATION_MANAGER_CLASS, "requestLocationUpdates"));
        assert!(!is_source("com/x/MyManager", "getLastKnownLocation"));
        assert!(is_net_sink(URL_CLASS, "openConnection"));
        assert!(is_net_sink(AD_REQUEST_CLASS, "setLocation"));
        assert!(!is_net_sink("com/x/Url", "openConnection"));
        // net sinks and location sinks are disjoint signature sets
        for &(c, m) in &NET_SINKS {
            assert!(!is_sink(c, m));
        }
        assert_eq!(sanitizer_degree(SANITIZER_CLASS, "truncate0"), Some(0));
        assert_eq!(sanitizer_degree(SANITIZER_CLASS, "truncate4"), Some(MAX_SANITIZER_DEGREE));
        assert_eq!(sanitizer_degree(SANITIZER_CLASS, "truncate5"), None);
        assert_eq!(sanitizer_degree("com/x/CoordTrim", "truncate2"), None);
        for &(_, _, d) in &SANITIZERS {
            assert!(d <= MAX_SANITIZER_DEGREE);
        }
    }

    #[test]
    fn dataflow_instructions_round_trip() {
        let p = IrProgram {
            classes: vec![IrClass::new(
                "a/B",
                vec![IrMethod::new(
                    "m",
                    vec![
                        IrInstr::Invoke {
                            class: LOCATION_MANAGER_CLASS.to_owned(),
                            method: "getLastKnownLocation".to_owned(),
                        },
                        IrInstr::MoveResult,
                        IrInstr::Sput {
                            class: "a/B".to_owned(),
                            field: "lastFix".to_owned(),
                        },
                        IrInstr::Sget {
                            class: "a/B".to_owned(),
                            field: "lastFix".to_owned(),
                        },
                        IrInstr::ReturnValue,
                    ],
                )],
            )],
        };
        let text = render(&p);
        assert_eq!(parse(&text).unwrap(), p);
        assert_eq!(render(&parse(&text).unwrap()), text);
        // sput and sget with identical operands must not digest equal
        let mut gets = p.clone();
        gets.classes[0].methods[0].instrs[2] = IrInstr::Sget {
            class: "a/B".to_owned(),
            field: "lastFix".to_owned(),
        };
        assert_ne!(digest_program(&gets), digest_program(&p));
        // the operandless instructions are digest-distinct too
        let mr = IrProgram {
            classes: vec![IrClass::new("a/B", vec![IrMethod::new("m", vec![IrInstr::MoveResult])])],
        };
        let rv = IrProgram {
            classes: vec![IrClass::new("a/B", vec![IrMethod::new("m", vec![IrInstr::ReturnValue])])],
        };
        assert_ne!(digest_program(&mr), digest_program(&rv));
    }

    fn bg_app() -> App {
        AppBuilder::new("com.x.nav")
            .location_claim(LocationClaim::FineAndCoarse)
            .permission(Permission::ReceiveBootCompleted)
            .component(Component::new(ComponentKind::Activity, ".MainActivity").with_action(ACTION_MAIN))
            .component(Component::new(ComponentKind::Receiver, ".BootReceiver").with_action(ACTION_BOOT_COMPLETED))
            .location_service(true)
            .behavior(
                LocationBehavior::requester([ProviderKind::Gps, ProviderKind::Fused], 5)
                    .auto_start(true)
                    .background_interval(60),
            )
            .build()
    }

    #[test]
    fn lowered_background_app_wires_boot_chain() {
        let p = lower(&bg_app());
        let receiver = p.class("com/x/nav/BootReceiver").unwrap();
        let on_receive = receiver.method("onReceive").unwrap();
        assert_eq!(
            on_receive.instrs,
            vec![IrInstr::Invoke {
                class: "com/x/nav/LocationService".to_owned(),
                method: "onStartCommand".to_owned(),
            }]
        );
        let helper = p.class("com/x/nav/LocationHelper").unwrap();
        let fetch = helper.method("fetch").unwrap();
        assert!(fetch.instrs.contains(&IrInstr::ConstString("gps".to_owned())));
        assert!(fetch.instrs.iter().any(|i| matches!(
            i,
            IrInstr::Invoke { class, method } if class == FUSED_CLIENT_CLASS && method == "requestLocationUpdates"
        )));
        // the planted cycle
        assert!(helper.method("retry").is_some());
    }

    #[test]
    fn lowered_inert_app_has_only_dead_sinks() {
        let app = AppBuilder::new("com.x.flash")
            .location_claim(LocationClaim::FineOnly)
            .component(Component::new(ComponentKind::Activity, ".MainActivity").with_action(ACTION_MAIN))
            .build();
        let p = lower(&app);
        let dead = p.class("com/x/flash/DeadCode").unwrap();
        assert!(dead.method("unusedFetch").is_some());
        // no entry method carries any invoke
        let main = p.class("com/x/flash/MainActivity").unwrap();
        assert!(main.methods.iter().all(|m| m.instrs.is_empty()));
    }

    #[test]
    fn lowered_ir_round_trips_through_text() {
        let p = lower(&bg_app());
        assert_eq!(parse(&render(&p)).unwrap(), p);
    }

    fn exfil_app(exfil: crate::app::Exfiltration) -> App {
        AppBuilder::new("com.x.nav")
            .location_claim(LocationClaim::FineAndCoarse)
            .component(Component::new(ComponentKind::Activity, ".MainActivity").with_action(ACTION_MAIN))
            .behavior(LocationBehavior::requester([ProviderKind::Gps], 5).exfiltrate(exfil))
            .build()
    }

    #[test]
    fn lowered_exfiltrating_app_wires_the_full_dataflow_chain() {
        use crate::app::Exfiltration;
        let p = lower(&exfil_app(Exfiltration::Sanitized {
            decimals: 2,
            via_sdk: false,
        }));
        let fetch = p.class("com/x/nav/LocationHelper").unwrap().method("fetch").unwrap();
        let tail: Vec<IrInstr> = fetch.instrs.iter().skip(fetch.instrs.len() - 7).cloned().collect();
        assert_eq!(
            tail,
            vec![
                IrInstr::Invoke {
                    class: LOCATION_MANAGER_CLASS.to_owned(),
                    method: "getLastKnownLocation".to_owned(),
                },
                IrInstr::MoveResult,
                IrInstr::Invoke {
                    class: SANITIZER_CLASS.to_owned(),
                    method: "truncate2".to_owned(),
                },
                IrInstr::MoveResult,
                IrInstr::Sput {
                    class: "com/x/nav/LocationHelper".to_owned(),
                    field: "lastFix".to_owned(),
                },
                IrInstr::Invoke {
                    class: "com/x/nav/Uploader".to_owned(),
                    method: "send".to_owned(),
                },
                IrInstr::Invoke {
                    class: "com/x/nav/LocationHelper".to_owned(),
                    method: "retry".to_owned(),
                },
            ]
        );
        // the uploader snapshots the static and hands it to the net sink
        let send = p.class("com/x/nav/Uploader").unwrap().method("send").unwrap();
        assert_eq!(
            send.instrs,
            vec![
                IrInstr::Invoke {
                    class: "com/x/nav/LocationHelper".to_owned(),
                    method: "snapshot".to_owned(),
                },
                IrInstr::MoveResult,
                IrInstr::Invoke {
                    class: HTTP_URL_CONNECTION_CLASS.to_owned(),
                    method: "getOutputStream".to_owned(),
                },
            ]
        );
        let snapshot = p.class("com/x/nav/LocationHelper").unwrap().method("snapshot").unwrap();
        assert!(snapshot.instrs.contains(&IrInstr::ReturnValue));
        // raw SDK-routed apps target the embedded tracker instead
        let p = lower(&exfil_app(Exfiltration::Raw { via_sdk: true }));
        let send = p.class("com/x/nav/Uploader").unwrap().method("send").unwrap();
        assert!(send.instrs.contains(&IrInstr::Invoke {
            class: SDK_GEO_CLASS.to_owned(),
            method: SDK_GEO_METHOD.to_owned(),
        }));
        assert!(!render(&p).contains("truncate"));
        // non-exfiltrating apps emit no uploader at all
        let p = lower(&exfil_app(Exfiltration::None));
        assert!(p.class("com/x/nav/Uploader").is_none());
    }

    #[test]
    fn digest_is_invariant_under_the_text_round_trip() {
        for p in [sample_program(), lower(&bg_app())] {
            let back = parse(&render(&p)).unwrap();
            assert_eq!(digest_program(&back), digest_program(&p));
            for (a, b) in p.classes.iter().zip(&back.classes) {
                assert_eq!(digest_class(a), digest_class(b));
            }
        }
        // comments, blank lines and indentation are not content
        let noisy = "# fixture header\n\n.class a/B\n  # note\n      .method m\n  const-string \"x\"\n .end method\n.end class\n";
        let clean = ".class a/B\n.method m\nconst-string \"x\"\n.end method\n.end class\n";
        assert_eq!(digest_program(&parse(noisy).unwrap()), digest_program(&parse(clean).unwrap()));
    }

    #[test]
    fn digest_changes_on_semantic_edits() {
        let base = sample_program();
        let d0 = digest_program(&base);

        // renamed invoke target
        let mut renamed = base.clone();
        renamed.classes[0].methods[0].instrs[1] = IrInstr::Invoke {
            class: "com/x/Helper".to_owned(),
            method: "go2".to_owned(),
        };
        assert_ne!(digest_program(&renamed), d0);
        assert_ne!(digest_class(&renamed.classes[0]), digest_class(&base.classes[0]));

        // added const-string + sink call
        let mut sinked = base.clone();
        sinked.classes[1].methods[0].instrs.extend([
            IrInstr::ConstString("gps".to_owned()),
            IrInstr::Invoke {
                class: LOCATION_MANAGER_CLASS.to_owned(),
                method: "requestLocationUpdates".to_owned(),
            },
        ]);
        assert_ne!(digest_program(&sinked), d0);

        // reordered classes are a different artifact
        let mut swapped = base.clone();
        swapped.classes.swap(0, 1);
        assert_ne!(digest_program(&swapped), d0);

        // token-boundary honesty: moving a character across the
        // class/method name boundary must not collide
        let a = IrProgram {
            classes: vec![IrClass::new("ab", vec![IrMethod::new("c", Vec::new())])],
        };
        let b = IrProgram {
            classes: vec![IrClass::new("a", vec![IrMethod::new("bc", Vec::new())])],
        };
        assert_ne!(digest_program(&a), digest_program(&b));
    }

    #[test]
    fn digest_distinguishes_instruction_kinds() {
        // `const-string "x y"` vs `invoke x y` must not collide even
        // though the operand bytes coincide
        let cs = IrProgram {
            classes: vec![IrClass::new(
                "a/B",
                vec![IrMethod::new("m", vec![IrInstr::ConstString("x\u{0}y".to_owned())])],
            )],
        };
        let inv = IrProgram {
            classes: vec![IrClass::new(
                "a/B",
                vec![IrMethod::new(
                    "m",
                    vec![IrInstr::Invoke {
                        class: "x".to_owned(),
                        method: "y".to_owned(),
                    }],
                )],
            )],
        };
        assert_ne!(digest_program(&cs), digest_program(&inv));
    }
}
