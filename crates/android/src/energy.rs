//! Energy accounting for location fixes.
//!
//! The paper notes that the passive provider "will not induce any extra
//! overhead for location calculation" — i.e. providers differ sharply in
//! battery cost. The device charges each produced fix to the requesting
//! app using this model, so studies can rank background pollers by the
//! battery they burn (a GPS fix costs roughly an order of magnitude more
//! than a network fix; passive reuse is free).

use crate::provider::ProviderKind;

/// Per-fix energy costs in millijoule-equivalents (relative units; the
/// defaults reflect the commonly cited GPS ≫ network ≫ passive ordering).
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct EnergyModel {
    /// Cost of one GPS fix.
    pub gps: f64,
    /// Cost of one network (cell/wifi) fix.
    pub network: f64,
    /// Cost of one fused fix.
    pub fused: f64,
    /// Cost of one passive (cache reuse) delivery.
    pub passive: f64,
}

impl Default for EnergyModel {
    fn default() -> Self {
        Self {
            gps: 1.0,
            network: 0.3,
            fused: 0.5,
            passive: 0.0,
        }
    }
}

impl EnergyModel {
    /// The cost of one fix from `provider`.
    #[must_use]
    pub fn cost_of(&self, provider: ProviderKind) -> f64 {
        match provider {
            ProviderKind::Gps => self.gps,
            ProviderKind::Network => self.network,
            ProviderKind::Fused => self.fused,
            ProviderKind::Passive => self.passive,
        }
    }

    /// Validates that every cost is finite and non-negative.
    ///
    /// # Panics
    ///
    /// Panics with a descriptive message otherwise.
    pub fn validate(&self) {
        for (name, v) in [
            ("gps", self.gps),
            ("network", self.network),
            ("fused", self.fused),
            ("passive", self.passive),
        ] {
            assert!(
                v.is_finite() && v >= 0.0,
                "energy cost {name} must be finite and >= 0, got {v}"
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn default_ordering_matches_the_paper() {
        let m = EnergyModel::default();
        assert!(m.cost_of(ProviderKind::Gps) > m.cost_of(ProviderKind::Network));
        assert!(m.cost_of(ProviderKind::Network) > m.cost_of(ProviderKind::Passive));
        assert_eq!(m.cost_of(ProviderKind::Passive), 0.0);
    }

    #[test]
    fn validate_accepts_default() {
        EnergyModel::default().validate();
    }

    #[test]
    #[should_panic(expected = "energy cost")]
    fn validate_rejects_negative() {
        EnergyModel {
            gps: -1.0,
            ..EnergyModel::default()
        }
        .validate();
    }
}
