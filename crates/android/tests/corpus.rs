//! Adversarial corpus for the `dumpsys` parser: every fixture under
//! `tests/corpus/` is a hostile or degenerate report — truncated lines,
//! unknown providers, overflowing intervals, reordered sections, CRLF
//! transfers, interleaved `adb` noise. The parser's contract is
//! *parse-or-counted-error, never panic*: each fixture declares its
//! expected outcome in an inert first-line directive
//! (`#expect: error` / `#expect: ok <n>`), and this test holds the parser
//! to it, checks that failures bump the `android.dumpsys.parse_errors_total`
//! counter, and that parsing is idempotent.
//!
//! Add a fixture by dropping a `.txt` file in the directory — no code
//! change needed. The directive line never starts with `Receiver[`, so the
//! parser ignores it by design and the full file (directive included) is
//! fed to `parse`.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_android::dumpsys;
use std::fs;
use std::path::PathBuf;

/// The outcome a fixture's `#expect:` directive declares.
#[derive(Debug, PartialEq, Eq)]
enum Expect {
    Error,
    Ok(usize),
}

fn parse_directive(fixture: &str, text: &str) -> Expect {
    let first = text.lines().next().unwrap_or_default();
    let rest = first
        .strip_prefix("#expect:")
        .unwrap_or_else(|| panic!("{fixture}: first line must be an #expect: directive, got {first:?}"))
        .trim();
    if rest == "error" {
        Expect::Error
    } else if let Some(n) = rest.strip_prefix("ok ") {
        Expect::Ok(
            n.trim()
                .parse()
                .unwrap_or_else(|_| panic!("{fixture}: bad entry count in directive {first:?}")),
        )
    } else {
        panic!("{fixture}: directive must be `error` or `ok <n>`, got {first:?}");
    }
}

#[test]
fn every_corpus_fixture_parses_or_errors_without_panicking() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/corpus");
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "txt"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 12,
        "corpus shrank to {} fixtures — expected the full adversarial set",
        fixtures.len()
    );

    let obs_enabled = backwatch_obs::enabled();
    for path in fixtures {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_owned();
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: unreadable fixture: {e}"));
        let expect = parse_directive(&name, &text);

        let errors_before = backwatch_android::obs::DUMPSYS_PARSE_ERRORS.get();
        let outcome = dumpsys::parse(&text);
        match (&expect, &outcome) {
            (Expect::Error, Err(e)) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("malformed dumpsys report at line"),
                    "{name}: error does not name the offending line: {msg}"
                );
                if obs_enabled {
                    assert!(
                        backwatch_android::obs::DUMPSYS_PARSE_ERRORS.get() > errors_before,
                        "{name}: parse error was not counted"
                    );
                }
            }
            (Expect::Ok(n), Ok(entries)) => {
                assert_eq!(entries.len(), *n, "{name}: wrong entry count");
                for e in entries {
                    assert!(!e.package.is_empty(), "{name}: empty package survived parsing");
                    assert!(e.interval_s >= 1, "{name}: sub-second interval survived parsing");
                }
            }
            (want, got) => panic!("{name}: expected {want:?}, got {got:?}"),
        }

        // parsing is pure: a second pass over the same bytes agrees
        assert_eq!(outcome, dumpsys::parse(&text), "{name}: parse is not idempotent");
    }
}
