//! Property-based tests for the simulated Android stack: lifecycle
//! fuzzing, dumpsys robustness, and scheduling invariants.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_android::app::{AppBuilder, Component, ComponentKind, LocationBehavior, ManifestBuilder};
use backwatch_android::lifecycle::AppState;
use backwatch_android::permission::{LocationClaim, Permission};
use backwatch_android::provider::ProviderKind;
use backwatch_android::system::Device;
use backwatch_android::{dumpsys, ir, manifest_xml};
use proptest::prelude::*;

/// Random device operations.
#[derive(Debug, Clone, Copy)]
enum Op {
    Launch(u8),
    Background(u8),
    Foreground(u8),
    Stop(u8),
    Trigger(u8),
    Advance(u16),
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0u8..4).prop_map(Op::Launch),
        (0u8..4).prop_map(Op::Background),
        (0u8..4).prop_map(Op::Foreground),
        (0u8..4).prop_map(Op::Stop),
        (0u8..4).prop_map(Op::Trigger),
        (1u16..300).prop_map(Op::Advance),
    ]
}

fn test_app(i: u8, bg: bool) -> backwatch_android::App {
    let mut behavior = LocationBehavior::requester([ProviderKind::Gps, ProviderKind::Network], 5).auto_start(i.is_multiple_of(2));
    if bg {
        behavior = behavior.background_interval(i64::from(i) * 7 + 3);
    }
    AppBuilder::new(format!("com.fuzz.app{i}"))
        .location_claim(LocationClaim::FineAndCoarse)
        .behavior(behavior)
        .build()
}

/// All permission values, indexable by a random byte.
const ALL_PERMISSIONS: [Permission; 6] = [
    Permission::AccessFineLocation,
    Permission::AccessCoarseLocation,
    Permission::Internet,
    Permission::AccessNetworkState,
    Permission::WakeLock,
    Permission::ReceiveBootCompleted,
];

/// Random manifest components: relative or qualified names, 0–2 actions.
fn arb_component() -> impl Strategy<Value = Component> {
    let kind = prop_oneof![
        Just(ComponentKind::Activity),
        Just(ComponentKind::Service),
        Just(ComponentKind::Receiver),
    ];
    let name = prop_oneof!["\\.[A-Z][a-zA-Z0-9]{0,12}", "[a-z]{1,6}\\.[A-Z][a-zA-Z0-9]{0,10}"];
    let actions = prop::collection::vec("[a-z]{1,8}\\.[A-Z_]{1,16}", 0..3);
    (kind, name, actions).prop_map(|(kind, name, actions)| {
        let mut c = Component::new(kind, name);
        c.intent_actions = actions;
        c
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn device_survives_any_operation_sequence(ops in prop::collection::vec(arb_op(), 0..60)) {
        let mut device = Device::new();
        let ids: Vec<_> = (0..4u8).map(|i| device.install(test_app(i, i < 2))).collect();
        for op in ops {
            // every operation either succeeds or returns a typed error —
            // never panics, never corrupts state
            let _ = match op {
                Op::Launch(i) => device.launch(ids[i as usize % 4]),
                Op::Background(i) => device.move_to_background(ids[i as usize % 4]),
                Op::Foreground(i) => device.bring_to_foreground(ids[i as usize % 4]),
                Op::Stop(i) => device.stop(ids[i as usize % 4]),
                Op::Trigger(i) => device.trigger_location_use(ids[i as usize % 4]),
                Op::Advance(s) => {
                    device.advance(i64::from(s));
                    Ok(())
                }
            };
            // invariant: at most one app in the foreground
            let fg = ids
                .iter()
                .filter(|&&id| device.state(id).unwrap() == AppState::Foreground)
                .count();
            prop_assert!(fg <= 1, "{fg} apps in foreground");
        }
        // the access log is always time-ordered
        let log = device.access_log();
        for w in log.windows(2) {
            prop_assert!(w[0].time <= w[1].time);
        }
        // dumpsys always renders and re-parses
        let report = dumpsys::render(&device);
        prop_assert!(dumpsys::parse(&report).is_ok());
    }

    #[test]
    fn access_log_respects_intervals(bg_interval in 1i64..120, horizon in 10i64..2000) {
        let mut device = Device::new();
        let app = AppBuilder::new("com.fuzz.single")
            .location_claim(LocationClaim::FineAndCoarse)
            .behavior(
                LocationBehavior::requester([ProviderKind::Gps], 1)
                    .auto_start(true)
                    .background_interval(bg_interval),
            )
            .build();
        let id = device.install(app);
        device.launch(id).unwrap();
        device.move_to_background(id).unwrap();
        device.advance(horizon);
        let times: Vec<i64> = device
            .access_log()
            .iter()
            .filter(|r| r.app == id && r.background)
            .map(|r| r.time.as_secs())
            .collect();
        for w in times.windows(2) {
            prop_assert!(w[1] - w[0] >= bg_interval, "deliveries {w:?} violate interval {bg_interval}");
        }
        // delivery count is bounded by horizon / interval (+1 for the first)
        prop_assert!(times.len() as i64 <= horizon / bg_interval + 1);
    }

    #[test]
    fn dumpsys_parser_never_panics_on_arbitrary_text(text in "\\PC*") {
        let _ = dumpsys::parse(&text);
    }

    #[test]
    fn dumpsys_parser_never_panics_on_receiver_like_lines(
        pkg in "[a-z.]{1,20}",
        provider in "[a-z]{1,10}",
        interval in "[0-9a-z]{1,6}",
        tail in "\\PC{0,20}",
    ) {
        let line = format!("    Receiver[{pkg} Request[{provider} interval={interval}s]] {tail}");
        let _ = dumpsys::parse(&line);
    }

    #[test]
    fn manifest_render_parse_is_the_identity(
        pkg in prop_oneof!["[a-z]{1,8}", "[a-z]{1,6}\\.[a-z]{1,6}", "[a-z]{1,4}\\.[a-z]{1,4}\\.[a-z]{1,4}"],
        perm_indexes in prop::collection::vec(0usize..ALL_PERMISSIONS.len(), 0..8),
        comps in prop::collection::vec(arb_component(), 0..5),
    ) {
        let mut b = ManifestBuilder::new(pkg);
        for i in perm_indexes {
            b.add_permission(ALL_PERMISSIONS[i]);
        }
        for c in comps {
            b.add_component(c);
        }
        let m = b.build();
        let back = manifest_xml::parse(&manifest_xml::render(&m)).unwrap();
        prop_assert_eq!(back, m);
    }

    #[test]
    fn manifest_parser_never_panics_on_arbitrary_text(text in "\\PC*") {
        let _ = manifest_xml::parse(&text);
    }

    #[test]
    fn ir_parser_never_panics_on_arbitrary_text(text in "\\PC*") {
        let _ = ir::parse(&text);
    }

    #[test]
    fn stopping_is_always_safe(seq in prop::collection::vec(0u8..4, 0..20)) {
        let mut device = Device::new();
        let ids: Vec<_> = (0..4u8).map(|i| device.install(test_app(i, true))).collect();
        for i in seq {
            let id = ids[i as usize % 4];
            let _ = device.launch(id);
            device.stop(id).unwrap();
            prop_assert_eq!(device.state(id).unwrap(), AppState::Stopped);
        }
        device.advance(100);
        // stopped apps never appear in dumpsys
        let entries = dumpsys::parse(&dumpsys::render(&device)).unwrap();
        prop_assert!(entries.is_empty());
    }
}
