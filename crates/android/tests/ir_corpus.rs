//! Adversarial corpus for the app-IR parser: every fixture under
//! `tests/ir_corpus/` is a hostile or degenerate program — duplicate
//! classes, nested methods, unterminated blocks, instructions outside a
//! method body, sink-named non-sink methods, call-graph cycles, CRLF
//! transfers. The parser's contract is *parse-or-counted-error, never
//! panic*: each fixture declares its expected outcome in an inert
//! first-line directive (`#expect: error` / `#expect: ok <n>`), and this
//! test holds the parser to it, checks that failures bump the
//! `android.ir.parse_errors_total` counter, and that parsing is idempotent
//! and stable under a render round-trip.
//!
//! Add a fixture by dropping an `.ir` file in the directory — no code
//! change needed. Directive lines start with `#`, which the grammar
//! treats as comments, so the full file (directives included) is fed to
//! `parse`. A second optional `#class:` directive carries the expected
//! reachability class, and a third optional `#taint:` directive (plus
//! `#taint-sdk: shared` to compose the shared SDK fragment) the expected
//! taint class; they are consumed by the market crate's `reach_corpus`
//! and `taint_corpus` tests, not here.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_android::ir;
use std::fs;
use std::path::PathBuf;

/// The outcome a fixture's `#expect:` directive declares.
#[derive(Debug, PartialEq, Eq)]
enum Expect {
    Error,
    Ok(usize),
}

fn parse_directive(fixture: &str, text: &str) -> Expect {
    let first = text.lines().next().unwrap_or_default();
    let rest = first
        .strip_prefix("#expect:")
        .unwrap_or_else(|| panic!("{fixture}: first line must be an #expect: directive, got {first:?}"))
        .trim();
    if rest == "error" {
        Expect::Error
    } else if let Some(n) = rest.strip_prefix("ok ") {
        Expect::Ok(
            n.trim()
                .parse()
                .unwrap_or_else(|_| panic!("{fixture}: bad class count in directive {first:?}")),
        )
    } else {
        panic!("{fixture}: directive must be `error` or `ok <n>`, got {first:?}");
    }
}

#[test]
fn every_ir_fixture_parses_or_errors_without_panicking() {
    let dir = PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/ir_corpus");
    let mut fixtures: Vec<PathBuf> = fs::read_dir(&dir)
        .expect("ir_corpus directory exists")
        .filter_map(Result::ok)
        .map(|e| e.path())
        .filter(|p| p.extension().is_some_and(|x| x == "ir"))
        .collect();
    fixtures.sort();
    assert!(
        fixtures.len() >= 20,
        "ir corpus shrank to {} fixtures — expected the full adversarial set",
        fixtures.len()
    );

    let obs_enabled = backwatch_obs::enabled();
    for path in fixtures {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("?").to_owned();
        let text = fs::read_to_string(&path).unwrap_or_else(|e| panic!("{name}: unreadable fixture: {e}"));
        let expect = parse_directive(&name, &text);

        let errors_before = backwatch_android::obs::IR_PARSE_ERRORS.get();
        let outcome = ir::parse(&text);
        match (&expect, &outcome) {
            (Expect::Error, Err(e)) => {
                let msg = e.to_string();
                assert!(
                    msg.contains("malformed IR at line"),
                    "{name}: error does not name the offending line: {msg}"
                );
                // line() is 1-based, with 0 reserved for end-of-input errors
                assert!(
                    e.line() >= 1 || msg.contains("end of input"),
                    "{name}: line 0 is reserved for end-of-input errors: {msg}"
                );
                if obs_enabled {
                    assert!(
                        backwatch_android::obs::IR_PARSE_ERRORS.get() > errors_before,
                        "{name}: parse error was not counted"
                    );
                }
            }
            (Expect::Ok(n), Ok(program)) => {
                assert_eq!(program.classes.len(), *n, "{name}: wrong class count");
                for class in &program.classes {
                    assert!(!class.name.is_empty(), "{name}: empty class name survived parsing");
                    for method in &class.methods {
                        assert!(!method.name.is_empty(), "{name}: empty method name survived parsing");
                    }
                }
                // render discards comments but preserves the program: the
                // round-trip re-parses to the same structure
                let rendered = ir::render(program);
                assert_eq!(
                    ir::parse(&rendered).as_ref(),
                    Ok(program),
                    "{name}: render/parse round-trip diverged"
                );
            }
            (want, got) => panic!("{name}: expected {want:?}, got {got:?}"),
        }

        // parsing is pure: a second pass over the same bytes agrees
        assert_eq!(outcome, ir::parse(&text), "{name}: parse is not idempotent");
    }
}
