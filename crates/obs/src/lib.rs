//! Runtime telemetry for the backwatch pipeline.
//!
//! The repo's performance and correctness claims are *measured* claims — a
//! certified filter-and-refine band that "almost never" falls back to the
//! exact metric, a 10× extraction speedup, corpus marginals calibrated to
//! the paper. This crate turns those prose claims into counters that a
//! running binary can assert: every hot path increments an atomic, every
//! report renders a snapshot, and integration tests pin the invariants
//! (refine fraction, dropped dumpsys lines, exactly-once pool claims).
//!
//! Design constraints, in order:
//!
//! - **Cheap on the hot path.** A [`Counter`] bump is one relaxed
//!   `fetch_add`; per-pass aggregation uses [`LocalCounter`] (a plain
//!   `Cell`, no atomics at all) flushed once per pass. No locks, no
//!   allocation after registration.
//! - **Statically owned.** Metrics are `static` items in the crate they
//!   instrument; the registry only records `&'static` references, so
//!   instrumented code never touches the registry.
//! - **Build-off switch.** With the `disabled` cargo feature every
//!   operation compiles to a no-op and the registry stays empty, so a
//!   deployment can buy back the last fraction of a percent.
//! - **Runtime switch.** [`set_enabled`] gates per-pass flushes without
//!   recompiling — the overhead-guard bench compares the two settings.
//!
//! # Examples
//!
//! ```
//! use backwatch_obs as obs;
//!
//! static FRAMES: obs::Counter = obs::Counter::new();
//!
//! obs::register_counter("demo.frames_total", "frames processed", &FRAMES);
//! FRAMES.add(3);
//! let snap = obs::snapshot();
//! # #[cfg(not(feature = "disabled"))]
//! assert_eq!(snap.counter("demo.frames_total"), Some(3));
//! ```

mod metrics;
mod registry;

pub use metrics::{enabled, set_enabled, Counter, Gauge, Histogram, LocalCounter, Span};
pub use registry::{register_counter, register_gauge, register_histogram, reset_all, snapshot, MetricValue, Sample, Snapshot};

/// Latency bucket bounds in microseconds used by the pipeline's span
/// histograms: roughly powers of four from 1 µs to 16 s.
pub static LATENCY_BOUNDS_US: [u64; 13] = [
    1, 4, 16, 64, 256, 1_024, 4_096, 16_384, 65_536, 262_144, 1_048_576, 4_194_304, 16_777_216,
];
