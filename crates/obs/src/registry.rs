//! The static metric registry and snapshot rendering.
//!
//! Instrumented crates own their metrics as `static` items and register
//! `&'static` references once (behind a `std::sync::Once` on their side);
//! the registry is only ever touched at registration and snapshot time, so
//! the hot paths never see the lock. Names are dotted lowercase
//! (`crate.subsystem.metric_total`) and must be unique — a duplicate name
//! is ignored, which makes registration idempotent by construction.

use crate::metrics::{Counter, Gauge, Histogram};
use std::fmt::Write as _;
use std::sync::Mutex;

#[derive(Clone, Copy)]
#[cfg_attr(feature = "disabled", allow(dead_code))]
enum MetricRef {
    Counter(&'static Counter),
    Gauge(&'static Gauge),
    Histogram(&'static Histogram),
}

#[cfg_attr(feature = "disabled", allow(dead_code))]
struct Registration {
    name: &'static str,
    help: &'static str,
    metric: MetricRef,
}

#[cfg_attr(feature = "disabled", allow(dead_code))]
static REGISTRY: Mutex<Vec<Registration>> = Mutex::new(Vec::new());

fn register(name: &'static str, help: &'static str, metric: MetricRef) {
    #[cfg(feature = "disabled")]
    {
        let _ = (name, help, metric);
    }
    #[cfg(not(feature = "disabled"))]
    {
        let mut reg = REGISTRY.lock().expect("metric registry never poisoned");
        if reg.iter().any(|r| r.name == name) {
            return;
        }
        reg.push(Registration { name, help, metric });
    }
}

/// Registers a counter under `name`. Idempotent: a name already present is
/// left untouched.
pub fn register_counter(name: &'static str, help: &'static str, counter: &'static Counter) {
    register(name, help, MetricRef::Counter(counter));
}

/// Registers a gauge under `name`. Idempotent.
pub fn register_gauge(name: &'static str, help: &'static str, gauge: &'static Gauge) {
    register(name, help, MetricRef::Gauge(gauge));
}

/// Registers a histogram under `name`. Idempotent.
pub fn register_histogram(name: &'static str, help: &'static str, histogram: &'static Histogram) {
    register(name, help, MetricRef::Histogram(histogram));
}

/// Resets every registered metric to zero — fresh report runs and tests.
pub fn reset_all() {
    #[cfg(not(feature = "disabled"))]
    for r in REGISTRY.lock().expect("metric registry never poisoned").iter() {
        match r.metric {
            MetricRef::Counter(c) => c.reset(),
            MetricRef::Gauge(g) => g.reset(),
            MetricRef::Histogram(h) => h.reset(),
        }
    }
}

/// A point-in-time value of one registered metric.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum MetricValue {
    /// Counter value.
    Counter(u64),
    /// Gauge value.
    Gauge(i64),
    /// Histogram count, sum, and per-bucket counts (`None` = overflow).
    Histogram {
        /// Observations recorded.
        count: u64,
        /// Sum of recorded values.
        sum: u64,
        /// `(bound, count)` per bucket; `None` is the overflow bucket.
        buckets: Vec<(Option<u64>, u64)>,
    },
}

/// One registered metric with its sampled value.
#[derive(Debug, Clone)]
pub struct Sample {
    /// Registered dotted name.
    pub name: &'static str,
    /// One-line description.
    pub help: &'static str,
    /// The sampled value.
    pub value: MetricValue,
}

/// A consistent-enough view of every registered metric (values are sampled
/// one relaxed load at a time; perfect cross-metric atomicity is neither
/// needed nor claimed).
#[derive(Debug, Clone, Default)]
pub struct Snapshot {
    /// Samples in registration order.
    pub samples: Vec<Sample>,
}

/// Samples every registered metric.
#[must_use]
pub fn snapshot() -> Snapshot {
    #[cfg(feature = "disabled")]
    {
        Snapshot::default()
    }
    #[cfg(not(feature = "disabled"))]
    {
        let reg = REGISTRY.lock().expect("metric registry never poisoned");
        let samples = reg
            .iter()
            .map(|r| Sample {
                name: r.name,
                help: r.help,
                value: match r.metric {
                    MetricRef::Counter(c) => MetricValue::Counter(c.get()),
                    MetricRef::Gauge(g) => MetricValue::Gauge(g.get()),
                    MetricRef::Histogram(h) => MetricValue::Histogram {
                        count: h.count(),
                        sum: h.sum(),
                        buckets: h.bucket_counts(),
                    },
                },
            })
            .collect();
        Snapshot { samples }
    }
}

impl Snapshot {
    /// The value of a registered counter, if present.
    #[must_use]
    pub fn counter(&self, name: &str) -> Option<u64> {
        self.samples.iter().find(|s| s.name == name).and_then(|s| match s.value {
            MetricValue::Counter(v) => Some(v),
            _ => None,
        })
    }

    /// The value of a registered gauge, if present.
    #[must_use]
    pub fn gauge(&self, name: &str) -> Option<i64> {
        self.samples.iter().find(|s| s.name == name).and_then(|s| match s.value {
            MetricValue::Gauge(v) => Some(v),
            _ => None,
        })
    }

    /// `(count, sum)` of a registered histogram, if present.
    #[must_use]
    pub fn histogram(&self, name: &str) -> Option<(u64, u64)> {
        self.samples.iter().find(|s| s.name == name).and_then(|s| match s.value {
            MetricValue::Histogram { count, sum, .. } => Some((count, sum)),
            _ => None,
        })
    }

    /// Human-readable table, one metric per line, histograms with a
    /// count/sum/mean summary.
    #[must_use]
    pub fn render_table(&self) -> String {
        let mut s = String::from("TELEMETRY SNAPSHOT\n");
        let width = self.samples.iter().map(|e| e.name.len()).max().unwrap_or(0).max(12);
        for e in &self.samples {
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(s, "  {:<width$} {:>12}  {}", e.name, v, e.help);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(s, "  {:<width$} {:>12}  {}", e.name, v, e.help);
                }
                MetricValue::Histogram { count, sum, .. } => {
                    let mean = if *count == 0 { 0.0 } else { *sum as f64 / *count as f64 };
                    let _ = writeln!(
                        s,
                        "  {:<width$} {:>12}  {} (sum {} us, mean {:.1} us)",
                        e.name, count, e.help, sum, mean
                    );
                }
            }
        }
        s
    }

    /// Machine-readable lines, stable and greppable:
    ///
    /// ```text
    /// telemetry counter core.poi.points_total 12345
    /// telemetry gauge experiments.pool.workers_current 0
    /// telemetry histogram_count experiments.pool.task_us 182
    /// telemetry histogram_bucket experiments.pool.task_us le=1024 17
    /// telemetry histogram_bucket experiments.pool.task_us le=+inf 3
    /// ```
    #[must_use]
    pub fn render_machine(&self) -> String {
        let mut s = String::new();
        for e in &self.samples {
            match &e.value {
                MetricValue::Counter(v) => {
                    let _ = writeln!(s, "telemetry counter {} {v}", e.name);
                }
                MetricValue::Gauge(v) => {
                    let _ = writeln!(s, "telemetry gauge {} {v}", e.name);
                }
                MetricValue::Histogram { count, sum, buckets } => {
                    let _ = writeln!(s, "telemetry histogram_count {} {count}", e.name);
                    let _ = writeln!(s, "telemetry histogram_sum {} {sum}", e.name);
                    for (bound, n) in buckets {
                        match bound {
                            Some(b) => {
                                let _ = writeln!(s, "telemetry histogram_bucket {} le={b} {n}", e.name);
                            }
                            None => {
                                let _ = writeln!(s, "telemetry histogram_bucket {} le=+inf {n}", e.name);
                            }
                        }
                    }
                }
            }
        }
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    static C: Counter = Counter::new();
    static G: Gauge = Gauge::new();
    static H: Histogram = Histogram::new(&[100]);

    fn register_fixture() {
        register_counter("test.reg.counter_total", "a counter", &C);
        register_gauge("test.reg.gauge", "a gauge", &G);
        register_histogram("test.reg.hist_us", "a histogram", &H);
    }

    #[cfg(not(feature = "disabled"))]
    #[test]
    fn registration_is_idempotent_and_snapshot_reads_values() {
        register_fixture();
        register_fixture();
        C.reset();
        C.add(7);
        G.set(-2);
        H.reset();
        H.record(50);
        let snap = snapshot();
        assert_eq!(snap.counter("test.reg.counter_total"), Some(7));
        assert_eq!(snap.gauge("test.reg.gauge"), Some(-2));
        assert_eq!(snap.histogram("test.reg.hist_us"), Some((1, 50)));
        assert_eq!(snap.samples.iter().filter(|e| e.name.starts_with("test.reg.")).count(), 3);
    }

    #[cfg(not(feature = "disabled"))]
    #[test]
    fn render_formats_contain_every_metric() {
        register_fixture();
        let snap = snapshot();
        let table = snap.render_table();
        let machine = snap.render_machine();
        for name in ["test.reg.counter_total", "test.reg.gauge", "test.reg.hist_us"] {
            assert!(table.contains(name), "table missing {name}");
            assert!(machine.contains(name), "machine lines missing {name}");
        }
        assert!(machine.lines().all(|l| l.starts_with("telemetry ")));
        assert!(machine.contains("histogram_bucket test.reg.hist_us le=+inf"));
    }

    #[cfg(feature = "disabled")]
    #[test]
    fn disabled_registry_is_empty() {
        register_fixture();
        assert!(snapshot().samples.is_empty());
    }
}
