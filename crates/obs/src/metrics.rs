//! The metric primitives: counters, gauges, histograms, span timers.
//!
//! Everything here is `const`-constructible so instrumented crates can
//! declare metrics as plain `static` items, and every mutation is a relaxed
//! atomic operation (or, for [`LocalCounter`], a plain `Cell` update) — the
//! hot path never locks and never allocates.

#[cfg(not(feature = "disabled"))]
use std::cell::Cell;
#[cfg(not(feature = "disabled"))]
use std::sync::atomic::{AtomicBool, AtomicI64, AtomicU64, Ordering};
#[cfg(not(feature = "disabled"))]
use std::time::Instant;

/// Maximum number of finite bucket bounds a [`Histogram`] can hold.
pub(crate) const MAX_BUCKETS: usize = 16;

#[cfg(not(feature = "disabled"))]
static ENABLED: AtomicBool = AtomicBool::new(true);

/// Whether telemetry is currently recording. Always `false` under the
/// `disabled` feature.
#[inline]
#[must_use]
pub fn enabled() -> bool {
    #[cfg(not(feature = "disabled"))]
    {
        ENABLED.load(Ordering::Relaxed)
    }
    #[cfg(feature = "disabled")]
    {
        false
    }
}

/// Turns telemetry recording on or off at runtime. Individual counter bumps
/// are so cheap they are not gated; instrumented code gates its *per-pass
/// flushes* and span timers on [`enabled`], which is what this toggles.
/// A no-op under the `disabled` feature.
pub fn set_enabled(on: bool) {
    #[cfg(not(feature = "disabled"))]
    ENABLED.store(on, Ordering::Relaxed);
    #[cfg(feature = "disabled")]
    let _ = on;
}

/// A monotonically increasing event count: one relaxed `fetch_add` per
/// bump, safe to share across threads as a `static`.
#[derive(Debug)]
pub struct Counter {
    #[cfg(not(feature = "disabled"))]
    value: AtomicU64,
}

impl Counter {
    /// Creates a counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            #[cfg(not(feature = "disabled"))]
            value: AtomicU64::new(0),
        }
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "disabled"))]
        self.value.fetch_add(n, Ordering::Relaxed);
        #[cfg(feature = "disabled")]
        let _ = n;
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// The current count (0 under the `disabled` feature).
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "disabled"))]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(feature = "disabled")]
        {
            0
        }
    }

    /// Resets the count to zero (tests and fresh report runs).
    pub fn reset(&self) {
        #[cfg(not(feature = "disabled"))]
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Counter {
    fn default() -> Self {
        Self::new()
    }
}

/// A single-threaded accumulation cell for per-pass hot loops: a plain
/// `Cell<u64>` increment (one add instruction, no atomics), flushed into a
/// shared [`Counter`] once the pass ends.
///
/// This is how the PoI extractor counts filter/refine decisions without
/// paying an atomic per decision.
#[derive(Debug, Clone, Default)]
pub struct LocalCounter {
    #[cfg(not(feature = "disabled"))]
    value: Cell<u64>,
}

impl LocalCounter {
    /// Creates a local counter at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            #[cfg(not(feature = "disabled"))]
            value: Cell::new(0),
        }
    }

    /// Adds one event.
    #[inline]
    pub fn inc(&self) {
        #[cfg(not(feature = "disabled"))]
        self.value.set(self.value.get() + 1);
    }

    /// Adds `n` events.
    #[inline]
    pub fn add(&self, n: u64) {
        #[cfg(not(feature = "disabled"))]
        self.value.set(self.value.get() + n);
        #[cfg(feature = "disabled")]
        let _ = n;
    }

    /// The accumulated count (0 under the `disabled` feature).
    #[must_use]
    pub fn get(&self) -> u64 {
        #[cfg(not(feature = "disabled"))]
        {
            self.value.get()
        }
        #[cfg(feature = "disabled")]
        {
            0
        }
    }

    /// Adds the accumulated count to `target` and zeroes this cell.
    /// Gated on [`enabled`] so a runtime-disabled pipeline skips even the
    /// flush.
    pub fn flush_into(&self, target: &Counter) {
        #[cfg(not(feature = "disabled"))]
        {
            let n = self.value.replace(0);
            if n > 0 && enabled() {
                target.add(n);
            }
        }
        #[cfg(feature = "disabled")]
        let _ = target;
    }
}

/// A value that can go up and down (active workers, in-flight passes).
#[derive(Debug)]
pub struct Gauge {
    #[cfg(not(feature = "disabled"))]
    value: AtomicI64,
}

impl Gauge {
    /// Creates a gauge at zero.
    #[must_use]
    pub const fn new() -> Self {
        Self {
            #[cfg(not(feature = "disabled"))]
            value: AtomicI64::new(0),
        }
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, v: i64) {
        #[cfg(not(feature = "disabled"))]
        self.value.store(v, Ordering::Relaxed);
        #[cfg(feature = "disabled")]
        let _ = v;
    }

    /// Adds `delta` (may be negative).
    #[inline]
    pub fn add(&self, delta: i64) {
        #[cfg(not(feature = "disabled"))]
        self.value.fetch_add(delta, Ordering::Relaxed);
        #[cfg(feature = "disabled")]
        let _ = delta;
    }

    /// The current value (0 under the `disabled` feature).
    #[must_use]
    pub fn get(&self) -> i64 {
        #[cfg(not(feature = "disabled"))]
        {
            self.value.load(Ordering::Relaxed)
        }
        #[cfg(feature = "disabled")]
        {
            0
        }
    }

    /// Resets the gauge to zero.
    pub fn reset(&self) {
        #[cfg(not(feature = "disabled"))]
        self.value.store(0, Ordering::Relaxed);
    }
}

impl Default for Gauge {
    fn default() -> Self {
        Self::new()
    }
}

/// A fixed-bucket histogram: at most [`MAX_BUCKETS`] finite bounds plus an
/// overflow bucket, each a relaxed atomic. Bounds are `'static` and sorted;
/// recording is a short linear scan (the bound lists used here have ≤ 13
/// entries) plus one `fetch_add`.
#[derive(Debug)]
pub struct Histogram {
    bounds: &'static [u64],
    #[cfg(not(feature = "disabled"))]
    buckets: [AtomicU64; MAX_BUCKETS + 1],
    #[cfg(not(feature = "disabled"))]
    count: AtomicU64,
    #[cfg(not(feature = "disabled"))]
    sum: AtomicU64,
}

impl Histogram {
    /// Creates a histogram over the given ascending bucket bounds.
    ///
    /// # Panics
    ///
    /// Panics (at compile time for `static` items) if more than
    /// [`MAX_BUCKETS`] bounds are given.
    #[must_use]
    pub const fn new(bounds: &'static [u64]) -> Self {
        assert!(bounds.len() <= MAX_BUCKETS, "too many histogram bounds");
        Self {
            bounds,
            #[cfg(not(feature = "disabled"))]
            buckets: [const { AtomicU64::new(0) }; MAX_BUCKETS + 1],
            #[cfg(not(feature = "disabled"))]
            count: AtomicU64::new(0),
            #[cfg(not(feature = "disabled"))]
            sum: AtomicU64::new(0),
        }
    }

    /// The configured finite bounds.
    #[must_use]
    pub fn bounds(&self) -> &'static [u64] {
        self.bounds
    }

    /// Records one observation.
    #[inline]
    pub fn record(&self, v: u64) {
        #[cfg(not(feature = "disabled"))]
        {
            let idx = self.bounds.partition_point(|&b| b < v);
            self.buckets[idx].fetch_add(1, Ordering::Relaxed);
            self.count.fetch_add(1, Ordering::Relaxed);
            self.sum.fetch_add(v, Ordering::Relaxed);
        }
        #[cfg(feature = "disabled")]
        let _ = v;
    }

    /// Records `n` observations of the same value in one shot.
    ///
    /// Batch consumers time a whole batch once and attribute the mean to
    /// every item; this keeps the histogram's sample count equal to the
    /// item count without paying one clock read and three atomic RMWs per
    /// item.
    #[inline]
    pub fn record_n(&self, v: u64, n: u64) {
        #[cfg(not(feature = "disabled"))]
        {
            let idx = self.bounds.partition_point(|&b| b < v);
            self.buckets[idx].fetch_add(n, Ordering::Relaxed);
            self.count.fetch_add(n, Ordering::Relaxed);
            self.sum.fetch_add(v.saturating_mul(n), Ordering::Relaxed);
        }
        #[cfg(feature = "disabled")]
        let _ = (v, n);
    }

    /// Starts a scoped timer that records elapsed microseconds into this
    /// histogram when dropped. Returns an inert span when telemetry is
    /// disabled (at runtime or by feature), so the `Instant` is not even
    /// read.
    pub fn span(&self) -> Span<'_> {
        Span {
            #[cfg(not(feature = "disabled"))]
            target: enabled().then_some(self),
            #[cfg(not(feature = "disabled"))]
            start: Instant::now(),
            #[cfg(feature = "disabled")]
            _marker: std::marker::PhantomData,
        }
    }

    /// Total observations recorded.
    #[must_use]
    pub fn count(&self) -> u64 {
        #[cfg(not(feature = "disabled"))]
        {
            self.count.load(Ordering::Relaxed)
        }
        #[cfg(feature = "disabled")]
        {
            0
        }
    }

    /// Sum of all recorded values.
    #[must_use]
    pub fn sum(&self) -> u64 {
        #[cfg(not(feature = "disabled"))]
        {
            self.sum.load(Ordering::Relaxed)
        }
        #[cfg(feature = "disabled")]
        {
            0
        }
    }

    /// Per-bucket counts: one entry per finite bound (observations at or
    /// below it, exclusive of earlier buckets) plus the overflow bucket as
    /// `None`.
    #[must_use]
    pub fn bucket_counts(&self) -> Vec<(Option<u64>, u64)> {
        #[cfg(not(feature = "disabled"))]
        {
            let mut out: Vec<(Option<u64>, u64)> = self
                .bounds
                .iter()
                .enumerate()
                .map(|(i, &b)| (Some(b), self.buckets[i].load(Ordering::Relaxed)))
                .collect();
            out.push((None, self.buckets[self.bounds.len()].load(Ordering::Relaxed)));
            out
        }
        #[cfg(feature = "disabled")]
        {
            let mut out: Vec<(Option<u64>, u64)> = self.bounds.iter().map(|&b| (Some(b), 0)).collect();
            out.push((None, 0));
            out
        }
    }

    /// Resets every bucket, the count, and the sum to zero.
    pub fn reset(&self) {
        #[cfg(not(feature = "disabled"))]
        {
            for b in &self.buckets {
                b.store(0, Ordering::Relaxed);
            }
            self.count.store(0, Ordering::Relaxed);
            self.sum.store(0, Ordering::Relaxed);
        }
    }
}

/// A scoped timer from [`Histogram::span`]: records the elapsed wall time
/// in microseconds when dropped.
#[derive(Debug)]
#[must_use = "a span records on drop; binding it to _ drops it immediately"]
pub struct Span<'a> {
    #[cfg(not(feature = "disabled"))]
    target: Option<&'a Histogram>,
    #[cfg(not(feature = "disabled"))]
    start: Instant,
    #[cfg(feature = "disabled")]
    _marker: std::marker::PhantomData<&'a Histogram>,
}

impl Drop for Span<'_> {
    fn drop(&mut self) {
        #[cfg(not(feature = "disabled"))]
        if let Some(h) = self.target {
            let us = u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX);
            h.record(us);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Tests that read or toggle the global enabled switch must not
    /// interleave (the test harness runs tests on parallel threads).
    #[cfg(not(feature = "disabled"))]
    static ENABLED_LOCK: std::sync::Mutex<()> = std::sync::Mutex::new(());

    #[test]
    fn counter_accumulates() {
        let c = Counter::new();
        c.inc();
        c.add(4);
        #[cfg(not(feature = "disabled"))]
        assert_eq!(c.get(), 5);
        #[cfg(feature = "disabled")]
        assert_eq!(c.get(), 0);
        c.reset();
        assert_eq!(c.get(), 0);
    }

    #[test]
    fn local_counter_flushes_once() {
        let local = LocalCounter::new();
        let shared = Counter::new();
        local.add(7);
        local.inc();
        local.flush_into(&shared);
        #[cfg(not(feature = "disabled"))]
        assert_eq!(shared.get(), 8);
        assert_eq!(local.get(), 0);
        // a second flush adds nothing
        local.flush_into(&shared);
        #[cfg(not(feature = "disabled"))]
        assert_eq!(shared.get(), 8);
    }

    #[test]
    fn gauge_moves_both_ways() {
        let g = Gauge::new();
        g.add(3);
        g.add(-1);
        #[cfg(not(feature = "disabled"))]
        assert_eq!(g.get(), 2);
        g.set(-5);
        #[cfg(not(feature = "disabled"))]
        assert_eq!(g.get(), -5);
        g.reset();
        assert_eq!(g.get(), 0);
    }

    #[cfg(not(feature = "disabled"))]
    #[test]
    fn histogram_buckets_by_bound() {
        static H: Histogram = Histogram::new(&[10, 100]);
        H.reset();
        H.record(5); // <= 10
        H.record(10); // <= 10 (bounds are inclusive)
        H.record(50); // <= 100
        H.record(1000); // overflow
        assert_eq!(H.count(), 4);
        assert_eq!(H.sum(), 1065);
        assert_eq!(H.bucket_counts(), vec![(Some(10), 2), (Some(100), 1), (None, 1)]);
    }

    #[cfg(not(feature = "disabled"))]
    #[test]
    fn span_records_elapsed_micros() {
        static H: Histogram = Histogram::new(&[1_000_000]);
        let _guard = ENABLED_LOCK.lock().unwrap();
        H.reset();
        {
            let _span = H.span();
            std::thread::sleep(std::time::Duration::from_millis(2));
        }
        assert_eq!(H.count(), 1);
        assert!(H.sum() >= 2_000, "slept 2 ms, recorded {} us", H.sum());
    }

    #[cfg(not(feature = "disabled"))]
    #[test]
    fn disabled_runtime_switch_gates_flush_and_spans() {
        static H: Histogram = Histogram::new(&[10]);
        let _guard = ENABLED_LOCK.lock().unwrap();
        H.reset();
        let local = LocalCounter::new();
        let shared = Counter::new();
        set_enabled(false);
        local.inc();
        local.flush_into(&shared);
        let _span = H.span();
        drop(_span);
        set_enabled(true);
        assert_eq!(shared.get(), 0, "flush while disabled must drop the batch");
        assert_eq!(H.count(), 0, "span while disabled must not record");
    }

    #[test]
    fn counters_are_shareable_across_threads() {
        static C: Counter = Counter::new();
        C.reset();
        std::thread::scope(|s| {
            for _ in 0..4 {
                s.spawn(|| {
                    for _ in 0..1000 {
                        C.inc();
                    }
                });
            }
        });
        #[cfg(not(feature = "disabled"))]
        assert_eq!(C.get(), 4000);
    }
}
