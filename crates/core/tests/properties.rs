//! Property-based tests for the privacy model.

#![allow(clippy::unwrap_used, clippy::expect_used)] // test/bench/example target: panics are failures by design

use backwatch_core::hisbin::Matcher;
use backwatch_core::pattern::{PatternKind, Profile};
use backwatch_core::poi::{cluster_stays, ExtractorParams, SpatioTemporalExtractor, Stay};
use backwatch_geo::distance::Metric;
use backwatch_geo::{Grid, LatLon, Meters, Seconds};
use backwatch_trace::{Timestamp, Trace, TracePoint};
use proptest::prelude::*;

/// A synthetic trace made of dwell and move segments around Beijing.
/// Returns the trace plus the number of "long" dwells (>= 15 min) that
/// are separated by real displacement.
fn arb_day() -> impl Strategy<Value = (Trace, usize)> {
    // each segment: (is_dwell, duration_minutes, dx_km, dy_km)
    prop::collection::vec((any::<bool>(), 3u32..40, -2i32..=2, -2i32..=2), 1..12).prop_map(|segments| {
        let mut pts = Vec::new();
        let mut t = 0i64;
        let (mut x, mut y) = (0.0f64, 0.0f64); // km offsets
        let frame = backwatch_geo::enu::Frame::new(LatLon::new(39.9, 116.4).unwrap());
        let mut long_dwells = 0usize;
        for (is_dwell, minutes, dx, dy) in segments {
            let secs = i64::from(minutes) * 60;
            if is_dwell {
                if minutes >= 15 && (f64::from(dx).abs() + f64::from(dy).abs()) >= 1.0 {
                    long_dwells += 1;
                }
                for s in 0..secs {
                    pts.push(TracePoint::new(
                        Timestamp::from_secs(t + s),
                        frame.to_latlon(Meters::new(x * 1000.0), Meters::new(y * 1000.0)),
                    ));
                }
                t += secs;
                // displacement after the dwell
                x += f64::from(dx);
                y += f64::from(dy);
            } else {
                // move steadily to the next offset over `secs`
                let (nx, ny) = (x + f64::from(dx), y + f64::from(dy));
                for s in 0..secs {
                    let f = s as f64 / secs as f64;
                    pts.push(TracePoint::new(
                        Timestamp::from_secs(t + s),
                        frame.to_latlon(
                            Meters::new((x + (nx - x) * f) * 1000.0),
                            Meters::new((y + (ny - y) * f) * 1000.0),
                        ),
                    ));
                }
                t += secs;
                x = nx;
                y = ny;
            }
        }
        (Trace::from_points(pts), long_dwells)
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn stays_meet_visiting_time_and_are_ordered((trace, _) in arb_day()) {
        let params = ExtractorParams::paper_set1();
        let stays = SpatioTemporalExtractor::new(params).extract(&trace);
        for s in &stays {
            prop_assert!(s.dwell_secs() >= params.min_visit_secs.get());
            prop_assert!(s.n_points >= 2);
            prop_assert!(s.end_index < trace.len());
        }
        for w in stays.windows(2) {
            prop_assert!(w[0].leave <= w[1].enter, "stays overlap");
            prop_assert!(w[0].end_index < w[1].end_index);
        }
    }

    #[test]
    fn stay_centroid_lies_inside_trace_bbox((trace, _) in arb_day()) {
        let stays = SpatioTemporalExtractor::new(ExtractorParams::paper_set1()).extract(&trace);
        if let Some(bb) = trace.bounding_box() {
            for s in &stays {
                // allow a meter of numerical slack
                prop_assert!(s.centroid.lat() >= bb.min_lat() - 1e-5);
                prop_assert!(s.centroid.lat() <= bb.max_lat() + 1e-5);
                prop_assert!(s.centroid.lon() >= bb.min_lon() - 1e-5);
                prop_assert!(s.centroid.lon() <= bb.max_lon() + 1e-5);
            }
        }
    }

    #[test]
    fn downsampling_never_invents_stays((trace, _) in arb_day(), interval in 2i64..600) {
        // Every stay found in the downsampled trace overlaps some stay of
        // the full extraction or is subsumed by a longer dwell: weaker but
        // robust invariant — downsampled extraction never finds more stays
        // than the trace has dwell segments.
        let params = ExtractorParams::paper_set1();
        let full = SpatioTemporalExtractor::new(params).extract(&trace);
        let sampled = backwatch_trace::sampling::downsample(&trace, Seconds::new(interval));
        let coarse = SpatioTemporalExtractor::new(params).extract(&sampled);
        prop_assert!(coarse.len() <= full.len() + 1, "coarse {} vs full {}", coarse.len(), full.len());
    }

    #[test]
    fn clustering_assignment_is_total((trace, _) in arb_day(), radius in 50.0f64..500.0) {
        let stays = SpatioTemporalExtractor::new(ExtractorParams::paper_set1()).extract(&trace);
        let places = cluster_stays(&stays, Meters::new(radius), Metric::Equirectangular);
        prop_assert_eq!(places.assignment().len(), stays.len());
        let total: usize = places.places().iter().map(|p| p.visit_count()).sum();
        prop_assert_eq!(total, stays.len());
        // every member stay is within ~2x the merge radius of its place
        for (i, s) in stays.iter().enumerate() {
            let place = places.place_of_stay(i).unwrap();
            let d = Metric::Equirectangular.distance(s.centroid, place.centroid);
            prop_assert!(d <= radius * 2.0 + 1.0, "stay {i} is {d} m from its place");
        }
    }

    #[test]
    fn profiles_are_prefix_monotone((trace, _) in arb_day(), cut in 0.1f64..0.9) {
        let grid = Grid::new(LatLon::new(39.9, 116.4).unwrap(), Meters::new(250.0));
        let stays = SpatioTemporalExtractor::new(ExtractorParams::paper_set1()).extract(&trace);
        let k = ((stays.len() as f64) * cut) as usize;
        for kind in [PatternKind::RegionVisits, PatternKind::RegionVisitCounts, PatternKind::MovementPattern] {
            let partial = Profile::from_stays(kind, &stays[..k], &grid);
            let full = Profile::from_stays(kind, &stays, &grid);
            prop_assert!(partial.histogram().total() <= full.histogram().total());
            for (key, count) in partial.histogram().iter() {
                prop_assert!(full.histogram().count(key) >= count, "prefix count exceeds full count");
            }
        }
    }

    #[test]
    fn matcher_is_symmetric_in_safety_for_disjoint((trace, _) in arb_day(), shift in 1i32..5) {
        // shift a copy of the stays far away: neither direction matches
        let grid = Grid::new(LatLon::new(39.9, 116.4).unwrap(), Meters::new(250.0));
        let stays = SpatioTemporalExtractor::new(ExtractorParams::paper_set1()).extract(&trace);
        if stays.len() >= 3 {
            let moved: Vec<Stay> = stays
                .iter()
                .map(|s| Stay {
                    centroid: LatLon::clamped(s.centroid.lat() - f64::from(shift) * 0.5, s.centroid.lon()),
                    ..*s
                })
                .collect();
            let a = Profile::from_stays(PatternKind::RegionVisits, &stays, &grid);
            let b = Profile::from_stays(PatternKind::RegionVisits, &moved, &grid);
            let m = Matcher::paper();
            prop_assert!(!m.compare(&a, &b).his_bin.is_leaky());
            prop_assert!(!m.compare(&b, &a).his_bin.is_leaky());
        }
    }

    #[test]
    fn self_match_always_leaks((trace, _) in arb_day()) {
        let grid = Grid::new(LatLon::new(39.9, 116.4).unwrap(), Meters::new(250.0));
        let stays = SpatioTemporalExtractor::new(ExtractorParams::paper_set1()).extract(&trace);
        for kind in [PatternKind::RegionVisits, PatternKind::MovementPattern] {
            let p = Profile::from_stays(kind, &stays, &grid);
            if !p.is_empty() {
                prop_assert!(Matcher::paper().compare(&p, &p).his_bin.is_leaky());
            }
        }
    }
}
