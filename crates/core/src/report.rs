//! A one-call privacy report for a location trace — the library-facing
//! summary a privacy dashboard or an auditing tool would show a user.
//!
//! Given the trace an app has collected (and optionally a population of
//! other users' profiles), [`PrivacyReport::analyze`] runs the paper's
//! whole §IV pipeline and summarizes what that data reveals.

use crate::adversary::ProfileStore;
use crate::anonymity::Weighting;
use crate::hisbin::{detect_incremental, Matcher};
use crate::pattern::{PatternKind, Profile};
use crate::poi::{cluster_stays, sensitive_counts, ExtractorParams, SpatioTemporalExtractor};
use backwatch_geo::Grid;
use backwatch_trace::Trace;
use std::fmt;

/// What a collected trace reveals, per the paper's metrics.
///
/// # Examples
///
/// ```
/// use backwatch_core::report::PrivacyReport;
/// use backwatch_geo::{Grid, LatLon};
/// use backwatch_trace::synth::{generate_user, SynthConfig};
///
/// let user = generate_user(&SynthConfig::small(), 0);
/// let grid = Grid::new(LatLon::new(39.9042, 116.4074)?, backwatch_geo::Meters::new(250.0));
/// let report = PrivacyReport::analyze(&user.trace, &grid);
/// assert!(report.poi_visits > 0);
/// println!("{report}");
/// # Ok::<(), backwatch_geo::LatLonError>(())
/// ```
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct PrivacyReport {
    /// Fixes in the analysed trace.
    pub fixes: usize,
    /// Days the trace spans.
    pub span_days: f64,
    /// PoI visits extracted (paper `PoI_total`).
    pub poi_visits: usize,
    /// Distinct places the visits cluster into.
    pub places: usize,
    /// Sensitive places at thresholds `[≤1, ≤2, ≤3]` visits (paper
    /// `PoI_sensitive`).
    pub sensitive_places: [usize; 3],
    /// Fraction of the data a His_bin adversary needed to confirm the
    /// pattern-2 profile this very data induces (`None` when the trace is
    /// too thin to profile). Small values mean the habits are blatant.
    pub self_detection_fraction: Option<f64>,
    /// If a population store was supplied: how many profiles the data
    /// matched.
    pub anonymity_set: Option<usize>,
    /// If a population store was supplied: the degree of anonymity.
    pub degree_of_anonymity: Option<f64>,
}

impl PrivacyReport {
    /// Analyzes a trace with the paper's default parameters (Table III
    /// set 1, α = 0.05).
    #[must_use]
    pub fn analyze(trace: &Trace, grid: &Grid) -> Self {
        Self::analyze_with(trace, grid, ExtractorParams::paper_set1(), &Matcher::paper(), None)
    }

    /// Analyzes a trace against a population of profiles, adding the
    /// identification fields.
    #[must_use]
    pub fn analyze_against(trace: &Trace, grid: &Grid, store: &ProfileStore) -> Self {
        Self::analyze_with(trace, grid, ExtractorParams::paper_set1(), &Matcher::paper(), Some(store))
    }

    /// Full-control variant.
    #[must_use]
    pub fn analyze_with(
        trace: &Trace,
        grid: &Grid,
        params: ExtractorParams,
        matcher: &Matcher,
        store: Option<&ProfileStore>,
    ) -> Self {
        let stays = SpatioTemporalExtractor::new(params).extract(trace);
        let places = cluster_stays(&stays, params.radius_m * 3.0, params.metric);
        let profile2 = Profile::from_stays(PatternKind::MovementPattern, &stays, grid);
        let self_detection = detect_incremental(
            &stays,
            trace.len().max(1),
            grid,
            PatternKind::MovementPattern,
            matcher,
            &profile2,
        );
        let (anonymity_set, degree) = match store {
            Some(store) if !store.is_empty() => {
                let inference = store.infer(&profile2, matcher, Weighting::PaperChiSquare);
                (Some(inference.matched_users.len()), inference.degree())
            }
            _ => (None, None),
        };
        Self {
            fixes: trace.len(),
            span_days: trace.duration_secs() as f64 / 86_400.0,
            poi_visits: stays.len(),
            places: places.len(),
            sensitive_places: sensitive_counts(&places),
            self_detection_fraction: self_detection.map(|d| d.fraction_of_points),
            anonymity_set,
            degree_of_anonymity: degree,
        }
    }

    /// A coarse 0–3 severity grade: how bad is this collection?
    ///
    /// - 0: no PoIs recovered.
    /// - 1: PoIs but no sensitive places and no profile match.
    /// - 2: sensitive places recovered, or the user's habit profile is
    ///   confirmed by the data itself.
    /// - 3: the data pinpoints the user within a population
    ///   (anonymity set of 1).
    #[must_use]
    pub fn severity(&self) -> u8 {
        if self.anonymity_set == Some(1) {
            3
        } else if self.sensitive_places[2] > 0 || self.self_detection_fraction.is_some() {
            2
        } else if self.poi_visits > 0 {
            1
        } else {
            0
        }
    }
}

impl fmt::Display for PrivacyReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "privacy report: {} fixes over {:.1} days", self.fixes, self.span_days)?;
        writeln!(
            f,
            "  PoI visits: {} at {} places ({} sensitive at <=3 visits)",
            self.poi_visits, self.places, self.sensitive_places[2]
        )?;
        match self.self_detection_fraction {
            Some(frac) => writeln!(f, "  habit profile confirmed after {:.0}% of the data", frac * 100.0)?,
            None => writeln!(f, "  habit profile not confirmed by this data")?,
        }
        if let Some(set) = self.anonymity_set {
            writeln!(
                f,
                "  anonymity set: {set} profile(s), degree {}",
                self.degree_of_anonymity.map_or_else(|| "-".to_owned(), |d| format!("{d:.2}"))
            )?;
        }
        write!(f, "  severity: {}/3", self.severity())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::LatLon;
    use backwatch_trace::sampling;
    use backwatch_trace::synth::{generate_user, SynthConfig};

    fn grid() -> Grid {
        Grid::new(LatLon::new(39.9042, 116.4074).unwrap(), backwatch_geo::Meters::new(250.0))
    }

    #[test]
    fn full_trace_is_high_severity() {
        let user = generate_user(&SynthConfig::small(), 0);
        let r = PrivacyReport::analyze(&user.trace, &grid());
        assert!(r.poi_visits > 0);
        assert!(r.places > 0);
        assert!(r.severity() >= 2, "{r}");
        assert!(r.anonymity_set.is_none());
    }

    #[test]
    fn empty_trace_is_severity_zero() {
        let r = PrivacyReport::analyze(&Trace::new(), &grid());
        assert_eq!(r.poi_visits, 0);
        assert_eq!(r.severity(), 0);
        assert!(r.self_detection_fraction.is_none());
    }

    #[test]
    fn population_identification_is_severity_three() {
        let cfg = SynthConfig::small();
        let params = ExtractorParams::paper_set1();
        let extractor = SpatioTemporalExtractor::new(params);
        let mut store = ProfileStore::new(PatternKind::MovementPattern);
        for i in 0..cfg.n_users {
            let u = generate_user(&cfg, i);
            let stays = extractor.extract(&u.trace);
            store.insert(i, Profile::from_stays(PatternKind::MovementPattern, &stays, &grid()));
        }
        let victim = generate_user(&cfg, 1);
        let r = PrivacyReport::analyze_against(&victim.trace, &grid(), &store);
        assert_eq!(r.anonymity_set, Some(1));
        assert_eq!(r.severity(), 3);
        assert_eq!(r.degree_of_anonymity, Some(0.0));
    }

    #[test]
    fn heavy_downsampling_reduces_severity() {
        let user = generate_user(&SynthConfig::small(), 2);
        let full = PrivacyReport::analyze(&user.trace, &grid());
        let thin = PrivacyReport::analyze(&sampling::downsample(&user.trace, backwatch_geo::Seconds::new(7200)), &grid());
        assert!(thin.poi_visits < full.poi_visits);
        assert!(thin.severity() <= full.severity());
    }

    #[test]
    fn display_contains_key_lines() {
        let user = generate_user(&SynthConfig::small(), 3);
        let r = PrivacyReport::analyze(&user.trace, &grid());
        let text = r.to_string();
        assert!(text.contains("privacy report"));
        assert!(text.contains("severity"));
    }
}
