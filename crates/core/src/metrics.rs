//! Frequency-impact measurement: the `PoI_total` / `PoI_sensitive`
//! metrics as functions of an app's access interval (Figure 3).

use crate::poi::{cluster_stays, match_against_truth, sensitive_counts, ExtractorParams, SpatioTemporalExtractor, Stay};
use backwatch_geo::Seconds;
use backwatch_trace::sampling;
use backwatch_trace::synth::UserTrace;
use backwatch_trace::ProjectedTrace;

/// The access intervals (seconds) swept by the paper's Figure 3/4/5
/// frequency axes.
pub const PAPER_INTERVALS: [i64; 10] = [1, 5, 10, 30, 60, 300, 600, 1800, 3600, 7200];

/// What one user's trace yields at one access interval.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct FrequencyImpact {
    /// The app's polling interval, seconds.
    pub interval_s: i64,
    /// Fixes the app collected.
    pub collected_points: usize,
    /// PoI visits (stays) extracted from the collected fixes.
    pub stays: usize,
    /// Distinct places the stays cluster into.
    pub places: usize,
    /// Sensitive places at the paper's thresholds `[≤1, ≤2, ≤3]` visits.
    pub sensitive: [usize; 3],
    /// Recall against the user's ground-truth visits.
    pub recall: f64,
    /// Whether every eligible ground-truth visit was recovered.
    pub complete: bool,
}

/// Radius used to merge stays into places and to match stays against
/// ground truth, relative to the extraction radius.
const MATCH_RADIUS_FACTOR: f64 = 3.0;

/// Downsamples `user`'s trace to `interval`, extracts PoIs, and scores
/// them.
///
/// # Panics
///
/// Panics if `interval` is not positive.
#[must_use]
pub fn measure_at_interval(user: &UserTrace, interval: Seconds, params: ExtractorParams) -> FrequencyImpact {
    measure_projected(user, &ProjectedTrace::project(&user.trace), interval, params)
}

/// [`measure_at_interval`] on a trace that was already projected once —
/// the per-interval sweeps project each user a single time and reuse the
/// planar coordinates for every interval. `projected` must be the
/// projection of `user.trace`; results are identical to
/// [`measure_at_interval`].
#[must_use]
pub fn measure_projected(
    user: &UserTrace,
    projected: &ProjectedTrace,
    interval: Seconds,
    params: ExtractorParams,
) -> FrequencyImpact {
    let indices = sampling::downsample_indices_from_times(projected.points().iter().map(|p| p.time.as_secs()), interval);
    let stays = SpatioTemporalExtractor::new(params).extract_sampled(projected, &indices);
    impact_from_stays(user, interval, indices.len(), &stays, params)
}

/// Scores already-extracted stays: the clustering/matching half of
/// [`measure_at_interval`], for callers that computed the stays themselves
/// (the experiment pipeline extracts once per interval and reuses the
/// result here instead of extracting twice).
#[must_use]
pub fn impact_from_stays(
    user: &UserTrace,
    interval: Seconds,
    collected_points: usize,
    stays: &[Stay],
    params: ExtractorParams,
) -> FrequencyImpact {
    let match_radius = params.radius_m * MATCH_RADIUS_FACTOR;
    let places = cluster_stays(stays, match_radius, params.metric);
    let report = match_against_truth(stays, user, params.min_visit_secs, match_radius, params.metric);
    FrequencyImpact {
        interval_s: interval.get(),
        collected_points,
        stays: stays.len(),
        places: places.len(),
        sensitive: sensitive_counts(&places),
        recall: report.recall(),
        complete: report.complete(),
    }
}

/// Sweeps [`PAPER_INTERVALS`] for one user, projecting the trace once.
#[must_use]
pub fn sweep_intervals(user: &UserTrace, params: ExtractorParams) -> Vec<FrequencyImpact> {
    let projected = ProjectedTrace::project(&user.trace);
    PAPER_INTERVALS
        .iter()
        .map(|&i| measure_projected(user, &projected, Seconds::new(i), params))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_trace::synth::{generate_user, SynthConfig};

    #[test]
    fn one_second_interval_collects_everything() {
        let user = generate_user(&SynthConfig::small(), 0);
        let m = measure_at_interval(&user, Seconds::new(1), ExtractorParams::paper_set1());
        assert_eq!(m.collected_points, user.trace.len());
        assert!(m.stays > 0);
        assert!(m.recall > 0.8, "recall {}", m.recall);
    }

    #[test]
    fn coarser_intervals_collect_fewer_points() {
        let user = generate_user(&SynthConfig::small(), 1);
        let sweep = sweep_intervals(&user, ExtractorParams::paper_set1());
        for w in sweep.windows(2) {
            assert!(w[1].collected_points <= w[0].collected_points);
        }
    }

    #[test]
    fn recall_degrades_from_first_to_last_interval() {
        let user = generate_user(&SynthConfig::small(), 2);
        let sweep = sweep_intervals(&user, ExtractorParams::paper_set1());
        let first = sweep.first().unwrap();
        let last = sweep.last().unwrap();
        assert!(first.recall > last.recall, "1 s {} vs 7200 s {}", first.recall, last.recall);
    }

    #[test]
    fn sensitive_counts_are_monotone_in_threshold() {
        let user = generate_user(&SynthConfig::small(), 3);
        let m = measure_at_interval(&user, Seconds::new(1), ExtractorParams::paper_set1());
        assert!(m.sensitive[0] <= m.sensitive[1]);
        assert!(m.sensitive[1] <= m.sensitive[2]);
        assert!(m.sensitive[2] <= m.places);
    }

    #[test]
    fn paper_intervals_are_sorted_and_span_the_paper_range() {
        assert!(PAPER_INTERVALS.windows(2).all(|w| w[0] < w[1]));
        assert_eq!(PAPER_INTERVALS[0], 1);
        assert_eq!(*PAPER_INTERVALS.last().unwrap(), 7200);
    }
}
