//! Telemetry for the privacy-model pipeline.
//!
//! The statics here are bumped by the PoI extractor and the His_bin
//! matcher; [`register`] publishes them to the `backwatch-obs` registry so
//! report binaries can render them. The split between
//! [`POI_PLANAR_CERTIFIED`] and [`POI_PLANAR_REFINED`] is the measured form
//! of DESIGN.md §5d's claim that the certified planar filter "almost never"
//! falls back to the exact metric: integration tests assert the refined
//! fraction stays below 1 % on the synthetic city dataset.

use backwatch_obs::{register_counter, register_gauge, Counter, Gauge};
use std::sync::Once;

/// Extraction passes completed (one per `extract*` call).
pub static POI_PASSES: Counter = Counter::new();
/// Trace fixes consumed across all extraction passes.
pub static POI_POINTS: Counter = Counter::new();
/// PoI visits (stays) emitted across all extraction passes.
pub static POI_STAYS: Counter = Counter::new();
/// Planar radius decisions settled by the certified filter alone.
pub static POI_PLANAR_CERTIFIED: Counter = Counter::new();
/// Planar radius decisions that fell back to the exact spherical metric.
pub static POI_PLANAR_REFINED: Counter = Counter::new();
/// Full 8-lane chunks evaluated by the SoA spread kernel (each chunk's
/// lane arithmetic was computed in one vectorizable pass).
pub static POI_SIMD_CHUNKS: Counter = Counter::new();
/// Fixes the SoA spread kernel evaluated one-at-a-time outside the
/// chunks: the first-fix scalar prologue plus the tail left over when the
/// remaining window length is not a multiple of the lane width.
pub static POI_SIMD_TAIL: Counter = Counter::new();
/// His_bin chi-square profile comparisons evaluated.
pub static HISBIN_COMPARES: Counter = Counter::new();
/// Fixes pushed through streaming extraction engines. Batch `extract*`
/// calls ride the same engine, so this also counts their fixes.
pub static STREAM_POINTS: Counter = Counter::new();
/// Stays emitted by streaming engines (incremental and finish-flushed).
pub static STREAM_STAYS: Counter = Counter::new();
/// Checkpoints serialized from streaming engines.
pub static STREAM_CHECKPOINTS: Counter = Counter::new();
/// Engines reconstructed from checkpoints.
pub static STREAM_RESUMES: Counter = Counter::new();
/// Checkpoint byte streams rejected by decode or resume (truncation, bad
/// magic, malformed layout, invalid points). A serving layer alerts on
/// this: a non-zero rate means stored shard state is corrupt.
pub static STREAM_DECODE_FAILURES: Counter = Counter::new();
/// Advisory high-water mark of fixes buffered by any single streaming
/// engine (entry/exit windows; the PoI accumulator is constant-size).
pub static STREAM_PEAK_BUFFER: Gauge = Gauge::new();
/// SDK pools merged by the cross-app adversary (one per shared-SDK group
/// with at least one collecting member).
pub static POOL_MERGES: Counter = Counter::new();
/// Per-app fix streams folded into pooled streams.
pub static POOL_STREAMS: Counter = Counter::new();
/// Fixes in merged pooled streams (after cross-app deduplication).
pub static POOL_FIXES: Counter = Counter::new();
/// Fixes observed by more than one pooled app and collapsed by the merge.
pub static POOL_DUPLICATES: Counter = Counter::new();
/// SDK-member apps that contributed no fixes (embedded but never ran).
pub static POOL_SILENT: Counter = Counter::new();
/// Pooled-stream replays in which His_bin fired against the target.
pub static POOL_DETECTIONS: Counter = Counter::new();
/// Traffic-leakage channel applications (one per observed trace).
pub static LEAK_OBSERVATIONS: Counter = Counter::new();
/// Fixes that crossed the leakage channel (sampled, then truncated).
pub static LEAK_FIXES: Counter = Counter::new();
/// Candidate-set queries answered by the containment adversary.
pub static LEAK_CANDIDATE_SETS: Counter = Counter::new();
/// Total candidates across all containment queries.
pub static LEAK_CANDIDATES: Counter = Counter::new();
/// Degenerate all-zero weight vectors in the anonymity posterior,
/// recovered with a uniform posterior instead of panicking.
pub static ANONYMITY_DEGENERATE: Counter = Counter::new();

/// Registers this crate's metrics with the global registry. Idempotent and
/// cheap (a `Once`); called from the extractor and matcher constructors so
/// any pipeline that runs them is observable without further wiring.
pub fn register() {
    static ONCE: Once = Once::new();
    ONCE.call_once(|| {
        register_counter("core.poi.passes_total", "PoI extraction passes completed", &POI_PASSES);
        register_counter("core.poi.points_total", "trace fixes consumed by PoI extraction", &POI_POINTS);
        register_counter("core.poi.stays_total", "PoI visits emitted", &POI_STAYS);
        register_counter(
            "core.poi.planar_certified_total",
            "planar radius decisions settled by the certified filter",
            &POI_PLANAR_CERTIFIED,
        );
        register_counter(
            "core.poi.planar_refined_total",
            "planar radius decisions refined via the exact metric",
            &POI_PLANAR_REFINED,
        );
        register_counter(
            "core.poi.simd_lanes_chunks_total",
            "full lane chunks evaluated by the SoA spread kernel",
            &POI_SIMD_CHUNKS,
        );
        register_counter(
            "core.poi.simd_scalar_tail_total",
            "fixes evaluated in the SoA spread kernel's scalar prologue/tail",
            &POI_SIMD_TAIL,
        );
        register_counter(
            "core.hisbin.compares_total",
            "His_bin chi-square comparisons",
            &HISBIN_COMPARES,
        );
        register_counter(
            "core.stream.points_pushed_total",
            "fixes pushed through streaming extraction engines",
            &STREAM_POINTS,
        );
        register_counter(
            "core.stream.stays_emitted_total",
            "stays emitted by streaming engines",
            &STREAM_STAYS,
        );
        register_counter(
            "core.stream.checkpoints_total",
            "checkpoints serialized from streaming engines",
            &STREAM_CHECKPOINTS,
        );
        register_counter(
            "core.stream.resumes_total",
            "engines reconstructed from checkpoints",
            &STREAM_RESUMES,
        );
        register_counter(
            "core.stream.decode_failures_total",
            "checkpoint byte streams rejected by decode or resume",
            &STREAM_DECODE_FAILURES,
        );
        register_gauge(
            "core.stream.peak_buffer_current",
            "high-water mark of fixes buffered by a streaming engine",
            &STREAM_PEAK_BUFFER,
        );
        register_counter("core.pool_adversary.merges_total", "SDK pools merged", &POOL_MERGES);
        register_counter(
            "core.pool_adversary.pooled_streams_total",
            "per-app fix streams folded into pools",
            &POOL_STREAMS,
        );
        register_counter(
            "core.pool_adversary.pooled_fixes_total",
            "fixes in merged pooled streams",
            &POOL_FIXES,
        );
        register_counter(
            "core.pool_adversary.duplicate_fixes_total",
            "cross-app duplicate fixes collapsed by the merge",
            &POOL_DUPLICATES,
        );
        register_counter(
            "core.pool_adversary.silent_members_total",
            "SDK members that contributed no fixes",
            &POOL_SILENT,
        );
        register_counter(
            "core.pool_adversary.detections_total",
            "pooled replays in which His_bin fired",
            &POOL_DETECTIONS,
        );
        register_counter(
            "core.leakage.observations_total",
            "traffic-leakage channel applications",
            &LEAK_OBSERVATIONS,
        );
        register_counter(
            "core.leakage.fixes_leaked_total",
            "fixes that crossed the leakage channel",
            &LEAK_FIXES,
        );
        register_counter(
            "core.leakage.candidate_sets_total",
            "containment candidate-set queries",
            &LEAK_CANDIDATE_SETS,
        );
        register_counter(
            "core.leakage.candidates_total",
            "candidates across all containment queries",
            &LEAK_CANDIDATES,
        );
        register_counter(
            "core.anonymity.degenerate_weights_total",
            "all-zero weight vectors recovered with a uniform posterior",
            &ANONYMITY_DEGENERATE,
        );
    });
}

/// Fraction of planar radius decisions that needed the exact-metric
/// refinement, over everything recorded so far; `0.0` before any decision.
#[must_use]
pub fn planar_refined_fraction() -> f64 {
    let refined = POI_PLANAR_REFINED.get();
    let total = refined + POI_PLANAR_CERTIFIED.get();
    if total == 0 {
        0.0
    } else {
        refined as f64 / total as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn register_is_idempotent() {
        register();
        register();
        let snap = backwatch_obs::snapshot();
        // under backwatch-obs's `disabled` feature the registry stays empty
        if !snap.samples.is_empty() {
            assert!(snap.counter("core.poi.passes_total").is_some());
            assert!(snap.counter("core.hisbin.compares_total").is_some());
        }
    }

    #[test]
    fn refined_fraction_is_a_fraction() {
        let f = planar_refined_fraction();
        assert!((0.0..=1.0).contains(&f));
    }
}
