//! The adversary: a store of user profiles and the inference attack.
//!
//! The threat model (§IV-A) is an honest-but-curious third party — an LBS
//! backend or data broker — that has accumulated (anonymized) location
//! profiles of many users from various sources and tries to link newly
//! collected data to one of them.

use crate::anonymity::{assess, AnonymityOutcome, Weighting};
use crate::hisbin::Matcher;
use crate::pattern::{PatternKind, Profile};

/// A collection of per-user profiles of one pattern kind.
///
/// # Examples
///
/// ```
/// use backwatch_core::adversary::ProfileStore;
/// use backwatch_core::pattern::{PatternKind, Profile};
///
/// let mut store = ProfileStore::new(PatternKind::MovementPattern);
/// store.insert(7, Profile::new(PatternKind::MovementPattern));
/// assert_eq!(store.len(), 1);
/// assert!(store.profile_of(7).is_some());
/// ```
#[derive(Debug, Clone, Default)]
pub struct ProfileStore {
    kind: Option<PatternKind>,
    users: Vec<u32>,
    profiles: Vec<Profile>,
}

impl ProfileStore {
    /// An empty store accepting profiles of `kind`.
    #[must_use]
    pub fn new(kind: PatternKind) -> Self {
        Self {
            kind: Some(kind),
            users: Vec::new(),
            profiles: Vec::new(),
        }
    }

    /// Adds a user's profile.
    ///
    /// # Panics
    ///
    /// Panics if the profile's kind differs from the store's, or if the
    /// user was already inserted.
    pub fn insert(&mut self, user: u32, profile: Profile) {
        let kind = self.kind.get_or_insert(profile.kind());
        assert_eq!(*kind, profile.kind(), "store holds {kind} profiles");
        assert!(!self.users.contains(&user), "user {user} already in store");
        self.users.push(user);
        self.profiles.push(profile);
    }

    /// Number of profiles held.
    #[must_use]
    pub fn len(&self) -> usize {
        self.profiles.len()
    }

    /// Whether the store is empty.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.profiles.is_empty()
    }

    /// The stored user ids, in insertion order.
    #[must_use]
    pub fn users(&self) -> &[u32] {
        &self.users
    }

    /// The profile stored for `user`.
    #[must_use]
    pub fn profile_of(&self, user: u32) -> Option<&Profile> {
        self.users.iter().position(|&u| u == user).map(|i| &self.profiles[i])
    }

    /// Runs the inference attack: matches `observed` against every stored
    /// profile and reports the matched users, the posterior, and the
    /// degree of anonymity.
    #[must_use]
    pub fn infer(&self, observed: &Profile, matcher: &Matcher, weighting: Weighting) -> Inference {
        let outcome = assess(observed, &self.profiles, matcher, weighting);
        let matched_users: Vec<u32> = outcome.matched.iter().map(|&i| self.users[i]).collect();
        Inference { matched_users, outcome }
    }
}

/// The result of one inference attack.
#[derive(Debug, Clone, PartialEq)]
pub struct Inference {
    /// The user ids whose profiles matched.
    pub matched_users: Vec<u32>,
    /// The raw anonymity assessment (posterior indexed like
    /// `matched_users`).
    pub outcome: AnonymityOutcome,
}

impl Inference {
    /// The uniquely identified user, if the anonymity set collapsed to
    /// one.
    #[must_use]
    pub fn identified_user(&self) -> Option<u32> {
        match self.matched_users.as_slice() {
            [only] => Some(*only),
            _ => None,
        }
    }

    /// The degree of anonymity, `None` when nothing matched.
    #[must_use]
    pub fn degree(&self) -> Option<f64> {
        self.outcome.degree
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::poi::Stay;
    use backwatch_geo::{Grid, LatLon};
    use backwatch_trace::Timestamp;

    fn grid() -> Grid {
        Grid::new(LatLon::new(39.9, 116.4).unwrap(), backwatch_geo::Meters::new(250.0))
    }

    fn user_profile(lat0: f64) -> Profile {
        let stays: Vec<Stay> = (0..20)
            .map(|i| Stay {
                centroid: LatLon::new(lat0 + f64::from(i % 2) * 0.05, 116.4).unwrap(),
                enter: Timestamp::from_secs(i64::from(i) * 20_000),
                leave: Timestamp::from_secs(i64::from(i) * 20_000 + 900),
                n_points: 900,
                end_index: 0,
            })
            .collect();
        Profile::from_stays(PatternKind::RegionVisits, &stays, &grid())
    }

    #[test]
    fn store_identifies_the_right_user() {
        let mut store = ProfileStore::new(PatternKind::RegionVisits);
        for (id, lat) in [(10u32, 39.3), (20, 39.6), (30, 39.9)] {
            store.insert(id, user_profile(lat));
        }
        let observed = user_profile(39.9);
        let inference = store.infer(&observed, &Matcher::paper(), Weighting::PaperChiSquare);
        assert_eq!(inference.identified_user(), Some(30));
        assert_eq!(inference.degree(), Some(0.0));
    }

    #[test]
    fn unknown_user_matches_nothing() {
        let mut store = ProfileStore::new(PatternKind::RegionVisits);
        store.insert(1, user_profile(39.3));
        let observed = user_profile(38.0);
        let inference = store.infer(&observed, &Matcher::paper(), Weighting::PaperChiSquare);
        assert!(inference.matched_users.is_empty());
        assert_eq!(inference.degree(), None);
    }

    #[test]
    #[should_panic(expected = "already in store")]
    fn duplicate_user_panics() {
        let mut store = ProfileStore::new(PatternKind::RegionVisits);
        store.insert(1, user_profile(39.3));
        store.insert(1, user_profile(39.6));
    }

    #[test]
    #[should_panic(expected = "store holds")]
    fn kind_mismatch_panics() {
        let mut store = ProfileStore::new(PatternKind::RegionVisits);
        store.insert(1, Profile::new(PatternKind::MovementPattern));
    }

    #[test]
    fn lookup_by_user() {
        let mut store = ProfileStore::new(PatternKind::RegionVisits);
        store.insert(5, user_profile(39.5));
        assert!(store.profile_of(5).is_some());
        assert!(store.profile_of(6).is_none());
        assert_eq!(store.users(), &[5]);
    }
}
