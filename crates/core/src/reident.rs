//! Top-N location re-identification (Zang & Bolot, MobiCom 2011;
//! Golle & Partridge 2009).
//!
//! The paper's motivation cites the classic result that a user's top two
//! or three locations — usually home and work — already shrink the
//! anonymity set to almost nothing. This module measures that directly
//! on a population: for each user, the set of users sharing the same
//! top-N region multiset is their anonymity set.

use crate::poi::Stay;
use backwatch_geo::{CellId, Grid};
use std::collections::HashMap;

/// The top `n` regions of a stay sequence, ranked by total dwell time,
/// returned as a sorted (set-identity) vector.
///
/// Ties are broken by cell id so the result is deterministic.
#[must_use]
pub fn top_regions(stays: &[Stay], grid: &Grid, n: usize) -> Vec<CellId> {
    let mut dwell: HashMap<CellId, i64> = HashMap::new();
    for s in stays {
        *dwell.entry(grid.cell_of(s.centroid)).or_insert(0) += s.dwell_secs();
    }
    let mut ranked: Vec<(CellId, i64)> = dwell.into_iter().collect();
    ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
    let mut top: Vec<CellId> = ranked.into_iter().take(n).map(|(c, _)| c).collect();
    top.sort();
    top
}

/// Anonymity-set analysis over a population.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct TopNReport {
    /// `n` used for the analysis.
    pub n: usize,
    /// Per-user anonymity-set size (how many users, including self, share
    /// the same top-N region set).
    pub set_sizes: Vec<usize>,
}

impl TopNReport {
    /// Users whose top-N set is unique (anonymity set of one).
    #[must_use]
    pub fn unique_users(&self) -> usize {
        self.set_sizes.iter().filter(|&&s| s == 1).count()
    }

    /// Fraction of users uniquely identified by their top-N regions.
    #[must_use]
    pub fn unique_fraction(&self) -> f64 {
        if self.set_sizes.is_empty() {
            0.0
        } else {
            self.unique_users() as f64 / self.set_sizes.len() as f64
        }
    }

    /// The largest anonymity set observed.
    #[must_use]
    pub fn max_set_size(&self) -> usize {
        self.set_sizes.iter().copied().max().unwrap_or(0)
    }
}

/// Computes the top-N anonymity sets for a population given each user's
/// stay sequence.
///
/// # Panics
///
/// Panics if `n == 0`.
#[must_use]
pub fn top_n_anonymity(population: &[Vec<Stay>], grid: &Grid, n: usize) -> TopNReport {
    assert!(n >= 1, "n must be at least 1");
    let tops: Vec<Vec<CellId>> = population.iter().map(|stays| top_regions(stays, grid, n)).collect();
    let mut counts: HashMap<&[CellId], usize> = HashMap::new();
    for t in &tops {
        *counts.entry(t.as_slice()).or_insert(0) += 1;
    }
    let set_sizes = tops.iter().map(|t| counts[t.as_slice()]).collect();
    TopNReport { n, set_sizes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_geo::LatLon;
    use backwatch_trace::Timestamp;

    fn grid() -> Grid {
        Grid::new(LatLon::new(39.9, 116.4).unwrap(), backwatch_geo::Meters::new(250.0))
    }

    fn stay(lat: f64, lon: f64, t: i64, dwell: i64) -> Stay {
        Stay {
            centroid: LatLon::new(lat, lon).unwrap(),
            enter: Timestamp::from_secs(t),
            leave: Timestamp::from_secs(t + dwell),
            n_points: dwell as usize,
            end_index: 0,
        }
    }

    /// A user with home (long dwells) at `home_lat` and work at
    /// `work_lat`.
    fn user(home_lat: f64, work_lat: f64) -> Vec<Stay> {
        let mut v = Vec::new();
        for d in 0..5i64 {
            v.push(stay(home_lat, 116.40, d * 86_400, 40_000));
            v.push(stay(work_lat, 116.45, d * 86_400 + 45_000, 30_000));
            v.push(stay(39.99, 116.49, d * 86_400 + 80_000, 1_000)); // shared cafe
        }
        v
    }

    #[test]
    fn top_regions_ranked_by_dwell() {
        let g = grid();
        let stays = user(39.90, 39.95);
        let top1 = top_regions(&stays, &g, 1);
        assert_eq!(top1, vec![g.cell_of(LatLon::new(39.90, 116.40).unwrap())]);
        let top2 = top_regions(&stays, &g, 2);
        assert_eq!(top2.len(), 2);
        assert!(top2.contains(&g.cell_of(LatLon::new(39.95, 116.45).unwrap())));
    }

    #[test]
    fn top_n_caps_at_distinct_regions() {
        let g = grid();
        let stays = user(39.90, 39.95);
        assert_eq!(top_regions(&stays, &g, 10).len(), 3);
        assert!(top_regions(&[], &g, 3).is_empty());
    }

    #[test]
    fn distinct_home_work_pairs_are_unique() {
        let g = grid();
        let population = vec![user(39.90, 39.95), user(39.80, 39.85), user(39.70, 39.75)];
        let report = top_n_anonymity(&population, &g, 2);
        assert_eq!(report.unique_users(), 3);
        assert_eq!(report.unique_fraction(), 1.0);
    }

    #[test]
    fn shared_home_work_pairs_form_anonymity_sets() {
        let g = grid();
        // two flatmates working at the same office
        let population = vec![user(39.90, 39.95), user(39.90, 39.95), user(39.70, 39.75)];
        let report = top_n_anonymity(&population, &g, 2);
        assert_eq!(report.set_sizes, vec![2, 2, 1]);
        assert_eq!(report.unique_users(), 1);
        assert_eq!(report.max_set_size(), 2);
    }

    #[test]
    fn more_regions_never_grow_the_set() {
        let g = grid();
        // flatmates distinguished only by their third place
        let mut a = user(39.90, 39.95);
        a.push(stay(39.60, 116.30, 10 * 86_400, 5_000));
        let b = user(39.90, 39.95);
        let population = vec![a, b];
        let r2 = top_n_anonymity(&population, &g, 2);
        let r3 = top_n_anonymity(&population, &g, 3);
        for (s3, s2) in r3.set_sizes.iter().zip(&r2.set_sizes) {
            assert!(s3 <= s2);
        }
    }

    #[test]
    #[should_panic(expected = "n must be")]
    fn zero_n_panics() {
        let _ = top_n_anonymity(&[], &grid(), 0);
    }
}
