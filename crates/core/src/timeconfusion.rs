//! Time-to-confusion (Hoh et al., CCS 2007 / TMC 2010).
//!
//! An alternative privacy metric the paper surveys: instead of asking
//! what an adversary learns from histograms, ask for how long an
//! adversary can *continuously track* a user through the released stream
//! before another user's presence makes the link ambiguous. A release is
//! "confused" when at least `k` population members (including the target)
//! are plausibly at the released position; tracking time is the elapsed
//! time between confusion points.

use backwatch_geo::distance::Metric;
use backwatch_geo::LatLon;
use backwatch_trace::Trace;

/// Result of a time-to-confusion analysis.
#[derive(Debug, Clone, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TimeToConfusion {
    /// Mean uninterrupted tracking duration, seconds.
    pub mean_tracking_secs: f64,
    /// Longest uninterrupted tracking duration, seconds.
    pub max_tracking_secs: i64,
    /// Number of confusion events across the stream.
    pub confusion_events: usize,
    /// Number of released fixes analysed.
    pub fixes: usize,
}

/// Configuration of the tracker.
#[derive(Debug, Clone, Copy, PartialEq)]
#[cfg_attr(feature = "serde", derive(serde::Serialize, serde::Deserialize))]
pub struct TtcConfig {
    /// Radius within which another user is considered a plausible owner
    /// of the released fix, meters.
    pub confusion_radius_m: f64,
    /// Minimum number of plausible owners (target included) for a fix to
    /// count as confused. `2` is the classic definition.
    pub k: usize,
    /// Distance metric.
    pub metric: Metric,
}

impl Default for TtcConfig {
    fn default() -> Self {
        Self {
            confusion_radius_m: 250.0,
            k: 2,
            metric: Metric::Equirectangular,
        }
    }
}

/// The position of a trace owner at second `t` (last fix at or before
/// `t`, clamped to the ends), or `None` for an empty trace.
fn position_at(trace: &Trace, t: i64) -> Option<LatLon> {
    let pts = trace.points();
    let idx = pts.partition_point(|p| p.time.as_secs() <= t);
    pts.get(idx.saturating_sub(1)).map(|p| p.pos)
}

/// Computes time-to-confusion for `released` (the target's stream seen by
/// the adversary) against the ground-truth movements of the `population`
/// (the other users the adversary could confuse the target with).
///
/// # Panics
///
/// Panics if `cfg.k == 0` or the radius is not positive.
#[must_use]
pub fn time_to_confusion(released: &Trace, population: &[&Trace], cfg: TtcConfig) -> TimeToConfusion {
    assert!(cfg.k >= 1, "k must be at least 1");
    assert!(
        cfg.confusion_radius_m > 0.0 && cfg.confusion_radius_m.is_finite(),
        "radius must be positive"
    );
    let mut segments: Vec<i64> = Vec::new();
    let mut segment_start: Option<i64> = None;
    let mut confusion_events = 0usize;

    for p in released.iter() {
        let t = p.time.as_secs();
        // the target itself is always a plausible owner
        let mut plausible = 1usize;
        for other in population {
            if let Some(pos) = position_at(other, t) {
                if cfg.metric.distance(pos, p.pos) <= cfg.confusion_radius_m {
                    plausible += 1;
                    if plausible >= cfg.k {
                        break;
                    }
                }
            }
        }
        if plausible >= cfg.k {
            // confusion: close the current tracking segment
            if let Some(start) = segment_start.take() {
                segments.push(t - start);
            }
            confusion_events += 1;
        } else if segment_start.is_none() {
            segment_start = Some(t);
        }
    }
    if let (Some(start), Some(last)) = (segment_start, released.last()) {
        segments.push(last.time.as_secs() - start);
    }

    let mean = if segments.is_empty() {
        0.0
    } else {
        segments.iter().sum::<i64>() as f64 / segments.len() as f64
    };
    TimeToConfusion {
        mean_tracking_secs: mean,
        max_tracking_secs: segments.into_iter().max().unwrap_or(0),
        confusion_events,
        fixes: released.len(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use backwatch_trace::{Timestamp, TracePoint};

    fn line_trace(lat0: f64, n: i64) -> Trace {
        Trace::from_points(
            (0..n)
                .map(|i| {
                    TracePoint::new(
                        Timestamp::from_secs(i * 10),
                        LatLon::new(lat0 + i as f64 * 1e-4, 116.4).unwrap(),
                    )
                })
                .collect(),
        )
    }

    #[test]
    fn lone_user_is_tracked_forever() {
        let target = line_trace(39.9, 100);
        let far = line_trace(39.0, 100); // 100 km away
        let ttc = time_to_confusion(&target, &[&far], TtcConfig::default());
        assert_eq!(ttc.confusion_events, 0);
        assert_eq!(ttc.max_tracking_secs, 99 * 10);
        assert!(ttc.mean_tracking_secs > 0.0);
    }

    #[test]
    fn co_moving_companion_confuses_every_fix() {
        let target = line_trace(39.9, 100);
        let companion = line_trace(39.9, 100); // identical route
        let ttc = time_to_confusion(&target, &[&companion], TtcConfig::default());
        assert_eq!(ttc.confusion_events, 100);
        assert_eq!(ttc.max_tracking_secs, 0);
        assert_eq!(ttc.mean_tracking_secs, 0.0);
    }

    #[test]
    fn crossing_paths_split_the_tracking() {
        // companion crosses the target's path in the middle
        let target = line_trace(39.9, 101);
        // companion sits exactly at the target's midpoint position the
        // whole time
        let mid = LatLon::new(39.9 + 50.0 * 1e-4, 116.4).unwrap();
        let companion = Trace::from_points((0..101).map(|i| TracePoint::new(Timestamp::from_secs(i * 10), mid)).collect());
        let ttc = time_to_confusion(&target, &[&companion], TtcConfig::default());
        assert!(ttc.confusion_events > 0, "paths cross near the midpoint");
        assert!(ttc.max_tracking_secs < 1000, "tracking must be broken by the crossing");
    }

    #[test]
    fn larger_k_requires_more_company() {
        let target = line_trace(39.9, 100);
        let companion = line_trace(39.9, 100);
        let cfg = TtcConfig {
            k: 3, // one companion is no longer enough
            ..TtcConfig::default()
        };
        let ttc = time_to_confusion(&target, &[&companion], cfg);
        assert_eq!(ttc.confusion_events, 0);
    }

    #[test]
    fn empty_release_is_trivially_safe() {
        let ttc = time_to_confusion(&Trace::new(), &[], TtcConfig::default());
        assert_eq!(ttc.fixes, 0);
        assert_eq!(ttc.mean_tracking_secs, 0.0);
    }

    #[test]
    #[should_panic(expected = "k must be")]
    fn zero_k_panics() {
        let cfg = TtcConfig {
            k: 0,
            ..TtcConfig::default()
        };
        let _ = time_to_confusion(&Trace::new(), &[], cfg);
    }
}
